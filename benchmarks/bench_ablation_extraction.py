"""Ablation A1 — candidate-extraction strategies (§3.3).

The paper names three ways to compress a Pareto front into a decision-
ready candidate set: threshold budgets, k-means clustering, and greedy
diversity maximization.  This bench runs all three on the Houston front
and compares (a) runtime and (b) how well each 5-candidate set spans the
front (objective-space dispersion and hypervolume retention).
"""

import numpy as np
import pytest

from repro.blackbox.multiobjective import hypervolume_2d
from repro.core.candidates import (
    greedy_diversity_candidates,
    kmeans_candidates,
    threshold_candidates,
)
from repro.core.pareto import pareto_front, pareto_points

K = 5
OBJECTIVES = ("embodied", "operational")


def _dispersion(points: np.ndarray) -> float:
    """Min pairwise distance in normalized objective space (larger=better)."""
    span = points.max(axis=0) - points.min(axis=0)
    span[span <= 0] = 1.0
    normalized = (points - points.min(axis=0)) / span
    dists = [
        np.linalg.norm(normalized[i] - normalized[j])
        for i in range(len(points))
        for j in range(i + 1, len(points))
    ]
    return float(min(dists)) if dists else 0.0


@pytest.mark.benchmark(group="ablation-extraction")
@pytest.mark.parametrize("strategy", ["threshold", "kmeans", "greedy"])
def test_extraction_strategies(benchmark, strategy, houston_exhaustive, output_dir):
    front = pareto_front(houston_exhaustive.evaluated, OBJECTIVES)

    if strategy == "threshold":
        fn = lambda: threshold_candidates(front)
    elif strategy == "kmeans":
        fn = lambda: kmeans_candidates(front, k=K, objectives=OBJECTIVES, seed=7)
    else:
        fn = lambda: greedy_diversity_candidates(front, k=K, objectives=OBJECTIVES)

    candidates = benchmark.pedantic(fn, rounds=5)

    points = pareto_points(candidates, OBJECTIVES)
    full = pareto_points(front, OBJECTIVES)
    ref = full.max(axis=0) * 1.1 + 1.0
    hv_retention = hypervolume_2d(points, ref) / hypervolume_2d(full, ref)
    dispersion = _dispersion(points)

    line = (
        f"{strategy:>9}: k={len(candidates)}  hv-retention {hv_retention:.3f}"
        f"  min-dispersion {dispersion:.3f}"
    )
    print("\n" + line)
    with (output_dir / "ablation_extraction.txt").open("a") as fh:
        fh.write(line + "\n")

    # Every strategy must return candidates drawn from the front…
    front_ids = {e.composition for e in front}
    assert all(c.composition in front_ids for c in candidates)
    assert 2 <= len(candidates) <= K + 1
    # …and retain the large majority of the front's hypervolume.
    assert hv_retention > 0.80
    # Diversity-seeking strategies must actually spread their picks.
    if strategy in ("greedy", "kmeans"):
        assert dispersion > 0.02
