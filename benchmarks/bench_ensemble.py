"""Scenario-ensemble throughput: S members × N candidates, one loop.

The perf point of the ensemble subsystem (DESIGN.md §6): a 10-member
ensemble — five weather years × two workload-growth futures — evaluated
as one stacked time loop must be **bit-for-bit** identical to evaluating
every member serially through ``BatchEvaluator``, while amortizing the
Python-level time loop across all members.

The equality assertion always runs; the wall-clock speedup assertion
(≥ 1.2×, easily met when the per-step Python overhead dominates) is
opt-in behind the ``bench`` marker (``pytest -m bench benchmarks/``)
because wall-clock on a loaded single-CPU container is noisy.
"""

from __future__ import annotations

import time

import pytest

from repro.core.ensemble import EnsembleSpec, build_ensemble
from repro.core.fastsim import BatchEvaluator, evaluate_across_scenarios
from repro.core.metrics import COMPARABLE_METRIC_FIELDS as METRIC_FIELDS
from repro.core.parameterspace import ParameterSpace

#: 10 members: 5 weather years × 2 growth futures, one quarter each.
ENSEMBLE_SPEC = EnsembleSpec.parse(
    "years=2020-2024,growth=1.0:1.2", sites=("houston",), n_hours=24 * 90
)

#: 72 candidates — wide enough to be a real batch, small enough that the
#: stacked loop's per-step overhead amortization is what gets measured.
SPACE = ParameterSpace(max_turbines=5, max_solar_increments=3, max_battery_units=2)


@pytest.fixture(scope="module")
def ensemble():
    return build_ensemble(ENSEMBLE_SPEC)


def _time_both(scenarios, comps):
    start = time.perf_counter()
    serial = [BatchEvaluator(sc).evaluate(comps) for sc in scenarios]
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    stacked = evaluate_across_scenarios(scenarios, comps)
    t_stacked = time.perf_counter() - start
    return serial, t_serial, stacked, t_stacked


def test_ensemble_stacked_matches_serial_bit_for_bit(ensemble, output_dir):
    comps = SPACE.all_compositions()
    serial, t_serial, stacked, t_stacked = _time_both(ensemble, comps)

    mismatches = 0
    for s in range(len(ensemble)):
        for e_serial, e_stacked in zip(serial[s], stacked[s]):
            for name in METRIC_FIELDS:
                if getattr(e_serial.metrics, name) != getattr(e_stacked.metrics, name):
                    mismatches += 1
    assert mismatches == 0, f"{mismatches} metric values differ from serial evaluation"

    cells = len(comps) * len(ensemble) * ensemble[0].n_steps
    speedup = t_serial / t_stacked if t_stacked > 0 else float("inf")
    report = (
        f"ensemble tensor benchmark ({len(comps)} candidates x "
        f"{len(ensemble)} members x {ensemble[0].n_steps} steps):\n"
        f"  members             : {', '.join(sc.name for sc in ensemble)}\n"
        f"  serial per-member   : {t_serial:6.2f} s "
        f"({cells / t_serial / 1e6:6.1f} M cell-steps/s)\n"
        f"  stacked tensor      : {t_stacked:6.2f} s "
        f"({cells / t_stacked / 1e6:6.1f} M cell-steps/s)\n"
        f"  stacking speedup    : {speedup:5.2f}x\n"
        f"  bit-for-bit         : yes ({len(METRIC_FIELDS)} metrics x "
        f"{len(comps) * len(ensemble)} evaluations)\n"
    )
    print("\n" + report)
    (output_dir / "ensemble_tensor.txt").write_text(report)


@pytest.mark.bench
def test_ensemble_stacking_speedup(ensemble):
    comps = SPACE.all_compositions()
    _time_both(ensemble, comps)  # warm the per-unit caches and allocator
    _, t_serial, _, t_stacked = _time_both(ensemble, comps)
    speedup = t_serial / t_stacked if t_stacked > 0 else float("inf")
    assert speedup >= 1.2, (
        f"stacked 10-member ensemble only {speedup:.2f}x vs serial "
        f"({t_serial:.2f}s serial, {t_stacked:.2f}s stacked)"
    )
