"""Run every benchmark and record the perf trajectory in one JSON file.

``python benchmarks/run_all.py`` (or ``make bench``) executes each
``bench_*.py`` in its own pytest process and folds the results into
``benchmarks/output/BENCH_storage.json``:

* ``storage`` — the machine-readable load/append numbers written by
  ``bench_storage.py`` itself;
* ``benches`` — per-bench status (passed/failed/skipped) and wall-clock
  duration, so regressions in *any* bench show up as a diff;
* ``artifacts`` — the text reports the dispatch/ensemble/parallel
  benches drop in ``benchmarks/output/`` (their headline numbers, e.g.
  the stacking speedups, ride along verbatim).

Wall-clock speedup assertions behind the opt-in ``bench`` pytest marker
are included (``-m ""`` clears the default deselection); on loaded or
single-core machines those benches skip rather than fail, and the skip
is recorded.  Use ``--only PATTERN`` to run a subset (substring match
on the file name), e.g. ``--only storage``.

Benches with their own machine-readable headlines write sibling
``BENCH_*.json`` files (``bench_racing.py`` → ``BENCH_racing.json``);
``benchmarks/check_regression.py`` compares a fresh pass of every
tracked headline against the committed copies and fails CI's bench job
on a >30 % throughput regression.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO = BENCH_DIR.parent
OUTPUT = BENCH_DIR / "output"
RESULTS = OUTPUT / "BENCH_storage.json"


def _run_bench(path: Path) -> dict:
    """One bench file in its own pytest process; returns its record."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(path), "-q", "-m", "", "-p", "no:cacheprovider"],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    status = "passed" if proc.returncode == 0 else "failed"
    if proc.returncode == 0 and " skipped" in tail and " passed" not in tail:
        status = "skipped"
    return {
        "status": status,
        "seconds": round(elapsed, 2),
        "summary": tail,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        default=None,
        metavar="PATTERN",
        help="run only bench files whose name contains PATTERN",
    )
    args = parser.parse_args(argv)

    benches = sorted(BENCH_DIR.glob("bench_*.py"))
    if args.only:
        benches = [b for b in benches if args.only in b.name]
    if not benches:
        print(f"no bench files match {args.only!r}")
        return 1

    OUTPUT.mkdir(exist_ok=True)
    records: dict[str, dict] = {}
    failed = []
    for path in benches:
        print(f"{path.name} ... ", end="", flush=True)
        record = _run_bench(path)
        records[path.name] = record
        print(f"{record['status']} ({record['seconds']}s)  {record['summary']}")
        if record["status"] == "failed":
            failed.append(path.name)

    results = json.loads(RESULTS.read_text()) if RESULTS.exists() else {}
    results["benches"] = records
    results["artifacts"] = {
        p.name: p.read_text()
        for p in sorted(OUTPUT.glob("*.txt"))
    }
    RESULTS.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {RESULTS.relative_to(REPO)}")
    if failed:
        print(f"FAILED: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
