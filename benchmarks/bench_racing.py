"""Multi-fidelity racing throughput: rungs vs the full ensemble stack.

The perf point of the racing engine (DESIGN.md §8): on a 20-member
ensemble (five weather years × two workload-growth futures × two
dunkelflaute severities), racing the paper's full 1 089-candidate space
through ``rungs=2,8,full`` must

* reproduce the full-ensemble Pareto front **bit-identically** — the
  engine's elimination proofs guarantee it, this bench *verifies* it;
* simulate at least 2× fewer (candidate × member) cells than the full
  evaluation — a deterministic work metric, asserted unconditionally;
* run at least 2× faster wall-clock — asserted behind the opt-in
  ``bench`` marker (wall-clock is noisy on loaded single-CPU boxes),
  and included in every ``make bench`` pass (``run_all.py`` clears the
  marker deselection).

Machine-readable headlines land in ``benchmarks/output/BENCH_racing.json``
for ``check_regression.py``; the human-readable report joins the other
artifacts in ``BENCH_storage.json`` via ``run_all.py``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.ensemble import EnsembleSpec, build_ensemble, evaluate_ensemble
from repro.core.pareto import pareto_front
from repro.core.parameterspace import PAPER_SPACE
from repro.core.racing import RungSchedule, race_front

#: 20 members: 5 weather years × 2 growth futures × 2 severities, one
#: quarter each — big enough that full-fidelity evaluation dominates.
ENSEMBLE_SPEC = EnsembleSpec.parse(
    "years=2020-2024,growth=1.0:1.2,severity=1.0:1.5",
    sites=("houston",),
    n_hours=24 * 90,
)

SCHEDULE = RungSchedule.parse("rungs=2,8,full")
AGGREGATE = "worst"


@pytest.fixture(scope="module")
def ensemble():
    return build_ensemble(ENSEMBLE_SPEC)


def _front_key(front):
    return {(e.composition, e.objectives()) for e in front}


def _time_both(ensemble, comps):
    start = time.perf_counter()
    full = evaluate_ensemble(ensemble, comps, aggregate=AGGREGATE)
    t_full = time.perf_counter() - start

    start = time.perf_counter()
    raced_front, outcome = race_front(
        ensemble, comps, SCHEDULE, aggregate=AGGREGATE
    )
    t_raced = time.perf_counter() - start
    return full, t_full, raced_front, t_raced, outcome


def test_raced_front_bit_identical_with_2x_work_reduction(ensemble, output_dir):
    comps = PAPER_SPACE.all_compositions()
    full, t_full, raced_front, t_raced, outcome = _time_both(ensemble, comps)

    assert _front_key(pareto_front(full)) == _front_key(raced_front), (
        "raced Pareto front differs from the full-ensemble front"
    )

    stats = outcome.stats
    assert stats.savings >= 2.0, (
        f"racing only cut member-evaluations {stats.savings:.2f}x "
        f"({stats.member_evals} of {stats.full_member_evals})"
    )

    n_steps = ensemble[0].n_steps
    speedup = t_full / t_raced if t_raced > 0 else float("inf")
    full_cells = stats.full_member_evals * n_steps
    raced_cells = stats.member_evals * n_steps
    report = (
        f"racing benchmark ({len(comps)} candidates x {len(ensemble)} members "
        f"x {n_steps} steps, {SCHEDULE.spec_string()}, aggregate={AGGREGATE}):\n"
        f"  full ensemble       : {t_full:6.2f} s "
        f"({full_cells / t_full / 1e6:6.1f} M cell-steps/s)\n"
        f"  raced               : {t_raced:6.2f} s "
        f"({raced_cells / t_raced / 1e6:6.1f} M cell-steps/s useful)\n"
        f"  member-evals        : {stats.member_evals} of {stats.full_member_evals} "
        f"({stats.savings:.2f}x work reduction)\n"
        f"  alive per rung      : {stats.alive_per_rung}\n"
        f"  pruned / promoted   : {stats.pruned} / {stats.promoted_back}\n"
        f"  wall-clock speedup  : {speedup:5.2f}x\n"
        f"  front bit-identical : yes ({len(raced_front)} points)\n"
    )
    print("\n" + report)
    (output_dir / "racing_tensor.txt").write_text(report)
    (output_dir / "BENCH_racing.json").write_text(
        json.dumps(
            {
                "racing": {
                    "generated_by": "benchmarks/bench_racing.py",
                    "config": {
                        "candidates": len(comps),
                        "members": len(ensemble),
                        "steps": n_steps,
                        "schedule": SCHEDULE.spec_string(),
                        "aggregate": AGGREGATE,
                    },
                    "member_evals": stats.member_evals,
                    "full_member_evals": stats.full_member_evals,
                    "work_reduction": round(stats.savings, 2),
                    "pruned": stats.pruned,
                    "promoted_back": stats.promoted_back,
                    "full_seconds": round(t_full, 3),
                    "raced_seconds": round(t_raced, 3),
                    "full_cells_per_s": round(full_cells / t_full, 1),
                    "raced_cells_per_s": round(raced_cells / t_raced, 1),
                    "wallclock_speedup": round(speedup, 2),
                    "front_size": len(raced_front),
                    "front_bit_identical": True,
                }
            },
            indent=2,
        )
        + "\n"
    )


@pytest.mark.bench
def test_racing_wallclock_speedup(ensemble):
    comps = PAPER_SPACE.all_compositions()
    _time_both(ensemble, comps)  # warm caches and the allocator
    _, t_full, _, t_raced, _ = _time_both(ensemble, comps)
    speedup = t_full / t_raced if t_raced > 0 else float("inf")
    assert speedup >= 2.0, (
        f"racing only {speedup:.2f}x faster wall-clock "
        f"({t_full:.2f}s full, {t_raced:.2f}s raced)"
    )
