"""Table 1 — Houston candidate solutions.

Regenerates the paper's Table 1: the exhaustive sweep over the 1 089-point
composition space, followed by the threshold-candidate extraction
(baseline + best under 5 000/10 000/15 000 tCO2 + unconstrained best).
The benchmark measures the sweep itself — the computation the paper says
takes >24 h of co-simulations and that the vectorized batch evaluator
performs in ~1 s.
"""

import pytest

from repro.analysis.tables import candidate_table, format_table
from repro.core.candidates import paper_candidates
from repro.core.fastsim import BatchEvaluator
from repro.core.parameterspace import PAPER_SPACE


@pytest.mark.benchmark(group="table1")
def test_table1_houston(benchmark, houston, output_dir):
    compositions = PAPER_SPACE.all_compositions()
    evaluator = BatchEvaluator(houston)

    evaluated = benchmark.pedantic(
        evaluator.evaluate, args=(compositions,), rounds=2, iterations=1
    )

    candidates = paper_candidates(evaluated)
    rows = candidate_table(candidates)
    table = format_table(rows, title="Table 1 (reproduced): Houston candidate solutions")
    print("\n" + table)

    # Side-by-side check on the paper's exact compositions.
    from repro.analysis.paper_refs import PAPER_TABLE1_HOUSTON, reproduction_scorecard

    scorecard = reproduction_scorecard(PAPER_TABLE1_HOUSTON, evaluator, "houston")
    print("\n" + scorecard)
    (output_dir / "table1_houston.txt").write_text(table + "\n\n" + scorecard + "\n")

    # Shape assertions vs the paper (see EXPERIMENTS.md for the mapping).
    assert len(rows) == 5
    assert rows[0]["operational_tco2_day"] == pytest.approx(15.54, abs=0.2)
    assert rows[0]["coverage_pct"] == 0.0
    # Budget rows: monotone decarbonization under rising budgets.
    ops = [r["operational_tco2_day"] for r in rows]
    assert ops == sorted(ops, reverse=True)
    # First investment more than halves operational emissions (paper: 15.54→5.88).
    assert ops[1] < 0.5 * ops[0]
    # The unconstrained best approaches zero (paper: 0.02).
    assert ops[-1] < 0.1
    assert rows[-1]["coverage_pct"] > 99.0
