"""Storage-backend throughput: long journals vs compaction vs SQLite (DESIGN.md §7).

The journal's replay cost grows with *history*, not live trials: every
resume re-tell and shard renumber appends a record that last-write-wins
replay immediately overwrites.  This bench builds the pathological case
— a 10k-record journal covering 1k live trials (each re-told 10×, the
shape an often-resumed long study produces) — and measures ``load_study``
against (a) the raw append-only journal, (b) the same journal after
``compact()``, and (c) the SQLite backend, plus per-record append
throughput for each writable backend.

Results land in ``benchmarks/output/BENCH_storage.json``
(machine-readable; merged with the other benches' numbers by
``benchmarks/run_all.py``).  The replay-equivalence assertions run in
any ``pytest benchmarks/`` invocation; the ≥2× wall-clock speedup gate
follows the repo convention and sits behind the opt-in ``bench`` marker
(``run_all.py`` clears the deselection, so ``make bench`` enforces it).
"""

from __future__ import annotations

import json
import shutil
import time

import pytest

from repro.blackbox import InMemoryStorage, JournalStorage, SQLiteStorage, TrialState
from repro.blackbox.storage import encode_trial
from repro.blackbox.trial import FrozenTrial

N_LIVE = 1_000  # distinct trial numbers (the state resume actually needs)
REWRITES = 10  # finish records per trial number → 10k-record history
N_APPENDS = 200  # per-backend sample for append throughput
STUDY = "bench"


def _trial(number: int, generation: int) -> FrozenTrial:
    return FrozenTrial(
        number=number,
        state=TrialState.COMPLETE,
        params={"x": number * 0.001, "k": number % 6},
        values=(float(number % 97) + generation, float(number % 31)),
    )


def _build_raw_journal(path) -> int:
    """The 10k-record history, written directly (no per-line fsync)."""
    records = [
        json.dumps(
            {"op": "create", "study": STUDY, "directions": ["minimize", "minimize"],
             "metadata": {"n_trials": N_LIVE}}
        )
    ]
    for generation in range(REWRITES):
        for n in range(N_LIVE):
            records.append(
                json.dumps(
                    {"op": "finish", "study": STUDY,
                     "trial": encode_trial(_trial(n, generation))}
                )
            )
    path.write_text("\n".join(records) + "\n")
    return len(records)


def _build_sqlite(path) -> SQLiteStorage:
    storage = SQLiteStorage(path)
    storage.create_study(STUDY, ["minimize", "minimize"], {"n_trials": N_LIVE})
    for n in range(N_LIVE):
        storage.record_trial_finish(STUDY, _trial(n, REWRITES - 1))
    return storage


def _time_load(make_storage, repeats: int = 3) -> float:
    """Best-of-N cold loads (fresh instance each time: no record cache)."""
    best = float("inf")
    for _ in range(repeats):
        storage = make_storage()
        start = time.perf_counter()
        stored = storage.load_study(STUDY)
        best = min(best, time.perf_counter() - start)
        assert stored is not None and len(stored.finished_trials()) == N_LIVE
        storage.close()
    return best


def _time_appends(storage) -> float:
    """Records/s through the real (fsynced/committed) append path."""
    storage.create_study(STUDY, ["minimize", "minimize"], {})
    start = time.perf_counter()
    for n in range(N_APPENDS):
        storage.record_trial_finish(STUDY, _trial(n, 0))
    elapsed = time.perf_counter() - start
    storage.close()
    return N_APPENDS / elapsed


@pytest.fixture(scope="module")
def measurements(tmp_path_factory, output_dir) -> dict:
    """Build the three stores, time them, record BENCH_storage.json."""
    tmp_path = tmp_path_factory.mktemp("storage-bench")
    raw_path = tmp_path / "history.jsonl"
    n_records = _build_raw_journal(raw_path)

    compacted_path = tmp_path / "compacted.jsonl"
    shutil.copyfile(raw_path, compacted_path)
    before, after = JournalStorage(compacted_path).compact()
    assert before == n_records
    assert after == N_LIVE + 1  # one create + one record per live trial

    sqlite_path = tmp_path / "store.db"
    _build_sqlite(sqlite_path).close()

    t_journal = _time_load(lambda: JournalStorage(raw_path))
    t_compacted = _time_load(lambda: JournalStorage(compacted_path))
    t_sqlite = _time_load(lambda: SQLiteStorage(sqlite_path))
    append_rates = {
        "journal": _time_appends(JournalStorage(tmp_path / "append.jsonl")),
        "sqlite": _time_appends(SQLiteStorage(tmp_path / "append.db")),
        "memory": _time_appends(InMemoryStorage()),
    }

    speedup_compacted = t_journal / t_compacted
    speedup_sqlite = t_journal / t_sqlite
    results = {
        "generated_by": "benchmarks/bench_storage.py",
        "config": {
            "live_trials": N_LIVE,
            "journal_records": n_records,
            "rewrites_per_trial": REWRITES,
            "append_sample": N_APPENDS,
        },
        "load_seconds": {
            "journal_10k_history": round(t_journal, 6),
            "compacted_journal": round(t_compacted, 6),
            "sqlite": round(t_sqlite, 6),
        },
        "load_speedup_vs_journal": {
            "compacted_journal": round(speedup_compacted, 2),
            "sqlite": round(speedup_sqlite, 2),
        },
        "append_records_per_s": {k: round(v, 1) for k, v in append_rates.items()},
    }
    out_path = output_dir / "BENCH_storage.json"
    existing = json.loads(out_path.read_text()) if out_path.exists() else {}
    existing["storage"] = results
    out_path.write_text(json.dumps(existing, indent=2) + "\n")

    report = (
        f"storage bench ({n_records}-record journal, {N_LIVE} live trials):\n"
        f"  load journal        : {t_journal * 1e3:8.1f} ms\n"
        f"  load compacted      : {t_compacted * 1e3:8.1f} ms  ({speedup_compacted:5.1f}x)\n"
        f"  load sqlite         : {t_sqlite * 1e3:8.1f} ms  ({speedup_sqlite:5.1f}x)\n"
        f"  append journal      : {append_rates['journal']:8.0f} rec/s\n"
        f"  append sqlite       : {append_rates['sqlite']:8.0f} rec/s\n"
        f"  append memory       : {append_rates['memory']:8.0f} rec/s\n"
    )
    print("\n" + report)
    return {
        "paths": {"raw": raw_path, "compacted": compacted_path, "sqlite": sqlite_path},
        "speedups": {"compacted": speedup_compacted, "sqlite": speedup_sqlite},
        "report": report,
    }


def test_backends_replay_identically(measurements):
    """Raw journal, compacted journal, and sqlite hold the same live state."""
    paths = measurements["paths"]
    assert (
        JournalStorage(paths["raw"]).load_study(STUDY).trials_by_number
        == JournalStorage(paths["compacted"]).load_study(STUDY).trials_by_number
        == SQLiteStorage(paths["sqlite"]).load_study(STUDY).trials_by_number
    )


@pytest.mark.bench
def test_storage_load_speedup_gate(measurements):
    """The storage layer's point: resume/status stop paying O(history).

    Generous 2x floor (observed ~10x) keeps this stable on loaded
    machines; wall-clock assertion, hence the opt-in ``bench`` marker.
    """
    speedups = measurements["speedups"]
    assert speedups["compacted"] >= 2.0, measurements["report"]
    assert speedups["sqlite"] >= 2.0, measurements["report"]
