"""Fidelity-ladder racing: cheap physics screens, full physics certifies.

The perf point of the fidelity ladder (DESIGN.md §11): on a 10-member
Houston ensemble (five weather years × two dunkelflaute severities), a
363-candidate sweep raced up ``fidelity=lo,mid,full`` × ``rungs=3,full``
must

* reproduce the ladder-top (perez + sapm + rainflow) Pareto front
  **bit-identically** — the envelope-widened domination proofs guarantee
  it, this bench *verifies* it;
* spend at least 2× fewer *full-physics* member evaluations than
  evaluating every candidate at full physics — a deterministic work
  metric, asserted unconditionally (calibration probes and the rescue
  races are charged against the ladder, not excused);
* add no pathological wall-clock overhead over the one-shot full
  sweep — asserted behind the opt-in ``bench`` marker (wall-clock is
  noisy on loaded single-CPU boxes), and included in every ``make
  bench`` pass.  The in-process dispatch kernel costs the same at
  every fidelity level, so the ladder's wall-clock is a wash *here*;
  the saved full-physics evals are the win wherever the ladder-top
  rung is the expensive one (launcher-fanned slices, co-simulation).

Machine-readable headlines land in ``benchmarks/output/BENCH_fidelity.json``
for ``check_regression.py``; the headline number is
``full_evals_saved_factor`` — full-physics member-evals the ladder
avoided, as a multiple of the work it did pay.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.ensemble import EnsembleSpec, build_ensemble, evaluate_ensemble
from repro.core.fidelity import FidelityLadder, fidelity_race_front, sibling_stack
from repro.core.pareto import pareto_front
from repro.core.parameterspace import ParameterSpace
from repro.core.racing import RungSchedule

#: 10 members: 5 weather years × 2 dunkelflaute severities, three weeks
#: each.  Moderate on purpose — the rainflow SoC trace of the reference
#: full-physics sweep is O(candidates × members × steps) memory.
ENSEMBLE_SPEC = EnsembleSpec.parse(
    "years=2020-2024,severity=1.0:1.5",
    sites=("houston",),
    n_hours=24 * 21,
)

#: 11 turbine × 11 solar × 3 battery levels = 363 candidates.
SPACE = ParameterSpace(max_turbines=10, max_solar_increments=10, max_battery_units=2)

LADDER = FidelityLadder.parse("fidelity=lo,mid,full")
SCHEDULE = RungSchedule.parse("rungs=3,full")
AGGREGATE = "worst"


@pytest.fixture(scope="module")
def ensemble():
    return build_ensemble(ENSEMBLE_SPEC)


def _front_key(front):
    return {(e.composition, e.objectives()) for e in front}


def _time_both(ensemble, comps):
    full_stack = sibling_stack(ensemble, "full")
    start = time.perf_counter()
    full = evaluate_ensemble(full_stack, comps, aggregate=AGGREGATE)
    t_full = time.perf_counter() - start

    start = time.perf_counter()
    laddered_front, outcome = fidelity_race_front(
        ensemble, comps, ladder=LADDER, schedule=SCHEDULE, aggregate=AGGREGATE
    )
    t_laddered = time.perf_counter() - start
    return full, t_full, laddered_front, t_laddered, outcome


def test_fidelity_front_bit_identical_with_2x_fewer_full_evals(ensemble, output_dir):
    comps = SPACE.all_compositions()
    full, t_full, laddered_front, t_laddered, outcome = _time_both(ensemble, comps)

    assert _front_key(pareto_front(full)) == _front_key(laddered_front), (
        "fidelity-raced Pareto front differs from the full-physics front"
    )

    stats = outcome.stats
    assert stats.savings >= 2.0, (
        f"fidelity ladder only cut full-physics member-evals {stats.savings:.2f}x "
        f"({stats.member_evals} of {stats.full_member_evals})"
    )
    assert stats.screened > 0, (
        "no candidate was screened at cheap physics — the ladder is vacuous"
    )

    n_steps = ensemble[0].n_steps
    speedup = t_full / t_laddered if t_laddered > 0 else float("inf")
    saved_factor = stats.savings
    report = (
        f"fidelity benchmark ({len(comps)} candidates x {len(ensemble)} members "
        f"x {n_steps} steps, {LADDER.spec_string()} x {SCHEDULE.spec_string()}, "
        f"aggregate={AGGREGATE}):\n"
        f"  full physics        : {t_full:6.2f} s "
        f"({stats.full_member_evals} member-evals)\n"
        f"  fidelity-laddered   : {t_laddered:6.2f} s "
        f"({stats.member_evals} full + {stats.low_fidelity_evals} cheap member-evals)\n"
        f"  full-evals saved    : {saved_factor:.2f}x "
        f"({stats.screened} of {stats.candidates} candidates screened "
        f"entirely at cheap physics)\n"
        f"  pruned / promoted   : {stats.pruned} / {stats.promoted_back}\n"
        f"  wall-clock speedup  : {speedup:5.2f}x\n"
        f"  front bit-identical : yes ({len(laddered_front)} points)\n"
    )
    print("\n" + report)
    (output_dir / "fidelity_ladder.txt").write_text(report)
    (output_dir / "BENCH_fidelity.json").write_text(
        json.dumps(
            {
                "fidelity": {
                    "generated_by": "benchmarks/bench_fidelity.py",
                    "config": {
                        "candidates": len(comps),
                        "members": len(ensemble),
                        "steps": n_steps,
                        "ladder": LADDER.spec_string(),
                        "schedule": SCHEDULE.spec_string(),
                        "aggregate": AGGREGATE,
                    },
                    "member_evals": stats.member_evals,
                    "full_member_evals": stats.full_member_evals,
                    "low_fidelity_evals": stats.low_fidelity_evals,
                    "full_evals_saved_factor": round(saved_factor, 2),
                    "screened": stats.screened,
                    "pruned": stats.pruned,
                    "promoted_back": stats.promoted_back,
                    "full_seconds": round(t_full, 3),
                    "laddered_seconds": round(t_laddered, 3),
                    "wallclock_speedup": round(speedup, 2),
                    "front_size": len(laddered_front),
                    "front_bit_identical": True,
                }
            },
            indent=2,
        )
        + "\n"
    )


@pytest.mark.bench
def test_fidelity_wallclock_overhead_bounded(ensemble):
    """Screening + calibration + rescue must not swamp the evaluation:
    the laddered pass stays within 1.5× of the one-shot full sweep."""
    comps = SPACE.all_compositions()
    _time_both(ensemble, comps)  # warm caches and the allocator
    _, t_full, _, t_laddered, _ = _time_both(ensemble, comps)
    ratio = t_laddered / t_full if t_full > 0 else 0.0
    assert ratio <= 1.5, (
        f"fidelity ladder overhead {ratio:.2f}x the full sweep "
        f"({t_full:.2f}s full, {t_laddered:.2f}s laddered)"
    )
