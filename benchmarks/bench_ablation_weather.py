"""Ablation A4 — extreme-weather events and temporal resolution.

Two substrate design choices that shape the headline results:

* **dunkelflaute on/off** — the coordinated multi-day low-wind/low-sun
  events are what make the near-zero tail of the Pareto front expensive
  (DESIGN.md).  Removing them must visibly cheapen high coverage:
  the embodied cost of reaching 99 % coverage drops.
* **temporal resolution** — the paper stresses minutely-capable
  co-simulation.  We run one composition at hourly vs 15-minute vs
  5-minute steps through the co-simulator (piecewise-constant signals)
  and check aggregate metrics converge — hourly is adequate for annual
  carbon accounting, which justifies the hourly sweeps.
"""

import numpy as np
import pytest

from repro.core.composition import MicrogridComposition
from repro.core.evaluator import CompositionEvaluator
from repro.core.pareto import pareto_front
from repro.core.scenario import build_scenario
from repro.core.study_runner import run_exhaustive_search


def _embodied_for_coverage(result, target=0.99) -> float:
    """Cheapest embodied cost reaching the target coverage."""
    reaching = [e for e in result.evaluated if e.metrics.coverage >= target]
    return min(e.embodied_tonnes for e in reaching) if reaching else float("inf")


@pytest.mark.benchmark(group="ablation-weather")
def test_dunkelflaute_ablation(benchmark, houston_exhaustive, output_dir):
    def sweep_without_events():
        scenario = build_scenario("houston", include_extreme_events=False)
        return run_exhaustive_search(scenario)

    calm_result = benchmark.pedantic(sweep_without_events, rounds=1, iterations=1)

    with_events = _embodied_for_coverage(houston_exhaustive)
    without_events = _embodied_for_coverage(calm_result)
    line = (
        f"embodied tCO2 to reach 99% coverage: with dunkelflaute {with_events:,.0f}, "
        f"without {without_events:,.0f}"
    )
    print("\n" + line)
    with (output_dir / "ablation_weather.txt").open("a") as fh:
        fh.write(line + "\n")

    # The doldrums are what make deep coverage expensive.
    assert without_events < with_events
    assert with_events / without_events > 1.15
    # The front tail flattens without them: cheaper near-zero operational.
    calm_tail = pareto_front(calm_result.evaluated)[-1]
    real_tail = pareto_front(houston_exhaustive.evaluated)[-1]
    assert calm_tail.operational_tco2_per_day <= real_tail.operational_tco2_per_day + 1e-9


@pytest.mark.benchmark(group="ablation-weather")
@pytest.mark.parametrize("dt_s", [3_600.0, 900.0, 300.0])
def test_resolution_convergence(benchmark, dt_s, output_dir):
    """Co-simulate 30 days at different step sizes; aggregates converge."""
    scenario = build_scenario("houston", n_hours=24 * 30)
    comp = MicrogridComposition.from_mw(9.0, 8.0, 22.5)
    evaluator = CompositionEvaluator(scenario)
    microgrid = evaluator.build_microgrid(comp)

    from repro.cosim import CoSimEnvironment, GridConnection, MicrogridSimulator, Monitor, TraceSignal

    def run():
        mg = evaluator.build_microgrid(comp)
        grid = GridConnection(TraceSignal(scenario.carbon.as_timeseries()))
        env = CoSimEnvironment()
        env.add_simulator(MicrogridSimulator(mg, dt_s=dt_s, grid=grid))
        env.run_until(scenario.n_steps * 3_600.0)
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)

    emissions_t = grid.emissions_kg / 1_000.0
    line = f"dt={dt_s:>6.0f}s: operational {emissions_t:8.2f} tCO2 / 30 days"
    print("\n" + line)
    with (output_dir / "ablation_weather.txt").open("a") as fh:
        fh.write(line + "\n")

    # Convergence: sub-hourly runs stay within 2 % of the hourly result
    # (signals are hourly piecewise-constant; only battery-limit timing
    # can differ).
    global _hourly_emissions
    if dt_s == 3_600.0:
        _hourly_emissions = emissions_t
    else:
        assert emissions_t == pytest.approx(_hourly_emissions, rel=0.02)
