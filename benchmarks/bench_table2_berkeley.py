"""Table 2 — Berkeley candidate solutions (protocol as Table 1)."""

import pytest

from repro.analysis.tables import candidate_table, format_table
from repro.core.candidates import paper_candidates
from repro.core.fastsim import BatchEvaluator
from repro.core.parameterspace import PAPER_SPACE


@pytest.mark.benchmark(group="table2")
def test_table2_berkeley(benchmark, berkeley, output_dir):
    compositions = PAPER_SPACE.all_compositions()
    evaluator = BatchEvaluator(berkeley)

    evaluated = benchmark.pedantic(
        evaluator.evaluate, args=(compositions,), rounds=2, iterations=1
    )

    candidates = paper_candidates(evaluated)
    rows = candidate_table(candidates)
    table = format_table(rows, title="Table 2 (reproduced): Berkeley candidate solutions")
    print("\n" + table)

    # Side-by-side check on the paper's exact compositions.
    from repro.analysis.paper_refs import PAPER_TABLE2_BERKELEY, reproduction_scorecard

    scorecard = reproduction_scorecard(PAPER_TABLE2_BERKELEY, evaluator, "berkeley")
    print("\n" + scorecard)
    (output_dir / "table2_berkeley.txt").write_text(table + "\n\n" + scorecard + "\n")

    assert len(rows) == 5
    # Baseline (paper: 9.33 tCO2/day — CAISO is cleaner than ERCOT).
    assert rows[0]["operational_tco2_day"] == pytest.approx(9.33, abs=0.15)
    # Paper: the <5 000 t composition cuts emissions by over 50 %.
    ops = [r["operational_tco2_day"] for r in rows]
    assert ops[1] < 0.55 * ops[0]
    # Berkeley reaches ~99.5 % coverage within ~14 000 tCO2 (paper row 4).
    assert rows[3]["coverage_pct"] > 95.0
    assert rows[3]["embodied_tco2"] <= 15_000
    # Unconstrained best near zero (paper: 0.02 tCO2/day).
    assert ops[-1] < 0.15
