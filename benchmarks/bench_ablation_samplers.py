"""Ablation A2 — sampler comparison at equal trial budget.

§4.4 motivates NSGA-II; this ablation quantifies the choice against
Random and (simplified multi-objective) TPE at a 150-trial budget on the
Houston scenario, scoring each by Pareto recovery and hypervolume.
NSGA-II must not lose to Random.
"""

import numpy as np
import pytest

from repro.blackbox import NSGA2Sampler, RandomSampler, ScalarizationSampler, TPESampler
from repro.blackbox.multiobjective import hypervolume_2d, pareto_recovery_rate
from repro.core.pareto import pareto_points
from repro.core.study_runner import OptimizationRunner

N_TRIALS = 150
OBJECTIVES = ("operational", "embodied")

SAMPLERS = {
    "random": lambda: RandomSampler(seed=13),
    "tpe": lambda: TPESampler(seed=13, n_startup_trials=30),
    "chebyshev": lambda: ScalarizationSampler(seed=13, n_startup_trials=30),
    "nsga2": lambda: NSGA2Sampler(population_size=30, mutation_prob=0.5, seed=13),
}

_scores: dict[str, float] = {}


@pytest.mark.benchmark(group="ablation-samplers")
@pytest.mark.parametrize("name", ["random", "tpe", "chebyshev", "nsga2"])
def test_sampler_quality(benchmark, name, houston, houston_exhaustive, output_dir):
    def run():
        runner = OptimizationRunner(houston)
        return runner.run_blackbox(n_trials=N_TRIALS, sampler=SAMPLERS[name]())

    found = benchmark.pedantic(run, rounds=1, iterations=1)

    true_front = pareto_points(houston_exhaustive.front(OBJECTIVES), OBJECTIVES)
    found_points = pareto_points(found.evaluated, OBJECTIVES)
    recovery = pareto_recovery_rate(found_points, true_front, tol=0.01)
    ref = true_front.max(axis=0) * 1.1 + 1.0
    hv = hypervolume_2d(found_points, ref) / hypervolume_2d(true_front, ref)
    _scores[name] = hv

    line = (
        f"{name:>7}: trials {N_TRIALS}  unique sims {found.n_simulations:>4}"
        f"  recovery(1%) {recovery:.2f}  hv-ratio {hv:.3f}"
    )
    print("\n" + line)
    with (output_dir / "ablation_samplers.txt").open("a") as fh:
        fh.write(line + "\n")

    assert 0.0 <= recovery <= 1.0
    assert hv > 0.80  # any sensible sampler covers most of the volume
    if name == "nsga2" and "random" in _scores:
        assert _scores["nsga2"] >= _scores["random"] - 0.02
