"""Figure 3 — naive 20-year projection of total emissions per candidate.

Regenerates both panels (Houston, Berkeley): cumulative embodied +
operational emissions of the five Table-1/2 candidates, and checks the
paper's crossover findings (§4.2): the grid-only baseline becomes the
worst configuration after ≈7 years in Houston and ≈12 years in Berkeley.
"""

import pytest

from repro.analysis.figures import projection_series, write_csv
from repro.core.candidates import paper_candidates
from repro.core.projection import crossover_year, project_many


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize(
    "site,crossover_band",
    [("houston", (5.0, 9.5)), ("berkeley", (9.0, 15.0))],
)
def test_fig3_projection(benchmark, site, crossover_band, request, output_dir):
    result = request.getfixturevalue(f"{site}_exhaustive")
    candidates = paper_candidates(result.evaluated)

    projections = benchmark.pedantic(
        project_many, args=(candidates,), kwargs={"horizon_years": 20.0}, rounds=5
    )

    rows = projection_series(projections)
    write_csv(rows, output_dir / f"fig3_projection_{site}.csv")
    print(f"\nFigure 3 ({site}): cumulative tCO2")
    for proj in projections:
        print(
            f"  {proj.label:>16}: year0 {proj.total_tco2[0]:>9,.0f}"
            f"  year10 {proj.at_year(10.0):>10,.0f}"
            f"  year20 {proj.total_tco2[-1]:>10,.0f}"
        )

    # Paper claims:
    baseline, largest = projections[0], projections[-1]
    # 1. every line starts at its embodied cost,
    assert baseline.total_tco2[0] == 0.0
    assert largest.total_tco2[0] == pytest.approx(39_380.0, rel=0.01)
    # 2. the baseline overtakes the full build-out inside the site's band,
    year = crossover_year(baseline, largest)
    lo, hi = crossover_band
    assert year is not None and lo <= year <= hi, f"crossover at {year}"
    # 3. the full build-out is NOT the 20-year optimum (mid candidates win).
    mid_totals = [p.total_tco2[-1] for p in projections[1:-1]]
    assert min(mid_totals) < largest.total_tco2[-1]
