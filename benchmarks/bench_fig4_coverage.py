"""Figure 4 — on-site renewable coverage over (solar, wind), no battery,
Houston.

Regenerates the coverage surface on the paper's axes (solar 0–40 MW,
wind 0–30 MW) and checks its shape: monotone growth with diminishing
returns, and a "sweet spot" region where small investments buy large
coverage gains.  The benchmark measures the vectorized 11×11 surface
computation.
"""

import numpy as np
import pytest

from repro.analysis.figures import ascii_heatmap, coverage_heatmap_series, write_csv
from repro.core.fastsim import coverage_grid

SOLAR_LEVELS_KW = [i * 4_000.0 for i in range(11)]
WIND_LEVELS = list(range(11))


@pytest.mark.benchmark(group="fig4")
def test_fig4_coverage_surface(benchmark, houston, output_dir):
    grid = benchmark.pedantic(
        coverage_grid, args=(houston, SOLAR_LEVELS_KW, WIND_LEVELS), rounds=3
    )

    rows = coverage_heatmap_series(SOLAR_LEVELS_KW, WIND_LEVELS, grid)
    write_csv(rows, output_dir / "fig4_coverage_houston.csv")
    art = ascii_heatmap(
        grid * 100.0,
        row_labels=[f"{s/1000:.0f}MW" for s in SOLAR_LEVELS_KW],
        col_labels=[f"{3*k}" for k in WIND_LEVELS],
        title="Figure 4 (reproduced): coverage [%], rows=solar, cols=wind MW (Houston)",
    )
    print("\n" + art)

    assert grid.shape == (11, 11)
    # Zero composition → zero coverage; max composition → high but <100 %.
    assert grid[0, 0] == 0.0
    assert 0.6 < grid[-1, -1] < 0.97
    # Monotone non-decreasing along both axes (more capacity never hurts).
    assert np.all(np.diff(grid, axis=0) >= -1e-9)
    assert np.all(np.diff(grid, axis=1) >= -1e-9)
    # Diminishing returns along wind at zero solar (paper: "diminishing
    # returns at higher deployment levels").
    wind_gains = np.diff(grid[0, :])
    assert wind_gains[0] > 3.0 * max(wind_gains[-1], 1e-6)
    # Wind is the stronger Houston axis: 30 MW wind alone beats 40 MW solar
    # alone (wind CF ≈ 0.40 vs solar ≈ 0.15, and wind also serves nights).
    assert grid[0, -1] > grid[-1, 0]
