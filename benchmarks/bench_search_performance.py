"""§4.4 — search performance: NSGA-II vs exhaustive baseline.

The paper: the exhaustive baseline evaluates all 1 089 combinations
(>24 h of co-simulation); the black-box search uses 350 trials with
population 50 under NSGA-II, recovers ≈80 % of the Pareto-optimal
solutions, and yields a ≈2.4× speed-up.

Here the same protocol runs in seconds thanks to the vectorized batch
evaluator; the *relative* comparison is what the bench reproduces:

* trial budget 350 / space 1 089 ≈ 3.1× fewer nominal evaluations,
* unique simulations (the GA revisits elites) gives the effective
  speed-up,
* recovery is reported strictly (exact composition found) and with a 1 %
  objective-space tolerance (near-optimal counted as recovered — the
  looser reading under which the paper's ≈80 % falls out of our runs).
"""

import numpy as np
import pytest

from repro.blackbox import NSGA2Sampler
from repro.blackbox.multiobjective import pareto_recovery_rate
from repro.core.pareto import pareto_points
from repro.core.study_runner import OptimizationRunner

N_TRIALS = 350
POPULATION = 50


@pytest.mark.benchmark(group="search")
def test_search_performance(benchmark, houston, houston_exhaustive, output_dir):
    def run_nsga2(seed: int = 42):
        runner = OptimizationRunner(houston)
        return runner, runner.run_blackbox(
            n_trials=N_TRIALS,
            sampler=NSGA2Sampler(population_size=POPULATION, mutation_prob=0.5, seed=seed),
        )

    runner, found = benchmark.pedantic(run_nsga2, rounds=1, iterations=1)

    objectives = ("operational", "embodied")
    true_front = pareto_points(houston_exhaustive.front(objectives), objectives)
    found_points = pareto_points(found.evaluated, objectives)

    strict = pareto_recovery_rate(found_points, true_front)
    tolerant = pareto_recovery_rate(found_points, true_front, tol=0.01)
    speedup_nominal = len(houston_exhaustive.evaluated) / N_TRIALS
    speedup_effective = len(houston_exhaustive.evaluated) / found.n_simulations

    report = (
        f"search performance (Houston):\n"
        f"  exhaustive evaluations : {len(houston_exhaustive.evaluated)}\n"
        f"  NSGA-II trials         : {N_TRIALS} (population {POPULATION})\n"
        f"  unique simulations     : {found.n_simulations}\n"
        f"  Pareto recovery strict : {strict:.2f}\n"
        f"  Pareto recovery (1 %)  : {tolerant:.2f}\n"
        f"  speed-up nominal       : {speedup_nominal:.2f}x (paper: ~2.4x)\n"
        f"  speed-up effective     : {speedup_effective:.2f}x\n"
    )
    print("\n" + report)
    (output_dir / "search_performance.txt").write_text(report)

    # Paper-shape assertions:
    assert found.n_simulations < len(houston_exhaustive.evaluated) / 2
    assert speedup_nominal > 2.4 - 0.5
    assert strict > 0.35
    assert tolerant > 0.65  # ≈0.8 typical; loose floor for seed robustness
    # The found front must be a good approximation in hypervolume terms too.
    from repro.blackbox.multiobjective import hypervolume_2d

    ref = np.array([true_front[:, 0].max() * 1.1 + 1.0, true_front[:, 1].max() * 1.1 + 1.0])
    hv_true = hypervolume_2d(true_front, ref)
    hv_found = hypervolume_2d(found_points, ref)
    assert hv_found > 0.95 * hv_true
