"""Dispatch-engine throughput: N candidates × S scenarios × any policy.

The first perf-trajectory point for the vectorized dispatch layer
(DESIGN.md §5).  Two protocols:

1. **Stacked vs serial** — evaluate the paper's full 1 089-candidate
   space against both paper scenarios, once as two serial
   ``BatchEvaluator`` sweeps and once as a single stacked 2 × 1 089
   time loop.  The stacked results must match the serial ones
   *bit-for-bit* (each (scenario, candidate) cell is an independent
   column), and the bench records the candidate·scenario·step
   throughput plus the wall-clock speedup of amortizing the Python
   time loop across scenarios.

2. **Policy sweep** — the same tensor under every registered dispatch
   policy, demonstrating that alternative operating strategies now run
   at batch speed instead of the ~400× co-simulation path.

3. **Engine comparison** — the same workload through every available
   dispatch engine (DESIGN.md §9).  Bitwise equality of all eight
   accumulators is asserted *unconditionally*; the cells-per-second
   headline lands in ``benchmarks/output/BENCH_dispatch.json`` for
   ``check_regression.py``.  The wall-clock ratio assertion is opt-in
   (``bench`` marker): on low-core CI-class machines the numpy loop is
   already near compute-bound and segments delivers ~2×, so the guarded
   floor is 1.5× while the JSON records the 3×/10× targets for hosts
   where interpreter overhead dominates (and for the numba CI leg).
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core import kernel
from repro.core.dispatch import POLICY_NAMES, make_policy, run_dispatch, stack_scenarios
from repro.core.fastsim import (
    BatchEvaluator,
    _candidate_vectors,
    evaluate_across_scenarios,
)
from repro.core.metrics import COMPARABLE_METRIC_FIELDS as METRIC_FIELDS
from repro.core.parameterspace import PAPER_SPACE
from repro.sam.batterymodels.clc import CLCParameters

RESULT_FIELDS = (
    "import_wh",
    "export_wh",
    "charge_wh",
    "discharge_wh",
    "unserved_wh",
    "emissions_kg",
    "cost_usd",
    "islanded_steps",
)

#: speedup-vs-loop targets on hosts where interpreter overhead dominates
ENGINE_TARGETS = {"segments": 3.0, "njit": 10.0}
#: opt-in wall-clock floor for segments on noisy CI-class machines
SEGMENTS_WALLCLOCK_FLOOR = 1.5


def test_stacked_tensor_matches_serial_bit_for_bit(houston, berkeley, output_dir):
    scenarios = [houston, berkeley]
    comps = PAPER_SPACE.all_compositions()

    start = time.perf_counter()
    serial = [BatchEvaluator(sc).evaluate(comps) for sc in scenarios]
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    stacked = evaluate_across_scenarios(scenarios, comps)
    t_stacked = time.perf_counter() - start

    mismatches = 0
    for s in range(len(scenarios)):
        for e_serial, e_stacked in zip(serial[s], stacked[s]):
            for name in METRIC_FIELDS:
                if getattr(e_serial.metrics, name) != getattr(e_stacked.metrics, name):
                    mismatches += 1
    assert mismatches == 0, f"{mismatches} metric values differ from serial evaluation"

    cells = len(comps) * len(scenarios) * houston.n_steps
    speedup = t_serial / t_stacked if t_stacked > 0 else float("inf")
    report = (
        f"dispatch tensor benchmark ({len(comps)} candidates x {len(scenarios)} "
        f"scenarios x {houston.n_steps} steps):\n"
        f"  serial per-scenario : {t_serial:6.2f} s "
        f"({cells / t_serial / 1e6:6.1f} M cell-steps/s)\n"
        f"  stacked tensor      : {t_stacked:6.2f} s "
        f"({cells / t_stacked / 1e6:6.1f} M cell-steps/s)\n"
        f"  stacking speedup    : {speedup:5.2f}x\n"
        f"  bit-for-bit         : yes ({len(METRIC_FIELDS)} metrics x "
        f"{len(comps) * len(scenarios)} evaluations)\n"
    )
    print("\n" + report)
    (output_dir / "dispatch_tensor.txt").write_text(report)

    # Stacking amortizes the Python-level time loop; the load-bearing
    # assertion above is bit-for-bit equality — wall-clock on a busy
    # single-CPU container is noisy, so only guard against a real
    # regression to something slower than per-scenario looping.
    assert speedup > 0.7, f"stacked loop slower than serial ({speedup:.2f}x)"


def test_policy_sweep_throughput(houston, berkeley, output_dir):
    scenarios = [houston, berkeley]
    comps = PAPER_SPACE.all_compositions()
    lines = [
        f"policy sweep ({len(comps)} candidates x {len(scenarios)} scenarios, full year):"
    ]
    for name in POLICY_NAMES:
        policy = make_policy(name, scenarios)
        start = time.perf_counter()
        per_scenario = evaluate_across_scenarios(scenarios, comps, policy=policy)
        elapsed = time.perf_counter() - start
        worst_cov = min(
            e.metrics.coverage for row in per_scenario for e in row[-1:]
        )
        lines.append(
            f"  {name:>14}: {elapsed:6.2f} s   "
            f"(max-buildout worst-site coverage {worst_cov * 100:5.1f} %)"
        )
    report = "\n".join(lines) + "\n"
    print("\n" + report)
    (output_dir / "dispatch_policies.txt").write_text(report)


def _available_engines() -> "list[str]":
    return ["loop", "segments"] + (["njit"] if kernel.HAS_NUMBA else [])


def _time_engines(houston, berkeley, reps: int = 2):
    """Interleaved engine timing on the paper's full workload.

    Alternating engines inside each repetition cancels slow machine-load
    drift; ``min`` over repetitions discards transient contention.
    """
    stack = stack_scenarios([houston, berkeley])
    comps = PAPER_SPACE.all_compositions()
    solar_kw, turb_eff, capacity_wh = _candidate_vectors(comps)
    params = CLCParameters(capacity_wh=1.0)
    engines = _available_engines()

    def run(engine):
        return run_dispatch(
            stack, solar_kw, turb_eff, capacity_wh, params, engine=engine
        )

    if "njit" in engines:
        run("njit")  # compile outside the timed region
    times = {e: [] for e in engines}
    results = {}
    for _ in range(reps):
        for engine in engines:
            start = time.perf_counter()
            results[engine] = run(engine)
            times[engine].append(time.perf_counter() - start)
    cells = len(comps) * stack.n_scenarios * stack.n_steps
    return stack, comps, results, {e: min(ts) for e, ts in times.items()}, cells


def test_engine_comparison_bit_identical_with_headline(houston, berkeley, output_dir):
    stack, comps, results, best, cells = _time_engines(houston, berkeley)

    # The load-bearing assertion, unconditional: every compiled engine
    # reproduces the reference loop bit-for-bit on all 8 accumulators.
    for engine, res in results.items():
        if engine == "loop":
            continue
        for name in RESULT_FIELDS:
            np.testing.assert_array_equal(
                getattr(res, name),
                getattr(results["loop"], name),
                err_msg=f"engine {engine!r} field {name!r} not bit-identical",
            )

    speedups = {e: best["loop"] / best[e] for e in best if e != "loop"}
    lines = [
        f"dispatch engine comparison ({len(comps)} candidates x "
        f"{stack.n_scenarios} scenarios x {stack.n_steps} steps):"
    ]
    for engine in best:
        note = (
            ""
            if engine == "loop"
            else f"   ({speedups[engine]:4.2f}x vs loop, target "
            f"{ENGINE_TARGETS[engine]:.0f}x)"
        )
        lines.append(
            f"  {engine:>8}: {best[engine]:6.2f} s "
            f"({cells / best[engine] / 1e6:6.1f} M cell-steps/s){note}"
        )
    if not kernel.HAS_NUMBA:
        lines.append("  njit    : skipped (numba not installed; CI numba leg)")
    lines.append(f"  bit-for-bit: yes ({len(RESULT_FIELDS)} accumulators per engine)")
    report = "\n".join(lines) + "\n"
    print("\n" + report)
    (output_dir / "dispatch_engines.txt").write_text(report)
    (output_dir / "BENCH_dispatch.json").write_text(
        json.dumps(
            {
                "dispatch": {
                    "generated_by": "benchmarks/bench_dispatch.py",
                    "config": {
                        "candidates": len(comps),
                        "scenarios": stack.n_scenarios,
                        "steps": stack.n_steps,
                        "numba": kernel.HAS_NUMBA,
                    },
                    "cells_per_s": {
                        e: round(cells / best[e], 1) for e in best
                    },
                    "speedup_vs_loop": {
                        e: round(v, 2) for e, v in speedups.items()
                    },
                    "speedup_targets": ENGINE_TARGETS,
                    "bit_identical": True,
                }
            },
            indent=2,
        )
        + "\n"
    )


@pytest.mark.bench
def test_segments_engine_wallclock_speedup(houston, berkeley):
    _time_engines(houston, berkeley, reps=1)  # warm caches and the allocator
    _, _, _, best, _ = _time_engines(houston, berkeley)
    ratio = best["loop"] / best["segments"]
    assert ratio >= SEGMENTS_WALLCLOCK_FLOOR, (
        f"segments engine only {ratio:.2f}x faster than the loop "
        f"({best['loop']:.2f}s loop, {best['segments']:.2f}s segments)"
    )
    if kernel.HAS_NUMBA:
        njit_ratio = best["loop"] / best["njit"]
        assert njit_ratio >= 3.0, (
            f"njit engine only {njit_ratio:.2f}x faster than the loop"
        )
