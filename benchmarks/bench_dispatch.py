"""Dispatch-engine throughput: N candidates × S scenarios × any policy.

The first perf-trajectory point for the vectorized dispatch layer
(DESIGN.md §5).  Two protocols:

1. **Stacked vs serial** — evaluate the paper's full 1 089-candidate
   space against both paper scenarios, once as two serial
   ``BatchEvaluator`` sweeps and once as a single stacked 2 × 1 089
   time loop.  The stacked results must match the serial ones
   *bit-for-bit* (each (scenario, candidate) cell is an independent
   column), and the bench records the candidate·scenario·step
   throughput plus the wall-clock speedup of amortizing the Python
   time loop across scenarios.

2. **Policy sweep** — the same tensor under every registered dispatch
   policy, demonstrating that alternative operating strategies now run
   at batch speed instead of the ~400× co-simulation path.
"""

from __future__ import annotations

import time

from repro.core.dispatch import POLICY_NAMES, make_policy
from repro.core.fastsim import BatchEvaluator, evaluate_across_scenarios
from repro.core.metrics import COMPARABLE_METRIC_FIELDS as METRIC_FIELDS
from repro.core.parameterspace import PAPER_SPACE


def test_stacked_tensor_matches_serial_bit_for_bit(houston, berkeley, output_dir):
    scenarios = [houston, berkeley]
    comps = PAPER_SPACE.all_compositions()

    start = time.perf_counter()
    serial = [BatchEvaluator(sc).evaluate(comps) for sc in scenarios]
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    stacked = evaluate_across_scenarios(scenarios, comps)
    t_stacked = time.perf_counter() - start

    mismatches = 0
    for s in range(len(scenarios)):
        for e_serial, e_stacked in zip(serial[s], stacked[s]):
            for name in METRIC_FIELDS:
                if getattr(e_serial.metrics, name) != getattr(e_stacked.metrics, name):
                    mismatches += 1
    assert mismatches == 0, f"{mismatches} metric values differ from serial evaluation"

    cells = len(comps) * len(scenarios) * houston.n_steps
    speedup = t_serial / t_stacked if t_stacked > 0 else float("inf")
    report = (
        f"dispatch tensor benchmark ({len(comps)} candidates x {len(scenarios)} "
        f"scenarios x {houston.n_steps} steps):\n"
        f"  serial per-scenario : {t_serial:6.2f} s "
        f"({cells / t_serial / 1e6:6.1f} M cell-steps/s)\n"
        f"  stacked tensor      : {t_stacked:6.2f} s "
        f"({cells / t_stacked / 1e6:6.1f} M cell-steps/s)\n"
        f"  stacking speedup    : {speedup:5.2f}x\n"
        f"  bit-for-bit         : yes ({len(METRIC_FIELDS)} metrics x "
        f"{len(comps) * len(scenarios)} evaluations)\n"
    )
    print("\n" + report)
    (output_dir / "dispatch_tensor.txt").write_text(report)

    # Stacking amortizes the Python-level time loop; the load-bearing
    # assertion above is bit-for-bit equality — wall-clock on a busy
    # single-CPU container is noisy, so only guard against a real
    # regression to something slower than per-scenario looping.
    assert speedup > 0.7, f"stacked loop slower than serial ({speedup:.2f}x)"


def test_policy_sweep_throughput(houston, berkeley, output_dir):
    scenarios = [houston, berkeley]
    comps = PAPER_SPACE.all_compositions()
    lines = [
        f"policy sweep ({len(comps)} candidates x {len(scenarios)} scenarios, full year):"
    ]
    for name in POLICY_NAMES:
        policy = make_policy(name, scenarios)
        start = time.perf_counter()
        per_scenario = evaluate_across_scenarios(scenarios, comps, policy=policy)
        elapsed = time.perf_counter() - start
        worst_cov = min(
            e.metrics.coverage for row in per_scenario for e in row[-1:]
        )
        lines.append(
            f"  {name:>14}: {elapsed:6.2f} s   "
            f"(max-buildout worst-site coverage {worst_cov * 100:5.1f} %)"
        )
    report = "\n".join(lines) + "\n"
    print("\n" + report)
    (output_dir / "dispatch_policies.txt").write_text(report)
