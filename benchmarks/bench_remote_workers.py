"""Remote worker fleets over the lease protocol: evaluation scaling.

The perf-trajectory point for cluster-scale search (DESIGN.md §13).  A
coordinator-side :class:`PipelinedDispatcher` publishes candidate
evaluations through a :class:`LeasedWorkQueue` registered on a
:class:`StudyService` behind the real stdlib HTTP server, and
:class:`RemoteWorkerClient` fleets drain it over actual HTTP — lease,
evaluate, ack — exactly the production `repro worker` path, with one
substitution: ``objective_override`` swaps the physics for a
deterministic **GIL-releasing sleeper**, so thread workers in one
process measure real evaluation concurrency (plus the full protocol
overhead) rather than CPU contention.

Headlines land in ``benchmarks/output/BENCH_remote.json`` for
``check_regression.py``: trials-per-second at one and two workers, and
the two-worker scaling factor.  The ≥1.5×-at-2-workers floor is opt-in
(``bench`` marker) so loaded CI machines skip rather than flake; the
fleet-size-invariance assertion — one worker and two workers produce
the *bit-identical* trial sequence, the §13 determinism claim — always
runs.

The sampler is deliberately :class:`RandomSampler`: with per-trial RNG
streams its params are a pure function of the trial number, so every
fleet size evaluates the *same* sleeps — the comparison measures the
lease transport alone, not sampling drift.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.blackbox.distributions import FloatDistribution
from repro.blackbox.parallel import PipelinedDispatcher
from repro.blackbox.samplers.random import RandomSampler
from repro.blackbox.study import Study
from repro.service import LeasedWorkQueue, RemoteWorkerClient, StudyService
from repro.service.http import make_server

N_TRIALS = 32
BATCH = 8
#: coordinator in-flight slots (`remote_slots` in production)
SLOTS = 4
SLEEP_S = 0.06
SEED = 11
LEASE_TTL_S = 30.0

SPACE = {"x": FloatDistribution(0.0, 1.0), "y": FloatDistribution(0.0, 1.0)}

#: opt-in floor for the headline metric (guarded by the bench marker)
SCALING_FLOOR = 1.5


def sleeper(params: dict) -> tuple[float, float]:
    """Deterministic fixed-cost objective; sleeping releases the GIL."""
    time.sleep(SLEEP_S)
    return (params["x"] ** 2 + params["y"], (params["x"] - 1.0) ** 2 + params["y"])


def _snapshot(study: Study) -> list:
    return [(t.number, dict(t.params), t.values) for t in study.trials]


def _run_fleet(n_workers: int) -> "tuple[Study, dict, float]":
    """One coordinated study drained by ``n_workers`` HTTP workers."""
    study = Study(directions=["minimize", "minimize"], sampler=RandomSampler(seed=SEED))
    queue = LeasedWorkQueue(ttl=LEASE_TTL_S)
    service = StudyService("memory://")
    service.register_work_queue("bench", queue)
    server = make_server(service)
    threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    ).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"

    clients = [
        RemoteWorkerClient(
            base, f"w{i}", poll_s=0.02, lease_limit=2, objective_override=sleeper
        )
        for i in range(n_workers)
    ]
    threads = [
        threading.Thread(target=c.run, kwargs={"max_idle": 200}, daemon=True)
        for c in clients
    ]
    dispatcher = PipelinedDispatcher(
        study, SPACE, workers=SLOTS, executor=queue, speculate=BATCH, batch_size=BATCH
    )
    try:
        for thread in threads:
            thread.start()
        start = time.perf_counter()
        dispatcher.optimize(sleeper, n_trials=N_TRIALS)
        elapsed = time.perf_counter() - start
        stats = queue.stats()
    finally:
        service.unregister_work_queue("bench")
        queue.shutdown(cancel_futures=True)
        server.shutdown()
        server.server_close()
        for thread in threads:
            thread.join(timeout=30.0)
    return study, stats, elapsed


@pytest.fixture(scope="module")
def remote_runs(output_dir):
    solo_study, solo_stats, t_solo = _run_fleet(1)
    duo_study, duo_stats, t_duo = _run_fleet(2)

    per_s = {1: N_TRIALS / t_solo, 2: N_TRIALS / t_duo}
    scaling = t_solo / t_duo if t_duo > 0 else float("inf")

    report = (
        f"remote worker benchmark ({N_TRIALS} trials x {SLEEP_S * 1000:.0f} ms, "
        f"{SLOTS} coordinator slots, real HTTP lease protocol):\n"
        f"  1 worker : {t_solo:6.2f} s ({per_s[1]:6.1f} trials/s)\n"
        f"  2 workers: {t_duo:6.2f} s ({per_s[2]:6.1f} trials/s, "
        f"{duo_stats['completed']} completed, "
        f"{duo_stats['reclaimed']} reclaimed)\n"
        f"  scaling  : {scaling:5.2f}x\n"
        f"  fleet-size invariant front: yes\n"
    )
    print("\n" + report)
    (output_dir / "remote_workers.txt").write_text(report)
    (output_dir / "BENCH_remote.json").write_text(
        json.dumps(
            {
                "remote": {
                    "generated_by": "benchmarks/bench_remote_workers.py",
                    "config": {
                        "trials": N_TRIALS,
                        "batch": BATCH,
                        "slots": SLOTS,
                        "sleep_s": SLEEP_S,
                        "lease_ttl_s": LEASE_TTL_S,
                    },
                    "seconds": {
                        "workers_1": round(t_solo, 3),
                        "workers_2": round(t_duo, 3),
                    },
                    "trials_per_s": {
                        "workers_1": round(per_s[1], 2),
                        "workers_2": round(per_s[2], 2),
                    },
                    "scaling_2_workers": round(scaling, 2),
                }
            },
            indent=2,
        )
        + "\n"
    )
    return {
        "solo": _snapshot(solo_study),
        "duo": _snapshot(duo_study),
        "solo_stats": solo_stats,
        "duo_stats": duo_stats,
        "scaling": scaling,
    }


def test_every_trial_is_evaluated_remotely(remote_runs):
    """All evaluation went through the lease protocol, none was lost."""
    for stats in (remote_runs["solo_stats"], remote_runs["duo_stats"]):
        assert stats["completed"] == N_TRIALS
        assert stats["queued"] == 0 and stats["leased"] == 0
    assert len(remote_runs["duo_stats"]["workers"]) == 2


def test_fleet_size_does_not_change_the_trials(remote_runs):
    """Always-on correctness gate: the §13 determinism claim — which
    worker evaluates a candidate is never an input to what it is."""
    assert remote_runs["solo"] == remote_runs["duo"]


@pytest.mark.bench
def test_two_workers_scale_evaluation(remote_runs):
    assert remote_runs["scaling"] >= SCALING_FLOOR, (
        f"two remote workers only {remote_runs['scaling']:.2f}x faster than "
        f"one (want ≥ {SCALING_FLOOR}x)"
    )
