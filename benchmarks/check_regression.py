"""Fail CI when a fresh bench pass regresses the committed headlines.

``benchmarks/run_all.py`` (``make bench``) rewrites the machine-readable
result files in ``benchmarks/output/`` on every pass; the *committed*
copies are the perf baseline each PR inherits.  This checker compares
the fresh working-tree numbers against that baseline and exits non-zero
on a >30 % throughput regression in any tracked metric, so the CI bench
job (non-blocking, ``.github/workflows/ci.yml``) turns silent slowdowns
into a visible red step with a named culprit.

Baselines come from ``git show <ref>:<path>`` by default (``make bench``
has already overwritten the working tree by the time this runs); pass
``--baseline DIR`` to compare against saved copies instead.  Missing
baselines — a brand-new bench file, a shallow checkout without git —
are reported and skipped rather than failed, so bootstrapping a new
benchmark never blocks the job that first records it.

Usage::

    make bench && make regression
    python benchmarks/check_regression.py --baseline-ref HEAD
    python benchmarks/check_regression.py --threshold 0.5
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO = BENCH_DIR.parent
OUTPUT = BENCH_DIR / "output"

#: tracked higher-is-better metrics: file -> JSON paths into it.  Only
#: throughputs and speedups belong here — wall-clock *durations* vary
#: with machine load in both directions and would be double-counted.
HEADLINE_METRICS: "dict[str, list[tuple[str, ...]]]" = {
    "BENCH_storage.json": [
        ("storage", "append_records_per_s", "journal"),
        ("storage", "append_records_per_s", "sqlite"),
        ("storage", "append_records_per_s", "memory"),
        ("storage", "load_speedup_vs_journal", "compacted_journal"),
        ("storage", "load_speedup_vs_journal", "sqlite"),
    ],
    "BENCH_racing.json": [
        ("racing", "full_cells_per_s"),
        ("racing", "raced_cells_per_s"),
        ("racing", "work_reduction"),
    ],
    # wall-clock is deliberately untracked for the fidelity ladder: the
    # in-process dispatch kernel costs the same at every level, so the
    # headline is the deterministic full-physics-evals-saved factor.
    "BENCH_fidelity.json": [
        ("fidelity", "full_evals_saved_factor"),
    ],
    # njit cells-per-second is deliberately untracked: the metric only
    # exists on numba-equipped hosts and would read as a bogus
    # regression wherever the baseline and the fresh run disagree on
    # numba availability.
    "BENCH_dispatch.json": [
        ("dispatch", "cells_per_s", "loop"),
        ("dispatch", "cells_per_s", "segments"),
        ("dispatch", "speedup_vs_loop", "segments"),
    ],
    "BENCH_pipeline.json": [
        ("pipeline", "wall_clock_speedup"),
        ("pipeline", "idle_reduction"),
    ],
    "BENCH_remote.json": [
        ("remote", "trials_per_s", "workers_1"),
        ("remote", "trials_per_s", "workers_2"),
        ("remote", "scaling_2_workers"),
    ],
}


def _lookup(blob: dict, path: "tuple[str, ...]") -> "float | None":
    node = blob
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _baseline_blob(name: str, ref: str, baseline_dir: "Path | None") -> "dict | None":
    if baseline_dir is not None:
        path = baseline_dir / name
        return json.loads(path.read_text()) if path.is_file() else None
    rel = (OUTPUT / name).relative_to(REPO)
    proc = subprocess.run(
        ["git", "show", f"{ref}:{rel.as_posix()}"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        metavar="REF",
        help="git ref holding the committed baseline files (default: HEAD)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="DIR",
        type=Path,
        help="directory of saved baseline JSON files (overrides --baseline-ref)",
    )
    parser.add_argument(
        "--threshold",
        default=0.30,
        type=float,
        metavar="FRACTION",
        help="maximum tolerated drop in any tracked metric (default: 0.30)",
    )
    args = parser.parse_args(argv)

    regressions: list[str] = []
    checked = 0
    for name, metrics in HEADLINE_METRICS.items():
        fresh_path = OUTPUT / name
        if not fresh_path.is_file():
            print(f"{name}: no fresh results (run `make bench` first) — skipped")
            continue
        fresh = json.loads(fresh_path.read_text())
        baseline = _baseline_blob(name, args.baseline_ref, args.baseline)
        if baseline is None:
            print(f"{name}: no committed baseline — skipped (new benchmark?)")
            continue
        for path in metrics:
            label = f"{name}:{'.'.join(path)}"
            old, new = _lookup(baseline, path), _lookup(fresh, path)
            if old is None or new is None or old <= 0:
                print(f"{label}: missing in {'baseline' if old is None else 'fresh run'} — skipped")
                continue
            checked += 1
            change = (new - old) / old
            verdict = "REGRESSION" if change < -args.threshold else "ok"
            print(f"{label}: {old:.1f} -> {new:.1f} ({change:+.1%}) {verdict}")
            if change < -args.threshold:
                regressions.append(f"{label} dropped {-change:.0%} (limit {args.threshold:.0%})")

    if regressions:
        print(f"\nFAILED: {len(regressions)} throughput regression(s):")
        for line in regressions:
            print(f"  - {line}")
        return 1
    print(f"\nok: {checked} headline metric(s) within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
