"""Extension bench — cost-vs-carbon trade-off (§4.3 "electricity cost
reduction" objective + SAM's financial layer).

Evaluates the full Houston space, prices every composition (CAPEX +
discounted O&M + discounted net grid bill) and extracts the
cost-vs-operational-carbon Pareto front: what decarbonization costs in
dollars, and whether any build is cheaper *and* cleaner than grid-only.
"""

import numpy as np
import pytest

from repro.analysis.figures import write_csv
from repro.blackbox.multiobjective import pareto_front_indices
from repro.core.finance import (
    CostParameters,
    cost_carbon_points,
    levelized_cost_usd_per_mwh,
    net_present_cost_usd,
)


@pytest.mark.benchmark(group="cost-carbon")
def test_cost_carbon_front(benchmark, houston_exhaustive, output_dir):
    evaluated = houston_exhaustive.evaluated
    params = CostParameters()

    points = benchmark.pedantic(
        cost_carbon_points, args=(evaluated,), kwargs={"params": params}, rounds=2
    )

    front_idx = pareto_front_indices(points)
    order = np.argsort(points[front_idx, 0])
    front_idx = front_idx[order]

    rows = [
        {
            "composition": evaluated[i].composition.label(),
            "npc_musd": round(points[i, 0] / 1e6, 2),
            "operational_tco2_day": round(points[i, 1], 3),
            "lcoe_usd_mwh": round(levelized_cost_usd_per_mwh(evaluated[i], params), 1),
        }
        for i in front_idx
    ]
    write_csv(rows, output_dir / "cost_carbon_front_houston.csv")
    print("\ncost-vs-carbon front (Houston):")
    for row in rows[:12]:
        print(
            f"  {row['composition']:>16}: NPC {row['npc_musd']:>7.1f} M$, "
            f"{row['operational_tco2_day']:>7.3f} tCO2/d, "
            f"LCOE {row['lcoe_usd_mwh']:>6.1f} $/MWh"
        )

    # Shape assertions:
    baseline_i = next(i for i, e in enumerate(evaluated) if e.composition.is_grid_only)
    baseline_cost = points[baseline_i, 0]
    front_costs = points[front_idx, 0]
    front_ops = points[front_idx, 1]
    # A real trade-off: the cost-front spans cheap-dirty → expensive-clean.
    assert len(front_idx) >= 5
    assert np.all(np.diff(front_costs) > 0)
    assert np.all(np.diff(front_ops) <= 1e-12)
    # With Houston's excellent wind and an ERCOT-priced bill, at least one
    # composition beats grid-only on cost while being cleaner.
    cheaper_and_cleaner = (points[:, 0] < baseline_cost) & (
        points[:, 1] < points[baseline_i, 1]
    )
    assert cheaper_and_cleaner.any()
    # But the near-zero-carbon tail costs a multiple of the baseline.
    cleanest = front_idx[-1]
    assert points[cleanest, 0] > 1.5 * baseline_cost
