"""Figure 2 — Pareto fronts (embodied vs operational) for both sites.

Regenerates the figure's data series (red dots = non-dominated set, red
triangles = extracted candidates) and an ASCII rendering; the benchmark
measures the non-dominated sort over the full 1 089-point evaluation.
"""

import numpy as np
import pytest

from repro.analysis.figures import ascii_scatter, pareto_front_series, write_csv
from repro.core.candidates import paper_candidates
from repro.core.pareto import pareto_front


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("site", ["houston", "berkeley"])
def test_fig2_pareto_front(benchmark, site, request, output_dir):
    result = request.getfixturevalue(f"{site}_exhaustive")

    front = benchmark.pedantic(
        pareto_front, args=(result.evaluated,), rounds=3, iterations=1
    )

    candidates = paper_candidates(result.evaluated)
    rows = pareto_front_series(front, candidates)
    write_csv(rows, output_dir / f"fig2_pareto_{site}.csv")

    art = ascii_scatter(
        [r["embodied_tco2"] for r in rows],
        [r["operational_tco2_day"] for r in rows],
        highlight=[r["is_candidate"] for r in rows],
        x_label="embodied tCO2",
        y_label="operational tCO2/day",
    )
    print(f"\nFigure 2 ({site}):\n{art}")

    # Shape assertions (paper §4.1 / Figure 2):
    embodied = np.array([r["embodied_tco2"] for r in rows])
    operational = np.array([r["operational_tco2_day"] for r in rows])
    # A proper trade-off curve…
    assert len(rows) >= 15
    assert np.all(np.diff(embodied) > 0)
    assert np.all(np.diff(operational) <= 1e-12)
    # …anchored at the grid-only baseline and a near-zero, expensive tail.
    assert embodied[0] == 0.0
    assert operational[-1] < 0.15
    assert embodied[-1] > 20_000.0
    # Steep-then-flat: the first half of the embodied range removes the
    # bulk of operational emissions ("diminishing returns", §4.1/Fig 2).
    mid = operational[np.searchsorted(embodied, embodied[-1] / 2.0)]
    assert mid < 0.1 * operational[0]
