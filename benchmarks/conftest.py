"""Shared benchmark fixtures.

Every bench regenerates one of the paper's tables/figures; the expensive
shared inputs (scenarios, exhaustive sweeps) are session-scoped.  Bench
artifacts (CSV series, rendered tables) land in ``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.scenario import Scenario, build_scenario
from repro.core.study_runner import OptimizationRunner, SearchResult

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def houston() -> Scenario:
    return build_scenario("houston")


@pytest.fixture(scope="session")
def berkeley() -> Scenario:
    return build_scenario("berkeley")


@pytest.fixture(scope="session")
def houston_exhaustive(houston) -> SearchResult:
    return OptimizationRunner(houston).run_exhaustive()


@pytest.fixture(scope="session")
def berkeley_exhaustive(berkeley) -> SearchResult:
    return OptimizationRunner(berkeley).run_exhaustive()
