"""Pipelined dispatch vs the generation barrier: idle-time reclamation.

The perf-trajectory point for the pipelined dispatcher (DESIGN.md §10).
A deterministic **sleep-cost objective** with a heavy-tailed duration
distribution — most trials are cheap, a seeded minority are 20×
stragglers — is driven through both parallel drivers on thread workers
(sleeping releases the GIL, so the bench measures real slot concurrency
even on a single CPU):

1. **Generation-batched** — :class:`ParallelStudyRunner` over a
   :class:`ThreadLauncher`: every batch waits for its slowest chunk at
   the barrier.  The run dogfoods the runner's new per-batch
   ``(dispatch, slowest, idle)`` starvation accounting to measure the
   worker-seconds the barrier wastes.
2. **Pipelined, speculation off** — :class:`PipelinedDispatcher` with
   ``speculate=0``: must produce the *bit-identical* trial sequence
   (params and values), asserted unconditionally.
3. **Pipelined, speculation on** — ``speculate=BATCH`` (full-depth):
   worker slots backfill across the generation boundary while the
   straggler finishes.

Headlines land in ``benchmarks/output/BENCH_pipeline.json`` for
``check_regression.py``: the wall-clock speedup of (3) over (1) and the
relative idle-time reduction.  The ≥1.5× / ≥60 % floor assertions are
opt-in (``bench`` marker) so loaded CI machines skip rather than flake;
the bit-identity assertion always runs.

The sampler is deliberately :class:`RandomSampler`: with per-trial RNG
streams its params are a pure function of the trial number, so all
three runs evaluate the *same* 48 sleeps — the comparison measures
scheduling alone, not sampling drift.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.blackbox.distributions import FloatDistribution
from repro.blackbox.parallel import ParallelStudyRunner, PipelinedDispatcher
from repro.blackbox.samplers.random import RandomSampler
from repro.blackbox.study import Study
from repro.confsys.launcher import ThreadLauncher

WORKERS = 4
BATCH = 16
N_TRIALS = 48
SEED = 11
SHORT = 0.01
LONG = 0.20
#: params below this are stragglers (~12 % of uniform draws)
TAIL_QUANTILE = 0.12
#: full-depth speculation: the whole next generation may breed early,
#: so slots stay full even through a 20x straggler
SPECULATE = BATCH

SPACE = {"x": FloatDistribution(0.0, 1.0), "y": FloatDistribution(0.0, 1.0)}

#: opt-in floors for the headline metrics (guarded by the bench marker)
SPEEDUP_FLOOR = 1.5
IDLE_REDUCTION_FLOOR = 0.60


def sleep_cost(params: dict) -> float:
    """Deterministic heavy-tailed duration: a pure function of params."""
    return LONG if params["x"] < TAIL_QUANTILE else SHORT


def sleepy_objective(params: dict) -> tuple[float, float]:
    time.sleep(sleep_cost(params))
    return (params["x"] ** 2 + params["y"], (params["x"] - 1.0) ** 2 + params["y"])


def _study() -> Study:
    return Study(
        directions=["minimize", "minimize"], sampler=RandomSampler(seed=SEED)
    )


def _snapshot(study: Study) -> list:
    return [(t.number, dict(t.params), t.values) for t in study.trials]


def run_generational() -> "tuple[Study, float]":
    study = _study()
    runner = ParallelStudyRunner(
        study, SPACE, launcher=ThreadLauncher(WORKERS), batch_size=BATCH
    )
    start = time.perf_counter()
    runner.optimize(sleepy_objective, n_trials=N_TRIALS)
    return study, time.perf_counter() - start


def run_pipelined(speculate: int) -> "tuple[Study, PipelinedDispatcher, float]":
    study = _study()
    dispatcher = PipelinedDispatcher(
        study,
        SPACE,
        workers=WORKERS,
        executor="thread",
        speculate=speculate,
        batch_size=BATCH,
    )
    start = time.perf_counter()
    dispatcher.optimize(sleepy_objective, n_trials=N_TRIALS)
    return study, dispatcher, time.perf_counter() - start


def _barrier_idle(study: Study) -> float:
    """Run-level idle fraction from the runner's per-batch accounting."""
    timings = study.metadata["batch_timings"]
    wall = sum(t["dispatch"] for t in timings)
    busy = sum(
        t["dispatch"] * WORKERS * (1.0 - t["idle"]) for t in timings
    )
    return max(0.0, 1.0 - busy / (wall * WORKERS)) if wall > 0 else 0.0


@pytest.fixture(scope="module")
def pipeline_runs(output_dir):
    gen_study, t_gen = run_generational()
    pipe0_study, _, _ = run_pipelined(0)
    spec_study, spec_dispatcher, t_spec = run_pipelined(SPECULATE)

    idle_gen = _barrier_idle(gen_study)
    idle_spec = spec_dispatcher.stats.idle_fraction
    speedup = t_gen / t_spec if t_spec > 0 else float("inf")
    idle_reduction = (idle_gen - idle_spec) / idle_gen if idle_gen > 0 else 0.0

    stragglers = sum(
        1 for t in gen_study.trials if sleep_cost(t.params) == LONG
    )
    report = (
        f"pipelined dispatch benchmark ({N_TRIALS} trials, batch {BATCH}, "
        f"{WORKERS} thread workers, {stragglers} stragglers "
        f"{LONG / SHORT:.0f}x the base cost):\n"
        f"  generation barrier  : {t_gen:6.2f} s (idle {100 * idle_gen:5.1f} %)\n"
        f"  pipelined spec={SPECULATE}   : {t_spec:6.2f} s "
        f"(idle {100 * idle_spec:5.1f} %, "
        f"{spec_dispatcher.stats.n_speculative} speculative)\n"
        f"  wall-clock speedup  : {speedup:5.2f}x\n"
        f"  idle-time reduction : {100 * idle_reduction:5.1f} %\n"
        f"  spec=0 bit-identical: yes\n"
    )
    print("\n" + report)
    (output_dir / "pipeline_dispatch.txt").write_text(report)
    (output_dir / "BENCH_pipeline.json").write_text(
        json.dumps(
            {
                "pipeline": {
                    "generated_by": "benchmarks/bench_pipeline.py",
                    "config": {
                        "trials": N_TRIALS,
                        "batch": BATCH,
                        "workers": WORKERS,
                        "speculate": SPECULATE,
                        "short_s": SHORT,
                        "long_s": LONG,
                        "stragglers": stragglers,
                    },
                    "generational_seconds": round(t_gen, 3),
                    "pipelined_seconds": round(t_spec, 3),
                    "generational_idle": round(idle_gen, 4),
                    "pipelined_idle": round(idle_spec, 4),
                    "n_speculative": spec_dispatcher.stats.n_speculative,
                    "wall_clock_speedup": round(speedup, 2),
                    "idle_reduction": round(idle_reduction, 4),
                }
            },
            indent=2,
        )
        + "\n"
    )
    return {
        "gen": _snapshot(gen_study),
        "pipe0": _snapshot(pipe0_study),
        "speedup": speedup,
        "idle_gen": idle_gen,
        "idle_spec": idle_spec,
        "idle_reduction": idle_reduction,
    }


def test_pipelined_spec0_bit_identical_to_barrier(pipeline_runs):
    """Always-on correctness gate: speculation off → the exact barrier run."""
    assert pipeline_runs["pipe0"] == pipeline_runs["gen"]


def test_barrier_wastes_worker_seconds(pipeline_runs):
    """The problem statement: the barrier idles a large slice of capacity."""
    assert pipeline_runs["idle_gen"] > 0.3


@pytest.mark.bench
def test_pipelined_wallclock_speedup(pipeline_runs):
    assert pipeline_runs["speedup"] >= SPEEDUP_FLOOR, (
        f"pipelined dispatch only {pipeline_runs['speedup']:.2f}x faster "
        f"than the generation barrier (want ≥ {SPEEDUP_FLOOR}x)"
    )


@pytest.mark.bench
def test_pipelined_idle_reduction(pipeline_runs):
    assert pipeline_runs["idle_reduction"] >= IDLE_REDUCTION_FLOOR, (
        f"pipelining reclaimed only {100 * pipeline_runs['idle_reduction']:.1f}% "
        f"of barrier idle time (want ≥ {100 * IDLE_REDUCTION_FLOOR:.0f}%)"
    )
