"""Ablation A3 — physical-model sensitivity.

Two design choices DESIGN.md calls out are ablated on the Houston
scenario:

* **solar transposition model** — isotropic (Liu–Jordan) vs HDKR
  anisotropic: HDKR's circumsolar term must add energy on a fixed-tilt
  rack (it is why PVWatts uses an anisotropic model);
* **battery round-trip efficiency** — 0.81 → 0.95²≈0.90 → 1.0: coverage
  of a storage-heavy composition must increase monotonically with
  efficiency, quantifying how much the C/L/C loss model matters to the
  paper's tables.
"""

import pytest

from repro.core.composition import MicrogridComposition
from repro.core.fastsim import BatchEvaluator
from repro.data import HOUSTON, synthesize_solar_resource
from repro.sam.batterymodels.clc import CLCParameters
from repro.sam.solar.pvwatts import PVWattsModel, PVWattsParameters

STORAGE_HEAVY = MicrogridComposition.from_mw(9.0, 12.0, 60.0)


@pytest.mark.benchmark(group="ablation-models")
@pytest.mark.parametrize("model", ["isotropic", "hdkr"])
def test_transposition_model(benchmark, model, output_dir):
    resource = synthesize_solar_resource(HOUSTON)
    params = PVWattsParameters(dc_capacity_kw=4_000.0, transposition_model=model)

    result = benchmark.pedantic(
        PVWattsModel(params).run, args=(resource,), rounds=3
    )

    cf = result.capacity_factor(4_000.0)
    line = f"transposition {model:>9}: CF {cf:.4f}  annual {result.annual_energy_kwh:,.0f} kWh"
    print("\n" + line)
    with (output_dir / "ablation_models.txt").open("a") as fh:
        fh.write(line + "\n")
    assert 0.10 < cf < 0.25

    # HDKR ≥ isotropic on annual energy for a fixed south-facing tilt.
    global _iso_energy
    if model == "isotropic":
        _iso_energy = result.annual_energy_kwh
    else:
        assert result.annual_energy_kwh >= _iso_energy


@pytest.mark.benchmark(group="ablation-models")
def test_battery_efficiency_sensitivity(benchmark, houston, output_dir):
    efficiencies = (0.90, 0.95, 1.0)  # one-way η → round trips 0.81/0.90/1.0

    def sweep():
        coverages = []
        for eta in efficiencies:
            be = BatchEvaluator(
                houston,
                battery_params=CLCParameters(
                    capacity_wh=1.0, eta_charge=eta, eta_discharge=eta
                ),
            )
            coverages.append(be.evaluate_one(STORAGE_HEAVY).metrics.coverage)
        return coverages

    coverages = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"battery one-way eta {eta:.2f}: coverage {cov*100:.2f}%"
        for eta, cov in zip(efficiencies, coverages)
    ]
    print("\n" + "\n".join(lines))
    with (output_dir / "ablation_models.txt").open("a") as fh:
        fh.write("\n".join(lines) + "\n")

    # Coverage must rise monotonically with round-trip efficiency, and the
    # perfect battery buys only a bounded improvement (the resource, not
    # the battery losses, is the limiting factor — §4.1's point).
    assert coverages[0] < coverages[1] < coverages[2]
    assert coverages[2] - coverages[0] < 0.10
