"""Parallel + persistent study subsystem at paper scale (DESIGN.md §3–§4).

Two protocols:

1. **Parallel speedup** — fan co-simulated trials (the paper's >24 h
   evaluation path, ~0.4 s/trial here) across 4 worker processes via
   :class:`ParallelStudyRunner` and compare wall-clock against the
   serial launcher.  Results must be bit-identical either way (sampling
   stays in the parent); the ≥2× speedup assertion only runs on
   machines that actually have ≥4 CPUs — on fewer cores the bench still
   verifies determinism and reports the measured timing.

2. **Kill-and-resume at full scale** — the paper's 350-trial NSGA-II
   protocol, journaled, killed mid-run (journal left with metadata
   targeting 350 but only 175 trials finished — exactly what a
   ``kill -9`` leaves behind), then resumed through the *CLI*
   (``repro study resume``).  The resumed journal must contain the
   identical 350 trials, and the identical final Pareto front, as the
   uninterrupted run.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.blackbox import (
    JournalStorage,
    NSGA2Sampler,
    ParallelStudyRunner,
    create_study,
)
from repro.blackbox.multiobjective import pareto_front_indices
from repro.blackbox.trial import TrialState
from repro.cli import main as cli_main
from repro.confsys import MultiprocessingLauncher, SerialLauncher
from repro.core.parameterspace import PAPER_SPACE
from repro.core.study_runner import CompositionObjective, OptimizationRunner
from repro.units import PERLMUTTER_MEAN_POWER_W

N_WORKERS = 4
N_COSIM_TRIALS = 16

N_TRIALS = 350  # the paper's §4.4 protocol
POPULATION = 50
SEED = 42
KILL_AFTER = 175


def _run_cosim_study(houston, launcher):
    study = create_study(
        directions=["minimize", "minimize"],
        sampler=NSGA2Sampler(population_size=N_COSIM_TRIALS, seed=SEED),
        study_name="parallel-bench",
    )
    runner = ParallelStudyRunner(
        study, _space_distributions(), launcher=launcher, batch_size=N_COSIM_TRIALS
    )
    objective = CompositionObjective(houston, cosim=True)
    start = time.perf_counter()
    runner.optimize(objective, n_trials=N_COSIM_TRIALS)
    elapsed = time.perf_counter() - start
    return study, elapsed


def _space_distributions():
    from repro.blackbox.distributions import IntDistribution

    return {
        "n_turbines": IntDistribution(0, PAPER_SPACE.max_turbines),
        "solar_increments": IntDistribution(0, PAPER_SPACE.max_solar_increments),
        "battery_units": IntDistribution(0, PAPER_SPACE.max_battery_units),
    }


def test_parallel_study_speedup(houston, output_dir):
    serial_study, t_serial = _run_cosim_study(houston, SerialLauncher())
    parallel_study, t_parallel = _run_cosim_study(
        houston, MultiprocessingLauncher(n_workers=N_WORKERS)
    )

    # Determinism holds on any machine: worker count must not change results.
    assert [t.params for t in serial_study.trials] == [
        t.params for t in parallel_study.trials
    ]
    assert [t.values for t in serial_study.trials] == [
        t.values for t in parallel_study.trials
    ]

    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    report = (
        f"parallel study benchmark ({N_COSIM_TRIALS} co-simulated trials, Houston, full year):\n"
        f"  serial              : {t_serial:6.2f} s\n"
        f"  {N_WORKERS} workers           : {t_parallel:6.2f} s\n"
        f"  wall-clock speedup  : {speedup:5.2f}x\n"
        f"  machine CPU count   : {os.cpu_count()}\n"
    )
    print("\n" + report)
    (output_dir / "parallel_study.txt").write_text(report)

    if (os.cpu_count() or 1) >= N_WORKERS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup at {N_WORKERS} workers, got {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >={N_WORKERS} CPUs, machine has "
            f"{os.cpu_count()} (measured {speedup:.2f}x; determinism verified)"
        )


def _journal_front(path, name="houston-blackbox"):
    stored = JournalStorage(path).load_study(name)
    completed = [t for t in stored.trials if t.state == TrialState.COMPLETE]
    values = np.array([t.values for t in completed])
    front = pareto_front_indices(values)
    return (
        sorted(tuple(sorted(completed[i].params.items())) for i in front),
        [t.params for t in completed],
        [t.values for t in completed],
    )


def test_350_trial_kill_and_resume_via_cli(houston, output_dir, tmp_path):
    full_journal = str(tmp_path / "full.jsonl")
    killed_journal = str(tmp_path / "killed.jsonl")

    # Uninterrupted reference run, through the CLI.
    assert (
        cli_main(
            ["study", "run", "--journal", full_journal, "--site", "houston",
             "--trials", str(N_TRIALS), "--population", str(POPULATION),
             "--seed", str(SEED)]
        )
        == 0
    )

    # The "killed" run: journal metadata targets 350 trials but only 175
    # made it to disk — the exact state a kill -9 mid-run leaves behind.
    OptimizationRunner(houston).run_blackbox(
        n_trials=KILL_AFTER,
        sampler=NSGA2Sampler(population_size=POPULATION, seed=SEED),
        storage=JournalStorage(killed_journal),
        study_name="houston-blackbox",
        # The metadata `study run` writes before the first trial — all of
        # it is required by `study resume`, which refuses to guess.
        metadata={"site": "houston", "sites": ["houston"], "policy": "default",
                  "aggregate": "worst", "year": 2024, "n_hours": 8_760,
                  "mean_power_mw": PERLMUTTER_MEAN_POWER_W / 1e6,
                  "n_trials": N_TRIALS, "population": POPULATION, "seed": SEED},
    )

    # Resume through the CLI: scenario + search config come from metadata.
    assert cli_main(["study", "resume", "--journal", killed_journal]) == 0

    front_full, params_full, values_full = _journal_front(full_journal)
    front_resumed, params_resumed, values_resumed = _journal_front(killed_journal)
    assert len(params_resumed) == N_TRIALS
    assert params_resumed == params_full
    assert values_resumed == values_full
    assert front_resumed == front_full

    report = (
        f"kill-and-resume at paper scale (NSGA-II, {N_TRIALS} trials, pop. {POPULATION}):\n"
        f"  killed after        : {KILL_AFTER} trials\n"
        f"  resumed trials      : {len(params_resumed)}\n"
        f"  final front size    : {len(front_resumed)}\n"
        f"  front identical     : {front_resumed == front_full}\n"
    )
    print("\n" + report)
    (output_dir / "kill_and_resume.txt").write_text(report)
