# Convenience targets — every command also works standalone with
# PYTHONPATH=src (no install needed; see README.md "Install").

.PHONY: test tier2 bench

# Tier-1 gate: what CI runs (pytest.ini deselects tier2/bench markers).
test:
	PYTHONPATH=src python -m pytest -x -q

# Slow tier: full-year policy cross-validations.
tier2:
	PYTHONPATH=src python -m pytest -m tier2 -q

# Every benchmark, with the perf trajectory recorded in
# benchmarks/output/BENCH_storage.json (see benchmarks/run_all.py).
bench:
	PYTHONPATH=src python benchmarks/run_all.py
