# Convenience targets — every command also works standalone with
# PYTHONPATH=src (no install needed; see README.md "Install").

.PHONY: test tier2 bench ci regression

# Tier-1 gate: what CI runs (pytest.ini deselects tier2/bench markers).
test:
	PYTHONPATH=src python -m pytest -x -q

# Slow tier: full-year policy cross-validations.
tier2:
	PYTHONPATH=src python -m pytest -m tier2 -q

# Every benchmark, with the perf trajectory recorded in
# benchmarks/output/BENCH_*.json (see benchmarks/run_all.py).
bench:
	PYTHONPATH=src python benchmarks/run_all.py

# Mirror of the blocking CI job (.github/workflows/ci.yml), verbatim:
# tier-1 gate + tier-2 and bench collection sanity (imports and markers
# stay valid without paying their wall-clock).
ci:
	PYTHONPATH=src python -m pytest -x -q
	PYTHONPATH=src python -m pytest -q tests/test_pipeline.py tests/test_sampler_protocol.py
	PYTHONPATH=src python -m pytest -q tests/test_fidelity_differential.py
	PYTHONPATH=src python -m pytest -q tests/test_study_spec.py tests/test_service.py
	PYTHONPATH=src python -m pytest -q tests/test_lease.py tests/test_remote_worker.py
	PYTHONPATH=src python -m pytest -m tier2 --collect-only -q
	PYTHONPATH=src python -m pytest benchmarks/ --collect-only -q

# Mirror of the non-blocking CI bench job's comparison step: fresh
# numbers (run `make bench` first) vs the committed baselines.
regression:
	PYTHONPATH=src python benchmarks/check_regression.py --baseline-ref HEAD
