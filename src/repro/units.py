"""Physical unit constants and conversion helpers.

The whole library uses a consistent internal unit convention:

* power        — watts (W); megawatt-scale values are explicit (``MW``)
* energy       — watt-hours (Wh)
* carbon mass  — kilograms of CO2 (kgCO2); tables use tonnes (tCO2)
* carbon rate  — grams of CO2 per kilowatt-hour (gCO2/kWh), the unit used by
                 Electricity Maps and the paper
* time         — seconds for durations, hours for resource time series

Keeping conversions in one module avoids the classic "off by 1000" errors
when mixing kW-scale renewable models with MW-scale data center loads.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Scale factors
# ---------------------------------------------------------------------------

#: Watts per kilowatt.
W_PER_KW = 1_000.0
#: Watts per megawatt.
W_PER_MW = 1_000_000.0
#: Kilowatts per megawatt.
KW_PER_MW = 1_000.0
#: Watt-hours per kilowatt-hour.
WH_PER_KWH = 1_000.0
#: Watt-hours per megawatt-hour.
WH_PER_MWH = 1_000_000.0
#: Kilograms per (metric) tonne.
KG_PER_TONNE = 1_000.0
#: Grams per kilogram.
G_PER_KG = 1_000.0

#: Seconds per hour / day / (Julian) year.
SECONDS_PER_HOUR = 3_600.0
SECONDS_PER_DAY = 86_400.0
HOURS_PER_DAY = 24.0
HOURS_PER_YEAR = 8_760.0
DAYS_PER_YEAR = 365.0

# ---------------------------------------------------------------------------
# Power / energy conversions
# ---------------------------------------------------------------------------


def mw_to_w(value_mw: float) -> float:
    """Convert megawatts to watts."""
    return value_mw * W_PER_MW


def w_to_mw(value_w: float) -> float:
    """Convert watts to megawatts."""
    return value_w / W_PER_MW


def kw_to_w(value_kw: float) -> float:
    """Convert kilowatts to watts."""
    return value_kw * W_PER_KW


def w_to_kw(value_w: float) -> float:
    """Convert watts to kilowatts."""
    return value_w / W_PER_KW


def mwh_to_wh(value_mwh: float) -> float:
    """Convert megawatt-hours to watt-hours."""
    return value_mwh * WH_PER_MWH


def wh_to_mwh(value_wh: float) -> float:
    """Convert watt-hours to megawatt-hours."""
    return value_wh / WH_PER_MWH


def kwh_to_wh(value_kwh: float) -> float:
    """Convert kilowatt-hours to watt-hours."""
    return value_kwh * WH_PER_KWH


def wh_to_kwh(value_wh: float) -> float:
    """Convert watt-hours to kilowatt-hours."""
    return value_wh / WH_PER_KWH


def power_to_energy_wh(power_w: float, duration_s: float) -> float:
    """Integrate a constant power (W) over ``duration_s`` seconds → Wh."""
    return power_w * duration_s / SECONDS_PER_HOUR


def energy_to_power_w(energy_wh: float, duration_s: float) -> float:
    """Average power (W) that delivers ``energy_wh`` over ``duration_s``."""
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    return energy_wh * SECONDS_PER_HOUR / duration_s


# ---------------------------------------------------------------------------
# Carbon conversions
# ---------------------------------------------------------------------------


def kg_to_tonnes(value_kg: float) -> float:
    """Convert kilograms to metric tonnes."""
    return value_kg / KG_PER_TONNE


def tonnes_to_kg(value_t: float) -> float:
    """Convert metric tonnes to kilograms."""
    return value_t * KG_PER_TONNE


def grid_emissions_kg(energy_wh: float, intensity_g_per_kwh: float) -> float:
    """Operational emissions (kgCO2) of drawing ``energy_wh`` from a grid
    whose average carbon intensity is ``intensity_g_per_kwh`` (gCO2/kWh).
    """
    kwh = energy_wh / WH_PER_KWH
    return kwh * intensity_g_per_kwh / G_PER_KG


# ---------------------------------------------------------------------------
# Paper constants (Section 4, "Experiments")
# ---------------------------------------------------------------------------

#: Embodied footprint of "low carbon" solar modules (kgCO2 per kW DC).
SOLAR_EMBODIED_KG_PER_KW = 630.0
#: Rated capacity of one solar increment (kW) — 4 MW per the paper.
SOLAR_INCREMENT_KW = 4_000.0
#: Number of solar increments (0..10 → 0..40 MW).
SOLAR_MAX_INCREMENTS = 10

#: Rated capacity of one wind turbine (kW) — 3 MW per the paper.
WIND_TURBINE_RATED_KW = 3_000.0
#: Embodied footprint of one 3 MW turbine (kgCO2) [Smoucha et al. 2016].
WIND_EMBODIED_KG_PER_TURBINE = 1_046_000.0
#: Maximum number of turbines.
WIND_MAX_TURBINES = 10

#: Usable energy of one battery unit (kWh) — one Fluence Smartstack, 7.5 MWh.
BATTERY_UNIT_KWH = 7_500.0
#: Embodied footprint of LFP lithium-ion storage (kgCO2 per kWh)
#: [Peiseler et al. 2024].
BATTERY_EMBODIED_KG_PER_KWH = 62.0
#: Maximum number of battery units (0..8 → 0..60 MWh).
BATTERY_MAX_UNITS = 8

#: Average Perlmutter power draw during the paper's study window (W).
PERLMUTTER_MEAN_POWER_W = 1_620_000.0
