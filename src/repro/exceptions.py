"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration problems from simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The co-simulation engine entered an invalid state."""


class ScheduleError(SimulationError):
    """A simulator was scheduled inconsistently (e.g. stepped backwards)."""


class PowerBalanceError(SimulationError):
    """Microgrid power flows failed to balance within tolerance."""


class SignalError(ReproError):
    """A signal could not produce a value for the requested time."""


class DataError(ReproError):
    """A dataset/resource is malformed or out of its valid range."""


class OptimizationError(ReproError):
    """The black-box optimization layer was used incorrectly."""


class TrialPruned(OptimizationError):
    """Raised inside an objective to signal that the trial was pruned.

    Mirrors ``optuna.TrialPruned``: it is not an error condition but a
    control-flow signal understood by :class:`repro.blackbox.study.Study`.
    """


class ExperimentError(ReproError):
    """An experiment harness was configured or invoked incorrectly."""
