"""Stacked storage: battery + long-duration store behind one interface.

§3.3: the framework "can incorporate additional technologies such as
hydrogen production and storage, and long-duration storage systems like
pumped hydro".  :class:`StackedStorage` composes any ordered list of
:class:`~repro.cosim.storage.Storage` implementations into one logical
store with priority dispatch:

* charging fills tiers **in order** (battery first — cheap round trip —
  then the hydrogen-like tier absorbs the long surplus),
* discharging drains tiers in order (battery covers short gaps; the
  long-duration tier backs multi-day lulls).

Because it implements the same ``Storage`` interface, the co-simulated
microgrid and its policies need no changes — the extensibility seam the
paper advertises.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from .storage import Storage


class StackedStorage(Storage):
    """Priority-ordered composition of storage tiers."""

    def __init__(self, tiers: list[Storage]) -> None:
        if not tiers:
            raise ConfigurationError("StackedStorage needs at least one tier")
        self.tiers = list(tiers)

    def update(self, power_w: float, duration_s: float) -> float:
        remaining = power_w
        total_accepted = 0.0
        if power_w >= 0.0:
            for tier in self.tiers:
                if remaining <= 0.0:
                    break
                accepted = tier.update(remaining, duration_s)
                total_accepted += accepted
                remaining -= accepted
        else:
            for tier in self.tiers:
                if remaining >= 0.0:
                    break
                delivered = tier.update(remaining, duration_s)  # ≤ 0
                total_accepted += delivered
                remaining -= delivered
        return total_accepted

    def soc(self) -> float:
        cap = self.capacity_wh
        if cap <= 0:
            return 0.0
        return self.energy_wh / cap

    @property
    def capacity_wh(self) -> float:
        return sum(t.capacity_wh for t in self.tiers)

    @property
    def usable_capacity_wh(self) -> float:
        return sum(t.usable_capacity_wh for t in self.tiers)

    @property
    def energy_wh(self) -> float:
        return sum(t.energy_wh for t in self.tiers)

    def reset(self) -> None:
        for tier in self.tiers:
            tier.reset()
