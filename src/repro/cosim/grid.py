"""Grid-exchange accounting: energy, Scope-2 emissions, and cost.

The paper computes operational emissions per the GHG Protocol Scope 2
definition — CO₂ released by *purchased* electricity — using hourly
average carbon intensity.  Export is not credited (conservative carbon
accounting; the framework exposes exported energy separately so users can
study export-crediting policies).
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from ..units import G_PER_KG, SECONDS_PER_HOUR, WH_PER_KWH
from .microgrid import StepResult
from .signal import Signal


class GridConnection:
    """Accumulates grid exchange over a simulation run.

    Parameters
    ----------
    carbon_intensity:
        Signal serving gCO2/kWh at simulation time.
    price:
        Optional signal serving $/kWh import price.
    export_credit:
        Optional signal serving $/kWh paid for exports.
    """

    def __init__(
        self,
        carbon_intensity: Signal,
        price: Signal | None = None,
        export_credit: Signal | None = None,
    ) -> None:
        self.carbon_intensity = carbon_intensity
        self.price = price
        self.export_credit = export_credit
        self.import_energy_wh = 0.0
        self.export_energy_wh = 0.0
        self.emissions_kg = 0.0
        self.cost_usd = 0.0
        self.steps = 0

    def record(self, result: StepResult) -> None:
        """Account one microgrid step."""
        if result.dt_s <= 0:
            raise ConfigurationError("step duration must be positive")
        dt_h = result.dt_s / SECONDS_PER_HOUR
        imp_wh = result.grid_import_w * dt_h
        exp_wh = result.grid_export_w * dt_h
        self.import_energy_wh += imp_wh
        self.export_energy_wh += exp_wh

        ci = self.carbon_intensity.at(result.t_s)  # gCO2/kWh
        self.emissions_kg += imp_wh / WH_PER_KWH * ci / G_PER_KG

        if self.price is not None:
            self.cost_usd += imp_wh / WH_PER_KWH * self.price.at(result.t_s)
        if self.export_credit is not None:
            self.cost_usd -= exp_wh / WH_PER_KWH * self.export_credit.at(result.t_s)
        self.steps += 1

    def reset(self) -> None:
        self.import_energy_wh = 0.0
        self.export_energy_wh = 0.0
        self.emissions_kg = 0.0
        self.cost_usd = 0.0
        self.steps = 0
