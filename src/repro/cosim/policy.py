"""Microgrid operating policies.

A policy decides, each step, how the local net power balance (production
minus consumption) is routed between storage and the public grid.  This is
the "operational strategies" seam of the framework (§3.3: "different
operational strategies such as demand response or carbon-aware
scheduling").

The default policy — greedy self-consumption — matches how the paper's
experiments operate the battery: renewable surplus charges the battery,
deficits discharge it, and only the remainder is exchanged with the grid.

Every policy here has a vectorized twin in :mod:`repro.core.dispatch`
that makes the same decisions for whole candidate batches on the fast
path (DESIGN.md §5); ``tests/test_cross_validation.py`` pins the pairs
together.  Signal-aware policies (carbon, price) take the relevant
series at construction and look the value up by step time — the scalar
equivalent of the price/CI columns the vectorized engine hands its
policies each step.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from .storage import Storage


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of one policy step (all powers in W, all ≥ 0)."""

    grid_import_w: float
    grid_export_w: float
    storage_charge_w: float
    storage_discharge_w: float
    #: demand left unserved (only nonzero for islanded operation)
    unserved_w: float = 0.0


class MicrogridPolicy(ABC):
    """Decides the storage/grid split of the net power balance."""

    @abstractmethod
    def dispatch(
        self, net_power_w: float, storage: Storage | None, t_s: float, dt_s: float
    ) -> PolicyDecision:
        """Route ``net_power_w`` (production − consumption; + = surplus)."""


def _transact(
    net_power_w: float, request_w: float, storage: Storage | None, dt_s: float
) -> PolicyDecision:
    """Request battery power, route the residual through the grid.

    The storage is *always* transacted with (a zero request still applies
    self-discharge — an idle battery leaks), matching the vectorized
    engine, which advances every battery each step.
    """
    accepted = storage.update(request_w, dt_s) if storage is not None else 0.0
    residual = net_power_w - accepted  # + = export, − = import
    return PolicyDecision(
        grid_import_w=max(-residual, 0.0),
        grid_export_w=max(residual, 0.0),
        storage_charge_w=max(accepted, 0.0),
        storage_discharge_w=max(-accepted, 0.0),
    )


class DefaultPolicy(MicrogridPolicy):
    """Greedy self-consumption (the paper's operating strategy).

    Surplus → charge storage, remainder exported (or curtailed — the
    accounting downstream treats export and curtailment identically for
    carbon purposes).  Deficit → discharge storage, remainder imported.
    """

    def dispatch(
        self, net_power_w: float, storage: Storage | None, t_s: float, dt_s: float
    ) -> PolicyDecision:
        if net_power_w >= 0.0:
            accepted = storage.update(net_power_w, dt_s) if storage is not None else 0.0
            return PolicyDecision(
                grid_import_w=0.0,
                grid_export_w=net_power_w - accepted,
                storage_charge_w=accepted,
                storage_discharge_w=0.0,
            )
        deficit = -net_power_w
        delivered = -storage.update(-deficit, dt_s) if storage is not None else 0.0
        return PolicyDecision(
            grid_import_w=deficit - delivered,
            grid_export_w=0.0,
            storage_charge_w=0.0,
            storage_discharge_w=delivered,
        )


class IslandedPolicy(MicrogridPolicy):
    """Off-grid operation: deficits the storage cannot cover go unserved.

    Supports the reliability/resilience metric of §4.3 ("measuring the
    fraction of time the system can operate independently of the grid").
    """

    def dispatch(
        self, net_power_w: float, storage: Storage | None, t_s: float, dt_s: float
    ) -> PolicyDecision:
        if net_power_w >= 0.0:
            accepted = storage.update(net_power_w, dt_s) if storage is not None else 0.0
            return PolicyDecision(
                grid_import_w=0.0,
                grid_export_w=net_power_w - accepted,  # curtailed
                storage_charge_w=accepted,
                storage_discharge_w=0.0,
            )
        deficit = -net_power_w
        delivered = -storage.update(-deficit, dt_s) if storage is not None else 0.0
        return PolicyDecision(
            grid_import_w=0.0,
            grid_export_w=0.0,
            storage_charge_w=0.0,
            storage_discharge_w=delivered,
            unserved_w=deficit - delivered,
        )


class TimeWindowPolicy(MicrogridPolicy):
    """Discharge only inside a daily window (e.g. evening-peak shaving).

    Charging from surplus is always allowed; discharging is restricted to
    local hours ``[discharge_start, discharge_end)``.  A simple example of
    the operational strategies the framework can sweep over.
    """

    def __init__(self, discharge_start_h: float = 16.0, discharge_end_h: float = 22.0) -> None:
        if not 0.0 <= discharge_start_h < 24.0 or not 0.0 < discharge_end_h <= 24.0:
            raise ConfigurationError("discharge window hours must lie in [0, 24]")
        self.discharge_start_h = discharge_start_h
        self.discharge_end_h = discharge_end_h
        self._fallback = DefaultPolicy()

    def _in_window(self, t_s: float) -> bool:
        hour = (t_s / 3_600.0) % 24.0
        if self.discharge_start_h <= self.discharge_end_h:
            return self.discharge_start_h <= hour < self.discharge_end_h
        return hour >= self.discharge_start_h or hour < self.discharge_end_h

    def dispatch(
        self, net_power_w: float, storage: Storage | None, t_s: float, dt_s: float
    ) -> PolicyDecision:
        if net_power_w >= 0.0 or self._in_window(t_s):
            return self._fallback.dispatch(net_power_w, storage, t_s, dt_s)
        # Outside the window the deficit goes straight to the grid; the
        # idle battery is still transacted with (self-discharge applies).
        return _transact(net_power_w, 0.0, storage, dt_s)


class _SeriesLookup:
    """Mixin: hourly-series value at a simulation time (signal twin of
    the per-step columns the vectorized engine hands its policies)."""

    def _init_series(self, values: np.ndarray, step_s: float) -> None:
        series = np.asarray(values, dtype=np.float64)
        if series.ndim != 1 or series.size == 0:
            raise ConfigurationError("signal series must be a non-empty 1-D array")
        if step_s <= 0:
            raise ConfigurationError(f"step_s must be positive, got {step_s}")
        self._series = series
        self._step_s = float(step_s)

    def _at(self, t_s: float) -> float:
        return float(self._series[int(t_s // self._step_s) % self._series.size])


class CarbonAwarePolicy(MicrogridPolicy, _SeriesLookup):
    """Carbon-aware charge deferral (§3.3 "carbon-aware scheduling").

    Surplus always charges; during deficits the battery discharges only
    while the grid's carbon intensity is at or above the threshold,
    deferring stored charge to the dirtiest hours.  Scalar twin of
    :class:`repro.core.dispatch.CarbonAwareDispatch`.
    """

    def __init__(
        self,
        ci_g_per_kwh: np.ndarray,
        step_s: float,
        ci_discharge_g_per_kwh: float = 420.0,
    ) -> None:
        self._init_series(ci_g_per_kwh, step_s)
        self.ci_discharge_g_per_kwh = float(ci_discharge_g_per_kwh)

    def dispatch(
        self, net_power_w: float, storage: Storage | None, t_s: float, dt_s: float
    ) -> PolicyDecision:
        dirty = self._at(t_s) >= self.ci_discharge_g_per_kwh
        request = net_power_w if (net_power_w >= 0.0 or dirty) else 0.0
        return _transact(net_power_w, request, storage, dt_s)


class TouArbitragePolicy(MicrogridPolicy, _SeriesLookup):
    """TOU price arbitrage / peak shaving.

    Off-peak (price ≤ charge threshold): charge as fast as the battery
    allows, importing the shortfall (the arbitrage buy).  On-peak
    (price ≥ discharge threshold): greedy dispatch, shaving the peak.
    In between: hold — charge from surplus only.  Scalar twin of
    :class:`repro.core.dispatch.TouArbitrageDispatch`.
    """

    def __init__(
        self,
        prices_usd_kwh: np.ndarray,
        step_s: float,
        charge_price_usd_kwh: float = 0.10,
        discharge_price_usd_kwh: float = 0.20,
    ) -> None:
        self._init_series(prices_usd_kwh, step_s)
        if charge_price_usd_kwh >= discharge_price_usd_kwh:
            raise ConfigurationError("charge price threshold must be below discharge")
        self.charge_price_usd_kwh = float(charge_price_usd_kwh)
        self.discharge_price_usd_kwh = float(discharge_price_usd_kwh)

    def dispatch(
        self, net_power_w: float, storage: Storage | None, t_s: float, dt_s: float
    ) -> PolicyDecision:
        price = self._at(t_s)
        if price <= self.charge_price_usd_kwh:
            request = float("inf")  # the battery clips to its rate limit
        elif price >= self.discharge_price_usd_kwh:
            request = net_power_w
        else:
            request = max(net_power_w, 0.0)
        return _transact(net_power_w, request, storage, dt_s)
