"""Microgrid operating policies.

A policy decides, each step, how the local net power balance (production
minus consumption) is routed between storage and the public grid.  This is
the "operational strategies" seam of the framework (§3.3: "different
operational strategies such as demand response or carbon-aware
scheduling").

The default policy — greedy self-consumption — matches how the paper's
experiments operate the battery: renewable surplus charges the battery,
deficits discharge it, and only the remainder is exchanged with the grid.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .storage import Storage


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of one policy step (all powers in W, all ≥ 0)."""

    grid_import_w: float
    grid_export_w: float
    storage_charge_w: float
    storage_discharge_w: float
    #: demand left unserved (only nonzero for islanded operation)
    unserved_w: float = 0.0


class MicrogridPolicy(ABC):
    """Decides the storage/grid split of the net power balance."""

    @abstractmethod
    def dispatch(
        self, net_power_w: float, storage: Storage | None, t_s: float, dt_s: float
    ) -> PolicyDecision:
        """Route ``net_power_w`` (production − consumption; + = surplus)."""


class DefaultPolicy(MicrogridPolicy):
    """Greedy self-consumption (the paper's operating strategy).

    Surplus → charge storage, remainder exported (or curtailed — the
    accounting downstream treats export and curtailment identically for
    carbon purposes).  Deficit → discharge storage, remainder imported.
    """

    def dispatch(
        self, net_power_w: float, storage: Storage | None, t_s: float, dt_s: float
    ) -> PolicyDecision:
        if net_power_w >= 0.0:
            accepted = storage.update(net_power_w, dt_s) if storage is not None else 0.0
            return PolicyDecision(
                grid_import_w=0.0,
                grid_export_w=net_power_w - accepted,
                storage_charge_w=accepted,
                storage_discharge_w=0.0,
            )
        deficit = -net_power_w
        delivered = -storage.update(-deficit, dt_s) if storage is not None else 0.0
        return PolicyDecision(
            grid_import_w=deficit - delivered,
            grid_export_w=0.0,
            storage_charge_w=0.0,
            storage_discharge_w=delivered,
        )


class IslandedPolicy(MicrogridPolicy):
    """Off-grid operation: deficits the storage cannot cover go unserved.

    Supports the reliability/resilience metric of §4.3 ("measuring the
    fraction of time the system can operate independently of the grid").
    """

    def dispatch(
        self, net_power_w: float, storage: Storage | None, t_s: float, dt_s: float
    ) -> PolicyDecision:
        if net_power_w >= 0.0:
            accepted = storage.update(net_power_w, dt_s) if storage is not None else 0.0
            return PolicyDecision(
                grid_import_w=0.0,
                grid_export_w=net_power_w - accepted,  # curtailed
                storage_charge_w=accepted,
                storage_discharge_w=0.0,
            )
        deficit = -net_power_w
        delivered = -storage.update(-deficit, dt_s) if storage is not None else 0.0
        return PolicyDecision(
            grid_import_w=0.0,
            grid_export_w=0.0,
            storage_charge_w=0.0,
            storage_discharge_w=delivered,
            unserved_w=deficit - delivered,
        )


class TimeWindowPolicy(MicrogridPolicy):
    """Discharge only inside a daily window (e.g. evening-peak shaving).

    Charging from surplus is always allowed; discharging is restricted to
    local hours ``[discharge_start, discharge_end)``.  A simple example of
    the operational strategies the framework can sweep over.
    """

    def __init__(self, discharge_start_h: float = 16.0, discharge_end_h: float = 22.0) -> None:
        if not 0.0 <= discharge_start_h < 24.0 or not 0.0 < discharge_end_h <= 24.0:
            raise ConfigurationError("discharge window hours must lie in [0, 24]")
        self.discharge_start_h = discharge_start_h
        self.discharge_end_h = discharge_end_h
        self._fallback = DefaultPolicy()

    def _in_window(self, t_s: float) -> bool:
        hour = (t_s / 3_600.0) % 24.0
        if self.discharge_start_h <= self.discharge_end_h:
            return self.discharge_start_h <= hour < self.discharge_end_h
        return hour >= self.discharge_start_h or hour < self.discharge_end_h

    def dispatch(
        self, net_power_w: float, storage: Storage | None, t_s: float, dt_s: float
    ) -> PolicyDecision:
        if net_power_w >= 0.0 or self._in_window(t_s):
            return self._fallback.dispatch(net_power_w, storage, t_s, dt_s)
        # Outside the window: deficit goes straight to the grid.
        return PolicyDecision(
            grid_import_w=-net_power_w,
            grid_export_w=0.0,
            storage_charge_w=0.0,
            storage_discharge_w=0.0,
        )
