"""Actors: the power-producing and power-consuming entities of a microgrid.

Sign convention (Vessim's): an actor's power is **positive for
production** (solar farm, wind farm) and **negative for consumption**
(the data center).  The microgrid sums actor powers each step to obtain
the local net balance.

Actors can be individually enabled/disabled and scaled by controllers —
the hooks used by the demand-response extension (§4.3).
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from .signal import Signal


class Actor:
    """A named power actor fed by a signal.

    Parameters
    ----------
    name:
        Unique name within a microgrid.
    signal:
        The power signal in watts.  Positive = production.
    is_consumer:
        If True, the signal is interpreted as a (positive) demand trace
        and negated — so demand traces can be used without manual sign
        flipping.
    scale:
        Multiplier applied to the signal (e.g. derate, curtailment).
    """

    def __init__(
        self,
        name: str,
        signal: Signal,
        is_consumer: bool = False,
        scale: float = 1.0,
    ) -> None:
        if not name:
            raise ConfigurationError("actor needs a non-empty name")
        if scale < 0:
            raise ConfigurationError(f"actor scale must be >= 0, got {scale}")
        self.name = name
        self.signal = signal
        self.is_consumer = is_consumer
        self.scale = scale
        self.enabled = True
        #: additive power offset (W) applied by controllers (e.g. deferred
        #: load being replayed); respects the actor's sign convention.
        self.power_offset_w = 0.0

    def power_at(self, t_s: float) -> float:
        """Signed power (W) at time ``t_s`` (production +, consumption −)."""
        if not self.enabled:
            return 0.0
        raw = self.signal.at(t_s) * self.scale
        if self.is_consumer:
            raw = -abs(raw)
        return raw + self.power_offset_w

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "consumer" if self.is_consumer else "producer"
        return f"<Actor '{self.name}' ({kind}, scale={self.scale})>"
