"""The microgrid: actors + storage + policy, resolved step by step.

Each simulation step the microgrid

1. queries every actor's power (production +, consumption −),
2. hands the net balance to the operating policy, which transacts with
   storage and determines grid exchange,
3. returns a :class:`StepResult` with the full power-flow breakdown, and
4. asserts power balance to numerical tolerance (defense against sign
   errors — a co-simulator's equivalent of mass conservation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError, PowerBalanceError
from .actor import Actor
from .policy import DefaultPolicy, MicrogridPolicy
from .storage import Storage

#: Absolute power-balance tolerance (W) — generous against float noise at
#: MW scale, tight against real bookkeeping errors.
BALANCE_TOL_W = 1e-3


@dataclass(frozen=True)
class StepResult:
    """Power flows of one microgrid step (W; all non-negative except net)."""

    t_s: float
    dt_s: float
    production_w: float
    consumption_w: float  # positive magnitude
    net_power_w: float
    grid_import_w: float
    grid_export_w: float
    storage_charge_w: float
    storage_discharge_w: float
    storage_soc: float
    unserved_w: float

    @property
    def onsite_supply_w(self) -> float:
        """Demand met on-site this step: direct renewables + discharge."""
        return min(self.consumption_w - self.unserved_w, self.consumption_w) - self.grid_import_w


class Microgrid:
    """A self-contained local energy system (§2 of the paper)."""

    def __init__(
        self,
        actors: list[Actor],
        storage: Storage | None = None,
        policy: MicrogridPolicy | None = None,
        name: str = "microgrid",
    ) -> None:
        if not actors:
            raise ConfigurationError("a microgrid needs at least one actor")
        names = [a.name for a in actors]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate actor names: {names}")
        self.actors = list(actors)
        self.storage = storage
        self.policy = policy or DefaultPolicy()
        self.name = name

    def actor(self, name: str) -> Actor:
        """Look up an actor by name (for controllers)."""
        for a in self.actors:
            if a.name == name:
                return a
        raise ConfigurationError(f"no actor named '{name}' in {self.name}")

    def step(self, t_s: float, dt_s: float) -> StepResult:
        """Resolve power flows for the interval ``[t_s, t_s + dt_s)``."""
        if dt_s <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt_s}")
        production = 0.0
        consumption = 0.0
        for a in self.actors:
            p = a.power_at(t_s)
            if p >= 0.0:
                production += p
            else:
                consumption += -p

        net = production - consumption
        decision = self.policy.dispatch(net, self.storage, t_s, dt_s)

        result = StepResult(
            t_s=t_s,
            dt_s=dt_s,
            production_w=production,
            consumption_w=consumption,
            net_power_w=net,
            grid_import_w=decision.grid_import_w,
            grid_export_w=decision.grid_export_w,
            storage_charge_w=decision.storage_charge_w,
            storage_discharge_w=decision.storage_discharge_w,
            storage_soc=self.storage.soc() if self.storage is not None else 0.0,
            unserved_w=decision.unserved_w,
        )
        self._check_balance(result)
        return result

    @staticmethod
    def _check_balance(r: StepResult) -> None:
        """production + import + discharge = consumption + export + charge
        (+ unserved on the supply side for islanded operation)."""
        supply = r.production_w + r.grid_import_w + r.storage_discharge_w + r.unserved_w
        use = r.consumption_w + r.grid_export_w + r.storage_charge_w
        residual = abs(supply - use)
        scale = max(supply, use, 1.0)
        if residual > BALANCE_TOL_W + 1e-9 * scale:
            raise PowerBalanceError(
                f"power imbalance at t={r.t_s}s: supply={supply:.6f}W use={use:.6f}W "
                f"(residual {residual:.6f}W)"
            )
