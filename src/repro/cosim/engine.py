"""Discrete-event co-simulation kernel (mosaik stand-in).

Vessim builds on mosaik, whose essential contract is: heterogeneous
*simulators* advance through time by being stepped at the moments they
request, and the orchestrator keeps them causally consistent.  This
module provides the minimal kernel with those semantics:

* a :class:`Simulator` is anything with ``step(t_s) -> next_t_s``;
* the :class:`CoSimEnvironment` keeps an event queue keyed by
  ``(next_time, priority, insertion_order)`` and steps simulators in
  causal order until the end time;
* same-time steps execute in priority order (controllers before the
  microgrid, the microgrid before monitors), mirroring mosaik's
  same-time-loop dataflow ordering.

For the paper's experiments every simulator is periodic (hourly), but the
kernel supports heterogeneous and dynamic step sizes — e.g. a minutely
battery next to an hourly carbon-intensity feed.
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from typing import Callable

from ..exceptions import ConfigurationError, ScheduleError
from .controller import Controller
from .grid import GridConnection
from .microgrid import Microgrid, StepResult
from .monitor import Monitor


class Simulator(ABC):
    """A steppable co-simulated entity."""

    #: lower runs earlier among same-time events
    priority: int = 100

    @abstractmethod
    def step(self, t_s: float) -> float:
        """Advance from ``t_s``; return the next time this simulator must
        be stepped (must be strictly greater than ``t_s``)."""


class PeriodicSimulator(Simulator):
    """Adapts a callback into a fixed-period simulator."""

    def __init__(self, callback: Callable[[float, float], None], dt_s: float, priority: int = 100):
        if dt_s <= 0:
            raise ConfigurationError(f"period must be positive, got {dt_s}")
        self._callback = callback
        self.dt_s = dt_s
        self.priority = priority

    def step(self, t_s: float) -> float:
        self._callback(t_s, self.dt_s)
        return t_s + self.dt_s


class MicrogridSimulator(Simulator):
    """Steps a microgrid: controllers → power flow → accounting → telemetry.

    This is the composition the paper's scenarios use; it bundles the
    pieces so one entity owns the intra-step ordering.
    """

    priority = 50

    def __init__(
        self,
        microgrid: Microgrid,
        dt_s: float,
        grid: GridConnection | None = None,
        monitor: Monitor | None = None,
        controllers: list[Controller] | None = None,
    ) -> None:
        if dt_s <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt_s}")
        self.microgrid = microgrid
        self.dt_s = dt_s
        self.grid = grid
        self.monitor = monitor
        self.controllers = controllers or []
        self.last_result: StepResult | None = None

    def step(self, t_s: float) -> float:
        for controller in self.controllers:
            controller.on_step(self.microgrid, t_s, self.dt_s)
        result = self.microgrid.step(t_s, self.dt_s)
        if self.grid is not None:
            self.grid.record(result)
        if self.monitor is not None:
            self.monitor.record(result)
        self.last_result = result
        return t_s + self.dt_s


class CoSimEnvironment:
    """The co-simulation orchestrator."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, int, Simulator]] = []
        self._counter = itertools.count()
        self.now_s = 0.0
        self.steps_executed = 0

    def add_simulator(self, simulator: Simulator, start_s: float = 0.0) -> None:
        """Register a simulator with its first step time."""
        if start_s < self.now_s:
            raise ScheduleError(
                f"cannot schedule simulator in the past ({start_s} < now {self.now_s})"
            )
        heapq.heappush(
            self._queue, (start_s, simulator.priority, next(self._counter), simulator)
        )

    def run_until(self, end_s: float, max_steps: int | None = None) -> int:
        """Run events with time < ``end_s``; returns executed step count.

        ``max_steps`` guards against runaway zero-progress simulators.
        """
        if end_s < self.now_s:
            raise ScheduleError(f"end time {end_s} precedes current time {self.now_s}")
        executed = 0
        while self._queue and self._queue[0][0] < end_s:
            if max_steps is not None and executed >= max_steps:
                break
            t, _prio, _order, sim = heapq.heappop(self._queue)
            if t < self.now_s:
                raise ScheduleError(f"event at {t} precedes simulation time {self.now_s}")
            self.now_s = t
            next_t = sim.step(t)
            executed += 1
            if next_t is not None:
                if next_t <= t:
                    raise ScheduleError(
                        f"simulator {sim!r} returned non-advancing next time "
                        f"({next_t} <= {t})"
                    )
                heapq.heappush(
                    self._queue, (next_t, sim.priority, next(self._counter), sim)
                )
        self.steps_executed += executed
        # Advance the clock to the horizon even if the queue drained early.
        self.now_s = max(self.now_s, end_s)
        return executed
