"""Forecast-driven predictive battery control (paper §4.3 extension).

A receding-horizon heuristic controller: every ``reissue_hours`` it takes
forecasts of net load (demand − renewables) and grid carbon intensity
over the next ``horizon_hours`` and, if a *deficit during dirty hours*
is coming while the present hour is comparatively clean, it pre-charges
the battery from the grid now.  This is the carbon-arbitrage behaviour a
full MPC would produce, without requiring an LP solver.

Compared with :class:`~repro.cosim.controller.CarbonAwareChargeController`
(a static-threshold rule), this controller is forecast-aware: it only
buys energy it expects to need.
"""

from __future__ import annotations

import numpy as np

from ..data.forecast import ForecastModel
from ..exceptions import ConfigurationError
from .controller import Controller
from .grid import GridConnection
from .microgrid import Microgrid, StepResult
from .signal import Signal


class PredictiveChargeController(Controller):
    """Receding-horizon grid-charge controller.

    Parameters
    ----------
    net_load_forecast:
        Forecast model of net load (W; positive = deficit the battery /
        grid must cover).
    ci_forecast:
        Forecast model of grid carbon intensity (gCO2/kWh).
    ci_now:
        Signal with the *actual* current carbon intensity.
    charge_power_w:
        Grid-charge power when the controller decides to buy.
    advantage_g_per_kwh:
        Minimum CI advantage (future-dirty minus now) to justify buying
        energy now, accounting for round-trip losses.
    horizon_hours / reissue_hours:
        Look-ahead span and re-planning period.
    """

    def __init__(
        self,
        net_load_forecast: ForecastModel,
        ci_forecast: ForecastModel,
        ci_now: Signal,
        charge_power_w: float,
        advantage_g_per_kwh: float = 60.0,
        horizon_hours: int = 24,
        reissue_hours: int = 4,
        target_soc: float = 0.9,
        grid: "GridConnection | None" = None,
    ) -> None:
        if charge_power_w < 0:
            raise ConfigurationError("charge power must be >= 0")
        if horizon_hours <= 0 or reissue_hours <= 0:
            raise ConfigurationError("horizon and reissue period must be positive")
        if not 0.0 < target_soc <= 1.0:
            raise ConfigurationError("target SoC must be in (0, 1]")
        self.net_load_forecast = net_load_forecast
        self.ci_forecast = ci_forecast
        self.ci_now = ci_now
        self.charge_power_w = charge_power_w
        self.advantage = advantage_g_per_kwh
        self.horizon_hours = horizon_hours
        self.reissue_hours = reissue_hours
        self.target_soc = target_soc
        self.grid = grid
        self.grid_charge_energy_wh = 0.0
        self._plan_charge_now = False
        self._last_issue_hour: int | None = None

    def _replan(self, hour: int) -> None:
        net = self.net_load_forecast.issue(hour, self.horizon_hours)
        ci = self.ci_forecast.issue(hour, self.horizon_hours)
        now_ci = self.ci_now.at(hour * 3_600.0)

        deficit = net > 0.0
        if not deficit.any():
            self._plan_charge_now = False
            return
        # Energy-weighted CI of the upcoming deficit hours.
        deficit_ci = float(np.average(ci[deficit], weights=net[deficit]))
        self._plan_charge_now = deficit_ci - now_ci >= self.advantage

    def on_step(self, microgrid: Microgrid, t_s: float, dt_s: float) -> None:
        storage = microgrid.storage
        if storage is None or storage.capacity_wh <= 0:
            return
        hour = int(t_s // 3_600.0)
        if self._last_issue_hour is None or hour - self._last_issue_hour >= self.reissue_hours:
            self._replan(hour)
            self._last_issue_hour = hour

        if self._plan_charge_now and storage.soc() < self.target_soc:
            accepted = storage.update(self.charge_power_w, dt_s)
            self.grid_charge_energy_wh += accepted * dt_s / 3_600.0
            if self.grid is not None and accepted > 0.0:
                self.grid.record(
                    StepResult(
                        t_s=t_s,
                        dt_s=dt_s,
                        production_w=0.0,
                        consumption_w=0.0,
                        net_power_w=-accepted,
                        grid_import_w=accepted,
                        grid_export_w=0.0,
                        storage_charge_w=accepted,
                        storage_discharge_w=0.0,
                        storage_soc=storage.soc(),
                        unserved_w=0.0,
                    )
                )
