"""Generic storage interface for microgrids.

Vessim models storage behind a minimal interface: given a requested power
and a duration, the storage accepts what its physics allow and reports
the remainder.  Implementations: the paper's C/L/C lithium-ion battery
(:class:`repro.cosim.battery.CLCBattery`), an ideal battery for analytic
tests, and a hydrogen-like long-duration store (framework-extensibility
demonstration, §3.3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class Storage(ABC):
    """Abstract energy storage.

    Sign convention matches actors seen from the storage terminals:
    **positive power = charging** (energy flowing into storage),
    **negative = discharging** (energy delivered to the microgrid).
    """

    @abstractmethod
    def update(self, power_w: float, duration_s: float) -> float:
        """Request ``power_w`` for ``duration_s``; return the power actually
        accepted (charge) or delivered (discharge, negative)."""

    @abstractmethod
    def soc(self) -> float:
        """State of charge as a fraction of nameplate capacity in [0, 1]."""

    @property
    @abstractmethod
    def capacity_wh(self) -> float:
        """Nameplate energy capacity (Wh)."""

    @property
    @abstractmethod
    def usable_capacity_wh(self) -> float:
        """Energy between the operational SoC bounds (Wh)."""

    @property
    @abstractmethod
    def energy_wh(self) -> float:
        """Currently stored energy (Wh)."""

    def reset(self) -> None:  # pragma: no cover - optional override
        """Restore the initial state (optional)."""
        raise NotImplementedError
