"""Carbon-aware batch-job scheduling (paper §3.3/§4.3).

The paper positions Vessim as a testbed for "carbon-aware scheduling
policies" and lists "load shifting potential" as an optimization
objective.  This module provides the workload-side substrate: a queue of
deferrable batch jobs (think checkpointable HPC campaigns) scheduled
against grid carbon intensity under hard deadlines.

Architecture: a :class:`FlexibleLoad` actor carries the schedulable
power; the :class:`CarbonAwareBatchScheduler` controller decides, each
step, how much job power to run:

* **urgency floor** — a job whose remaining energy equals its remaining
  time × max power *must* run flat out (EDF-style feasibility);
* **opportunism** — below-threshold carbon intensity (or a renewable
  surplus signal) runs additional queued work up to the power cap.

The baseline comparator (:func:`run_at_release_schedule`) runs every job
as soon as it is released — what a carbon-oblivious scheduler does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from .actor import Actor
from .controller import Controller
from .microgrid import Microgrid
from .signal import ConstantSignal, Signal


@dataclass
class BatchJob:
    """One deferrable job: energy to deliver inside a time window."""

    name: str
    energy_wh: float
    release_hour: float
    deadline_hour: float
    max_power_w: float
    done_wh: float = 0.0

    def __post_init__(self) -> None:
        if self.energy_wh <= 0:
            raise ConfigurationError(f"job '{self.name}' energy must be positive")
        if self.max_power_w <= 0:
            raise ConfigurationError(f"job '{self.name}' max power must be positive")
        if self.deadline_hour <= self.release_hour:
            raise ConfigurationError(f"job '{self.name}' deadline precedes release")
        window_h = self.deadline_hour - self.release_hour
        if self.energy_wh > self.max_power_w * window_h + 1e-9:
            raise ConfigurationError(f"job '{self.name}' is infeasible within its window")

    @property
    def remaining_wh(self) -> float:
        return max(self.energy_wh - self.done_wh, 0.0)

    @property
    def finished(self) -> bool:
        return self.remaining_wh <= 1e-9

    def urgency_power_w(self, now_hour: float, dt_h: float = 1.0) -> float:
        """Minimum power this step to stay feasible (EDF floor).

        Feasibility requires ``remaining ≤ p·dt + max_power·(slack − dt)``
        — run at least ``p`` now, then max power can still finish in time.
        """
        if self.finished or now_hour < self.release_hour:
            return 0.0
        slack_h = self.deadline_hour - now_hour
        if slack_h <= dt_h:
            return min(self.max_power_w, self.remaining_wh / max(dt_h, 1e-9))
        floor = (self.remaining_wh - self.max_power_w * (slack_h - dt_h)) / dt_h
        return float(np.clip(floor, 0.0, self.max_power_w))


class FlexibleLoad(Actor):
    """A consumer actor whose demand is set by the scheduler each step."""

    def __init__(self, name: str = "flex") -> None:
        super().__init__(name, ConstantSignal(0.0), is_consumer=True)
        self.current_power_w = 0.0

    def power_at(self, t_s: float) -> float:
        if not self.enabled:
            return 0.0
        return -self.current_power_w


class CarbonAwareBatchScheduler(Controller):
    """Schedules batch jobs opportunistically under clean power.

    Parameters
    ----------
    flexible_load:
        The actor whose power this scheduler controls.
    jobs:
        Deferrable jobs; validated feasible at construction.
    carbon_intensity:
        Current-grid-CI signal (gCO2/kWh).
    ci_threshold_g_per_kwh:
        Run opportunistically when CI is at or below this value.
    """

    def __init__(
        self,
        flexible_load: FlexibleLoad,
        jobs: list[BatchJob],
        carbon_intensity: Signal,
        ci_threshold_g_per_kwh: float,
    ) -> None:
        if ci_threshold_g_per_kwh < 0:
            raise ConfigurationError("CI threshold must be non-negative")
        self.flexible_load = flexible_load
        self.jobs = list(jobs)
        self.carbon_intensity = carbon_intensity
        self.ci_threshold = ci_threshold_g_per_kwh
        self.scheduled_energy_wh = 0.0
        self.emissions_proxy_kg = 0.0  # Σ energy × CI (attribution metric)

    def _active(self, now_hour: float) -> list[BatchJob]:
        return [
            j for j in self.jobs
            if not j.finished and j.release_hour <= now_hour < j.deadline_hour + 1e-9
        ]

    def on_step(self, microgrid: Microgrid, t_s: float, dt_s: float) -> None:
        now_hour = t_s / 3_600.0
        dt_h = dt_s / 3_600.0
        ci = self.carbon_intensity.at(t_s)
        opportunistic = ci <= self.ci_threshold

        total_power = 0.0
        for job in self._active(now_hour):
            power = job.urgency_power_w(now_hour, dt_h)
            if opportunistic:
                power = job.max_power_w  # clean hour: run flat out
            power = min(power, job.remaining_wh / dt_h)
            if power <= 0:
                continue
            job.done_wh += power * dt_h
            total_power += power

        self.flexible_load.current_power_w = total_power
        self.scheduled_energy_wh += total_power * dt_h
        self.emissions_proxy_kg += total_power * dt_h / 1_000.0 * ci / 1_000.0

    # -- outcome metrics ------------------------------------------------------

    def all_finished(self) -> bool:
        return all(j.finished for j in self.jobs)

    def missed_deadlines(self, now_hour: float) -> list[BatchJob]:
        return [j for j in self.jobs if not j.finished and now_hour >= j.deadline_hour]


def run_at_release_schedule(
    jobs: list[BatchJob], ci_series: np.ndarray, step_h: float = 1.0
) -> float:
    """Emissions proxy (kgCO2) of the carbon-oblivious baseline.

    Every job runs at max power from its release until done; emissions
    attribute each hour's energy at that hour's CI.
    """
    total_kg = 0.0
    for job in jobs:
        remaining = job.energy_wh
        hour = job.release_hour
        while remaining > 1e-9 and hour < len(ci_series) * step_h:
            idx = int(hour / step_h) % len(ci_series)
            energy = min(job.max_power_w * step_h, remaining)
            total_kg += energy / 1_000.0 * float(ci_series[idx]) / 1_000.0
            remaining -= energy
            hour += step_h
    return total_kg
