"""Failure injection for reliability studies (§4.3 "reliability or
resilience metrics").

Real generation assets fail; sizing studies that assume perfect
availability overstate coverage.  :class:`OutageInjector` is a
controller that takes an actor offline during outage windows — either an
explicit schedule or a seeded random process with exponential
time-to-failure / time-to-repair (the standard two-state availability
model behind the SAM availability derates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import generator_for
from .controller import Controller
from .microgrid import Microgrid


@dataclass(frozen=True)
class OutageWindow:
    """One outage: the actor is offline during [start, end)."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError("outage end must follow start")


def random_outage_schedule(
    horizon_s: float,
    mtbf_hours: float,
    mttr_hours: float,
    name: str = "asset",
    seed_year: int = 2024,
) -> list[OutageWindow]:
    """Draw a two-state failure/repair schedule (exponential holding times).

    ``mtbf_hours`` is the mean up-time between failures; ``mttr_hours``
    the mean repair time.  Deterministic per (name, seed_year).
    """
    if mtbf_hours <= 0 or mttr_hours <= 0:
        raise ConfigurationError("MTBF and MTTR must be positive")
    rng = generator_for("outages", name, seed_year)
    windows: list[OutageWindow] = []
    t = float(rng.exponential(mtbf_hours * 3_600.0))
    while t < horizon_s:
        repair = float(rng.exponential(mttr_hours * 3_600.0))
        windows.append(OutageWindow(start_s=t, end_s=min(t + repair, horizon_s)))
        t += repair + float(rng.exponential(mtbf_hours * 3_600.0))
    return windows


class OutageInjector(Controller):
    """Disables an actor during its outage windows."""

    def __init__(self, actor_name: str, windows: list[OutageWindow]) -> None:
        self.actor_name = actor_name
        self.windows = sorted(windows, key=lambda w: w.start_s)
        self.outage_steps = 0

    def _in_outage(self, t_s: float) -> bool:
        # Windows are few; linear scan is fine and simple.
        for w in self.windows:
            if w.start_s <= t_s < w.end_s:
                return True
            if w.start_s > t_s:
                break
        return False

    def on_step(self, microgrid: Microgrid, t_s: float, dt_s: float) -> None:
        actor = microgrid.actor(self.actor_name)
        down = self._in_outage(t_s)
        actor.enabled = not down
        if down:
            self.outage_steps += 1

    def total_outage_hours(self) -> float:
        return sum((w.end_s - w.start_s) for w in self.windows) / 3_600.0
