"""Signals: time-indexed value providers for actors.

Vessim's actor-signal architecture decouples *what* produces a value (a
historical trace, a live system, a SAM model run) from *who* consumes it
(an actor inside the microgrid).  A signal answers one question: "what is
your value at simulation time t?".

:class:`SAMSignal` is the integration the paper contributes: it
"instantiates and runs a SAM simulation, extracts the resulting power
generation profile, and serves time-indexed power values to Vessim actors
during simulation" (§3.2).  Here the SAM run is one of our reimplemented
models (:class:`~repro.sam.solar.pvwatts.PVWattsModel` or
:class:`~repro.sam.wind.windpower.WindFarmModel`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from ..exceptions import SignalError
from ..timeseries import TimeSeries


class Signal(ABC):
    """Abstract time-indexed value provider."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__

    @abstractmethod
    def at(self, t_s: float) -> float:
        """Value at simulation time ``t_s`` (seconds since epoch)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} '{self.name}'>"


class ConstantSignal(Signal):
    """A fixed value for all times."""

    def __init__(self, value: float, name: str = "") -> None:
        super().__init__(name)
        self.value = float(value)

    def at(self, t_s: float) -> float:
        return self.value


class FunctionSignal(Signal):
    """Wraps an arbitrary callable of simulation time."""

    def __init__(self, fn: Callable[[float], float], name: str = "") -> None:
        super().__init__(name)
        self._fn = fn

    def at(self, t_s: float) -> float:
        return float(self._fn(t_s))


class TraceSignal(Signal):
    """Serves values from a :class:`~repro.timeseries.TimeSeries`.

    ``wrap=True`` (default) tiles the trace periodically, so a one-year
    trace can drive multi-year simulations — matching the paper's 20-year
    projections built from one simulated year.
    """

    def __init__(self, series: TimeSeries, wrap: bool = True, name: str = "") -> None:
        super().__init__(name or series.name)
        self.series = series
        self.wrap = wrap

    def at(self, t_s: float) -> float:
        series = self.series
        if self.wrap:
            span = series.duration_s
            t_s = series.start_s + float(np.mod(t_s - series.start_s, span))
        try:
            return series.at(t_s)
        except Exception as exc:  # out-of-range on non-wrapping signal
            raise SignalError(f"signal '{self.name}' cannot serve t={t_s}s: {exc}") from exc

    def mean(self) -> float:
        return self.series.mean()


class SAMSignal(TraceSignal):
    """A signal backed by a SAM-style model run (§3.2 of the paper).

    The model is executed eagerly at construction; the resulting hourly
    generation profile is then served as a trace.  This mirrors the paper's
    integration: SAM produces a full-year time series up front, and Vessim
    actors sample it during co-simulation.

    Parameters
    ----------
    model:
        An object with ``hourly_profile_w(resource) -> np.ndarray``
        (both :class:`PVWattsModel` and :class:`WindFarmModel` qualify).
    resource:
        The resource year to run the model against; must expose
        ``times_s`` and a regular hourly step.
    """

    def __init__(self, model, resource, name: str = "") -> None:
        profile_w = np.asarray(model.hourly_profile_w(resource), dtype=np.float64)
        times = np.asarray(resource.times_s, dtype=np.float64)
        if profile_w.shape != times.shape:
            raise SignalError(
                f"SAM model returned {profile_w.shape} samples for {times.shape} timestamps"
            )
        step = float(times[1] - times[0]) if times.size > 1 else 3_600.0
        series = TimeSeries(profile_w, step_s=step, start_s=float(times[0]), name=name or "sam")
        super().__init__(series, wrap=True, name=name or "sam")
        self.model = model
        self.resource = resource

    @property
    def profile_w(self) -> np.ndarray:
        """The precomputed generation profile (W)."""
        return self.series.values
