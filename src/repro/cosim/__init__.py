"""Vessim-style computing/energy co-simulator.

Vessim (Wiesner et al. 2024) composes heterogeneous simulation models —
energy producers, consumers, storage, grid interfaces, control systems —
into microgrid scenarios on top of the mosaik discrete-event co-simulation
framework.  This package reimplements the architecture the paper relies
on:

* :mod:`repro.cosim.engine` — a minimal mosaik-like discrete-event kernel
  that synchronizes steppable simulators;
* :mod:`repro.cosim.signal` — the *signal* abstraction serving
  time-indexed values (including :class:`SAMSignal`, the paper's
  contribution of wiring SAM generation models into Vessim);
* :mod:`repro.cosim.actor` — power actors (producers positive, consumers
  negative), fed by signals;
* :mod:`repro.cosim.battery` — the C/L/C storage model behind a generic
  :class:`~repro.cosim.storage.Storage` interface;
* :mod:`repro.cosim.microgrid` — per-step power-flow resolution
  (generation vs demand vs storage vs grid exchange);
* :mod:`repro.cosim.grid` — grid-exchange accounting (energy, emissions,
  cost);
* :mod:`repro.cosim.monitor` / :mod:`repro.cosim.controller` — telemetry
  collection and operational strategies (demand response, carbon-aware
  charging).
"""

from .actor import Actor
from .battery import CLCBattery, IdealBattery, LongDurationStorage
from .controller import CarbonAwareChargeController, Controller, DeferrableLoadController
from .faults import OutageInjector, OutageWindow, random_outage_schedule
from .engine import CoSimEnvironment, MicrogridSimulator, PeriodicSimulator, Simulator
from .grid import GridConnection
from .microgrid import Microgrid, StepResult
from .monitor import Monitor
from .policy import (
    CarbonAwarePolicy,
    DefaultPolicy,
    IslandedPolicy,
    MicrogridPolicy,
    TimeWindowPolicy,
    TouArbitragePolicy,
)
from .predictive import PredictiveChargeController
from .stacked import StackedStorage
from .scheduler import BatchJob, CarbonAwareBatchScheduler, FlexibleLoad
from .signal import (
    ConstantSignal,
    FunctionSignal,
    SAMSignal,
    Signal,
    TraceSignal,
)
from .storage import Storage

__all__ = [
    "Actor",
    "CLCBattery",
    "IdealBattery",
    "LongDurationStorage",
    "CarbonAwareChargeController",
    "Controller",
    "DeferrableLoadController",
    "CoSimEnvironment",
    "MicrogridSimulator",
    "PeriodicSimulator",
    "Simulator",
    "GridConnection",
    "Microgrid",
    "StepResult",
    "Monitor",
    "DefaultPolicy",
    "IslandedPolicy",
    "MicrogridPolicy",
    "TimeWindowPolicy",
    "CarbonAwarePolicy",
    "TouArbitragePolicy",
    "Signal",
    "ConstantSignal",
    "FunctionSignal",
    "TraceSignal",
    "SAMSignal",
    "Storage",
    "StackedStorage",
    "PredictiveChargeController",
    "OutageInjector",
    "OutageWindow",
    "random_outage_schedule",
    "BatchJob",
    "CarbonAwareBatchScheduler",
    "FlexibleLoad",
]
