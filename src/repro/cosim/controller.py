"""Controllers: operational strategies layered on the co-simulation.

Vessim supports control systems as first-class co-simulated entities; the
paper lists demand response and carbon-aware scheduling as strategies the
framework can accommodate (§3.3, §4.3).  Controllers run *before* the
microgrid resolves a step and may mutate actor state (scales/offsets) or
interact with storage directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from typing import TYPE_CHECKING

from ..exceptions import ConfigurationError
from .microgrid import Microgrid, StepResult
from .signal import Signal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .grid import GridConnection


class Controller(ABC):
    """Hook invoked once per step before power-flow resolution."""

    @abstractmethod
    def on_step(self, microgrid: Microgrid, t_s: float, dt_s: float) -> None:
        """Adjust the microgrid for the step starting at ``t_s``."""


class DeferrableLoadController(Controller):
    """Demand response: defer a slice of load under high carbon intensity.

    A fraction of the consumer's demand is deferrable (e.g. batch jobs,
    checkpoint-restartable HPC work).  When the grid carbon intensity
    exceeds a threshold, that slice is shed into a backlog; when intensity
    drops below, the backlog is replayed at a bounded rate.  Energy is
    conserved: everything deferred is eventually replayed.
    """

    def __init__(
        self,
        consumer_name: str,
        carbon_intensity: Signal,
        threshold_g_per_kwh: float,
        deferrable_fraction: float = 0.2,
        replay_rate_w: float | None = None,
    ) -> None:
        if not 0.0 <= deferrable_fraction <= 1.0:
            raise ConfigurationError("deferrable fraction must be in [0, 1]")
        if threshold_g_per_kwh < 0:
            raise ConfigurationError("threshold must be non-negative")
        self.consumer_name = consumer_name
        self.carbon_intensity = carbon_intensity
        self.threshold = threshold_g_per_kwh
        self.deferrable_fraction = deferrable_fraction
        self.replay_rate_w = replay_rate_w
        self.backlog_wh = 0.0
        self.deferred_total_wh = 0.0

    def on_step(self, microgrid: Microgrid, t_s: float, dt_s: float) -> None:
        actor = microgrid.actor(self.consumer_name)
        if not actor.is_consumer:
            raise ConfigurationError(f"actor '{actor.name}' is not a consumer")
        dt_h = dt_s / 3_600.0
        ci = self.carbon_intensity.at(t_s)

        # Base demand magnitude without our offset.
        actor.power_offset_w = 0.0
        base_demand_w = -actor.power_at(t_s)

        if ci > self.threshold:
            shed_w = self.deferrable_fraction * base_demand_w
            self.backlog_wh += shed_w * dt_h
            self.deferred_total_wh += shed_w * dt_h
            actor.power_offset_w = shed_w  # offset is +, reduces consumption
        elif self.backlog_wh > 0.0:
            max_rate = (
                self.replay_rate_w
                if self.replay_rate_w is not None
                else self.deferrable_fraction * base_demand_w
            )
            replay_w = min(max_rate, self.backlog_wh / dt_h)
            self.backlog_wh -= replay_w * dt_h
            actor.power_offset_w = -replay_w  # extra consumption


class CarbonAwareChargeController(Controller):
    """Charge storage from the grid when carbon intensity is very low.

    Extends the default self-consumption policy: if the grid is cleaner
    than ``charge_threshold`` and the battery is below ``target_soc``,
    the controller buys a grid charge this step.  The purchased energy is
    charged into storage directly and, when a
    :class:`~repro.cosim.grid.GridConnection` is attached, booked there as
    an extra import (with its Scope-2 emissions), keeping the energy
    ledger consistent with the policy-routed flows.
    """

    def __init__(
        self,
        carbon_intensity: Signal,
        charge_threshold_g_per_kwh: float,
        charge_power_w: float,
        target_soc: float = 0.9,
        grid: "GridConnection | None" = None,
    ) -> None:
        if charge_power_w < 0:
            raise ConfigurationError("charge power must be >= 0")
        if not 0.0 < target_soc <= 1.0:
            raise ConfigurationError("target SoC must be in (0, 1]")
        self.carbon_intensity = carbon_intensity
        self.charge_threshold = charge_threshold_g_per_kwh
        self.charge_power_w = charge_power_w
        self.target_soc = target_soc
        self.grid = grid
        self.grid_charge_energy_wh = 0.0

    def on_step(self, microgrid: Microgrid, t_s: float, dt_s: float) -> None:
        storage = microgrid.storage
        if storage is None or storage.capacity_wh <= 0:
            return
        ci = self.carbon_intensity.at(t_s)
        if ci <= self.charge_threshold and storage.soc() < self.target_soc:
            accepted = storage.update(self.charge_power_w, dt_s)
            self.grid_charge_energy_wh += accepted * dt_s / 3_600.0
            if self.grid is not None and accepted > 0.0:
                self.grid.record(
                    StepResult(
                        t_s=t_s,
                        dt_s=dt_s,
                        production_w=0.0,
                        consumption_w=0.0,
                        net_power_w=-accepted,
                        grid_import_w=accepted,
                        grid_export_w=0.0,
                        storage_charge_w=accepted,
                        storage_discharge_w=0.0,
                        storage_soc=storage.soc(),
                        unserved_w=0.0,
                    )
                )
