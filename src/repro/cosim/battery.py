"""Storage implementations.

:class:`CLCBattery` wraps the C/L/C model equations from
:mod:`repro.sam.batterymodels.clc` — the same function the vectorized
batch evaluator uses, so the co-simulated and batch paths share one
physics implementation.  :class:`IdealBattery` is a lossless, unlimited-
rate battery for analytic unit tests.  :class:`LongDurationStorage` is a
hydrogen-like store demonstrating the framework extensibility the paper
claims (§3.3: "additional technologies such as hydrogen production and
storage, and long-duration storage systems").
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..sam.batterymodels.clc import CLCParameters, clc_step
from ..units import SECONDS_PER_HOUR
from .storage import Storage


class CLCBattery(Storage):
    """The paper's battery: C/L/C model (Kazhamiaka et al. 2019).

    Tracks total charge/discharge throughput and the SoC history needed
    for the cycle metrics in Tables 1–2.
    """

    def __init__(
        self,
        capacity_wh: float,
        initial_soc: float = 0.5,
        params: CLCParameters | None = None,
        track_history: bool = False,
    ) -> None:
        if params is not None and not np.isclose(params.capacity_wh, capacity_wh):
            raise ConfigurationError("params.capacity_wh disagrees with capacity_wh")
        self.params = params or CLCParameters(capacity_wh=capacity_wh)
        if capacity_wh > 0:
            initial_soc = float(np.clip(initial_soc, self.params.soc_min, self.params.soc_max))
        self._initial_soc = initial_soc
        self._energy_wh = capacity_wh * initial_soc
        self.charge_energy_wh = 0.0
        self.discharge_energy_wh = 0.0
        self.track_history = track_history
        self.soc_history: list[float] = [initial_soc] if track_history else []

    # -- Storage interface ---------------------------------------------------

    def update(self, power_w: float, duration_s: float) -> float:
        if duration_s <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration_s}")
        accepted, new_e = clc_step(self.params, self._energy_wh, power_w, duration_s)
        self._energy_wh = new_e
        dt_h = duration_s / SECONDS_PER_HOUR
        if accepted > 0:
            self.charge_energy_wh += accepted * dt_h
        else:
            self.discharge_energy_wh += -accepted * dt_h
        if self.track_history:
            self.soc_history.append(self.soc())
        return accepted

    def soc(self) -> float:
        if self.params.capacity_wh <= 0:
            return 0.0
        return self._energy_wh / self.params.capacity_wh

    @property
    def capacity_wh(self) -> float:
        return self.params.capacity_wh

    @property
    def usable_capacity_wh(self) -> float:
        return self.params.usable_capacity_wh

    @property
    def energy_wh(self) -> float:
        return self._energy_wh

    def reset(self) -> None:
        self._energy_wh = self.params.capacity_wh * self._initial_soc
        self.charge_energy_wh = 0.0
        self.discharge_energy_wh = 0.0
        self.soc_history = [self._initial_soc] if self.track_history else []

    def equivalent_full_cycles(self) -> float:
        """Throughput-based EFC — the "Battery cycles" column of the tables."""
        if self.usable_capacity_wh <= 0:
            return 0.0
        return self.discharge_energy_wh / self.usable_capacity_wh


class IdealBattery(Storage):
    """Lossless, rate-unlimited battery for analytic tests."""

    def __init__(self, capacity_wh: float, initial_soc: float = 0.5) -> None:
        if capacity_wh < 0:
            raise ConfigurationError("capacity must be >= 0")
        self._capacity = float(capacity_wh)
        self._initial = float(np.clip(initial_soc, 0.0, 1.0)) * self._capacity
        self._energy_wh = self._initial

    def update(self, power_w: float, duration_s: float) -> float:
        dt_h = duration_s / SECONDS_PER_HOUR
        if power_w >= 0:
            room = self._capacity - self._energy_wh
            accepted = min(power_w, room / dt_h if dt_h > 0 else 0.0)
            self._energy_wh += accepted * dt_h
            return accepted
        available = self._energy_wh
        delivered = min(-power_w, available / dt_h if dt_h > 0 else 0.0)
        self._energy_wh -= delivered * dt_h
        return -delivered

    def soc(self) -> float:
        return self._energy_wh / self._capacity if self._capacity > 0 else 0.0

    @property
    def capacity_wh(self) -> float:
        return self._capacity

    @property
    def usable_capacity_wh(self) -> float:
        return self._capacity

    @property
    def energy_wh(self) -> float:
        return self._energy_wh

    def reset(self) -> None:
        self._energy_wh = self._initial


class LongDurationStorage(Storage):
    """Hydrogen-like long-duration store: huge capacity, poor round-trip.

    Electrolyzer/fuel-cell style: separate power ratings for charge
    (electrolysis) and discharge (fuel cell), ~35 % round-trip efficiency,
    negligible self-discharge.  Demonstrates the generic Storage seam.
    """

    def __init__(
        self,
        capacity_wh: float,
        charge_power_w: float,
        discharge_power_w: float,
        eta_charge: float = 0.65,
        eta_discharge: float = 0.55,
        initial_soc: float = 0.5,
    ) -> None:
        if capacity_wh < 0 or charge_power_w < 0 or discharge_power_w < 0:
            raise ConfigurationError("capacity and power ratings must be >= 0")
        if not (0 < eta_charge <= 1 and 0 < eta_discharge <= 1):
            raise ConfigurationError("efficiencies must be in (0, 1]")
        self._capacity = float(capacity_wh)
        self._p_chg = float(charge_power_w)
        self._p_dis = float(discharge_power_w)
        self._eta_c = eta_charge
        self._eta_d = eta_discharge
        self._initial = float(np.clip(initial_soc, 0.0, 1.0)) * self._capacity
        self._energy_wh = self._initial

    def update(self, power_w: float, duration_s: float) -> float:
        dt_h = duration_s / SECONDS_PER_HOUR
        if dt_h <= 0:
            raise ConfigurationError("duration must be positive")
        if power_w >= 0:
            headroom_w = (self._capacity - self._energy_wh) / dt_h / self._eta_c
            accepted = min(power_w, self._p_chg, headroom_w)
            self._energy_wh += accepted * self._eta_c * dt_h
            return accepted
        available_w = self._energy_wh / dt_h * self._eta_d
        delivered = min(-power_w, self._p_dis, available_w)
        self._energy_wh -= delivered * dt_h / self._eta_d
        return -delivered

    def soc(self) -> float:
        return self._energy_wh / self._capacity if self._capacity > 0 else 0.0

    @property
    def capacity_wh(self) -> float:
        return self._capacity

    @property
    def usable_capacity_wh(self) -> float:
        return self._capacity

    @property
    def energy_wh(self) -> float:
        return self._energy_wh

    def reset(self) -> None:
        self._energy_wh = self._initial
