"""Telemetry collection for co-simulation runs.

A :class:`Monitor` appends every :class:`~repro.cosim.microgrid.StepResult`
field to growable column buffers and exposes them as NumPy arrays — the
data the analysis layer (and the cross-validation tests against the batch
evaluator) consume.
"""

from __future__ import annotations

import numpy as np

from .microgrid import StepResult

_FIELDS = (
    "t_s",
    "production_w",
    "consumption_w",
    "net_power_w",
    "grid_import_w",
    "grid_export_w",
    "storage_charge_w",
    "storage_discharge_w",
    "storage_soc",
    "unserved_w",
)


class Monitor:
    """Column-oriented recorder of microgrid step results."""

    def __init__(self) -> None:
        self._columns: dict[str, list[float]] = {name: [] for name in _FIELDS}

    def record(self, result: StepResult) -> None:
        cols = self._columns
        for name in _FIELDS:
            cols[name].append(getattr(result, name))

    def __len__(self) -> int:
        return len(self._columns["t_s"])

    def series(self, name: str) -> np.ndarray:
        """One recorded column as a float64 array."""
        if name not in self._columns:
            raise KeyError(f"unknown series '{name}' (have {sorted(self._columns)})")
        return np.asarray(self._columns[name], dtype=np.float64)

    def as_dict(self) -> dict[str, np.ndarray]:
        """All recorded columns as arrays."""
        return {name: self.series(name) for name in _FIELDS}

    def reset(self) -> None:
        for buf in self._columns.values():
            buf.clear()
