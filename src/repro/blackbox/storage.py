"""Study persistence: pluggable storage backends for studies and trials.

Real Optuna deployments persist trials so that a killed 350-trial NSGA-II
search resumes instead of restarting, and so that several workers can
share one study.  This module provides the same seam (DESIGN.md §3):

* :class:`StudyStorage` — the backend protocol the study layer writes
  through (``create_study`` / ``load_study`` / trial start + finish
  records);
* :class:`InMemoryStorage` — dict-backed, process-local.  Round-trips
  every record through the same JSON encoding as the journal, so a study
  that works in memory is guaranteed to journal cleanly;
* :class:`JournalStorage` — an append-only JSONL journal file with
  crash-safe replay: every record is one ``json.dumps`` line, appended
  and fsynced, and replay tolerates a torn final line (the crash case)
  by ignoring undecodable lines.  Replay is last-write-wins per trial
  number, which lets a resumed study re-run a partial NSGA-II generation
  under the same trial numbers (DESIGN.md §3, "generation alignment").

Storage-aware entry points: ``create_study(..., storage=...,
load_if_exists=True)``, ``Study.ask`` / ``Study.tell`` (which record
trial starts/finishes), and
``OptimizationRunner.run_blackbox(storage=...)``.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..exceptions import OptimizationError
from .distributions import distribution_from_dict, distribution_to_dict
from .trial import FrozenTrial, TrialState

_COMPOSITION_TAG = "__composition__"
_REPR_TAG = "__repr__"


# -- value (de)serialization ----------------------------------------------------


def _encode_value(value: Any) -> Any:
    """JSON-ready encoding of one attribute/parameter value.

    Handles numpy scalars, containers, and
    :class:`~repro.core.composition.MicrogridComposition` (stored by
    ``run_blackbox`` as a user attr).  Unknown objects degrade to a
    tagged ``repr`` string — lossy but journal-safe.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    # Lazy import: core depends on blackbox, not the other way around.
    from ..core.composition import MicrogridComposition

    if isinstance(value, MicrogridComposition):
        return {
            _COMPOSITION_TAG: {
                "n_turbines": value.n_turbines,
                "solar_kw": value.solar_kw,
                "battery_units": value.battery_units,
            }
        }
    return {_REPR_TAG: repr(value)}


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if _COMPOSITION_TAG in value and len(value) == 1:
            from ..core.composition import MicrogridComposition

            fields_ = value[_COMPOSITION_TAG]
            return MicrogridComposition(
                n_turbines=int(fields_["n_turbines"]),
                solar_kw=float(fields_["solar_kw"]),
                battery_units=int(fields_["battery_units"]),
            )
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_trial(trial: FrozenTrial) -> dict[str, Any]:
    """JSON-ready encoding of a frozen trial (both backends use this)."""
    return {
        "number": trial.number,
        "state": trial.state.value,
        "params": {k: _encode_value(v) for k, v in trial.params.items()},
        "distributions": {
            k: distribution_to_dict(d) for k, d in trial.distributions.items()
        },
        "values": None if trial.values is None else [float(v) for v in trial.values],
        "intermediate": {str(k): float(v) for k, v in trial.intermediate.items()},
        "user_attrs": {k: _encode_value(v) for k, v in trial.user_attrs.items()},
        "system_attrs": {k: _encode_value(v) for k, v in trial.system_attrs.items()},
    }


def decode_trial(record: dict[str, Any]) -> FrozenTrial:
    """Inverse of :func:`encode_trial`."""
    values = record.get("values")
    return FrozenTrial(
        number=int(record["number"]),
        state=TrialState(record["state"]),
        params={k: _decode_value(v) for k, v in record.get("params", {}).items()},
        distributions={
            k: distribution_from_dict(d)
            for k, d in record.get("distributions", {}).items()
        },
        values=None if values is None else tuple(float(v) for v in values),
        intermediate={int(k): float(v) for k, v in record.get("intermediate", {}).items()},
        user_attrs={k: _decode_value(v) for k, v in record.get("user_attrs", {}).items()},
        system_attrs={
            k: _decode_value(v) for k, v in record.get("system_attrs", {}).items()
        },
    )


# -- the storage protocol --------------------------------------------------------


@dataclass
class StoredStudy:
    """Replayed state of one persisted study."""

    name: str
    directions: list[str]
    metadata: dict[str, Any] = field(default_factory=dict)
    #: trials keyed by number (last write wins during replay)
    trials_by_number: dict[int, FrozenTrial] = field(default_factory=dict)

    @property
    def trials(self) -> list[FrozenTrial]:
        """All trials in number order (any state)."""
        return [self.trials_by_number[n] for n in sorted(self.trials_by_number)]

    def finished_trials(self) -> list[FrozenTrial]:
        """Trials with a terminal state, in number order."""
        return [t for t in self.trials if t.state.is_finished()]


class StudyStorage(ABC):
    """Backend protocol for persisting studies (DESIGN.md §3).

    The study layer writes through three hooks: ``create_study`` once,
    ``record_trial_start`` on every ``ask`` and ``record_trial_finish``
    on every ``tell``.  ``load_study`` replays the backend's state.
    """

    @abstractmethod
    def create_study(
        self, study_name: str, directions: list[str], metadata: dict[str, Any]
    ) -> None:
        """Register a new study; raises if the name is already taken."""

    @abstractmethod
    def load_study(self, study_name: str) -> StoredStudy | None:
        """Replayed study state, or ``None`` if unknown."""

    @abstractmethod
    def record_trial_start(self, study_name: str, trial: FrozenTrial) -> None:
        """Record that a trial was asked (params not yet suggested)."""

    @abstractmethod
    def record_trial_finish(self, study_name: str, trial: FrozenTrial) -> None:
        """Record a trial reaching a terminal state (full snapshot)."""

    @abstractmethod
    def load_all(self) -> dict[str, StoredStudy]:
        """Replayed state of every study in the backend."""

    def study_names(self) -> list[str]:
        return sorted(self.load_all())


# -- in-memory backend -----------------------------------------------------------


class InMemoryStorage(StudyStorage):
    """Process-local storage — the default behaviour, made explicit.

    Stores the *encoded* records (not live objects), so anything that
    works against :class:`InMemoryStorage` journals identically under
    :class:`JournalStorage`, and loaded trials never alias stored ones.
    """

    def __init__(self) -> None:
        self._studies: dict[str, dict[str, Any]] = {}

    def create_study(
        self, study_name: str, directions: list[str], metadata: dict[str, Any]
    ) -> None:
        if study_name in self._studies:
            raise OptimizationError(f"study '{study_name}' already exists in storage")
        self._studies[study_name] = {
            "directions": list(directions),
            "metadata": _encode_value(dict(metadata)),
            "trials": {},
        }

    def _require(self, study_name: str) -> dict[str, Any]:
        if study_name not in self._studies:
            raise OptimizationError(f"unknown study '{study_name}' in storage")
        return self._studies[study_name]

    def load_study(self, study_name: str) -> StoredStudy | None:
        if study_name not in self._studies:
            return None
        raw = self._studies[study_name]
        return StoredStudy(
            name=study_name,
            directions=list(raw["directions"]),
            metadata=_decode_value(raw["metadata"]),
            trials_by_number={
                n: decode_trial(rec) for n, rec in raw["trials"].items()
            },
        )

    def record_trial_start(self, study_name: str, trial: FrozenTrial) -> None:
        self._require(study_name)["trials"][trial.number] = encode_trial(trial)

    def record_trial_finish(self, study_name: str, trial: FrozenTrial) -> None:
        self._require(study_name)["trials"][trial.number] = encode_trial(trial)

    def load_all(self) -> dict[str, StoredStudy]:
        out = {}
        for name in self._studies:
            loaded = self.load_study(name)
            assert loaded is not None
            out[name] = loaded
        return out


# -- journal backend -------------------------------------------------------------


class JournalStorage(StudyStorage):
    """Append-only JSONL journal with crash-safe replay.

    One JSON record per line; three operations::

        {"op": "create", "study": ..., "directions": [...], "metadata": {...}}
        {"op": "start",  "study": ..., "number": n}
        {"op": "finish", "study": ..., "trial": {...full snapshot...}}

    Appends are flushed and fsynced, so a ``kill -9`` loses at most the
    line being written; replay skips any line that fails to decode
    (the torn tail) and applies records in order with last-write-wins
    per trial number.  Several studies can share one journal file.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self._file = None  # lazily opened append handle
        #: parsed-record cache keyed on (st_size, st_mtime_ns) — the
        #: journal is append-only and fsynced, so the stat signature
        #: changes on every write; avoids re-decoding the whole file for
        #: each of the several load_study/load_all calls a CLI run makes
        self._records_cache: tuple[tuple[int, int], list[dict[str, Any]]] | None = None

    # -- low-level record I/O ---------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        # NB: no sort_keys — params/distributions dict order is the
        # define-by-run suggestion order, and genetic samplers iterate it
        # when mapping RNG draws to parameters; reordering would break
        # resumed-run determinism.
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Close the append handle (reopened automatically on next write)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JournalStorage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _records(self) -> list[dict[str, Any]]:
        if not self.path.exists():
            return []
        stat = self.path.stat()
        signature = (stat.st_size, stat.st_mtime_ns)
        if self._records_cache is not None and self._records_cache[0] == signature:
            return self._records_cache[1]
        records: list[dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a crash — replay past it
                if isinstance(rec, dict):
                    records.append(rec)
        self._records_cache = (signature, records)
        return records

    # -- StudyStorage interface -------------------------------------------

    def create_study(
        self, study_name: str, directions: list[str], metadata: dict[str, Any]
    ) -> None:
        if self.load_study(study_name) is not None:
            raise OptimizationError(
                f"study '{study_name}' already exists in {self.path}"
            )
        self._append(
            {
                "op": "create",
                "study": study_name,
                "directions": list(directions),
                "metadata": _encode_value(dict(metadata)),
            }
        )

    def load_study(self, study_name: str) -> StoredStudy | None:
        return self.load_all().get(study_name)

    def record_trial_start(self, study_name: str, trial: FrozenTrial) -> None:
        self._append({"op": "start", "study": study_name, "number": trial.number})

    def record_trial_finish(self, study_name: str, trial: FrozenTrial) -> None:
        self._append(
            {"op": "finish", "study": study_name, "trial": encode_trial(trial)}
        )

    def load_all(self) -> dict[str, StoredStudy]:
        studies: dict[str, StoredStudy] = {}
        for rec in self._records():
            op = rec.get("op")
            name = rec.get("study")
            if not isinstance(name, str):
                continue
            if op == "create":
                if name in studies:
                    continue  # duplicate create: first one wins
                studies[name] = StoredStudy(
                    name=name,
                    directions=[str(d) for d in rec.get("directions", [])],
                    metadata=_decode_value(rec.get("metadata", {})),
                )
            elif op == "start" and name in studies:
                number = int(rec["number"])
                studies[name].trials_by_number[number] = FrozenTrial(number=number)
            elif op == "finish" and name in studies:
                trial = decode_trial(rec["trial"])
                studies[name].trials_by_number[trial.number] = trial
        return studies
