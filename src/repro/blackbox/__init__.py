"""Black-box optimization framework (Optuna stand-in).

The paper uses Optuna for multi-objective black-box search over microgrid
compositions (NSGA-II, 350 trials, population 50).  This package
reimplements the subset of Optuna's API the paper exercises:

* define-by-run parameter suggestion (``trial.suggest_int`` etc.),
* single- and multi-objective studies with ask/tell and ``optimize``,
* samplers: Random, Grid (the exhaustive baseline), **NSGA-II**
  (non-dominated sorting genetic algorithm — the paper's search engine),
  and a simplified TPE for the sampler-ablation bench,
* Pareto utilities (non-dominated sorting, crowding distance,
  hypervolume) shared with :mod:`repro.core.pareto`,
* a median pruner for the "dynamic pruning / early stopping" future-work
  hook (§4.4),
* **study persistence** (:mod:`repro.blackbox.storage`, DESIGN.md §3,
  §7) — ``create_study(storage=..., load_if_exists=True)`` resumes a
  killed study from a pluggable backend (in-memory, JSONL journal, or
  SQLite — any spec the URL registry resolves, e.g.
  ``sqlite:///study.db``), with sharded stores and offline merge for
  multi-worker runs,
* **parallel trial execution** (:mod:`repro.blackbox.parallel`,
  DESIGN.md §4) — :class:`ParallelStudyRunner` fans independent trials
  out across processes with deterministic per-trial RNG seeding,
* **pipelined, generation-free dispatch** (DESIGN.md §10) —
  :class:`PipelinedDispatcher` streams candidates to worker slots as
  they free, optionally breeding the next generation's first candidates
  speculatively; with speculation off it is bit-identical to the
  generation-batched runner.

Storage-aware APIs: ``create_study`` / ``Study.ask`` / ``Study.tell``
(record through a backend), ``ParallelStudyRunner`` (journals batches as
they complete).  Samplers, pruners, and distributions are pure
strategies and never touch storage themselves.
"""

from .distributions import (
    CategoricalDistribution,
    Distribution,
    FloatDistribution,
    IntDistribution,
)
from .multiobjective import (
    crowding_distance,
    dominates,
    hypervolume_2d,
    non_dominated_sort,
    pareto_front_indices,
)
from .pruners import MedianPruner, NopPruner, SuccessiveHalvingPruner
from .samplers import GridSampler, NSGA2Sampler, RandomSampler, ScalarizationSampler, TPESampler
from .study import Study, StudyDirection, create_study
from .trial import FrozenTrial, Trial, TrialState
from .storage import (
    InMemoryStorage,
    JournalStorage,
    ShardedStorage,
    SQLiteStorage,
    StoredStudy,
    StudyStorage,
    merge_stores,
    storage_from_url,
)
from .parallel import ParallelStudyRunner, PipelinedDispatcher

__all__ = [
    "StudyStorage",
    "StoredStudy",
    "InMemoryStorage",
    "JournalStorage",
    "SQLiteStorage",
    "ShardedStorage",
    "merge_stores",
    "storage_from_url",
    "ParallelStudyRunner",
    "PipelinedDispatcher",
    "Distribution",
    "FloatDistribution",
    "IntDistribution",
    "CategoricalDistribution",
    "dominates",
    "non_dominated_sort",
    "pareto_front_indices",
    "crowding_distance",
    "hypervolume_2d",
    "MedianPruner",
    "NopPruner",
    "SuccessiveHalvingPruner",
    "RandomSampler",
    "GridSampler",
    "NSGA2Sampler",
    "ScalarizationSampler",
    "TPESampler",
    "Study",
    "StudyDirection",
    "create_study",
    "Trial",
    "FrozenTrial",
    "TrialState",
]
