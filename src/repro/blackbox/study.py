"""Studies: the optimization driver (Optuna's ``Study`` equivalent).

Supports single- and multi-objective optimization with the ask/tell
protocol and the higher-level ``optimize`` loop, trial bookkeeping,
Pareto-front extraction (``best_trials``), and pluggable samplers/pruners.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Sequence

import numpy as np

from ..exceptions import OptimizationError, TrialPruned
from .multiobjective import pareto_front_indices
from .pruners import NopPruner
from .samplers.base import Sampler
from .samplers.random import RandomSampler
from .trial import FrozenTrial, Trial, TrialState

ObjectiveFn = Callable[[Trial], "float | Sequence[float]"]


class StudyDirection(enum.Enum):
    """Optimization direction of one objective."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"

    def is_minimize(self) -> bool:
        return self is StudyDirection.MINIMIZE

    @classmethod
    def parse(cls, value: "str | StudyDirection") -> "StudyDirection":
        if isinstance(value, StudyDirection):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise OptimizationError(
                f"unknown direction '{value}' (use 'minimize' or 'maximize')"
            ) from None


class Study:
    """A collection of trials optimizing one or more objectives."""

    def __init__(
        self,
        directions: Sequence["str | StudyDirection"] = ("minimize",),
        sampler: Sampler | None = None,
        pruner=None,
        study_name: str = "study",
    ) -> None:
        if not directions:
            raise OptimizationError("need at least one direction")
        self.directions = [StudyDirection.parse(d) for d in directions]
        self.sampler = sampler or RandomSampler()
        self.pruner = pruner or NopPruner()
        self.study_name = study_name
        self.trials: list[FrozenTrial] = []

    # -- properties -----------------------------------------------------------

    @property
    def n_objectives(self) -> int:
        return len(self.directions)

    @property
    def direction(self) -> StudyDirection:
        if self.n_objectives != 1:
            raise OptimizationError("multi-objective study; use .directions")
        return self.directions[0]

    # -- ask / tell -------------------------------------------------------------

    def ask(self) -> Trial:
        """Create a new running trial."""
        frozen = FrozenTrial(number=len(self.trials))
        self.trials.append(frozen)
        return Trial(self, frozen)

    def tell(
        self,
        trial: "Trial | int",
        values: "float | Sequence[float] | None" = None,
        state: TrialState = TrialState.COMPLETE,
    ) -> FrozenTrial:
        """Finish a trial with its objective value(s) or a terminal state."""
        number = trial if isinstance(trial, int) else trial.number
        if not 0 <= number < len(self.trials):
            raise OptimizationError(f"unknown trial number {number}")
        frozen = self.trials[number]
        if frozen.state.is_finished():
            raise OptimizationError(f"trial {number} already finished ({frozen.state})")

        if state == TrialState.COMPLETE:
            if values is None:
                raise OptimizationError("COMPLETE trials need objective values")
            vals = (values,) if np.isscalar(values) else tuple(values)
            if len(vals) != self.n_objectives:
                raise OptimizationError(
                    f"objective returned {len(vals)} values, study has "
                    f"{self.n_objectives} directions"
                )
            if not all(np.isfinite(v) for v in vals):
                raise OptimizationError(f"non-finite objective values: {vals}")
            frozen.values = tuple(float(v) for v in vals)
        frozen.state = state
        self.sampler.on_trial_complete(self, frozen)
        return frozen

    # -- optimize loop ------------------------------------------------------------

    def optimize(
        self,
        objective: ObjectiveFn,
        n_trials: int,
        catch: tuple[type[Exception], ...] = (),
        callbacks: Sequence[Callable[["Study", FrozenTrial], None]] = (),
    ) -> None:
        """Run the classic optimize loop for ``n_trials`` trials."""
        if n_trials <= 0:
            raise OptimizationError(f"n_trials must be positive, got {n_trials}")
        for _ in range(n_trials):
            trial = self.ask()
            try:
                values = objective(trial)
            except TrialPruned:
                frozen = self.tell(trial, state=TrialState.PRUNED)
            except catch:
                frozen = self.tell(trial, state=TrialState.FAILED)
            else:
                frozen = self.tell(trial, values=values)
            for callback in callbacks:
                callback(self, frozen)

    # -- results --------------------------------------------------------------------

    def minimized_values(self, values_list: Sequence[Sequence[float]]) -> np.ndarray:
        """Objective matrix with maximize-directions negated (→ minimize)."""
        arr = np.asarray(values_list, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        signs = np.array(
            [1.0 if d.is_minimize() else -1.0 for d in self.directions]
        )
        return arr * signs

    def completed_trials(self) -> list[FrozenTrial]:
        return [t for t in self.trials if t.state == TrialState.COMPLETE]

    @property
    def best_trial(self) -> FrozenTrial:
        """Best completed trial (single-objective only)."""
        if self.n_objectives != 1:
            raise OptimizationError("multi-objective study; use .best_trials")
        completed = self.completed_trials()
        if not completed:
            raise OptimizationError("no completed trials")
        sign = 1.0 if self.directions[0].is_minimize() else -1.0
        return min(completed, key=lambda t: sign * t.values[0])

    @property
    def best_value(self) -> float:
        return self.best_trial.values[0]

    @property
    def best_params(self) -> dict[str, Any]:
        return dict(self.best_trial.params)

    @property
    def best_trials(self) -> list[FrozenTrial]:
        """Pareto-optimal completed trials (multi-objective result)."""
        completed = self.completed_trials()
        if not completed:
            return []
        values = self.minimized_values([t.values for t in completed])
        idx = pareto_front_indices(values)
        return [completed[i] for i in idx]


def create_study(
    directions: "Sequence[str | StudyDirection] | None" = None,
    direction: "str | StudyDirection | None" = None,
    sampler: Sampler | None = None,
    pruner=None,
    study_name: str = "study",
) -> Study:
    """Factory mirroring ``optuna.create_study``."""
    if direction is not None and directions is not None:
        raise OptimizationError("pass either direction or directions, not both")
    if direction is not None:
        directions = [direction]
    if directions is None:
        directions = ["minimize"]
    return Study(directions=directions, sampler=sampler, pruner=pruner, study_name=study_name)
