"""Studies: the optimization driver (Optuna's ``Study`` equivalent).

Supports single- and multi-objective optimization with the ask/tell
protocol and the higher-level ``optimize`` loop, trial bookkeeping,
Pareto-front extraction (``best_trials``), and pluggable samplers/pruners.

Studies are **storage-aware** (DESIGN.md §3): pass a
:class:`~repro.blackbox.storage.StudyStorage` — or a storage spec
string such as ``sqlite:///study.db`` resolved through the URL registry
(DESIGN.md §7) — to :func:`create_study` and every ``ask``/``tell`` is
recorded through it; with ``load_if_exists=True`` a previously
persisted study is reloaded and continues where it stopped
(Optuna-style resume).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from ..exceptions import OptimizationError, TrialPruned
from .multiobjective import pareto_front_indices
from .pruners import NopPruner
from .samplers.base import Sampler
from .samplers.random import RandomSampler
from .trial import FrozenTrial, Trial, TrialState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .storage import StudyStorage

ObjectiveFn = Callable[[Trial], "float | Sequence[float]"]


class StudyDirection(enum.Enum):
    """Optimization direction of one objective."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"

    def is_minimize(self) -> bool:
        return self is StudyDirection.MINIMIZE

    @classmethod
    def parse(cls, value: "str | StudyDirection") -> "StudyDirection":
        if isinstance(value, StudyDirection):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise OptimizationError(
                f"unknown direction '{value}' (use 'minimize' or 'maximize')"
            ) from None


class Study:
    """A collection of trials optimizing one or more objectives."""

    def __init__(
        self,
        directions: Sequence["str | StudyDirection"] = ("minimize",),
        sampler: Sampler | None = None,
        pruner=None,
        study_name: str = "study",
        storage: "StudyStorage | str | None" = None,
        metadata: dict[str, Any] | None = None,
    ) -> None:
        if not directions:
            raise OptimizationError("need at least one direction")
        from .storage import resolve_storage

        self.directions = [StudyDirection.parse(d) for d in directions]
        self.sampler = sampler or RandomSampler()
        self.pruner = pruner or NopPruner()
        self.study_name = study_name
        #: persistence backend; ``None`` keeps the study purely in-process
        #: (spec strings resolve through the URL registry, DESIGN.md §7)
        self.storage = resolve_storage(storage)
        #: free-form study metadata, persisted with the study record
        self.metadata: dict[str, Any] = dict(metadata or {})
        self.trials: list[FrozenTrial] = []

    # -- properties -----------------------------------------------------------

    @property
    def n_objectives(self) -> int:
        return len(self.directions)

    @property
    def direction(self) -> StudyDirection:
        if self.n_objectives != 1:
            raise OptimizationError("multi-objective study; use .directions")
        return self.directions[0]

    # -- ask / tell -------------------------------------------------------------

    def ask(self) -> Trial:
        """Create a new running trial (recorded in storage, if any)."""
        frozen = FrozenTrial(number=len(self.trials))
        self.trials.append(frozen)
        if self.storage is not None:
            self.storage.record_trial_start(self.study_name, frozen)
        return Trial(self, frozen)

    def tell(
        self,
        trial: "Trial | int",
        values: "float | Sequence[float] | None" = None,
        state: TrialState = TrialState.COMPLETE,
    ) -> FrozenTrial:
        """Finish a trial with its objective value(s) or a terminal state.

        Storage-aware: the finished trial's full snapshot is recorded
        through the study's storage backend (if any) before the sampler
        is notified.
        """
        number = trial if isinstance(trial, int) else trial.number
        if not 0 <= number < len(self.trials):
            raise OptimizationError(f"unknown trial number {number}")
        frozen = self.trials[number]
        if frozen.state.is_finished():
            raise OptimizationError(f"trial {number} already finished ({frozen.state})")

        if state == TrialState.COMPLETE:
            if values is None:
                raise OptimizationError("COMPLETE trials need objective values")
            vals = (values,) if np.isscalar(values) else tuple(values)
            if len(vals) != self.n_objectives:
                raise OptimizationError(
                    f"objective returned {len(vals)} values, study has "
                    f"{self.n_objectives} directions"
                )
            if not all(np.isfinite(v) for v in vals):
                raise OptimizationError(f"non-finite objective values: {vals}")
            frozen.values = tuple(float(v) for v in vals)
        frozen.state = state
        if self.storage is not None:
            self.storage.record_trial_finish(self.study_name, frozen)
        self.sampler.tell(self, frozen)
        return frozen

    def drop_trailing_partial_batch(self, batch_size: int) -> int:
        """Discard trials beyond the last full ``batch_size`` boundary.

        Resume alignment for generational drivers (DESIGN.md §3): a
        reloaded study interrupted mid-generation must not let the
        sampler breed from a history an uninterrupted run never sees.
        Returns the number of trials kept; the dropped numbers are
        re-asked by the caller (the journal's last-write-wins replay
        keeps re-told trials consistent).
        """
        if batch_size <= 0:
            raise OptimizationError("batch_size must be positive")
        keep = (len(self.trials) // batch_size) * batch_size
        del self.trials[keep:]
        return keep

    # -- optimize loop ------------------------------------------------------------

    def optimize(
        self,
        objective: ObjectiveFn,
        n_trials: int,
        catch: tuple[type[Exception], ...] = (),
        callbacks: Sequence[Callable[["Study", FrozenTrial], None]] = (),
    ) -> None:
        """Run the classic optimize loop for ``n_trials`` trials."""
        if n_trials <= 0:
            raise OptimizationError(f"n_trials must be positive, got {n_trials}")
        for _ in range(n_trials):
            trial = self.ask()
            try:
                values = objective(trial)
            except TrialPruned:
                frozen = self.tell(trial, state=TrialState.PRUNED)
            except catch:
                frozen = self.tell(trial, state=TrialState.FAILED)
            else:
                frozen = self.tell(trial, values=values)
            for callback in callbacks:
                callback(self, frozen)

    # -- results --------------------------------------------------------------------

    def minimized_values(self, values_list: Sequence[Sequence[float]]) -> np.ndarray:
        """Objective matrix with maximize-directions negated (→ minimize)."""
        arr = np.asarray(values_list, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        signs = np.array(
            [1.0 if d.is_minimize() else -1.0 for d in self.directions]
        )
        return arr * signs

    def completed_trials(self) -> list[FrozenTrial]:
        return [t for t in self.trials if t.state == TrialState.COMPLETE]

    @property
    def best_trial(self) -> FrozenTrial:
        """Best completed trial (single-objective only)."""
        if self.n_objectives != 1:
            raise OptimizationError("multi-objective study; use .best_trials")
        completed = self.completed_trials()
        if not completed:
            raise OptimizationError("no completed trials")
        sign = 1.0 if self.directions[0].is_minimize() else -1.0
        return min(completed, key=lambda t: sign * t.values[0])

    @property
    def best_value(self) -> float:
        return self.best_trial.values[0]

    @property
    def best_params(self) -> dict[str, Any]:
        return dict(self.best_trial.params)

    @property
    def best_trials(self) -> list[FrozenTrial]:
        """Pareto-optimal completed trials (multi-objective result)."""
        completed = self.completed_trials()
        if not completed:
            return []
        values = self.minimized_values([t.values for t in completed])
        idx = pareto_front_indices(values)
        return [completed[i] for i in idx]


def create_study(
    directions: "Sequence[str | StudyDirection] | None" = None,
    direction: "str | StudyDirection | None" = None,
    sampler: Sampler | None = None,
    pruner=None,
    study_name: str = "study",
    storage: "StudyStorage | str | None" = None,
    load_if_exists: bool = False,
    metadata: dict[str, Any] | None = None,
) -> Study:
    """Factory mirroring ``optuna.create_study`` (storage-aware).

    ``storage`` may be a backend instance or a spec string
    (``journal:///p.jsonl``, ``sqlite:///p.db``, ``memory://``, or a
    bare path) resolved through the URL registry (DESIGN.md §7).
    With ``storage`` set, the study is registered in the backend and all
    subsequent ``ask``/``tell`` calls are recorded through it.  If the
    name already exists in the backend this raises — unless
    ``load_if_exists=True``, in which case the persisted finished trials
    are loaded back (Optuna-style resume).  Trials that were still
    RUNNING when the previous process died carry no parameters and are
    discarded; remaining trials are renumbered consecutively, so the
    resumed study re-asks the lost numbers (the journal's
    last-write-wins replay keeps this consistent, DESIGN.md §3).
    """
    if direction is not None and directions is not None:
        raise OptimizationError("pass either direction or directions, not both")
    if direction is not None:
        directions = [direction]
    if directions is None:
        directions = ["minimize"]
    study = Study(
        directions=directions,
        sampler=sampler,
        pruner=pruner,
        study_name=study_name,
        storage=storage,
        metadata=metadata,
    )
    storage = study.storage  # spec strings were resolved by Study.__init__
    if storage is None:
        return study

    direction_values = [d.value for d in study.directions]
    existing = storage.load_study(study_name)
    if existing is None:
        storage.create_study(study_name, direction_values, study.metadata)
        return study
    if not load_if_exists:
        raise OptimizationError(
            f"study '{study_name}' already exists in storage "
            "(pass load_if_exists=True to resume)"
        )
    if existing.directions != direction_values:
        raise OptimizationError(
            f"study '{study_name}' was persisted with directions "
            f"{existing.directions}, requested {direction_values}"
        )
    finished = existing.finished_trials()
    max_old = max((t.number for t in existing.trials), default=-1)
    renumbered = False
    for i, trial in enumerate(finished):
        if trial.number != i:
            # Compact numbering: list index == trial number.  The gap
            # means an unfinished trial sat *between* finished ones, so
            # the compacted numbers must be written back — otherwise the
            # surviving journal records (old numbers) collide with the
            # numbers the resumed study re-asks and a later resume would
            # drop or duplicate trials.
            trial.number = i
            renumbered = True
            storage.record_trial_finish(study_name, trial)
        study.trials.append(trial)
    if renumbered:
        # Tombstone the now-orphaned old numbers: a bare start record
        # makes their stale finish records replay as RUNNING, which the
        # next load discards.  (The contiguous case — unfinished trials
        # only at the tail, as the batch drivers produce — needs none of
        # this: numbers are unchanged and stale tails already end in a
        # start record.)
        for n in range(len(finished), max_old + 1):
            storage.record_trial_start(study_name, FrozenTrial(number=n))
    study.metadata = dict(existing.metadata)
    return study
