"""Parameter distributions for define-by-run search spaces.

Mirrors ``optuna.distributions``: each distribution knows its domain, can
sample uniformly, validate/clip values, and enumerate a grid (for the
exhaustive baseline).  Distributions compare equal by domain, which the
samplers rely on when inferring the joint search space from past trials.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Hashable, Sequence

import numpy as np

from ..exceptions import OptimizationError


class Distribution(ABC):
    """Abstract parameter domain."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a uniform sample from the domain."""

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Whether ``value`` lies in the domain."""

    @abstractmethod
    def grid(self) -> list[Any]:
        """All values for grid search (raises for continuous domains)."""

    @abstractmethod
    def mutate(self, value: Any, rng: np.random.Generator, scale: float = 0.2) -> Any:
        """A mutated copy of ``value`` (for genetic samplers)."""


@dataclass(frozen=True)
class FloatDistribution(Distribution):
    """Uniform (optionally log-scaled or discretized) float domain."""

    low: float
    high: float
    step: float | None = None
    log: bool = False

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise OptimizationError(f"need low <= high, got [{self.low}, {self.high}]")
        if self.log and self.low <= 0:
            raise OptimizationError("log domain requires low > 0")
        if self.step is not None and self.step <= 0:
            raise OptimizationError("step must be positive")
        if self.log and self.step is not None:
            raise OptimizationError("log and step are mutually exclusive")

    def _snap(self, value: float) -> float:
        if self.step is None:
            return float(np.clip(value, self.low, self.high))
        k = round((value - self.low) / self.step)
        return float(np.clip(self.low + k * self.step, self.low, self.high))

    def sample(self, rng: np.random.Generator) -> float:
        if self.log:
            return float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))
        return self._snap(rng.uniform(self.low, self.high))

    def contains(self, value: Any) -> bool:
        if not isinstance(value, (int, float, np.floating, np.integer)):
            return False
        return self.low - 1e-12 <= float(value) <= self.high + 1e-12

    def grid(self) -> list[float]:
        if self.step is None:
            raise OptimizationError("continuous FloatDistribution has no grid; set step")
        n = int(round((self.high - self.low) / self.step)) + 1
        return [self._snap(self.low + i * self.step) for i in range(n)]

    def mutate(self, value: Any, rng: np.random.Generator, scale: float = 0.2) -> float:
        span = self.high - self.low
        if span <= 0:
            return self.low
        if self.log:
            log_v = np.log(float(value)) + rng.normal(0.0, scale) * (
                np.log(self.high) - np.log(self.low)
            )
            return float(np.exp(np.clip(log_v, np.log(self.low), np.log(self.high))))
        return self._snap(float(value) + rng.normal(0.0, scale * span))


@dataclass(frozen=True)
class IntDistribution(Distribution):
    """Uniform integer domain with step."""

    low: int
    high: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise OptimizationError(f"need low <= high, got [{self.low}, {self.high}]")
        if self.step <= 0:
            raise OptimizationError("step must be positive")

    def _snap(self, value: float) -> int:
        k = round((value - self.low) / self.step)
        n_steps = (self.high - self.low) // self.step
        k = int(np.clip(k, 0, n_steps))
        return self.low + k * self.step

    def sample(self, rng: np.random.Generator) -> int:
        n_steps = (self.high - self.low) // self.step
        return self.low + int(rng.integers(0, n_steps + 1)) * self.step

    def contains(self, value: Any) -> bool:
        if not isinstance(value, (int, np.integer)):
            return False
        v = int(value)
        return self.low <= v <= self.high and (v - self.low) % self.step == 0

    def grid(self) -> list[int]:
        return list(range(self.low, self.high + 1, self.step))

    def mutate(self, value: Any, rng: np.random.Generator, scale: float = 0.2) -> int:
        span = max((self.high - self.low) / self.step, 1)
        jump = rng.normal(0.0, max(scale * span, 0.6)) * self.step
        return self._snap(float(value) + jump)


def distribution_to_dict(dist: Distribution) -> dict[str, Any]:
    """JSON-ready encoding of a distribution (storage layer, DESIGN.md §3)."""
    if isinstance(dist, FloatDistribution):
        return {
            "type": "float",
            "low": dist.low,
            "high": dist.high,
            "step": dist.step,
            "log": dist.log,
        }
    if isinstance(dist, IntDistribution):
        return {"type": "int", "low": dist.low, "high": dist.high, "step": dist.step}
    if isinstance(dist, CategoricalDistribution):
        return {"type": "categorical", "choices": list(dist.choices)}
    raise OptimizationError(f"cannot serialize distribution {dist!r}")


def distribution_from_dict(data: dict[str, Any]) -> Distribution:
    """Inverse of :func:`distribution_to_dict`.

    Categorical choices round-trip through JSON, so non-JSON choice types
    (e.g. tuples) come back as their JSON equivalents (lists).
    """
    kind = data.get("type")
    if kind == "float":
        return FloatDistribution(
            float(data["low"]),
            float(data["high"]),
            step=None if data.get("step") is None else float(data["step"]),
            log=bool(data.get("log", False)),
        )
    if kind == "int":
        return IntDistribution(
            int(data["low"]), int(data["high"]), step=int(data.get("step", 1))
        )
    if kind == "categorical":
        return CategoricalDistribution(data["choices"])
    raise OptimizationError(f"unknown serialized distribution type {kind!r}")


@dataclass(frozen=True)
class CategoricalDistribution(Distribution):
    """Finite unordered set of choices."""

    choices: tuple[Hashable, ...]

    def __init__(self, choices: Sequence[Hashable]) -> None:
        if not choices:
            raise OptimizationError("categorical domain needs at least one choice")
        object.__setattr__(self, "choices", tuple(choices))

    def sample(self, rng: np.random.Generator) -> Hashable:
        return self.choices[int(rng.integers(0, len(self.choices)))]

    def contains(self, value: Any) -> bool:
        return value in self.choices

    def grid(self) -> list[Hashable]:
        return list(self.choices)

    def mutate(self, value: Any, rng: np.random.Generator, scale: float = 0.2) -> Hashable:
        if len(self.choices) == 1:
            return self.choices[0]
        others = [c for c in self.choices if c != value]
        return others[int(rng.integers(0, len(others)))]
