"""Pruners: early stopping of unpromising trials.

The paper names "dynamic pruning or early stopping for non-promising
simulation runs" as future work (§4.4); the framework supports it through
Optuna-style intermediate reports + pruners.  For year-long simulations a
natural intermediate value is the running operational-emission rate after
each simulated month.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import OptimizationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .study import Study
    from .trial import FrozenTrial


class NopPruner:
    """Never prunes (default)."""

    def should_prune(self, study: "Study", trial: "FrozenTrial") -> bool:
        return False


class MedianPruner:
    """Prune when the latest intermediate value is worse than the median of
    completed trials' values at the same step (minimization assumed on the
    first objective direction).
    """

    def __init__(self, n_startup_trials: int = 5, n_warmup_steps: int = 0) -> None:
        if n_startup_trials < 0 or n_warmup_steps < 0:
            raise OptimizationError("pruner thresholds must be non-negative")
        self.n_startup_trials = n_startup_trials
        self.n_warmup_steps = n_warmup_steps

    def should_prune(self, study: "Study", trial: "FrozenTrial") -> bool:
        from .trial import TrialState

        if not trial.intermediate:
            return False
        step = max(trial.intermediate)
        if step < self.n_warmup_steps:
            return False
        value = trial.intermediate[step]

        sign = 1.0 if study.directions[0].is_minimize() else -1.0
        completed = [t for t in study.trials if t.state == TrialState.COMPLETE]
        if len(completed) < self.n_startup_trials:
            return False
        peers = [t.intermediate[step] for t in completed if step in t.intermediate]
        if not peers:
            return False
        return sign * value > sign * float(np.median(peers))
