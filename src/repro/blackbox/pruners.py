"""Pruners: early stopping of unpromising trials.

The paper names "dynamic pruning or early stopping for non-promising
simulation runs" as future work (§4.4); the framework supports it through
Optuna-style intermediate reports + pruners.  Two natural resources feed
the reports: the running operational-emission rate after each simulated
month, and — since the racing engine (DESIGN.md §8) — the partial risk
aggregate after each ensemble rung, reported at ``step = members seen``.

Both pruners are **direction-aware**: "worse" follows the study's first
objective direction (intermediate reports track objective 0), so a
maximize-first study prunes *below*-par values — the historical
docstring claimed minimization was assumed, and nothing pinned the
maximize behaviour down.  Peer pools include PRUNED trials' reports:
in a heavily-pruned study (racing prunes most trials at the first rung)
the completed trials alone would be a biased, survivor-only baseline.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import OptimizationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .study import Study
    from .trial import FrozenTrial


class NopPruner:
    """Never prunes (default)."""

    def should_prune(self, study: "Study", trial: "FrozenTrial") -> bool:
        return False


def _direction_sign(study: "Study") -> float:
    """+1 when the first objective is minimized, −1 when maximized.

    Multiplying values by the sign maps both cases onto "larger is
    worse", the single comparison the pruners implement.
    """
    return 1.0 if study.directions[0].is_minimize() else -1.0


def _peer_values(study: "Study", trial: "FrozenTrial", step: int) -> list[float]:
    """Other trials' reports at ``step`` (completed *and* pruned peers)."""
    from .trial import TrialState

    return [
        t.intermediate[step]
        for t in study.trials
        if t is not trial
        and t.state in (TrialState.COMPLETE, TrialState.PRUNED)
        and step in t.intermediate
    ]


class MedianPruner:
    """Prune when the latest intermediate value is worse than the median
    of finished peers' values at the same step.

    Direction-aware on the study's first objective; never prunes before
    ``n_warmup_steps`` or while fewer than ``n_startup_trials`` trials
    have completed.
    """

    def __init__(self, n_startup_trials: int = 5, n_warmup_steps: int = 0) -> None:
        if n_startup_trials < 0 or n_warmup_steps < 0:
            raise OptimizationError("pruner thresholds must be non-negative")
        self.n_startup_trials = n_startup_trials
        self.n_warmup_steps = n_warmup_steps

    def should_prune(self, study: "Study", trial: "FrozenTrial") -> bool:
        from .trial import TrialState

        if not trial.intermediate:
            return False
        step = max(trial.intermediate)
        if step < self.n_warmup_steps:
            return False
        value = trial.intermediate[step]

        completed = [t for t in study.trials if t.state == TrialState.COMPLETE]
        if len(completed) < self.n_startup_trials:
            return False
        peers = _peer_values(study, trial, step)
        if not peers:
            return False
        sign = _direction_sign(study)
        return sign * value > sign * float(np.median(peers))


class SuccessiveHalvingPruner:
    """Keep only the best ``1/reduction_factor`` of reporters per rung.

    The pruner-protocol counterpart of the racing engine's rung ladder
    (DESIGN.md §8): trials report at shared rung boundaries (steps
    ``min_resource · reduction_factor^k``), and at each boundary only
    the best ``ceil(n / reduction_factor)`` of the values reported at
    that step survive.  Direction-aware on the study's first objective;
    never prunes before ``n_warmup_steps``, below ``min_resource``, at
    steps that are not rung boundaries, or with fewer than
    ``reduction_factor`` reporters (no halving without a cohort).

    Note the multi-objective racing drivers do *not* route through this
    class — their promotion rule is Pareto-front membership of the
    partial aggregates plus an exactness proof — but single-objective
    ``Study.optimize`` loops get the same successive-halving behaviour
    through the standard ``trial.report`` / ``trial.should_prune``
    protocol.
    """

    def __init__(
        self,
        min_resource: int = 1,
        reduction_factor: int = 2,
        n_warmup_steps: int = 0,
    ) -> None:
        if min_resource < 1:
            raise OptimizationError("min_resource must be >= 1")
        if reduction_factor < 2:
            raise OptimizationError("reduction_factor must be >= 2")
        if n_warmup_steps < 0:
            raise OptimizationError("pruner thresholds must be non-negative")
        self.min_resource = min_resource
        self.reduction_factor = reduction_factor
        self.n_warmup_steps = n_warmup_steps

    def _is_rung(self, step: int) -> bool:
        """True when ``step`` is ``min_resource * reduction_factor**k``."""
        if step < self.min_resource:
            return False
        quotient = step / self.min_resource
        power = round(math.log(quotient, self.reduction_factor))
        return self.min_resource * self.reduction_factor**power == step

    def should_prune(self, study: "Study", trial: "FrozenTrial") -> bool:
        if not trial.intermediate:
            return False
        step = max(trial.intermediate)
        if step < self.n_warmup_steps or not self._is_rung(step):
            return False
        value = trial.intermediate[step]

        sign = _direction_sign(study)
        pool = sorted(
            sign * v for v in [value, *_peer_values(study, trial, step)]
        )
        if len(pool) < self.reduction_factor:
            return False
        keep = max(math.ceil(len(pool) / self.reduction_factor), 1)
        return sign * value > pool[keep - 1]
