"""Multi-objective utilities: dominance, sorting, crowding, hypervolume.

All objective vectors are treated as **minimization** internally; studies
convert maximize-direction values by negation before calling in here.
Vectorized where the algorithm allows (dominance checks are pairwise
matrix operations, not Python loops).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import OptimizationError


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Pareto dominance for minimization: a ⪯ b and a ≠ b."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return bool(np.all(a <= b) and np.any(a < b))


def _domination_matrix(values: np.ndarray) -> np.ndarray:
    """Boolean matrix D where D[i, j] = row i dominates row j (vectorized)."""
    v = values[:, None, :]  # (n, 1, m)
    w = values[None, :, :]  # (1, n, m)
    le = np.all(v <= w, axis=2)
    lt = np.any(v < w, axis=2)
    return le & lt


def pareto_front_indices(values: np.ndarray) -> np.ndarray:
    """Indices of non-dominated rows (minimization)."""
    values = np.atleast_2d(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        return np.array([], dtype=np.int64)
    dominated = _domination_matrix(values).any(axis=0)
    return np.nonzero(~dominated)[0]


def non_dominated_sort(values: np.ndarray) -> list[np.ndarray]:
    """Fast non-dominated sorting (Deb et al. 2002) into Pareto ranks.

    Returns a list of index arrays: front 0 (best), front 1, …
    """
    values = np.atleast_2d(np.asarray(values, dtype=np.float64))
    n = values.shape[0]
    if n == 0:
        return []
    dom = _domination_matrix(values)
    n_dominators = dom.sum(axis=0).astype(np.int64)  # how many dominate i

    fronts: list[np.ndarray] = []
    remaining = np.ones(n, dtype=bool)
    while remaining.any():
        current = remaining & (n_dominators == 0)
        if not current.any():
            raise OptimizationError("non-dominated sort failed to make progress")
        idx = np.nonzero(current)[0]
        fronts.append(idx)
        remaining[idx] = False
        # Removing this front decrements the domination counts of the
        # points it dominates.
        n_dominators -= dom[idx].sum(axis=0)
    return fronts


def crowding_distance(values: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance within one front (larger = less crowded).

    Boundary points get +inf, interior points the normalized side-length
    sum of the surrounding hyper-box.
    """
    values = np.atleast_2d(np.asarray(values, dtype=np.float64))
    n, m = values.shape
    if n <= 2:
        return np.full(n, np.inf)
    distance = np.zeros(n)
    for j in range(m):
        order = np.argsort(values[:, j], kind="stable")
        col = values[order, j]
        span = col[-1] - col[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span > 0:
            distance[order[1:-1]] += (col[2:] - col[:-2]) / span
    return distance


def hypervolume_2d(values: np.ndarray, reference: np.ndarray) -> float:
    """Exact 2-D hypervolume (minimization) wrt a reference point.

    Points not strictly dominating the reference contribute nothing.
    """
    values = np.atleast_2d(np.asarray(values, dtype=np.float64))
    reference = np.asarray(reference, dtype=np.float64)
    if values.shape[1] != 2 or reference.shape != (2,):
        raise OptimizationError("hypervolume_2d requires 2-D objective vectors")
    mask = np.all(values < reference, axis=1)
    pts = values[mask]
    if pts.size == 0:
        return 0.0
    front = pts[pareto_front_indices(pts)]
    front = front[np.argsort(front[:, 0])]
    hv = 0.0
    prev_y = reference[1]
    for x, y in front:
        hv += (reference[0] - x) * (prev_y - y)
        prev_y = y
    return float(hv)


def pareto_recovery_rate(
    found: np.ndarray, true_front: np.ndarray, tol: float = 1e-9
) -> float:
    """Fraction of the true Pareto set recovered by ``found`` (§4.4 metric).

    A true point counts as recovered if some found point matches it within
    ``tol`` in every objective (relative to the objective's scale).
    """
    true_front = np.atleast_2d(np.asarray(true_front, dtype=np.float64))
    found = np.atleast_2d(np.asarray(found, dtype=np.float64))
    if true_front.shape[0] == 0:
        return 1.0
    if found.size == 0:
        return 0.0
    scale = np.maximum(np.abs(true_front).max(axis=0), 1.0)
    hits = 0
    for point in true_front:
        diff = np.abs(found - point) / scale
        if np.any(np.all(diff <= tol + 1e-12, axis=1)):
            hits += 1
    return hits / true_front.shape[0]
