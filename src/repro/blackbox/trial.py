"""Trials: one evaluation of the objective at one parameter assignment.

Mirrors ``optuna.trial``: a live :class:`Trial` handed to the objective
supports define-by-run parameter suggestion and intermediate reporting; a
:class:`FrozenTrial` is the immutable record stored by the study.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Sequence

from ..exceptions import OptimizationError, TrialPruned
from .distributions import (
    CategoricalDistribution,
    Distribution,
    FloatDistribution,
    IntDistribution,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .study import Study

#: system-attr key recording how many ensemble members a raced trial saw
#: (DESIGN.md §8) — shared by every racing driver and the CLI histogram
RACING_RUNG_ATTR = "racing:rung"

#: system-attr key recording the completed-history prefix length a
#: pipelined trial was bred from (its speculation *epoch*, DESIGN.md §10);
#: persisted through every storage backend and validated on resume
PARENT_EPOCH_ATTR = "nsga2:parent_epoch"

#: system-attr key recording the ask order of a pipelined trial — equal
#: to the trial number when written; a resume whose loaded numbering has
#: shifted (compaction renumbers past gaps) is detected by the mismatch
PIPELINE_ASK_ATTR = "pipeline:ask_number"


class TrialState(enum.Enum):
    """Lifecycle state of a trial."""

    RUNNING = "running"
    COMPLETE = "complete"
    PRUNED = "pruned"
    FAILED = "failed"

    def is_finished(self) -> bool:
        return self is not TrialState.RUNNING


@dataclass
class FrozenTrial:
    """Immutable record of a finished (or running) trial."""

    number: int
    state: TrialState = TrialState.RUNNING
    params: dict[str, Any] = field(default_factory=dict)
    distributions: dict[str, Distribution] = field(default_factory=dict)
    values: tuple[float, ...] | None = None
    intermediate: dict[int, float] = field(default_factory=dict)
    user_attrs: dict[str, Any] = field(default_factory=dict)
    system_attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def value(self) -> float | None:
        """Single-objective value (raises for multi-objective trials)."""
        if self.values is None:
            return None
        if len(self.values) != 1:
            raise OptimizationError(
                f"trial {self.number} is multi-objective; use .values"
            )
        return self.values[0]


class Trial:
    """Live trial handed to the objective function."""

    def __init__(self, study: "Study", frozen: FrozenTrial) -> None:
        self._study = study
        self._frozen = frozen

    @property
    def number(self) -> int:
        return self._frozen.number

    @property
    def params(self) -> dict[str, Any]:
        return dict(self._frozen.params)

    # -- suggestion API -----------------------------------------------------

    def _suggest(self, name: str, distribution: Distribution) -> Any:
        frozen = self._frozen
        if name in frozen.params:
            existing_dist = frozen.distributions.get(name)
            if existing_dist is not None and existing_dist != distribution:
                raise OptimizationError(
                    f"parameter '{name}' re-suggested with a different domain"
                )
            return frozen.params[name]
        if not frozen.params:
            # First suggestion of this trial: give the sampler its
            # per-trial RNG stream (no-op unless per_trial_seeding).
            self._study.sampler.begin_trial(frozen.number)
        value = self._study.sampler.sample(self._study, frozen, name, distribution)
        if not distribution.contains(value):
            raise OptimizationError(
                f"sampler produced out-of-domain value {value!r} for '{name}'"
            )
        frozen.params[name] = value
        frozen.distributions[name] = distribution
        return value

    def suggest_float(
        self,
        name: str,
        low: float,
        high: float,
        *,
        step: float | None = None,
        log: bool = False,
    ) -> float:
        return float(self._suggest(name, FloatDistribution(low, high, step=step, log=log)))

    def suggest_int(self, name: str, low: int, high: int, *, step: int = 1) -> int:
        return int(self._suggest(name, IntDistribution(low, high, step=step)))

    def suggest_categorical(self, name: str, choices: Sequence[Hashable]) -> Hashable:
        return self._suggest(name, CategoricalDistribution(choices))

    # -- intermediate reporting / pruning -------------------------------------

    def report(self, value: float, step: int) -> None:
        """Report an intermediate objective value at ``step``."""
        if step < 0:
            raise OptimizationError("step must be non-negative")
        self._frozen.intermediate[int(step)] = float(value)

    def should_prune(self) -> bool:
        """Ask the study's pruner whether to abandon this trial."""
        return self._study.pruner.should_prune(self._study, self._frozen)

    def prune(self) -> None:
        """Unconditionally abandon this trial."""
        raise TrialPruned(f"trial {self.number} pruned")

    # -- attributes -----------------------------------------------------------

    def set_user_attr(self, key: str, value: Any) -> None:
        self._frozen.user_attrs[key] = value

    def set_system_attr(self, key: str, value: Any) -> None:
        """Framework-internal attribute (e.g. the racing rung reached)."""
        self._frozen.system_attrs[key] = value

    @property
    def user_attrs(self) -> dict[str, Any]:
        return dict(self._frozen.user_attrs)
