"""Parallel trial execution: fan independent trials out across processes.

The paper's search "parallelize[s] ... across a cluster of compute
nodes" through Hydra; the co-simulated sweep it replaces took >24 h
serially.  :class:`ParallelStudyRunner` is the process-level equivalent
(DESIGN.md §4): it reuses :mod:`repro.confsys.launcher`'s worker-pool
machinery to evaluate a *batch* of independent trials concurrently
while keeping all **sampling in the parent process**, so results are
bit-identical regardless of worker count or scheduling.

Determinism contract:

* Parameters are suggested in the parent, in trial order, from the
  study's declared search space — workers only ever see a plain params
  dict and return objective values.
* The sampler is switched to deterministic per-trial RNG streams
  (:meth:`repro.blackbox.samplers.base.Sampler.begin_trial`, seeded via
  :func:`repro.rng.seed_for`), so the draw for trial *n* depends only on
  the sampler seed, the trial number, and the completed-trial history —
  not on wall-clock interleaving.
* Batches default to the sampler's ``population_size``, which makes one
  batch one NSGA-II generation: the sampler only consults *completed*
  trials when breeding, so generation-batched evaluation is semantically
  identical to the serial generational loop.

The runner composes with storage (DESIGN.md §3, §7): give the study a
:class:`~repro.blackbox.storage.StudyStorage` — or pass the runner a
``storage`` spec string such as ``sqlite:///study.db`` — and every
batch is recorded as it completes, making a killed parallel run
resumable.  With ``shards=W`` the records fan out across W per-worker
shard stores (``spec.shard0`` … ``spec.shardW-1``) instead of funneling
through one fsynced file; ``repro study merge`` (or
:func:`repro.blackbox.storage.merge_stores`) folds the shards back into
one store with the identical final Pareto front.

The objective must be picklable (a module-level function, or an
instance of a module-level class such as
:class:`repro.core.study_runner.CompositionObjective`) and maps a params
dict to a float or a sequence of floats.
"""

from __future__ import annotations

import pickle
import traceback
from typing import Any, Callable, Sequence

import numpy as np

from ..exceptions import OptimizationError, TrialPruned
from .distributions import Distribution
from .multiobjective import pareto_front_indices
from .study import Study
from .trial import RACING_RUNG_ATTR, TrialState

ParamsObjective = Callable[[dict[str, Any]], "float | Sequence[float]"]


def _evaluate_trial_chunk(
    job: tuple[ParamsObjective, list[dict[str, Any]]]
) -> list[tuple[str, Any]]:
    """Worker-side shim: run one objective over a chunk of trials.

    Jobs carry a *chunk* of params dicts rather than one, so the
    objective — which may embed a full scenario — is pickled once per
    worker chunk instead of once per trial.

    Each outcome is returned as ``(tag, payload)`` data instead of
    raising, which keeps one failed trial from tearing down the whole
    pool; the parent re-raises uncaught exceptions after recording the
    trial as FAILED.  An exception is shipped back as a live object only
    if it survives a pickle round trip *here in the worker* — an
    exception that pickles but fails to reconstruct (e.g. a multi-arg
    ``__init__`` calling ``super().__init__`` with one argument) would
    otherwise kill the pool's result-handler thread and hang the parent
    forever.  Anything that doesn't round-trip degrades to an
    :class:`OptimizationError` carrying the original type, message, and
    traceback text.
    """
    objective, params_chunk = job
    return [_guarded(objective, params) for params in params_chunk]


def _guarded(fn: "Callable[..., Any]", *args: Any) -> tuple[str, Any]:
    """Run one objective call, returning a transport-safe outcome tag."""
    try:
        return ("ok", fn(*args))
    except TrialPruned:
        return ("pruned", None)
    except Exception as exc:  # noqa: BLE001 - transported to the parent
        try:
            pickle.loads(pickle.dumps(exc))
            return ("error", exc)
        except Exception:
            return (
                "error",
                OptimizationError(
                    f"objective raised unpicklable {type(exc).__name__}: "
                    f"{exc}\noriginal traceback:\n{traceback.format_exc()}"
                ),
            )


def _evaluate_members_chunk(
    job: "tuple[Any, tuple[int, ...], list[dict[str, Any]]]"
) -> list[tuple[str, Any]]:
    """Worker-side rung evaluation: the objective's ``member_values``
    hook over one member subset for a chunk of trials (racing rung
    dispatch, DESIGN.md §8).  Per-member vectors — not pre-reduced
    aggregates — ship back so the parent can fill each trial's member
    matrix incrementally."""
    objective, member_indices, params_chunk = job
    return [
        _guarded(objective.member_values, params, member_indices)
        for params in params_chunk
    ]


class ParallelStudyRunner:
    """Drives a study by evaluating batches of trials across processes.

    Parameters
    ----------
    study:
        The (possibly storage-backed) study to drive.
    space:
        Declared search space ``{name: Distribution}``.  Unlike the pure
        define-by-run loop, parallel execution needs parameters
        materialized *before* the objective runs, so the space is given
        up front (exactly how ``ParameterSpace.suggest`` declares it).
    launcher:
        A :class:`~repro.confsys.launcher.SerialLauncher` or
        :class:`~repro.confsys.launcher.MultiprocessingLauncher`;
        defaults to serial (same code path, no processes).
    batch_size:
        Trials evaluated concurrently per round.  Defaults to the
        sampler's ``population_size`` (one NSGA-II generation) or the
        launcher's worker count.
    storage:
        Optional storage to attach to a not-yet-persistent study: a
        :class:`~repro.blackbox.storage.StudyStorage` instance or a
        spec string resolved through the URL registry (DESIGN.md §7).
        The study is registered in the backend on attach; to *resume*
        a persisted study, build it with
        ``create_study(storage=..., load_if_exists=True)`` instead.
    shards:
        With ``shards=W > 1`` (and ``storage`` given as a spec string),
        records fan out across W per-worker shard stores so concurrent
        batches stop serializing on one file; fold them back with
        ``repro study merge``.
    """

    def __init__(
        self,
        study: Study,
        space: dict[str, Distribution],
        launcher=None,
        batch_size: int | None = None,
        storage=None,
        shards: int | None = None,
    ) -> None:
        if not space:
            raise OptimizationError("parallel execution needs a declared search space")
        if batch_size is not None and batch_size < 1:
            raise OptimizationError("batch_size must be >= 1")
        # Local import keeps repro.blackbox importable before repro.confsys
        # finishes initializing (confsys.sweeper imports blackbox.study).
        from ..confsys.launcher import SerialLauncher

        self.study = study
        self.space = dict(space)
        self.launcher = launcher if launcher is not None else SerialLauncher()
        self.batch_size = (
            batch_size
            or getattr(study.sampler, "population_size", None)
            or getattr(self.launcher, "n_workers", 1)
        )
        if storage is not None:
            self._attach_storage(storage, shards)

    def _attach_storage(self, storage, shards: int | None) -> None:
        """Resolve ``storage`` and register the (fresh) study in it."""
        from .storage import resolve_storage

        if self.study.storage is not None:
            raise OptimizationError(
                "study already has a storage backend; build it with "
                "create_study(storage=..., load_if_exists=True) to resume"
            )
        backend = resolve_storage(storage, shards=shards)
        if backend.load_study(self.study.study_name) is not None:
            raise OptimizationError(
                f"study '{self.study.study_name}' already exists in that "
                "storage; resume it via create_study(load_if_exists=True)"
            )
        # Persist the generation boundary so a resume can detect a
        # mismatched batch size instead of silently misaligning.
        self.study.metadata.setdefault("batch", self.batch_size)
        backend.create_study(
            self.study.study_name,
            [d.value for d in self.study.directions],
            self.study.metadata,
        )
        self.study.storage = backend

    def optimize(
        self,
        objective: ParamsObjective,
        n_trials: int,
        catch: tuple[type[Exception], ...] = (),
        racing=None,
    ) -> Study:
        """Evaluate trials in launcher-sized batches up to ``n_trials`` total.

        Mirrors ``Study.optimize`` semantics: ``TrialPruned`` marks the
        trial PRUNED, exceptions in ``catch`` mark it FAILED, anything
        else is recorded as FAILED and re-raised in the parent.

        ``n_trials`` is the study's *total* trial target: on a study
        reloaded via ``create_study(load_if_exists=True)`` only the
        missing trials run.  As in ``run_blackbox``, a trailing partial
        batch of loaded trials (a generation interrupted mid-journal) is
        discarded and re-run under the same trial numbers, so a resumed
        run sees exactly the batch-boundary history an uninterrupted run
        sees (DESIGN.md §3).  Pruned trials count toward the target,
        exactly like the serial drivers.

        **Racing rung dispatch** (DESIGN.md §8): with ``racing`` set to
        a :class:`~repro.core.racing.RungSchedule` (or spec string), the
        objective must expose the multi-fidelity hooks ``n_members``,
        ``aggregate``, and ``member_values(params, member_indices)`` (as
        :class:`repro.core.study_runner.CompositionObjective` does; the
        default ``order=hardest`` additionally needs
        ``member_difficulty``).  Each batch then climbs the rung
        ladder: every rung fans the members *new* to it across the
        launcher's workers (subsets nest, so nothing is re-simulated),
        the parent reduces each trial's accumulated member vectors with
        the objective's aggregate, and candidates whose partial vector
        falls off the batch's non-dominated front are told PRUNED
        (partial values become intermediate reports).  Survivors'
        final values reduce the full member matrix in canonical member
        order — bit-identical to the full-fidelity objective.  Unlike
        the serial racing driver this path carries no exactness proof
        (no promote-back verification): it is Optuna-style pruning,
        tuned for throughput.
        """
        if n_trials <= 0:
            raise OptimizationError(f"n_trials must be positive, got {n_trials}")
        race_subsets = None
        if racing is not None:
            if isinstance(racing, str):
                from ..core.racing import RungSchedule

                racing = RungSchedule.parse(racing)
            hooks = ["n_members", "aggregate", "member_values"]
            if racing.order == "hardest":
                hooks.append("member_difficulty")  # probe-ranked subsets
            for hook in hooks:
                if not hasattr(objective, hook):
                    raise OptimizationError(
                        "racing needs a multi-fidelity objective exposing "
                        f"'{hook}' (see CompositionObjective)"
                    )
            # The member ranking is deterministic per ensemble — probe
            # once per optimize() call, not per batch.
            n_members = int(objective.n_members)
            if racing.order == "hardest" and n_members > 1:
                from ..core.racing import difficulty_ranking

                race_subsets = racing.subsets_from_order(
                    difficulty_ranking(objective.member_difficulty())
                )
            else:
                race_subsets = racing.subsets(n_members)
        sampler = self.study.sampler
        prior_seeding = sampler.per_trial_seeding
        # Worker scheduling must never perturb sampling: pin every trial
        # to its own deterministic RNG stream for the duration of the
        # run (restored afterwards — the sampler is the caller's).
        sampler.per_trial_seeding = True
        try:
            persisted_batch = self.study.metadata.get("batch")
            requested_racing = (
                racing.spec_string() if racing is not None else None
            )
            persisted_racing = self.study.metadata.get("racing")
            if self.study.storage is not None and not self.study.trials:
                # A fresh study built via create_study(storage=...) was
                # registered before the runner knew its generation size
                # or rung schedule; persist them now so a mismatched
                # resume is detectable.
                dirty = False
                if persisted_batch is None:
                    self.study.metadata["batch"] = self.batch_size
                    dirty = True
                if persisted_racing is None and requested_racing is not None:
                    self.study.metadata["racing"] = requested_racing
                    persisted_racing = requested_racing
                    dirty = True
                if dirty:
                    self.study.storage.update_metadata(
                        self.study.study_name, self.study.metadata
                    )
            if (
                self.study.trials
                and persisted_batch is not None
                and int(persisted_batch) != self.batch_size
            ):
                raise OptimizationError(
                    f"study '{self.study.study_name}' was run with batch "
                    f"{int(persisted_batch)}, resumed with {self.batch_size}; "
                    "generation boundaries cannot be aligned across batch sizes"
                )
            if self.study.storage is not None and persisted_racing != requested_racing:
                # Same identity rule as the serial driver: the schedule
                # decides which trials get pruned, so a resume that races
                # differently (or not at all) silently diverges.
                raise OptimizationError(
                    f"study '{self.study.study_name}' was persisted with "
                    f"racing={persisted_racing or '<none>'}, resumed with "
                    f"{requested_racing or '<none>'}; resume must race the "
                    "identical schedule"
                )
            if len(self.study.trials) < n_trials:
                self.study.drop_trailing_partial_batch(self.batch_size)
            remaining = max(n_trials - len(self.study.trials), 0)
            while remaining > 0:
                k = min(self.batch_size, remaining)
                trials = [self.study.ask() for _ in range(k)]
                for trial in trials:
                    for name, dist in self.space.items():
                        trial._suggest(name, dist)
                if racing is None:
                    outcomes = self._launch_batch(objective, trials)
                    self._tell_outcomes(trials, outcomes, catch)
                else:
                    self._race_batch(objective, trials, race_subsets, catch)
                remaining -= k
        finally:
            sampler.per_trial_seeding = prior_seeding
        return self.study

    def _tell_outcomes(self, trials, outcomes, catch) -> None:
        """Record one batch's transported outcomes against the study."""
        for trial, (tag, payload) in zip(trials, outcomes):
            if tag == "ok":
                self.study.tell(trial, payload)
            elif tag == "pruned":
                self.study.tell(trial, state=TrialState.PRUNED)
            else:
                self.study.tell(trial, state=TrialState.FAILED)
                if not (catch and isinstance(payload, catch)):
                    raise payload

    def _launch_batch(self, objective: ParamsObjective, trials) -> list[tuple[str, Any]]:
        """Fan one batch out in per-worker chunks (order-preserving)."""
        from ..confsys.launcher import chunk_evenly

        params = [dict(t.params) for t in trials]
        chunks = chunk_evenly(params, getattr(self.launcher, "n_workers", 1))
        outcomes = self.launcher.launch(
            _evaluate_trial_chunk, [(objective, chunk) for chunk in chunks]
        )
        return [outcome for chunk in outcomes for outcome in chunk]

    def _race_batch(self, objective, trials, subsets, catch) -> None:
        """Rung dispatch: climb the racing ladder for one trial batch.

        Each rung fans only its *new* members (subsets nest) across
        workers via the objective's ``member_values`` hook and
        accumulates per-trial member matrices in the parent; partial and
        final vectors reduce those matrices with the objective's
        aggregate in canonical member order, so a survivor's told values
        are bit-identical to the full-fidelity objective — and a
        surviving trial pays exactly ``n_members`` member evaluations in
        total, never a member twice.  Non-survivors of a rung's
        non-dominated partial front are told PRUNED with their partial
        values as intermediate reports.
        """
        from ..confsys.launcher import chunk_evenly
        from ..core.metrics import aggregate_values

        n_members = int(objective.n_members)
        aggregate = objective.aggregate
        matrices: "dict[int, dict[int, tuple[float, ...]]]" = {
            t.number: {} for t in trials
        }

        def reduced(trial) -> tuple[float, ...]:
            matrix = matrices[trial.number]
            vectors = [matrix[m] for m in sorted(matrix)]
            return tuple(
                aggregate_values(column, aggregate) for column in zip(*vectors)
            )

        alive = list(trials)
        seen: "tuple[int, ...]" = ()
        for rung_index, subset in enumerate(subsets):
            if not alive:
                return
            new_members = tuple(m for m in subset if m not in seen)
            seen = subset
            if new_members:
                params = [dict(t.params) for t in alive]
                chunks = chunk_evenly(params, getattr(self.launcher, "n_workers", 1))
                outcomes = [
                    outcome
                    for chunk_result in self.launcher.launch(
                        _evaluate_members_chunk,
                        [(objective, new_members, chunk) for chunk in chunks],
                    )
                    for outcome in chunk_result
                ]
                survivors = []
                for trial, (tag, payload) in zip(alive, outcomes):
                    if tag == "ok":
                        for member, vector in zip(new_members, payload):
                            matrices[trial.number][member] = (
                                (vector,) if np.isscalar(vector) else tuple(vector)
                            )
                        survivors.append(trial)
                    elif tag == "pruned":
                        self.study.tell(trial, state=TrialState.PRUNED)
                    else:
                        self.study.tell(trial, state=TrialState.FAILED)
                        if not (catch and isinstance(payload, catch)):
                            raise payload
                alive = survivors
            if rung_index == len(subsets) - 1:
                for trial in alive:
                    trial.set_system_attr(RACING_RUNG_ATTR, n_members)
                    self.study.tell(trial, reduced(trial))
                return
            size = len(subset)
            vectors = [reduced(trial) for trial in alive]
            for trial, vector in zip(alive, vectors):
                trial.report(float(vector[0]), step=size)
                trial.set_system_attr(RACING_RUNG_ATTR, size)
            front = set(
                int(i)
                for i in pareto_front_indices(self.study.minimized_values(vectors))
            ) if vectors else set()
            next_alive = []
            for i, trial in enumerate(alive):
                if i in front:
                    next_alive.append(trial)
                else:
                    self.study.tell(trial, state=TrialState.PRUNED)
            alive = next_alive
