"""Parallel trial execution: fan independent trials out across processes.

The paper's search "parallelize[s] ... across a cluster of compute
nodes" through Hydra; the co-simulated sweep it replaces took >24 h
serially.  :class:`ParallelStudyRunner` is the process-level equivalent
(DESIGN.md §4): it reuses :mod:`repro.confsys.launcher`'s worker-pool
machinery to evaluate a *batch* of independent trials concurrently
while keeping all **sampling in the parent process**, so results are
bit-identical regardless of worker count or scheduling.

Determinism contract:

* Parameters are suggested in the parent, in trial order, from the
  study's declared search space — workers only ever see a plain params
  dict and return objective values.
* The sampler is switched to deterministic per-trial RNG streams
  (:meth:`repro.blackbox.samplers.base.Sampler.begin_trial`, seeded via
  :func:`repro.rng.seed_for`), so the draw for trial *n* depends only on
  the sampler seed, the trial number, and the completed-trial history —
  not on wall-clock interleaving.
* Batches default to the sampler's ``population_size``, which makes one
  batch one NSGA-II generation: the sampler only consults *completed*
  trials when breeding, so generation-batched evaluation is semantically
  identical to the serial generational loop.

The runner composes with storage (DESIGN.md §3, §7): give the study a
:class:`~repro.blackbox.storage.StudyStorage` — or pass the runner a
``storage`` spec string such as ``sqlite:///study.db`` — and every
batch is recorded as it completes, making a killed parallel run
resumable.  With ``shards=W`` the records fan out across W per-worker
shard stores (``spec.shard0`` … ``spec.shardW-1``) instead of funneling
through one fsynced file; ``repro study merge`` (or
:func:`repro.blackbox.storage.merge_stores`) folds the shards back into
one store with the identical final Pareto front.

The objective must be picklable (a module-level function, or an
instance of a module-level class such as
:class:`repro.core.study_runner.CompositionObjective`) and maps a params
dict to a float or a sequence of floats.

Two drivers share that contract (DESIGN.md §4, §10):

* :class:`ParallelStudyRunner` — the generation-batched path: one batch
  is one NSGA-II generation, evaluated as a barrier (every worker waits
  for the batch's slowest trial).
* :class:`PipelinedDispatcher` — the ask/tell streaming path: a
  coordinator keeps every worker slot full by dispatching candidates
  individually as slots free, optionally *speculating* into the next
  generation by breeding provisional candidates from the completed
  prefix (each tagged with its parent epoch so resume and audit stay
  deterministic).  With speculation off it is bit-identical to the
  generation-batched runner.
"""

from __future__ import annotations

import pickle
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..exceptions import OptimizationError, TrialPruned
from .distributions import Distribution
from .multiobjective import pareto_front_indices
from .study import Study
from .trial import PARENT_EPOCH_ATTR, PIPELINE_ASK_ATTR, RACING_RUNG_ATTR, TrialState

ParamsObjective = Callable[[dict[str, Any]], "float | Sequence[float]"]


def _evaluate_trial_chunk(
    job: tuple[ParamsObjective, list[dict[str, Any]]]
) -> list[tuple[str, Any]]:
    """Worker-side shim: run one objective over a chunk of trials.

    Jobs carry a *chunk* of params dicts rather than one, so the
    objective — which may embed a full scenario — is pickled once per
    worker chunk instead of once per trial.

    Each outcome is returned as ``(tag, payload)`` data instead of
    raising, which keeps one failed trial from tearing down the whole
    pool; the parent re-raises uncaught exceptions after recording the
    trial as FAILED.  An exception is shipped back as a live object only
    if it survives a pickle round trip *here in the worker* — an
    exception that pickles but fails to reconstruct (e.g. a multi-arg
    ``__init__`` calling ``super().__init__`` with one argument) would
    otherwise kill the pool's result-handler thread and hang the parent
    forever.  Anything that doesn't round-trip degrades to an
    :class:`OptimizationError` carrying the original type, message, and
    traceback text.
    """
    objective, params_chunk = job
    return [_guarded(objective, params) for params in params_chunk]


def _guarded(fn: "Callable[..., Any]", *args: Any) -> tuple[str, Any, float]:
    """Run one objective call, returning a transport-safe outcome.

    ``(tag, payload, seconds)`` — the duration is measured worker-side,
    so the parent can account busy time per trial (the worker-starvation
    metrics both drivers surface) without trusting wall clocks across
    processes.
    """
    start = time.perf_counter()
    try:
        result = fn(*args)
    except TrialPruned:
        return ("pruned", None, time.perf_counter() - start)
    except Exception as exc:  # noqa: BLE001 - transported to the parent
        try:
            pickle.loads(pickle.dumps(exc))
            payload: Any = exc
        except Exception:
            payload = OptimizationError(
                f"objective raised unpicklable {type(exc).__name__}: "
                f"{exc}\noriginal traceback:\n{traceback.format_exc()}"
            )
        return ("error", payload, time.perf_counter() - start)
    return ("ok", result, time.perf_counter() - start)


def materialize_params(
    trial: Any, params: dict[str, Any], space: dict[str, Distribution]
) -> None:
    """Write a sampler-planned candidate into a live trial.

    The ask/tell counterpart of the define-by-run ``Trial._suggest``
    loop: validates every declared parameter is present and in-domain,
    then records params and distributions on the frozen trial so the
    history the sampler later observes is indistinguishable from a
    define-by-run trial.
    """
    frozen = trial._frozen
    for name, dist in space.items():
        if name not in params:
            raise OptimizationError(
                f"sampler planned no value for declared parameter '{name}'"
            )
        value = params[name]
        if not dist.contains(value):
            raise OptimizationError(
                f"sampler produced out-of-domain value {value!r} for '{name}'"
            )
        frozen.params[name] = value
        frozen.distributions[name] = dist


def _evaluate_members_chunk(
    job: "tuple[Any, tuple[int, ...], list[dict[str, Any]]]"
) -> list[tuple[str, Any]]:
    """Worker-side rung evaluation: the objective's ``member_values``
    hook over one member subset for a chunk of trials (racing rung
    dispatch, DESIGN.md §8).  Per-member vectors — not pre-reduced
    aggregates — ship back so the parent can fill each trial's member
    matrix incrementally."""
    objective, member_indices, params_chunk = job
    return [
        _guarded(objective.member_values, params, member_indices)
        for params in params_chunk
    ]


class ParallelStudyRunner:
    """Drives a study by evaluating batches of trials across processes.

    Parameters
    ----------
    study:
        The (possibly storage-backed) study to drive.
    space:
        Declared search space ``{name: Distribution}``.  Unlike the pure
        define-by-run loop, parallel execution needs parameters
        materialized *before* the objective runs, so the space is given
        up front (exactly how ``ParameterSpace.suggest`` declares it).
    launcher:
        A :class:`~repro.confsys.launcher.SerialLauncher` or
        :class:`~repro.confsys.launcher.MultiprocessingLauncher`;
        defaults to serial (same code path, no processes).
    batch_size:
        Trials evaluated concurrently per round.  Defaults to the
        sampler's ``population_size`` (one NSGA-II generation) or the
        launcher's worker count.
    storage:
        Optional storage to attach to a not-yet-persistent study: a
        :class:`~repro.blackbox.storage.StudyStorage` instance or a
        spec string resolved through the URL registry (DESIGN.md §7).
        The study is registered in the backend on attach; to *resume*
        a persisted study, build it with
        ``create_study(storage=..., load_if_exists=True)`` instead.
    shards:
        With ``shards=W > 1`` (and ``storage`` given as a spec string),
        records fan out across W per-worker shard stores so concurrent
        batches stop serializing on one file; fold them back with
        ``repro study merge``.
    """

    def __init__(
        self,
        study: Study,
        space: dict[str, Distribution],
        launcher=None,
        batch_size: int | None = None,
        storage=None,
        shards: int | None = None,
    ) -> None:
        if not space:
            raise OptimizationError("parallel execution needs a declared search space")
        if batch_size is not None and batch_size < 1:
            raise OptimizationError("batch_size must be >= 1")
        # Local import keeps repro.blackbox importable before repro.confsys
        # finishes initializing (confsys.sweeper imports blackbox.study).
        from ..confsys.launcher import SerialLauncher

        self.study = study
        self.space = dict(space)
        self.launcher = launcher if launcher is not None else SerialLauncher()
        self.batch_size = (
            batch_size
            or getattr(study.sampler, "population_size", None)
            or getattr(self.launcher, "n_workers", 1)
        )
        if storage is not None:
            self._attach_storage(storage, shards)

    def _attach_storage(self, storage, shards: int | None) -> None:
        """Resolve ``storage`` and register the (fresh) study in it."""
        from .storage import resolve_storage

        if self.study.storage is not None:
            raise OptimizationError(
                "study already has a storage backend; build it with "
                "create_study(storage=..., load_if_exists=True) to resume"
            )
        backend = resolve_storage(storage, shards=shards)
        if backend.load_study(self.study.study_name) is not None:
            raise OptimizationError(
                f"study '{self.study.study_name}' already exists in that "
                "storage; resume it via create_study(load_if_exists=True)"
            )
        # Persist the generation boundary so a resume can detect a
        # mismatched batch size instead of silently misaligning.
        self.study.metadata.setdefault("batch", self.batch_size)
        backend.create_study(
            self.study.study_name,
            [d.value for d in self.study.directions],
            self.study.metadata,
        )
        self.study.storage = backend

    def optimize(
        self,
        objective: ParamsObjective,
        n_trials: int,
        catch: tuple[type[Exception], ...] = (),
        racing=None,
        fidelity=None,
    ) -> Study:
        """Evaluate trials in launcher-sized batches up to ``n_trials`` total.

        Mirrors ``Study.optimize`` semantics: ``TrialPruned`` marks the
        trial PRUNED, exceptions in ``catch`` mark it FAILED, anything
        else is recorded as FAILED and re-raised in the parent.

        ``n_trials`` is the study's *total* trial target: on a study
        reloaded via ``create_study(load_if_exists=True)`` only the
        missing trials run.  As in ``run_blackbox``, a trailing partial
        batch of loaded trials (a generation interrupted mid-journal) is
        discarded and re-run under the same trial numbers, so a resumed
        run sees exactly the batch-boundary history an uninterrupted run
        sees (DESIGN.md §3).  Pruned trials count toward the target,
        exactly like the serial drivers.

        **Racing rung dispatch** (DESIGN.md §8): with ``racing`` set to
        a :class:`~repro.core.racing.RungSchedule` (or spec string), the
        objective must expose the multi-fidelity hooks ``n_members``,
        ``aggregate``, and ``member_values(params, member_indices)`` (as
        :class:`repro.core.study_runner.CompositionObjective` does; the
        default ``order=hardest`` additionally needs
        ``member_difficulty``).  Each batch then climbs the rung
        ladder: every rung fans the members *new* to it across the
        launcher's workers (subsets nest, so nothing is re-simulated),
        the parent reduces each trial's accumulated member vectors with
        the objective's aggregate, and candidates whose partial vector
        falls off the batch's non-dominated front are told PRUNED
        (partial values become intermediate reports).  Survivors'
        final values reduce the full member matrix in canonical member
        order — bit-identical to the full-fidelity objective.  Unlike
        the serial racing driver this path carries no exactness proof
        (no promote-back verification): it is Optuna-style pruning,
        tuned for throughput.

        ``fidelity`` (a :class:`~repro.core.fidelity.FidelityLadder` or
        spec string) is persisted and checked as resume identity,
        exactly like ``racing`` — the objective is expected to already
        evaluate the ladder-top physics (as
        :class:`~repro.core.study_runner.OptimizationRunner` arranges);
        this driver never screens on cheap levels (DESIGN.md §11).
        """
        if n_trials <= 0:
            raise OptimizationError(f"n_trials must be positive, got {n_trials}")
        race_subsets = None
        if racing is not None:
            from ..core.racing import RungSchedule, resolve_rung_subsets

            racing = RungSchedule.parse(racing)
            # The member ranking is deterministic per ensemble — probe
            # once per optimize() call, not per batch.
            race_subsets = resolve_rung_subsets(objective, racing)
        if fidelity is not None:
            from ..core.fidelity import FidelityLadder

            fidelity = FidelityLadder.parse(fidelity)
        sampler = self.study.sampler
        prior_seeding = sampler.per_trial_seeding
        # Worker scheduling must never perturb sampling: pin every trial
        # to its own deterministic RNG stream for the duration of the
        # run (restored afterwards — the sampler is the caller's).
        sampler.per_trial_seeding = True
        try:
            persisted_batch = self.study.metadata.get("batch")
            requested_racing = (
                racing.spec_string() if racing is not None else None
            )
            requested_fidelity = (
                fidelity.spec_string() if fidelity is not None else None
            )
            persisted_racing = self.study.metadata.get("racing")
            persisted_fidelity = self.study.metadata.get("fidelity")
            if self.study.storage is not None and not self.study.trials:
                # A fresh study built via create_study(storage=...) was
                # registered before the runner knew its generation size,
                # rung schedule, or fidelity ladder; persist them now so
                # a mismatched resume is detectable.
                dirty = False
                if persisted_batch is None:
                    self.study.metadata["batch"] = self.batch_size
                    dirty = True
                if persisted_racing is None and requested_racing is not None:
                    self.study.metadata["racing"] = requested_racing
                    persisted_racing = requested_racing
                    dirty = True
                if persisted_fidelity is None and requested_fidelity is not None:
                    self.study.metadata["fidelity"] = requested_fidelity
                    persisted_fidelity = requested_fidelity
                    dirty = True
                if dirty:
                    self.study.storage.update_metadata(
                        self.study.study_name, self.study.metadata
                    )
            # Identity checks route through the one shared validator
            # (DESIGN.md §12) — the same rules (and error text) as the
            # serial driver: the batch size fixes generation
            # boundaries, the rung schedule decides which trials get
            # pruned, the ladder which physics scored them.
            from ..core.study_spec import check_resume_identity

            if self.study.trials:
                check_resume_identity(
                    self.study.study_name,
                    self.study.metadata,
                    {"batch": self.batch_size},
                )
            if self.study.storage is not None:
                check_resume_identity(
                    self.study.study_name,
                    self.study.metadata,
                    {
                        "racing": requested_racing,
                        "fidelity": requested_fidelity,
                    },
                )
            if len(self.study.trials) < n_trials:
                self.study.drop_trailing_partial_batch(self.batch_size)
            remaining = max(n_trials - len(self.study.trials), 0)
            while remaining > 0:
                k = min(self.batch_size, remaining)
                trials = [self.study.ask() for _ in range(k)]
                for trial in trials:
                    # Ask/tell protocol (DESIGN.md §10): the sampler
                    # plans each candidate jointly against the declared
                    # space — same RNG draws as the define-by-run loop.
                    params = sampler.ask(self.study, trial.number, self.space)
                    materialize_params(trial, params, self.space)
                batch_start = time.perf_counter()
                if racing is None:
                    outcomes = self._launch_batch(objective, trials)
                    busy = sum(seconds for _, _, seconds in outcomes)
                    slowest = max(
                        (seconds for _, _, seconds in outcomes), default=0.0
                    )
                    self._record_batch_timing(
                        time.perf_counter() - batch_start, slowest, busy
                    )
                    self._tell_outcomes(trials, outcomes, catch)
                else:
                    busy, slowest = self._race_batch(
                        objective, trials, race_subsets, catch
                    )
                    self._record_batch_timing(
                        time.perf_counter() - batch_start, slowest, busy
                    )
                remaining -= k
        finally:
            sampler.per_trial_seeding = prior_seeding
        return self.study

    def _record_batch_timing(self, wall: float, slowest: float, busy: float) -> None:
        """Worker-starvation accounting: per-batch (dispatch, slowest, idle).

        ``idle`` is the fraction of worker-seconds the barrier wasted —
        ``1 - busy / (workers × dispatch wall)`` — the quantity the
        pipelined dispatcher exists to reclaim.  Appended to the study
        metadata (persisted when storage-backed) so ``repro study
        status`` can show starvation on real studies, not just benches.
        """
        workers = getattr(self.launcher, "n_workers", 1)
        idle = max(0.0, 1.0 - busy / (wall * workers)) if wall > 0 else 0.0
        timings = self.study.metadata.setdefault("batch_timings", [])
        timings.append(
            {
                "dispatch": round(wall, 6),
                "slowest": round(slowest, 6),
                "idle": round(idle, 4),
            }
        )
        if self.study.storage is not None:
            self.study.storage.update_metadata(
                self.study.study_name, self.study.metadata
            )

    def _tell_outcomes(self, trials, outcomes, catch) -> None:
        """Record one batch's transported outcomes against the study."""
        for trial, (tag, payload, _seconds) in zip(trials, outcomes):
            if tag == "ok":
                self.study.tell(trial, payload)
            elif tag == "pruned":
                self.study.tell(trial, state=TrialState.PRUNED)
            else:
                self.study.tell(trial, state=TrialState.FAILED)
                if not (catch and isinstance(payload, catch)):
                    raise payload

    def _launch_batch(self, objective: ParamsObjective, trials) -> list[tuple[str, Any]]:
        """Fan one batch out in per-worker chunks (order-preserving)."""
        from ..confsys.launcher import chunk_evenly

        params = [dict(t.params) for t in trials]
        chunks = chunk_evenly(params, getattr(self.launcher, "n_workers", 1))
        outcomes = self.launcher.launch(
            _evaluate_trial_chunk, [(objective, chunk) for chunk in chunks]
        )
        return [outcome for chunk in outcomes for outcome in chunk]

    def _race_batch(self, objective, trials, subsets, catch) -> tuple[float, float]:
        """Rung dispatch: climb the racing ladder for one trial batch.

        Each rung fans only its *new* members (subsets nest) across
        workers via the objective's ``member_values`` hook and
        accumulates per-trial member matrices in the parent; partial and
        final vectors reduce those matrices with the objective's
        aggregate in canonical member order, so a survivor's told values
        are bit-identical to the full-fidelity objective — and a
        surviving trial pays exactly ``n_members`` member evaluations in
        total, never a member twice.  Non-survivors of a rung's
        non-dominated partial front are told PRUNED with their partial
        values as intermediate reports.

        Returns ``(busy, slowest)`` worker-seconds for the batch's
        starvation accounting.
        """
        from ..confsys.launcher import chunk_evenly
        from ..core.metrics import aggregate_values

        n_members = int(objective.n_members)
        aggregate = objective.aggregate
        matrices: "dict[int, dict[int, tuple[float, ...]]]" = {
            t.number: {} for t in trials
        }
        busy = 0.0
        slowest = 0.0

        def reduced(trial) -> tuple[float, ...]:
            matrix = matrices[trial.number]
            vectors = [matrix[m] for m in sorted(matrix)]
            return tuple(
                aggregate_values(column, aggregate) for column in zip(*vectors)
            )

        alive = list(trials)
        seen: "tuple[int, ...]" = ()
        for rung_index, subset in enumerate(subsets):
            if not alive:
                return busy, slowest
            new_members = tuple(m for m in subset if m not in seen)
            seen = subset
            if new_members:
                params = [dict(t.params) for t in alive]
                chunks = chunk_evenly(params, getattr(self.launcher, "n_workers", 1))
                outcomes = [
                    outcome
                    for chunk_result in self.launcher.launch(
                        _evaluate_members_chunk,
                        [(objective, new_members, chunk) for chunk in chunks],
                    )
                    for outcome in chunk_result
                ]
                busy += sum(seconds for _, _, seconds in outcomes)
                slowest = max(
                    slowest,
                    max((seconds for _, _, seconds in outcomes), default=0.0),
                )
                survivors = []
                for trial, (tag, payload, _seconds) in zip(alive, outcomes):
                    if tag == "ok":
                        for member, vector in zip(new_members, payload):
                            matrices[trial.number][member] = (
                                (vector,) if np.isscalar(vector) else tuple(vector)
                            )
                        survivors.append(trial)
                    elif tag == "pruned":
                        self.study.tell(trial, state=TrialState.PRUNED)
                    else:
                        self.study.tell(trial, state=TrialState.FAILED)
                        if not (catch and isinstance(payload, catch)):
                            raise payload
                alive = survivors
            if rung_index == len(subsets) - 1:
                for trial in alive:
                    trial.set_system_attr(RACING_RUNG_ATTR, n_members)
                    self.study.tell(trial, reduced(trial))
                return busy, slowest
            size = len(subset)
            vectors = [reduced(trial) for trial in alive]
            for trial, vector in zip(alive, vectors):
                trial.report(float(vector[0]), step=size)
                trial.set_system_attr(RACING_RUNG_ATTR, size)
            front = set(
                int(i)
                for i in pareto_front_indices(self.study.minimized_values(vectors))
            ) if vectors else set()
            next_alive = []
            for i, trial in enumerate(alive):
                if i in front:
                    next_alive.append(trial)
                else:
                    self.study.tell(trial, state=TrialState.PRUNED)
            alive = next_alive
        return busy, slowest


# -- pipelined dispatch (DESIGN.md §10) ---------------------------------------


def pipeline_spec_string(speculate: int) -> str:
    """Round-trippable pipeline spec persisted in study metadata."""
    return f"speculate={int(speculate)}"


def parse_pipeline_spec(spec: str) -> int:
    """Speculation depth from a persisted pipeline spec string."""
    text = str(spec).strip()
    prefix = "speculate="
    if not text.startswith(prefix):
        raise OptimizationError(f"malformed pipeline spec {spec!r} (want 'speculate=N')")
    try:
        value = int(text[len(prefix):])
    except ValueError:
        raise OptimizationError(
            f"malformed pipeline spec {spec!r} (want 'speculate=N')"
        ) from None
    if value < 0:
        raise OptimizationError("speculation depth must be >= 0")
    return value


#: per-process objective installed by the process-pool initializer, so
#: each work item ships only a params dict — not the (possibly
#: scenario-embedding) objective — across the pipe
_PIPELINE_OBJECTIVE: Any = None


def _pipeline_worker_init(payload: bytes) -> None:  # pragma: no cover - subprocess
    global _PIPELINE_OBJECTIVE
    _PIPELINE_OBJECTIVE = pickle.loads(payload)


def _pipeline_eval(params: dict[str, Any]) -> tuple[str, Any, float]:  # pragma: no cover - subprocess
    return _guarded(_PIPELINE_OBJECTIVE, params)


def _pipeline_eval_members(
    params: dict[str, Any], member_indices: tuple[int, ...]
) -> tuple[str, Any, float]:  # pragma: no cover - subprocess
    return _guarded(_PIPELINE_OBJECTIVE.member_values, params, member_indices)


class _HistoryPrefix:
    """Read-only study view truncated to its first ``epoch`` trials.

    In pipelined mode, trials *later* than a candidate's parent epoch
    may already be COMPLETE at ask time (workers race ahead of the
    sampler).  Breeding must not see them — the epoch is the whole
    determinism contract — so the sampler is handed this view instead of
    the live study.  Everything except ``trials`` delegates.
    """

    def __init__(self, study: Study, epoch: int) -> None:
        self.trials = study.trials[:epoch]
        self._study = study

    def __getattr__(self, name: str) -> Any:
        return getattr(self._study, name)


class _InlineExecutor:
    """Degenerate executor: runs each submission synchronously.

    The ``workers=1`` fast path — same control flow as the pools, no
    thread hops, and trivially deterministic completion order.
    """

    def submit(self, fn: "Callable[..., Any]", *args: Any) -> "Future[Any]":
        future: "Future[Any]" = Future()
        future.set_result(fn(*args))
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        return None


@dataclass
class PipelineStats:
    """Utilization accounting for one pipelined ``optimize`` call."""

    wall: float = 0.0
    busy: float = 0.0
    workers: int = 1
    n_trials: int = 0
    #: trials bred speculatively (parent epoch one generation behind)
    n_speculative: int = 0

    @property
    def idle_fraction(self) -> float:
        """Fraction of worker-seconds spent waiting, 0 when perfectly full."""
        capacity = self.wall * max(self.workers, 1)
        if capacity <= 0:
            return 0.0
        return max(0.0, 1.0 - self.busy / capacity)

    def as_metadata(self) -> dict[str, Any]:
        return {
            "wall": round(self.wall, 6),
            "busy": round(self.busy, 6),
            "workers": self.workers,
            "n_trials": self.n_trials,
            "n_speculative": self.n_speculative,
            "idle": round(self.idle_fraction, 4),
        }


@dataclass
class _Cohort:
    """Racing bookkeeping for one generation's rung climb."""

    generation: int
    expected: int
    trials: list = field(default_factory=list)
    #: trials still climbing; ``None`` until the cohort is fully asked
    alive: "list | None" = None
    rung: int = 0
    new_members: tuple[int, ...] = ()
    seen: tuple[int, ...] = ()
    results: dict = field(default_factory=dict)
    matrices: dict = field(default_factory=dict)

    def climbing(self) -> "list":
        return self.alive if self.alive is not None else self.trials

    def ready_to_decide(self) -> bool:
        if self.alive is None and len(self.trials) < self.expected:
            return False
        return all(t.number in self.results for t in self.climbing())


@dataclass
class _Item:
    """One in-flight work item: a whole trial, or one rung slice of it."""

    kind: str  # "trial" | "rung"
    trial: Any
    cohort: "_Cohort | None" = None


class PipelinedDispatcher:
    """Generation-free parallel search: stream candidates through ask/tell.

    Where :class:`ParallelStudyRunner` evaluates whole generations behind
    a barrier, this coordinator keeps every worker slot full
    (DESIGN.md §10):

    * candidates are dispatched *individually* the moment a slot frees;
    * with ``speculate=D > 0``, the first ``D`` candidates of each
      generation are bred early — from the previous generation's
      completed prefix — so workers never drain while a generation's
      slowest trial finishes.

    Determinism contract: trial *n* of generation ``g = n // batch`` is
    bred from the history prefix of length ``E(n)`` — ``(g-1)·batch`` for
    the ``D`` speculative offsets, ``g·batch`` otherwise.  ``E(n)`` is a
    pure function of the trial number, so together with per-trial RNG
    streams the planned params depend only on ``(seed, n, prefix)`` —
    never on worker count or scheduling.  Every trial records its epoch
    (``nsga2:parent_epoch``) and ask order (``pipeline:ask_number``) as
    system attrs; resume validates both against the recomputed schedule,
    exactly like the racing rung schedule, and re-runs anything that
    fails the audit.  With ``speculate=0`` the dispatched params — and
    hence the final front — are bit-identical to the generation-batched
    runner.

    **Racing integration**: rung climbs become just more work items in
    the same queue.  Decisions stay at generation-cohort × rung
    granularity (identical prune decisions to the batched runner's
    Optuna-style path), but each (trial, rung-slice) evaluation is its
    own queue item — so a rung-2 evaluation of one trial overlaps the
    full-fidelity climb of another, and with speculation the next
    generation's rung-0 items backfill slots during the climb.

    Parameters mirror :class:`ParallelStudyRunner` where shared;
    ``workers``/``executor`` replace the launcher (``"thread"``,
    ``"process"``, or ``"serial"``) since slot-level streaming needs
    future-granular completion, not a map.
    """

    def __init__(
        self,
        study: Study,
        space: dict[str, Distribution],
        workers: int = 1,
        executor: str = "thread",
        speculate: int = 0,
        batch_size: int | None = None,
        storage=None,
        shards: int | None = None,
    ) -> None:
        if not space:
            raise OptimizationError("parallel execution needs a declared search space")
        if workers < 1:
            raise OptimizationError("workers must be >= 1")
        if isinstance(executor, str):
            if executor not in ("thread", "process", "serial"):
                raise OptimizationError(
                    f"unknown executor '{executor}' (use thread | process | serial)"
                )
        elif not (
            hasattr(executor, "submit_trial") and hasattr(executor, "submit_rung")
        ):
            raise OptimizationError(
                "executor object must expose submit_trial/submit_rung/shutdown "
                "(the remote seam; see repro.service.lease.LeasedWorkQueue)"
            )
        if batch_size is not None and batch_size < 1:
            raise OptimizationError("batch_size must be >= 1")
        self.study = study
        self.space = dict(space)
        self.workers = int(workers)
        self.executor = executor
        self.batch_size = (
            batch_size
            or getattr(study.sampler, "population_size", None)
            or self.workers
        )
        if not 0 <= int(speculate) <= self.batch_size:
            raise OptimizationError(
                f"speculation depth must be in [0, batch_size={self.batch_size}]"
            )
        self.speculate = int(speculate)
        #: utilization accounting of the most recent ``optimize`` call
        self.stats = PipelineStats(workers=self.workers)
        if storage is not None:
            self._attach_storage(storage, shards)

    # -- setup / resume validation -------------------------------------------

    def _attach_storage(self, storage, shards: int | None) -> None:
        from .storage import resolve_storage

        if self.study.storage is not None:
            raise OptimizationError(
                "study already has a storage backend; build it with "
                "create_study(storage=..., load_if_exists=True) to resume"
            )
        backend = resolve_storage(storage, shards=shards)
        if backend.load_study(self.study.study_name) is not None:
            raise OptimizationError(
                f"study '{self.study.study_name}' already exists in that "
                "storage; resume it via create_study(load_if_exists=True)"
            )
        self.study.metadata.setdefault("batch", self.batch_size)
        self.study.metadata.setdefault(
            "pipeline", pipeline_spec_string(self.speculate)
        )
        backend.create_study(
            self.study.study_name,
            [d.value for d in self.study.directions],
            self.study.metadata,
        )
        self.study.storage = backend

    def _epoch(self, number: int) -> int:
        """Completed-history prefix length trial ``number`` breeds from."""
        generation, offset = divmod(int(number), self.batch_size)
        if generation >= 1 and offset < self.speculate:
            return (generation - 1) * self.batch_size
        return generation * self.batch_size

    def _validate_metadata(self, racing, fidelity=None) -> None:
        """Pipeline/batch/racing/fidelity identity checks, mirroring the
        batched runner: each persisted spec decides which history a
        resume may breed from (and which physics scored it), so a
        mismatch is a hard error, never a silent divergence."""
        md = self.study.metadata
        requested_pipeline = pipeline_spec_string(self.speculate)
        requested_racing = racing.spec_string() if racing is not None else None
        requested_fidelity = (
            fidelity.spec_string() if fidelity is not None else None
        )
        if self.study.storage is not None and not self.study.trials:
            dirty = False
            for key, value in (
                ("batch", self.batch_size),
                ("pipeline", requested_pipeline),
                ("racing", requested_racing),
                ("fidelity", requested_fidelity),
            ):
                if md.get(key) is None and value is not None:
                    md[key] = value
                    dirty = True
            if dirty:
                self.study.storage.update_metadata(self.study.study_name, md)
        # Identity checks route through the one shared validator
        # (DESIGN.md §12); the speculation depth joins batch/racing/
        # fidelity as an identity key because it decides every trial's
        # parent epoch.
        from ..core.study_spec import check_resume_identity

        if self.study.trials:
            check_resume_identity(
                self.study.study_name, md, {"batch": self.batch_size}
            )
        if self.study.storage is not None:
            check_resume_identity(
                self.study.study_name,
                md,
                {
                    "pipeline": requested_pipeline,
                    "racing": requested_racing,
                    "fidelity": requested_fidelity,
                },
            )

    def _validate_resume_prefix(self, racing) -> None:
        """Audit reloaded trials against the recomputed epoch schedule.

        Keeps the longest prefix whose persisted tags are exactly what
        this dispatcher would have written — ask order equal to the
        trial number (a compacting resume renumbers past gaps, which
        shifts trials onto the wrong per-trial RNG streams; the stale
        ask-number exposes it) and parent epoch equal to ``E(number)``.
        Everything after the first violation is dropped and re-asked;
        the kept prefix is, by construction, a prefix an uninterrupted
        run produced, so the resumed front is identical.  Under racing
        the cut additionally aligns to a generation boundary, because
        prune decisions are cohort-wide.
        """
        keep = 0
        for trial in self.study.trials:
            attrs = trial.system_attrs
            if attrs.get(PIPELINE_ASK_ATTR) != trial.number:
                break
            if attrs.get(PARENT_EPOCH_ATTR) != self._epoch(trial.number):
                break
            keep += 1
        if racing is not None:
            keep = (keep // self.batch_size) * self.batch_size
        del self.study.trials[keep:]

    # -- the dispatch loop ----------------------------------------------------

    def optimize(
        self,
        objective: ParamsObjective,
        n_trials: int,
        catch: tuple[type[Exception], ...] = (),
        racing=None,
        fidelity=None,
    ) -> Study:
        """Stream trials through worker slots up to ``n_trials`` total.

        Same outcome semantics as :meth:`ParallelStudyRunner.optimize`
        (``TrialPruned`` → PRUNED, caught exceptions → FAILED, anything
        else FAILED + re-raised) and the same total-target resume
        behaviour, but resume alignment is per-trial (epoch tags), not
        per-generation — only trials whose persisted tags fail the
        epoch audit are re-run.  ``fidelity`` persists/validates the
        model-fidelity ladder as resume identity (the objective already
        evaluates the ladder-top physics; DESIGN.md §11).
        """
        if n_trials <= 0:
            raise OptimizationError(f"n_trials must be positive, got {n_trials}")
        subsets = None
        if racing is not None:
            from ..core.racing import RungSchedule, resolve_rung_subsets

            racing = RungSchedule.parse(racing)
            subsets = resolve_rung_subsets(objective, racing)
        if fidelity is not None:
            from ..core.fidelity import FidelityLadder

            fidelity = FidelityLadder.parse(fidelity)
        sampler = self.study.sampler
        prior_seeding = sampler.per_trial_seeding
        sampler.per_trial_seeding = True
        try:
            self._validate_metadata(racing, fidelity)
            if len(self.study.trials) < n_trials:
                self._validate_resume_prefix(racing)
            pool = self._make_pool(objective)
            try:
                self._run(pool, objective, n_trials, catch, subsets)
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
        finally:
            sampler.per_trial_seeding = prior_seeding
        return self.study

    def _make_pool(self, objective: ParamsObjective):
        if not isinstance(self.executor, str):
            # Remote seam: an executor *object* (LeasedWorkQueue) already
            # knows how to evaluate params elsewhere — hand it straight
            # through; workers bring their own objective.
            return self.executor
        if self.executor == "serial" or self.workers == 1 and self.executor == "thread":
            return _InlineExecutor()
        if self.executor == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        import multiprocessing as mp

        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=mp.get_context("spawn"),
            initializer=_pipeline_worker_init,
            initargs=(pickle.dumps(objective),),
        )

    def _run(self, pool, objective, n_trials, catch, subsets) -> None:
        study = self.study
        self._objective = objective
        in_process = not isinstance(pool, ProcessPoolExecutor)
        # A pool with its own submit_trial/submit_rung is the remote seam:
        # items carry only params (the worker holds the objective), and the
        # returned futures resolve when a remote result is acknowledged.
        remote = hasattr(pool, "submit_trial")

        def submit_trial(params):
            if remote:
                return pool.submit_trial(params)
            if in_process:
                return pool.submit(_guarded, objective, params)
            return pool.submit(_pipeline_eval, params)

        def submit_rung(params, members):
            if remote:
                return pool.submit_rung(params, members)
            if in_process:
                return pool.submit(_guarded, objective.member_values, params, members)
            return pool.submit(_pipeline_eval_members, params, members)

        pending: "dict[Future, _Item]" = {}
        cohorts: "dict[int, _Cohort]" = {}
        self.stats = stats = PipelineStats(workers=self.workers)
        wall_start = time.perf_counter()
        # Reloaded trials are all finished (RUNNING ones were discarded
        # on load), so the contiguous finished prefix starts here.
        self._finished = len(study.trials)
        next_ask = len(study.trials)

        while next_ask < n_trials or pending:
            while (
                next_ask < n_trials
                and len(pending) < self.workers
                and self._finished >= self._epoch(next_ask)
            ):
                trial = self._ask_trial(next_ask, stats)
                if subsets is None:
                    pending[submit_trial(dict(trial.params))] = _Item("trial", trial)
                else:
                    cohort = self._enroll(cohorts, trial, n_trials, subsets)
                    pending[submit_rung(dict(trial.params), cohort.new_members)] = (
                        _Item("rung", trial, cohort)
                    )
                next_ask += 1
            if not pending:
                if next_ask >= n_trials:
                    break
                raise OptimizationError(
                    "pipeline stalled: no work in flight and trial "
                    f"{next_ask} cannot be bred yet (finished prefix "
                    f"{self._finished} < epoch {self._epoch(next_ask)})"
                )
            done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
            for future in done:
                item = pending.pop(future)
                tag, payload, seconds = future.result()
                stats.busy += seconds
                if item.kind == "trial":
                    self._tell_plain(item.trial, tag, payload, catch)
                else:
                    item.cohort.results[item.trial.number] = (tag, payload)
                    if item.cohort.ready_to_decide():
                        self._decide(
                            item.cohort, pending, submit_rung, subsets, catch
                        )
        stats.wall = time.perf_counter() - wall_start
        stats.n_trials = len(study.trials)
        if study.storage is not None:
            study.metadata["pipeline_stats"] = stats.as_metadata()
            study.storage.update_metadata(study.study_name, study.metadata)

    def _ask_trial(self, number: int, stats: PipelineStats):
        epoch = self._epoch(number)
        trial = self.study.ask()
        if trial.number != number:
            raise OptimizationError(
                f"pipeline ask misaligned: expected trial {number}, "
                f"study created {trial.number}"
            )
        view = _HistoryPrefix(self.study, epoch)
        params = self.study.sampler.ask(view, number, self.space)
        materialize_params(trial, params, self.space)
        trial.set_system_attr(PIPELINE_ASK_ATTR, number)
        trial.set_system_attr(PARENT_EPOCH_ATTR, epoch)
        if epoch < (number // self.batch_size) * self.batch_size:
            stats.n_speculative += 1
        return trial

    def _advance_finished(self) -> None:
        trials = self.study.trials
        i = self._finished
        while i < len(trials) and trials[i].state.is_finished():
            i += 1
        self._finished = i

    def _tell_plain(self, trial, tag, payload, catch) -> None:
        if tag == "ok":
            self.study.tell(trial, payload)
        elif tag == "pruned":
            self.study.tell(trial, state=TrialState.PRUNED)
        else:
            self.study.tell(trial, state=TrialState.FAILED)
            if not (catch and isinstance(payload, catch)):
                raise payload
        self._advance_finished()

    # -- racing cohorts --------------------------------------------------------

    def _enroll(self, cohorts, trial, n_trials, subsets) -> _Cohort:
        generation = trial.number // self.batch_size
        cohort = cohorts.get(generation)
        if cohort is None:
            first = generation * self.batch_size
            cohort = _Cohort(
                generation=generation,
                expected=min(self.batch_size, n_trials - first),
                new_members=subsets[0],
                seen=subsets[0],
            )
            cohorts[generation] = cohort
        cohort.trials.append(trial)
        cohort.matrices[trial.number] = {}
        return cohort

    def _reduced(self, objective, cohort, trial) -> tuple[float, ...]:
        from ..core.metrics import aggregate_values

        matrix = cohort.matrices[trial.number]
        vectors = [matrix[m] for m in sorted(matrix)]
        return tuple(
            aggregate_values(column, objective.aggregate) for column in zip(*vectors)
        )

    def _decide(self, cohort, pending, submit_rung, subsets, catch) -> None:
        """Apply one rung's outcome to a fully-arrived cohort.

        Bit-identical decision rule to the batched runner's
        ``_race_batch`` — same member matrices, same partial reports,
        same non-dominated-front promotion — just triggered by arrival
        instead of a barrier.  Survivors' next-rung slices are submitted
        as fresh queue items; the study is told about prunes/failures
        immediately, which also advances the finished prefix that gates
        speculative asks.
        """
        if cohort.alive is None:
            cohort.alive = list(cohort.trials)
        objective = self._objective
        survivors = []
        for trial in cohort.alive:
            tag, payload = cohort.results.get(trial.number, ("ok", ()))
            if tag == "ok":
                for member, vector in zip(cohort.new_members, payload):
                    cohort.matrices[trial.number][member] = (
                        (vector,) if np.isscalar(vector) else tuple(vector)
                    )
                survivors.append(trial)
            elif tag == "pruned":
                self.study.tell(trial, state=TrialState.PRUNED)
            else:
                self.study.tell(trial, state=TrialState.FAILED)
                if not (catch and isinstance(payload, catch)):
                    self._advance_finished()
                    raise payload
        if cohort.rung == len(subsets) - 1:
            n_members = int(objective.n_members)
            for trial in survivors:
                trial.set_system_attr(RACING_RUNG_ATTR, n_members)
                self.study.tell(trial, self._reduced(objective, cohort, trial))
            self._advance_finished()
            return
        size = len(cohort.seen)
        vectors = [self._reduced(objective, cohort, trial) for trial in survivors]
        for trial, vector in zip(survivors, vectors):
            trial.report(float(vector[0]), step=size)
            trial.set_system_attr(RACING_RUNG_ATTR, size)
        front = (
            set(
                int(i)
                for i in pareto_front_indices(self.study.minimized_values(vectors))
            )
            if vectors
            else set()
        )
        next_alive = []
        for i, trial in enumerate(survivors):
            if i in front:
                next_alive.append(trial)
            else:
                self.study.tell(trial, state=TrialState.PRUNED)
        self._advance_finished()
        cohort.alive = next_alive
        cohort.rung += 1
        cohort.results = {}
        if not next_alive:
            return
        subset = subsets[cohort.rung]
        cohort.new_members = tuple(m for m in subset if m not in cohort.seen)
        cohort.seen = subset
        if not cohort.new_members:
            # Nothing new to evaluate at this rung: decide immediately
            # (the batched runner's `if new_members:` skip).
            self._decide(cohort, pending, submit_rung, subsets, catch)
            return
        for trial in next_alive:
            pending[submit_rung(dict(trial.params), cohort.new_members)] = _Item(
                "rung", trial, cohort
            )
