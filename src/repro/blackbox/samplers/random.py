"""Independent uniform random sampling."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..distributions import Distribution
from .base import Sampler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..study import Study
    from ..trial import FrozenTrial


class RandomSampler(Sampler):
    """Samples every parameter independently and uniformly."""

    def ask(
        self,
        study: "Study",
        trial_number: int,
        space: dict[str, Distribution],
    ) -> Any:
        self.begin_trial(int(trial_number))
        return {name: dist.sample(self.rng) for name, dist in space.items()}

    def sample(
        self,
        study: "Study",
        trial: "FrozenTrial",
        name: str,
        distribution: Distribution,
    ) -> Any:
        return distribution.sample(self.rng)
