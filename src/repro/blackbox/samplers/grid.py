"""Exhaustive grid sampling — the paper's §4.4 baseline.

Like ``optuna.samplers.GridSampler``, the grid is given explicitly as
``{param: [values...]}``; trial *n* receives the n-th point of the
lexicographic product, so ``n_trials = len(grid)`` covers the space
exactly once (the paper's 1 089-combination exhaustive baseline).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Sequence

from ...exceptions import OptimizationError
from ..distributions import Distribution
from .base import Sampler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..study import Study
    from ..trial import FrozenTrial


class GridSampler(Sampler):
    """Deterministic sweep over an explicit grid."""

    def __init__(self, search_space: dict[str, Sequence[Any]], seed: int | None = None) -> None:
        super().__init__(seed)
        if not search_space:
            raise OptimizationError("grid search space must not be empty")
        for name, values in search_space.items():
            if len(values) == 0:
                raise OptimizationError(f"grid for '{name}' is empty")
        self.search_space = {name: list(values) for name, values in search_space.items()}
        self._names = list(self.search_space)
        self._sizes = [len(self.search_space[n]) for n in self._names]

    def __len__(self) -> int:
        return math.prod(self._sizes)

    def point(self, index: int) -> dict[str, Any]:
        """The ``index``-th grid point in lexicographic order."""
        total = len(self)
        index %= total
        point: dict[str, Any] = {}
        # Last name varies fastest (row-major).
        for name, size in zip(reversed(self._names), reversed(self._sizes)):
            index, offset = divmod(index, size)
            point[name] = self.search_space[name][offset]
        return point

    def ask(
        self,
        study: "Study",
        trial_number: int,
        space: dict[str, Distribution],
    ) -> dict[str, Any]:
        self.begin_trial(int(trial_number))
        point = self.point(int(trial_number))
        params: dict[str, Any] = {}
        for name, dist in space.items():
            if name not in self.search_space:
                raise OptimizationError(f"parameter '{name}' not in the grid search space")
            value = point[name]
            if not dist.contains(value):
                raise OptimizationError(
                    f"grid value {value!r} for '{name}' is outside the suggested domain"
                )
            params[name] = value
        return params

    def sample(
        self,
        study: "Study",
        trial: "FrozenTrial",
        name: str,
        distribution: Distribution,
    ) -> Any:
        if name not in self.search_space:
            raise OptimizationError(f"parameter '{name}' not in the grid search space")
        genome = trial.system_attrs.setdefault("grid:point", self.point(trial.number))
        value = genome[name]
        if not distribution.contains(value):
            raise OptimizationError(
                f"grid value {value!r} for '{name}' is outside the suggested domain"
            )
        return value
