"""NSGA-II sampler — the paper's search engine (§4.4).

Implements the elitist non-dominated-sorting genetic algorithm of Deb et
al. (2002) in the define-by-run setting, following the same construction
as Optuna's ``NSGAIISampler``:

* the first ``population_size`` trials are random (generation 0);
* afterwards, the *parent population* is selected from all completed
  trials by non-dominated rank then crowding distance;
* each new trial's genome is produced by binary-tournament parent
  selection, uniform crossover, and per-parameter mutation;
* the genome is built jointly over the search space observed so far and
  stashed in the trial's system attrs; parameters outside the observed
  space fall back to random sampling.

The paper runs 350 trials with population 50 and recovers ≈80 % of the
exhaustive Pareto front — the configuration
``NSGA2Sampler(population_size=50)`` with ``n_trials=350`` reproduced by
``benchmarks/bench_search_performance.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ...exceptions import OptimizationError
from ..distributions import Distribution
from ..multiobjective import crowding_distance, non_dominated_sort
from .base import Sampler, observed_search_space

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..study import Study
    from ..trial import FrozenTrial

_GENOME_KEY = "nsga2:genome"


class NSGA2Sampler(Sampler):
    """Elitist multi-objective genetic sampler."""

    def __init__(
        self,
        population_size: int = 50,
        mutation_prob: float | None = None,
        crossover_prob: float = 0.9,
        swap_prob: float = 0.5,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed)
        if population_size < 2:
            raise OptimizationError("population size must be >= 2")
        if not 0.0 <= crossover_prob <= 1.0 or not 0.0 < swap_prob <= 1.0:
            raise OptimizationError("probabilities must lie in [0, 1]")
        self.population_size = population_size
        self.mutation_prob = mutation_prob  # default 1/len(space), set lazily
        self.crossover_prob = crossover_prob
        self.swap_prob = swap_prob

    # -- population machinery -------------------------------------------------

    def _completed(self, study: "Study") -> list["FrozenTrial"]:
        from ..trial import TrialState

        return [
            t
            for t in study.trials
            if t.state == TrialState.COMPLETE and t.values is not None
        ]

    def _select_parents(self, study: "Study") -> list["FrozenTrial"]:
        """Environmental selection: rank + crowding over all completed."""
        completed = self._completed(study)
        values = study.minimized_values([t.values for t in completed])
        fronts = non_dominated_sort(values)
        parents: list[FrozenTrial] = []
        for front in fronts:
            if len(parents) + len(front) <= self.population_size:
                parents.extend(completed[i] for i in front)
            else:
                remaining = self.population_size - len(parents)
                crowd = crowding_distance(values[front])
                order = np.argsort(-crowd, kind="stable")[:remaining]
                parents.extend(completed[front[i]] for i in order)
                break
        return parents

    def _tournament(self, ranked: list[tuple["FrozenTrial", int, float]]) -> "FrozenTrial":
        """Binary tournament on (rank, -crowding)."""
        i, j = self.rng.integers(0, len(ranked), size=2)
        a, b = ranked[int(i)], ranked[int(j)]
        if (a[1], -a[2]) <= (b[1], -b[2]):
            return a[0]
        return b[0]

    def _make_genome(self, study: "Study") -> dict[str, Any]:
        space = observed_search_space(study)
        completed = self._completed(study)
        if not space or len(completed) < self.population_size:
            return {}  # generation 0: every parameter random

        parents = self._select_parents(study)
        values = study.minimized_values([t.values for t in parents])
        fronts = non_dominated_sort(values)
        rank_of = np.empty(len(parents), dtype=np.int64)
        crowd_of = np.empty(len(parents))
        for rank, front in enumerate(fronts):
            rank_of[front] = rank
            crowd_of[front] = crowding_distance(values[front])
        ranked = [(parents[i], int(rank_of[i]), float(crowd_of[i])) for i in range(len(parents))]

        p1 = self._tournament(ranked)
        p2 = self._tournament(ranked)

        mutation_prob = (
            self.mutation_prob if self.mutation_prob is not None else 1.0 / max(len(space), 1)
        )

        genome: dict[str, Any] = {}
        do_crossover = self.rng.random() < self.crossover_prob
        for name, dist in space.items():
            if name in p1.params and name in p2.params:
                if do_crossover and self.rng.random() < self.swap_prob:
                    value = p2.params[name]
                else:
                    value = p1.params[name]
            elif name in p1.params:
                value = p1.params[name]
            else:
                value = dist.sample(self.rng)
            if self.rng.random() < mutation_prob:
                value = dist.mutate(value, self.rng)
            genome[name] = value
        return genome

    # -- Sampler interface -----------------------------------------------------

    def ask(
        self,
        study: "Study",
        trial_number: int,
        space: dict[str, Distribution],
    ) -> dict[str, Any]:
        """Breed one full candidate (ask/tell protocol, DESIGN.md §10).

        Same RNG consumption as the define-by-run path: one genome is
        bred jointly from the completed history, then each declared
        parameter takes its genome value or a fresh random draw.
        """
        self.begin_trial(int(trial_number))
        genome = self._make_genome(study)
        params: dict[str, Any] = {}
        for name, dist in space.items():
            value = genome.get(name)
            if value is None or not dist.contains(value):
                value = dist.sample(self.rng)
            params[name] = value
        return params

    def sample(
        self,
        study: "Study",
        trial: "FrozenTrial",
        name: str,
        distribution: Distribution,
    ) -> Any:
        if _GENOME_KEY not in trial.system_attrs:
            trial.system_attrs[_GENOME_KEY] = self._make_genome(study)
        genome = trial.system_attrs[_GENOME_KEY]
        value = genome.get(name)
        if value is not None and distribution.contains(value):
            return value
        return distribution.sample(self.rng)
