"""Sampler interface.

A sampler is asked for one parameter at a time (define-by-run), but may
plan a whole candidate jointly: implementations can stash a genome in the
trial's ``system_attrs`` on the first suggestion and serve subsequent
parameters from it (how :class:`~repro.blackbox.samplers.nsga2.NSGA2Sampler`
does crossover over the full search space).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

import numpy as np

from ...rng import seed_for
from ..distributions import Distribution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..study import Study
    from ..trial import FrozenTrial


class Sampler(ABC):
    """Strategy for proposing parameter values.

    Samplers own one RNG stream (``self.rng``).  By default it is a
    single sequential stream, so results depend on the exact trial
    history.  Setting :attr:`per_trial_seeding` switches to
    deterministic per-trial streams derived via :func:`repro.rng.seed_for`
    from ``(sampler, seed, trial number)`` — then a resumed study draws
    exactly the values an uninterrupted run would have drawn, which is
    what makes storage-backed resume (DESIGN.md §3) and parallel
    execution (DESIGN.md §4) reproducible.  The storage-aware drivers
    (``ParallelStudyRunner``, ``OptimizationRunner.run_blackbox`` with a
    storage) enable it automatically.
    """

    def __init__(self, seed: int | None = None) -> None:
        if seed is None:
            seed = seed_for("sampler", type(self).__name__)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        #: when True, ``begin_trial`` rebinds ``self.rng`` per trial
        self.per_trial_seeding = False

    def begin_trial(self, trial_number: int) -> None:
        """Hook invoked when a trial's first parameter is suggested.

        Under :attr:`per_trial_seeding` this rebinds ``self.rng`` to the
        trial's own deterministic stream; otherwise it is a no-op (the
        historical single-stream behaviour).
        """
        if self.per_trial_seeding:
            self.rng = np.random.default_rng(
                seed_for("sampler", type(self).__name__, self.seed, int(trial_number))
            )

    @abstractmethod
    def sample(
        self,
        study: "Study",
        trial: "FrozenTrial",
        name: str,
        distribution: Distribution,
    ) -> Any:
        """Value for parameter ``name`` of ``trial``."""

    def on_trial_complete(self, study: "Study", trial: "FrozenTrial") -> None:
        """Hook invoked after a trial reaches a terminal state."""


def observed_search_space(study: "Study") -> dict[str, Distribution]:
    """Search space inferred from completed trials (Optuna-style).

    Returns parameters present in *all* completed trials with identical
    domains — the joint space genetic samplers evolve over.
    """
    from ..trial import TrialState

    completed = [t for t in study.trials if t.state == TrialState.COMPLETE]
    if not completed:
        return {}
    space: dict[str, Distribution] = dict(completed[0].distributions)
    for t in completed[1:]:
        for name in list(space):
            if t.distributions.get(name) != space[name]:
                del space[name]
    return space
