"""Sampler interface.

Samplers speak two protocols over the same drawing logic:

* **define-by-run** (``sample``): asked for one parameter at a time as
  the objective suggests them; implementations can stash a genome in the
  trial's ``system_attrs`` on the first suggestion and serve subsequent
  parameters from it (how :class:`~repro.blackbox.samplers.nsga2.NSGA2Sampler`
  does crossover over the full search space).
* **ask/tell** (``ask``/``tell``): given a declared search space, plan a
  complete candidate up front and observe finished trials explicitly —
  the protocol the parallel drivers (and any future remote workers)
  stream candidates through (DESIGN.md §10).  Both protocols consume the
  sampler's RNG identically, so for a fixed history ``ask`` returns
  exactly the params the define-by-run loop would have suggested.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

import numpy as np

from ...rng import seed_for
from ..distributions import Distribution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..study import Study
    from ..trial import FrozenTrial


class Sampler(ABC):
    """Strategy for proposing parameter values.

    Samplers own one RNG stream (``self.rng``).  By default it is a
    single sequential stream, so results depend on the exact trial
    history.  Setting :attr:`per_trial_seeding` switches to
    deterministic per-trial streams derived via :func:`repro.rng.seed_for`
    from ``(sampler, seed, trial number)`` — then a resumed study draws
    exactly the values an uninterrupted run would have drawn, which is
    what makes storage-backed resume (DESIGN.md §3) and parallel
    execution (DESIGN.md §4) reproducible.  The storage-aware drivers
    (``ParallelStudyRunner``, ``OptimizationRunner.run_blackbox`` with a
    storage) enable it automatically.
    """

    def __init__(self, seed: int | None = None) -> None:
        if seed is None:
            seed = seed_for("sampler", type(self).__name__)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        #: when True, ``begin_trial`` rebinds ``self.rng`` per trial
        self.per_trial_seeding = False

    def begin_trial(self, trial_number: int) -> None:
        """Hook invoked when a trial's first parameter is suggested.

        Under :attr:`per_trial_seeding` this rebinds ``self.rng`` to the
        trial's own deterministic stream; otherwise it is a no-op (the
        historical single-stream behaviour).
        """
        if self.per_trial_seeding:
            self.rng = np.random.default_rng(
                seed_for("sampler", type(self).__name__, self.seed, int(trial_number))
            )

    @abstractmethod
    def sample(
        self,
        study: "Study",
        trial: "FrozenTrial",
        name: str,
        distribution: Distribution,
    ) -> Any:
        """Value for parameter ``name`` of ``trial``."""

    def ask(
        self,
        study: "Study",
        trial_number: int,
        space: dict[str, Distribution],
    ) -> dict[str, Any]:
        """Plan a complete candidate for trial ``trial_number``.

        Returns a value for every parameter in ``space`` (in declaration
        order), drawing from this sampler's RNG exactly like the
        define-by-run path does, so the two protocols are bit-identical
        for a fixed (seed, trial number, completed history).

        This base implementation is the backward-compat shim for
        ``sample()``-era subclasses: it replays the historical
        one-parameter-at-a-time loop against a throwaway frozen trial.
        In-tree samplers all override it natively (asserted by the docs
        consistency suite); external subclasses should too — the shim
        warns because a sampler that stashes per-trial state in
        ``trial.system_attrs`` loses it here (the throwaway trial is
        discarded, only the params survive).
        """
        from ..trial import FrozenTrial

        warnings.warn(
            f"{type(self).__name__} implements only the legacy "
            "Sampler.sample() interface; the ask/tell drivers emulate it "
            "one parameter at a time. Override ask() natively "
            "(DESIGN.md §10).",
            DeprecationWarning,
            stacklevel=2,
        )
        proxy = FrozenTrial(number=int(trial_number))
        self.begin_trial(proxy.number)
        for name, dist in space.items():
            value = self.sample(study, proxy, name, dist)
            proxy.params[name] = value
            proxy.distributions[name] = dist
        return dict(proxy.params)

    def tell(self, study: "Study", trial: "FrozenTrial") -> None:
        """Observe a finished trial (ask/tell protocol).

        Default delegates to the historical ``on_trial_complete`` hook,
        so subclasses may override either.
        """
        self.on_trial_complete(study, trial)

    def on_trial_complete(self, study: "Study", trial: "FrozenTrial") -> None:
        """Hook invoked after a trial reaches a terminal state."""


def observed_search_space(study: "Study") -> dict[str, Distribution]:
    """Search space inferred from completed trials (Optuna-style).

    Returns parameters present in *all* completed trials with identical
    domains — the joint space genetic samplers evolve over.
    """
    from ..trial import TrialState

    completed = [t for t in study.trials if t.state == TrialState.COMPLETE]
    if not completed:
        return {}
    space: dict[str, Distribution] = dict(completed[0].distributions)
    for t in completed[1:]:
        for name in list(space):
            if t.distributions.get(name) != space[name]:
                del space[name]
    return space
