"""Samplers: strategies for proposing the next trial's parameters."""

from .base import Sampler
from .random import RandomSampler
from .grid import GridSampler
from .nsga2 import NSGA2Sampler
from .scalarization import ScalarizationSampler
from .tpe import TPESampler

__all__ = ["Sampler", "RandomSampler", "GridSampler", "NSGA2Sampler", "ScalarizationSampler", "TPESampler"]
