"""Simplified Tree-structured Parzen Estimator sampler.

Used by the sampler-ablation bench.  Implements the univariate TPE of
Bergstra et al. (2011): split completed trials into "good" (best γ
quantile) and "bad" sets, model each parameter's marginal in both sets
with kernel density estimates, and pick the candidate maximizing the
likelihood ratio l(x)/g(x).

For multi-objective studies the good set is the first non-domination
rank (a lightweight MOTPE approximation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ...exceptions import OptimizationError
from ..distributions import (
    CategoricalDistribution,
    Distribution,
    FloatDistribution,
    IntDistribution,
)
from ..multiobjective import non_dominated_sort
from .base import Sampler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..study import Study
    from ..trial import FrozenTrial


class TPESampler(Sampler):
    """Univariate TPE with random startup trials."""

    def __init__(
        self,
        n_startup_trials: int = 10,
        gamma: float = 0.25,
        n_candidates: int = 24,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed)
        if n_startup_trials < 1:
            raise OptimizationError("need at least one startup trial")
        if not 0.0 < gamma < 1.0:
            raise OptimizationError("gamma must be in (0, 1)")
        if n_candidates < 1:
            raise OptimizationError("need at least one candidate draw")
        self.n_startup_trials = n_startup_trials
        self.gamma = gamma
        self.n_candidates = n_candidates

    def _split(self, study: "Study", name: str) -> tuple[list[Any], list[Any]]:
        """(good values, bad values) for parameter ``name``."""
        from ..trial import TrialState

        completed = [
            t
            for t in study.trials
            if t.state == TrialState.COMPLETE and t.values is not None and name in t.params
        ]
        if not completed:
            return [], []
        values = study.minimized_values([t.values for t in completed])
        if values.shape[1] == 1:
            order = np.argsort(values[:, 0], kind="stable")
            n_good = max(1, int(np.ceil(self.gamma * len(completed))))
            good_idx = set(order[:n_good].tolist())
        else:
            fronts = non_dominated_sort(values)
            good_idx = set(fronts[0].tolist())
        good = [completed[i].params[name] for i in sorted(good_idx)]
        bad = [
            completed[i].params[name]
            for i in range(len(completed))
            if i not in good_idx
        ]
        return good, bad

    @staticmethod
    def _kde_logpdf(x: np.ndarray, samples: np.ndarray, bandwidth: float) -> np.ndarray:
        """Gaussian KDE log-density, vectorized over candidates."""
        if samples.size == 0:
            return np.zeros_like(x)
        diff = (x[:, None] - samples[None, :]) / bandwidth
        log_kernels = -0.5 * diff**2 - np.log(bandwidth * np.sqrt(2.0 * np.pi))
        max_log = log_kernels.max(axis=1, keepdims=True)
        return (
            max_log[:, 0]
            + np.log(np.exp(log_kernels - max_log).sum(axis=1))
            - np.log(samples.size)
        )

    def _sample_numeric(
        self, dist: "FloatDistribution | IntDistribution", good: list[Any], bad: list[Any]
    ) -> Any:
        low = float(dist.low)
        high = float(dist.high)
        span = max(high - low, 1e-12)
        bandwidth = max(span / 8.0, 1e-9)
        good_arr = np.asarray(good, dtype=np.float64)
        bad_arr = np.asarray(bad, dtype=np.float64)

        # Candidates: draws around good points + uniform exploration.
        n_exploit = max(self.n_candidates // 2, 1)
        exploit = (
            good_arr[self.rng.integers(0, good_arr.size, n_exploit)]
            + self.rng.normal(0.0, bandwidth, n_exploit)
            if good_arr.size
            else np.empty(0)
        )
        explore = self.rng.uniform(low, high, self.n_candidates - exploit.size)
        candidates = np.clip(np.concatenate([exploit, explore]), low, high)

        score = self._kde_logpdf(candidates, good_arr, bandwidth) - self._kde_logpdf(
            candidates, bad_arr, bandwidth
        )
        best = candidates[int(np.argmax(score))]
        if isinstance(dist, IntDistribution):
            return dist._snap(best)
        return dist._snap(best) if dist.step is not None else float(best)

    def _sample_categorical(
        self, dist: CategoricalDistribution, good: list[Any], bad: list[Any]
    ) -> Any:
        # Laplace-smoothed likelihood ratio over choices.
        weights = []
        for choice in dist.choices:
            l = (sum(1 for g in good if g == choice) + 1.0) / (len(good) + len(dist.choices))
            g = (sum(1 for b in bad if b == choice) + 1.0) / (len(bad) + len(dist.choices))
            weights.append(l / g)
        probs = np.asarray(weights) / np.sum(weights)
        return dist.choices[int(self.rng.choice(len(dist.choices), p=probs))]

    def ask(
        self,
        study: "Study",
        trial_number: int,
        space: dict[str, Distribution],
    ) -> dict[str, Any]:
        """Per-parameter TPE draws in declaration order (ask/tell).

        TPE has no joint genome — each parameter's KDE model is
        marginal — so ask is exactly the define-by-run loop applied to
        the declared space.
        """
        self.begin_trial(int(trial_number))
        return {
            name: self._sample_one(study, name, dist) for name, dist in space.items()
        }

    def _sample_one(self, study: "Study", name: str, distribution: Distribution) -> Any:
        from ..trial import TrialState

        n_complete = sum(1 for t in study.trials if t.state == TrialState.COMPLETE)
        if n_complete < self.n_startup_trials:
            return distribution.sample(self.rng)
        good, bad = self._split(study, name)
        if not good:
            return distribution.sample(self.rng)
        if isinstance(distribution, CategoricalDistribution):
            return self._sample_categorical(distribution, good, bad)
        if isinstance(distribution, (FloatDistribution, IntDistribution)):
            return self._sample_numeric(distribution, good, bad)
        return distribution.sample(self.rng)  # pragma: no cover - future dists

    def sample(
        self,
        study: "Study",
        trial: "FrozenTrial",
        name: str,
        distribution: Distribution,
    ) -> Any:
        return self._sample_one(study, name, distribution)
