"""Random-weight scalarization sampler (multi-objective baseline).

A classic alternative to dominance-based GAs: each new trial draws a
random weight vector w on the simplex, scores past trials by the
(normalized) **augmented Chebyshev** scalarization
``max_i w_i·f_i + ρ·Σ w_i·f_i``, and mutates the best-scoring past
candidate (hill-climbing under the sampled preference direction).
Different weight draws chase different regions of the Pareto front, so
over many trials the front fills in — without any non-dominated sorting.

Included as an extra baseline for the sampler-ablation bench.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ...exceptions import OptimizationError
from ..distributions import Distribution
from .base import Sampler, observed_search_space

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..study import Study
    from ..trial import FrozenTrial

_GENOME_KEY = "chebyshev:genome"


class ScalarizationSampler(Sampler):
    """Augmented-Chebyshev random-weight hill climber."""

    def __init__(
        self,
        n_startup_trials: int = 20,
        mutation_prob: float = 0.4,
        rho: float = 0.05,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed)
        if n_startup_trials < 1:
            raise OptimizationError("need at least one startup trial")
        if not 0.0 < mutation_prob <= 1.0:
            raise OptimizationError("mutation_prob must be in (0, 1]")
        self.n_startup_trials = n_startup_trials
        self.mutation_prob = mutation_prob
        self.rho = rho

    def _make_genome(self, study: "Study") -> dict[str, Any]:
        from ..trial import TrialState

        completed = [
            t for t in study.trials if t.state == TrialState.COMPLETE and t.values is not None
        ]
        space = observed_search_space(study)
        if len(completed) < self.n_startup_trials or not space:
            return {}

        values = study.minimized_values([t.values for t in completed])
        # Normalize objectives to [0, 1] so weights are comparable.
        lo = values.min(axis=0)
        span = values.max(axis=0) - lo
        span[span <= 0] = 1.0
        normalized = (values - lo) / span

        weights = self.rng.dirichlet(np.ones(values.shape[1]))
        weighted = normalized * weights
        scores = weighted.max(axis=1) + self.rho * weighted.sum(axis=1)
        parent = completed[int(np.argmin(scores))]

        genome: dict[str, Any] = {}
        for name, dist in space.items():
            value = parent.params.get(name)
            if value is None or not dist.contains(value):
                value = dist.sample(self.rng)
            elif self.rng.random() < self.mutation_prob:
                value = dist.mutate(value, self.rng)
            genome[name] = value
        return genome

    def ask(
        self,
        study: "Study",
        trial_number: int,
        space: dict[str, Distribution],
    ) -> dict[str, Any]:
        """Hill-climb one full candidate (ask/tell, DESIGN.md §10) —
        same RNG consumption as the define-by-run path."""
        self.begin_trial(int(trial_number))
        genome = self._make_genome(study)
        params: dict[str, Any] = {}
        for name, dist in space.items():
            value = genome.get(name)
            if value is None or not dist.contains(value):
                value = dist.sample(self.rng)
            params[name] = value
        return params

    def sample(
        self,
        study: "Study",
        trial: "FrozenTrial",
        name: str,
        distribution: Distribution,
    ) -> Any:
        if _GENOME_KEY not in trial.system_attrs:
            trial.system_attrs[_GENOME_KEY] = self._make_genome(study)
        genome = trial.system_attrs[_GENOME_KEY]
        value = genome.get(name)
        if value is not None and distribution.contains(value):
            return value
        return distribution.sample(self.rng)
