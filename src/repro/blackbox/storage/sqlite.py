"""Relational SQLite backend (``sqlite:///path.db``).

The production storage for multi-worker studies (DESIGN.md §7): where
the journal serializes every writer on one fsynced append-only file —
and replays the *whole history* on every load — SQLite gives
row-per-trial state (loads are O(live trials) with no compaction step)
and safe concurrent writers out of the box.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from pathlib import Path
from typing import Any

from ...exceptions import OptimizationError
from ..trial import FrozenTrial
from .base import StoredStudy, StudyStorage, _encode_value, _decode_value, decode_trial, encode_trial

_SCHEMA = """
CREATE TABLE IF NOT EXISTS studies (
    name       TEXT PRIMARY KEY,
    directions TEXT NOT NULL,
    metadata   TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    study  TEXT    NOT NULL,
    number INTEGER NOT NULL,
    record TEXT    NOT NULL,
    PRIMARY KEY (study, number)
);
"""


class SQLiteStorage(StudyStorage):
    """SQLite-backed storage: WAL mode, one transaction per record.

    Semantics match the journal exactly (the shared contract suite pins
    this): ``record_trial_start``/``record_trial_finish`` upsert the
    trial's row, so the *row table is* the journal's last-write-wins
    fixed point — including the tombstone case, where a bare start
    record written after a finish resets the trial to RUNNING.

    Crash safety comes from SQLite itself: ``journal_mode=WAL`` with
    ``synchronous=FULL`` makes every committed transaction durable
    against ``kill -9`` (the WAL is fsynced per commit, mirroring the
    journal backend's per-append fsync), and a transaction in flight at
    the kill rolls back atomically — the relational analogue of the
    torn JSONL tail, minus the need to skip it on replay.  Concurrent
    writers (one connection per process) serialize through SQLite's
    file locking; ``busy_timeout`` retries instead of failing when two
    workers commit at once.

    The instance is thread-safe: the service layer (DESIGN.md §12)
    shares one backend between HTTP handler threads and queue workers,
    so the single autocommit connection is opened with
    ``check_same_thread=False`` and every operation serializes through
    an internal lock (writes serialize behind SQLite's file lock
    regardless; the lock just extends that guarantee to this
    connection's cursor state).
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None
        self._lock = threading.RLock()

    # -- connection management --------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # isolation_level=None puts the connection in autocommit:
            # each single-statement write below is its own transaction,
            # committed (and WAL-fsynced) before the call returns.
            conn = sqlite3.connect(
                str(self.path),
                timeout=30.0,
                isolation_level=None,
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=FULL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.executescript(_SCHEMA)
            self._conn = conn
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # -- StudyStorage interface -------------------------------------------

    def create_study(
        self, study_name: str, directions: list[str], metadata: dict[str, Any]
    ) -> None:
        with self._lock:
            conn = self._connect()
            try:
                conn.execute(
                    "INSERT INTO studies (name, directions, metadata) VALUES (?, ?, ?)",
                    (
                        study_name,
                        json.dumps(list(directions)),
                        json.dumps(_encode_value(dict(metadata))),
                    ),
                )
            except sqlite3.IntegrityError:
                raise OptimizationError(
                    f"study '{study_name}' already exists in {self.path}"
                ) from None

    def update_metadata(self, study_name: str, metadata: dict[str, Any]) -> None:
        with self._lock:
            conn = self._connect()
            updated = conn.execute(
                "UPDATE studies SET metadata = ? WHERE name = ?",
                (json.dumps(_encode_value(dict(metadata))), study_name),
            )
            if updated.rowcount == 0:
                raise OptimizationError(
                    f"unknown study '{study_name}' in {self.path}"
                )

    def _upsert_trial(self, study_name: str, trial: FrozenTrial) -> None:
        with self._lock:
            conn = self._connect()
            conn.execute(
                "INSERT INTO trials (study, number, record) VALUES (?, ?, ?) "
                "ON CONFLICT (study, number) DO UPDATE SET record = excluded.record",
                (study_name, int(trial.number), json.dumps(encode_trial(trial))),
            )

    def record_trial_start(self, study_name: str, trial: FrozenTrial) -> None:
        self._upsert_trial(study_name, trial)

    def record_trial_finish(self, study_name: str, trial: FrozenTrial) -> None:
        self._upsert_trial(study_name, trial)

    def load_study(self, study_name: str) -> StoredStudy | None:
        with self._lock:
            if self._conn is None and not self.path.exists():
                return None  # don't create an empty database just to read
            conn = self._connect()
            row = conn.execute(
                "SELECT directions, metadata FROM studies WHERE name = ?",
                (study_name,),
            ).fetchone()
            if row is None:
                return None
            stored = StoredStudy(
                name=study_name,
                directions=[str(d) for d in json.loads(row[0])],
                metadata=_decode_value(json.loads(row[1])),
            )
            for (record,) in conn.execute(
                "SELECT record FROM trials WHERE study = ? ORDER BY number",
                (study_name,),
            ):
                trial = decode_trial(json.loads(record))
                stored.trials_by_number[trial.number] = trial
            return stored

    def load_all(self) -> dict[str, StoredStudy]:
        with self._lock:
            if self._conn is None and not self.path.exists():
                return {}
            conn = self._connect()
            names = [name for (name,) in conn.execute("SELECT name FROM studies")]
        out = {}
        for name in names:
            loaded = self.load_study(name)
            assert loaded is not None
            out[name] = loaded
        return out
