"""Study persistence: the pluggable storage subsystem (DESIGN.md §3, §7).

Real Optuna deployments persist trials so that a killed 350-trial
NSGA-II search resumes instead of restarting, and so that several
workers can share one study.  This package provides that seam as four
interchangeable backends behind one contract plus a URL registry:

* :mod:`.base` — the :class:`StudyStorage` protocol, replayed
  :class:`StoredStudy` state, and the shared JSON trial encoding;
* :mod:`.memory` — :class:`InMemoryStorage` (``memory://``),
  dict-backed and process-local;
* :mod:`.journal` — :class:`JournalStorage` (``journal:///p.jsonl``),
  an append-only fsynced JSONL file with crash-safe last-write-wins
  replay and :meth:`~JournalStorage.compact` to keep replay O(live
  trials);
* :mod:`.sqlite` — :class:`SQLiteStorage` (``sqlite:///p.db``), the
  production backend: WAL mode, one transaction per trial record,
  concurrent-writer safe;
* :mod:`.sharded` — :class:`ShardedStorage` fans one study across
  per-worker shard stores and :func:`merge_stores` folds them back;
* :mod:`.registry` — :func:`storage_from_url` / :func:`resolve_storage`
  turn a spec string into any of the above, which is what lets every
  storage-accepting API (``create_study``, ``run_blackbox``,
  ``ParallelStudyRunner``, the CLI) take a plain string.

Storage-aware entry points: ``create_study(..., storage=...,
load_if_exists=True)``, ``Study.ask`` / ``Study.tell`` (which record
trial starts/finishes), and
``OptimizationRunner.run_blackbox(storage=...)``.
"""

from .base import (
    StoredStudy,
    StudyStorage,
    decode_trial,
    encode_trial,
    require_study,
)
from .journal import JournalStorage
from .memory import InMemoryStorage
from .registry import (
    discover_shards,
    open_study_storage,
    register_scheme,
    resolve_storage,
    shard_spec,
    storage_from_url,
)
from .sharded import ShardedStorage, merge_stores
from .sqlite import SQLiteStorage

__all__ = [
    "StudyStorage",
    "StoredStudy",
    "InMemoryStorage",
    "JournalStorage",
    "SQLiteStorage",
    "ShardedStorage",
    "merge_stores",
    "encode_trial",
    "decode_trial",
    "require_study",
    "register_scheme",
    "resolve_storage",
    "shard_spec",
    "discover_shards",
    "open_study_storage",
    "storage_from_url",
]
