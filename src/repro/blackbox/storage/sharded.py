"""Sharded studies: one store per worker, merged after the fact.

A multi-worker study writing through one store funnels every record
through a single fsynced file or database.  :class:`ShardedStorage`
removes the funnel (DESIGN.md §7): trial *number n* always routes to
shard ``n % W``, so per-number last-write-wins ordering is preserved
inside exactly one shard and the union across shards is conflict-free
by construction.  Each shard is a complete, independently loadable
store (it carries the study record and metadata too), which is what
makes offline folding possible: :func:`merge_stores` — exposed as
``repro study merge`` — replays every shard and writes one consolidated
store whose replayed state (and therefore final Pareto front) is
identical to a single-store run of the same seeded study.
"""

from __future__ import annotations

from typing import Any, Sequence

from ...exceptions import OptimizationError
from ..trial import FrozenTrial
from .base import StoredStudy, StudyStorage


class ShardedStorage(StudyStorage):
    """Fan one study's records across per-worker shard stores.

    The study layer sees a single :class:`StudyStorage`; underneath,
    ``record_trial_start``/``record_trial_finish`` route each trial to
    shard ``number % n_shards`` and loads union the shards back
    together.  Because a given trial number always lands in the same
    shard, every per-number invariant of the single-store backends
    (last-write-wins replay, tombstoning renumbered trials, resume
    alignment) carries over unchanged.

    ``create_study`` registers the study in *every* shard — metadata
    included — so each shard file is self-describing and
    :func:`merge_stores` (or a status call against one shard) never
    needs the others to interpret it.
    """

    def __init__(self, shards: Sequence[StudyStorage]) -> None:
        if not shards:
            raise OptimizationError("need at least one shard store")
        self.shards = list(shards)

    def _shard_for(self, number: int) -> StudyStorage:
        return self.shards[int(number) % len(self.shards)]

    def create_study(
        self, study_name: str, directions: list[str], metadata: dict[str, Any]
    ) -> None:
        for shard in self.shards:
            shard.create_study(study_name, directions, metadata)

    def update_metadata(self, study_name: str, metadata: dict[str, Any]) -> None:
        for shard in self.shards:  # shards stay self-describing
            shard.update_metadata(study_name, metadata)

    def record_trial_start(self, study_name: str, trial: FrozenTrial) -> None:
        self._shard_for(trial.number).record_trial_start(study_name, trial)

    def record_trial_finish(self, study_name: str, trial: FrozenTrial) -> None:
        self._shard_for(trial.number).record_trial_finish(study_name, trial)

    def load_study(self, study_name: str) -> StoredStudy | None:
        merged: StoredStudy | None = None
        for shard in self.shards:
            stored = shard.load_study(study_name)
            if stored is None:
                continue
            if merged is None:
                merged = stored
            else:
                merged.trials_by_number.update(stored.trials_by_number)
        return merged

    def load_all(self) -> dict[str, StoredStudy]:
        names = sorted({name for shard in self.shards for name in shard.load_all()})
        out = {}
        for name in names:
            loaded = self.load_study(name)
            assert loaded is not None
            out[name] = loaded
        return out

    def close(self) -> None:
        for shard in self.shards:
            shard.close()


def merge_stores(
    sources: Sequence[StudyStorage],
    dest: StudyStorage,
    study_name: str | None = None,
) -> StoredStudy:
    """Fold shard stores into one consolidated store.

    Replays every source, unions the named study's trials by number
    (across shards the numbers are disjoint by construction; on overlap
    — e.g. merging two clean copies — later sources win), renumbers the
    finished trials consecutively in number order, and writes one
    ``create`` plus one finish record per trial into ``dest``.  Trials
    still RUNNING at a crash carry no parameters and are dropped, just
    as resume drops them; the renumbering closes the gaps they leave so
    the merged store satisfies the ``list-index == trial-number``
    invariant and can be resumed or analysed like a single-store run.

    Returns the merged study as replayed from ``dest``.  Raises if the
    sources disagree on directions, if ``study_name`` is ambiguous, or
    if ``dest`` already contains the study.
    """
    if not sources:
        raise OptimizationError("need at least one source store to merge")
    per_source = [src.load_all() for src in sources]
    names = sorted({name for loaded in per_source for name in loaded})
    if study_name is None:
        if len(names) != 1:
            raise OptimizationError(
                f"sources hold {len(names)} studies ({names}); pass study_name"
            )
        study_name = names[0]
    parts = [loaded[study_name] for loaded in per_source if study_name in loaded]
    if not parts:
        raise OptimizationError(f"study '{study_name}' not found in any source store")
    directions = parts[0].directions
    for part in parts[1:]:
        if part.directions != directions:
            raise OptimizationError(
                f"shards disagree on directions for '{study_name}': "
                f"{directions} vs {part.directions}"
            )
    if dest.load_study(study_name) is not None:
        raise OptimizationError(
            f"study '{study_name}' already exists in the destination store"
        )

    merged: dict[int, FrozenTrial] = {}
    for part in parts:
        merged.update(part.trials_by_number)
    finished = [merged[n] for n in sorted(merged) if merged[n].state.is_finished()]

    metadata = dict(parts[0].metadata)
    metadata.pop("shards", None)  # the merged store is a single store
    dest.create_study(study_name, list(directions), metadata)
    for i, trial in enumerate(finished):
        trial.number = i
        dest.record_trial_finish(study_name, trial)
    result = dest.load_study(study_name)
    assert result is not None
    return result
