"""Storage contract: the backend protocol and trial (de)serialization.

Every backend in :mod:`repro.blackbox.storage` speaks the same protocol
(DESIGN.md §3, §7):

* :class:`StudyStorage` — the three write hooks the study layer calls
  (``create_study`` once, ``record_trial_start`` on every ``ask``,
  ``record_trial_finish`` on every ``tell``) and the replay reads
  (``load_study`` / ``load_all``);
* :class:`StoredStudy` — the replayed state of one persisted study;
* :func:`encode_trial` / :func:`decode_trial` — the shared JSON trial
  encoding.  Every backend round-trips records through it, so a study
  that works against one backend is guaranteed to persist identically
  under any other.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ...exceptions import OptimizationError
from ..distributions import distribution_from_dict, distribution_to_dict
from ..trial import FrozenTrial, TrialState

_COMPOSITION_TAG = "__composition__"
_REPR_TAG = "__repr__"


# -- value (de)serialization ----------------------------------------------------


def _encode_value(value: Any) -> Any:
    """JSON-ready encoding of one attribute/parameter value.

    Handles numpy scalars, containers, and
    :class:`~repro.core.composition.MicrogridComposition` (stored by
    ``run_blackbox`` as a user attr).  Unknown objects degrade to a
    tagged ``repr`` string — lossy but journal-safe.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    # Lazy import: core depends on blackbox, not the other way around.
    from ...core.composition import MicrogridComposition

    if isinstance(value, MicrogridComposition):
        return {
            _COMPOSITION_TAG: {
                "n_turbines": value.n_turbines,
                "solar_kw": value.solar_kw,
                "battery_units": value.battery_units,
            }
        }
    return {_REPR_TAG: repr(value)}


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if _COMPOSITION_TAG in value and len(value) == 1:
            from ...core.composition import MicrogridComposition

            fields_ = value[_COMPOSITION_TAG]
            return MicrogridComposition(
                n_turbines=int(fields_["n_turbines"]),
                solar_kw=float(fields_["solar_kw"]),
                battery_units=int(fields_["battery_units"]),
            )
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_trial(trial: FrozenTrial) -> dict[str, Any]:
    """JSON-ready encoding of a frozen trial (all backends use this)."""
    return {
        "number": trial.number,
        "state": trial.state.value,
        "params": {k: _encode_value(v) for k, v in trial.params.items()},
        "distributions": {
            k: distribution_to_dict(d) for k, d in trial.distributions.items()
        },
        "values": None if trial.values is None else [float(v) for v in trial.values],
        "intermediate": {str(k): float(v) for k, v in trial.intermediate.items()},
        "user_attrs": {k: _encode_value(v) for k, v in trial.user_attrs.items()},
        "system_attrs": {k: _encode_value(v) for k, v in trial.system_attrs.items()},
    }


def decode_trial(record: dict[str, Any]) -> FrozenTrial:
    """Inverse of :func:`encode_trial`."""
    values = record.get("values")
    return FrozenTrial(
        number=int(record["number"]),
        state=TrialState(record["state"]),
        params={k: _decode_value(v) for k, v in record.get("params", {}).items()},
        distributions={
            k: distribution_from_dict(d)
            for k, d in record.get("distributions", {}).items()
        },
        values=None if values is None else tuple(float(v) for v in values),
        intermediate={int(k): float(v) for k, v in record.get("intermediate", {}).items()},
        user_attrs={k: _decode_value(v) for k, v in record.get("user_attrs", {}).items()},
        system_attrs={
            k: _decode_value(v) for k, v in record.get("system_attrs", {}).items()
        },
    )


# -- the storage protocol --------------------------------------------------------


@dataclass
class StoredStudy:
    """Replayed state of one persisted study."""

    name: str
    directions: list[str]
    metadata: dict[str, Any] = field(default_factory=dict)
    #: trials keyed by number (last write wins during replay)
    trials_by_number: dict[int, FrozenTrial] = field(default_factory=dict)

    @property
    def trials(self) -> list[FrozenTrial]:
        """All trials in number order (any state)."""
        return [self.trials_by_number[n] for n in sorted(self.trials_by_number)]

    def finished_trials(self) -> list[FrozenTrial]:
        """Trials with a terminal state, in number order."""
        return [t for t in self.trials if t.state.is_finished()]


class StudyStorage(ABC):
    """Backend protocol for persisting studies (DESIGN.md §3, §7).

    The study layer writes through three hooks: ``create_study`` once,
    ``record_trial_start`` on every ``ask`` and ``record_trial_finish``
    on every ``tell``.  ``load_study`` replays the backend's state.
    Backends are interchangeable: the URL registry
    (:mod:`repro.blackbox.storage.registry`) resolves a storage spec
    string to any of them, and one shared contract suite
    (``tests/test_storage_contract.py``) pins the semantics all of them
    must satisfy.
    """

    @abstractmethod
    def create_study(
        self, study_name: str, directions: list[str], metadata: dict[str, Any]
    ) -> None:
        """Register a new study; raises if the name is already taken."""

    @abstractmethod
    def load_study(self, study_name: str) -> StoredStudy | None:
        """Replayed study state, or ``None`` if unknown."""

    @abstractmethod
    def update_metadata(self, study_name: str, metadata: dict[str, Any]) -> None:
        """Replace a study's metadata (last write wins on replay).

        Used by drivers that learn resume-critical configuration only
        after the study was registered (e.g. ``ParallelStudyRunner``
        persisting its generation size).
        """

    @abstractmethod
    def record_trial_start(self, study_name: str, trial: FrozenTrial) -> None:
        """Record that a trial was asked (params not yet suggested)."""

    @abstractmethod
    def record_trial_finish(self, study_name: str, trial: FrozenTrial) -> None:
        """Record a trial reaching a terminal state (full snapshot)."""

    @abstractmethod
    def load_all(self) -> dict[str, StoredStudy]:
        """Replayed state of every study in the backend."""

    def study_names(self) -> list[str]:
        return sorted(self.load_all())

    def close(self) -> None:
        """Release any OS resources (file handles, connections).

        A closed backend reopens transparently on the next write or
        load; the default implementation is a no-op for backends that
        hold no handles.
        """

    def __enter__(self) -> "StudyStorage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def require_study(storage: StudyStorage, study_name: str) -> StoredStudy:
    """Load a study, raising instead of returning ``None`` when unknown."""
    stored = storage.load_study(study_name)
    if stored is None:
        raise OptimizationError(f"unknown study '{study_name}' in storage")
    return stored
