"""In-memory storage backend (``memory://``)."""

from __future__ import annotations

from typing import Any

from ...exceptions import OptimizationError
from ..trial import FrozenTrial
from .base import StoredStudy, StudyStorage, _encode_value, _decode_value, decode_trial, encode_trial


class InMemoryStorage(StudyStorage):
    """Process-local storage — the default behaviour, made explicit.

    Stores the *encoded* records (not live objects), so anything that
    works against :class:`InMemoryStorage` persists identically under
    :class:`~repro.blackbox.storage.journal.JournalStorage` or
    :class:`~repro.blackbox.storage.sqlite.SQLiteStorage`, and loaded
    trials never alias stored ones.
    """

    def __init__(self) -> None:
        self._studies: dict[str, dict[str, Any]] = {}

    def create_study(
        self, study_name: str, directions: list[str], metadata: dict[str, Any]
    ) -> None:
        if study_name in self._studies:
            raise OptimizationError(f"study '{study_name}' already exists in storage")
        self._studies[study_name] = {
            "directions": list(directions),
            "metadata": _encode_value(dict(metadata)),
            "trials": {},
        }

    def _require(self, study_name: str) -> dict[str, Any]:
        if study_name not in self._studies:
            raise OptimizationError(f"unknown study '{study_name}' in storage")
        return self._studies[study_name]

    def load_study(self, study_name: str) -> StoredStudy | None:
        if study_name not in self._studies:
            return None
        raw = self._studies[study_name]
        return StoredStudy(
            name=study_name,
            directions=list(raw["directions"]),
            metadata=_decode_value(raw["metadata"]),
            trials_by_number={
                n: decode_trial(rec) for n, rec in raw["trials"].items()
            },
        )

    def update_metadata(self, study_name: str, metadata: dict[str, Any]) -> None:
        self._require(study_name)["metadata"] = _encode_value(dict(metadata))

    def record_trial_start(self, study_name: str, trial: FrozenTrial) -> None:
        self._require(study_name)["trials"][trial.number] = encode_trial(trial)

    def record_trial_finish(self, study_name: str, trial: FrozenTrial) -> None:
        self._require(study_name)["trials"][trial.number] = encode_trial(trial)

    def load_all(self) -> dict[str, StoredStudy]:
        out = {}
        for name in self._studies:
            loaded = self.load_study(name)
            assert loaded is not None
            out[name] = loaded
        return out
