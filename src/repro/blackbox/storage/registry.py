"""URL-scheme registry: one string names any storage backend.

Everywhere the API takes a storage — ``create_study``,
``OptimizationRunner.run_blackbox``, ``ParallelStudyRunner``, the CLI's
``--storage``/``--journal`` flags — a spec string is accepted and
resolved here (DESIGN.md §7)::

    journal:///study.jsonl      append-only JSONL journal (relative path)
    journal:////abs/study.jsonl   …absolute path (SQLAlchemy convention)
    sqlite:///study.db          relational SQLite backend
    memory://                   process-local in-memory backend
    study.jsonl                 bare path: .db/.sqlite/.sqlite3 → sqlite,
                                anything else → journal

``resolve_storage`` passes :class:`StudyStorage` instances through
untouched, so every call site upgrades from "path argument" to "spec or
backend" without a signature change.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Callable

from ...exceptions import OptimizationError
from .base import StudyStorage
from .journal import JournalStorage
from .memory import InMemoryStorage
from .sharded import ShardedStorage
from .sqlite import SQLiteStorage

#: file extensions that make a bare path resolve to the SQLite backend
_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")

#: scheme name → factory taking the path portion of the URL
_SCHEMES: dict[str, Callable[[str], StudyStorage]] = {
    "journal": JournalStorage,
    "sqlite": SQLiteStorage,
    "memory": lambda path: InMemoryStorage(),
}


def register_scheme(name: str, factory: Callable[[str], StudyStorage]) -> None:
    """Register a custom ``scheme://`` factory (overwrites silently)."""
    _SCHEMES[name] = factory


def _split_url(spec: str) -> "tuple[str, str] | None":
    """``(scheme, path)`` for URL specs, ``None`` for bare paths."""
    if "://" not in spec:
        return None
    scheme, rest = spec.split("://", 1)
    # SQLAlchemy-style paths: sqlite:///rel.db → "rel.db",
    # sqlite:////abs/s.db → "/abs/s.db"; a hostless "scheme://rel.db"
    # is accepted as the relative path too.
    if rest.startswith("/"):
        rest = rest[1:]
    return scheme.lower(), rest


def storage_from_url(spec: "str | os.PathLike[str]") -> StudyStorage:
    """Resolve a storage spec string (or bare path) to a backend."""
    spec = os.fspath(spec)
    parts = _split_url(spec)
    if parts is None:  # bare path: pick the backend from the extension
        # Shard files keep their parent's backend: study.db.shard0 is
        # still sqlite, so strip the shard suffix before looking.
        base = re.sub(r"\.shard\d+$", "", spec)
        suffix = Path(base).suffix.lower()
        factory = SQLiteStorage if suffix in _SQLITE_SUFFIXES else JournalStorage
        return factory(spec)
    scheme, path = parts
    if scheme not in _SCHEMES:
        raise OptimizationError(
            f"unknown storage scheme '{scheme}://' in {spec!r} "
            f"(known: {', '.join(sorted(_SCHEMES))})"
        )
    if scheme != "memory" and not path:
        raise OptimizationError(f"storage spec {spec!r} names no path")
    return _SCHEMES[scheme](path)


def shard_spec(spec: str, index: int) -> str:
    """Spec string of shard ``index``: ``.shard<i>`` appended to the path."""
    return f"{spec}.shard{index}"


def discover_shards(spec: str) -> int:
    """Number of consecutive on-disk shard files next to ``spec`` (0 if none)."""
    parts = _split_url(os.fspath(spec))
    if parts is not None and parts[0] == "memory":
        return 0
    path = parts[1] if parts is not None else os.fspath(spec)
    n = 0
    while Path(f"{path}.shard{n}").exists():
        n += 1
    return n


def open_study_storage(spec: "str | os.PathLike[str]") -> StudyStorage:
    """Resolve ``spec``, auto-detecting a sharded topology on disk.

    A sharded run (``study run --shards W``) writes ``spec.shard0`` …
    ``spec.shardW-1`` and never the base path, so ``status``/``resume``
    against the base spec must reopen the same per-worker stores.  If
    the base store holds studies it wins (e.g. shards already merged
    into it); otherwise consecutive ``.shardN`` siblings are reopened
    as one :class:`ShardedStorage`.
    """
    store = storage_from_url(spec)
    if store.load_all():
        return store
    n = discover_shards(os.fspath(spec))
    if n > 1:
        store.close()
        return resolve_storage(spec, shards=n)
    return store


def resolve_storage(
    spec: "StudyStorage | str | os.PathLike[str] | None",
    shards: int | None = None,
) -> StudyStorage | None:
    """The one resolution path every storage-accepting API goes through.

    ``None`` and ready-made :class:`StudyStorage` instances pass through
    (``shards`` then must not also be requested — the caller already
    chose a topology); strings and paths resolve via the scheme
    registry.  With ``shards=W > 1`` the spec is expanded into W
    per-worker stores (``spec.shard0`` … ``spec.shardW-1``, or W
    independent in-memory stores for ``memory://``) wrapped in a
    :class:`ShardedStorage`.
    """
    if spec is None:
        return None
    if isinstance(spec, StudyStorage):
        if shards is not None and shards > 1:
            raise OptimizationError(
                "pass a spec string to shard a store, not a backend instance"
            )
        return spec
    spec = os.fspath(spec)
    if shards is None or shards <= 1:
        return storage_from_url(spec)
    if _split_url(spec) is not None and _split_url(spec)[0] == "memory":
        return ShardedStorage([InMemoryStorage() for _ in range(shards)])
    return ShardedStorage(
        [storage_from_url(shard_spec(spec, i)) for i in range(shards)]
    )
