"""Append-only JSONL journal backend (``journal:///path.jsonl``)."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ...exceptions import OptimizationError
from ..trial import FrozenTrial
from .base import StoredStudy, StudyStorage, _encode_value, _decode_value, decode_trial, encode_trial


class JournalStorage(StudyStorage):
    """Append-only JSONL journal with crash-safe replay.

    One JSON record per line; four operations::

        {"op": "create", "study": ..., "directions": [...], "metadata": {...}}
        {"op": "meta",   "study": ..., "metadata": {...}}
        {"op": "start",  "study": ..., "number": n}
        {"op": "finish", "study": ..., "trial": {...full snapshot...}}

    Appends are flushed and fsynced, so a ``kill -9`` loses at most the
    line being written; replay skips any line that fails to decode
    (the torn tail) and applies records in order with last-write-wins
    per trial number.  Several studies can share one journal file.

    Replay cost grows with *history*, not with live trials — every
    re-told trial (resume re-runs, shard renumbering) adds a line.
    :meth:`compact` rewrites the file to its last-write-wins fixed
    point, making subsequent loads O(live trials) (DESIGN.md §7).
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self._file = None  # lazily opened append handle
        #: parsed-record cache keyed on (st_ino, st_size, st_mtime_ns) —
        #: the journal is append-only and fsynced, so the stat signature
        #: changes on every append, and an atomic-replace rewrite
        #: (:meth:`compact`) changes the inode even when size and mtime
        #: collide; avoids re-decoding the whole file for each of the
        #: several load_study/load_all calls a CLI run makes
        self._records_cache: tuple[tuple[int, int, int], list[dict[str, Any]]] | None = None

    # -- low-level record I/O ---------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        if self._file is not None:
            # Another process may have atomically rewritten the journal
            # (compact()) since this handle was opened; appending to the
            # unlinked old inode would silently discard the record, so
            # detect the swap and reopen.  (Records racing *inside* the
            # compaction window can still be lost — compact quiescent
            # studies; see compact().)
            try:
                same = os.fstat(self._file.fileno()).st_ino == self.path.stat().st_ino
            except FileNotFoundError:
                same = False
            if not same:
                self.close()
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        # NB: no sort_keys — params/distributions dict order is the
        # define-by-run suggestion order, and genetic samplers iterate it
        # when mapping RNG draws to parameters; reordering would break
        # resumed-run determinism.
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Close the append handle and drop the record cache.

        Both reopen/refill automatically on next use; dropping the cache
        here means a long-lived closed instance can never serve records
        decoded before another process rewrote the file.
        """
        if self._file is not None:
            self._file.close()
            self._file = None
        self._records_cache = None

    def _records(self) -> list[dict[str, Any]]:
        if not self.path.exists():
            return []
        stat = self.path.stat()
        signature = (stat.st_ino, stat.st_size, stat.st_mtime_ns)
        if self._records_cache is not None and self._records_cache[0] == signature:
            return self._records_cache[1]
        records: list[dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a crash — replay past it
                if isinstance(rec, dict):
                    records.append(rec)
        self._records_cache = (signature, records)
        return records

    # -- StudyStorage interface -------------------------------------------

    def create_study(
        self, study_name: str, directions: list[str], metadata: dict[str, Any]
    ) -> None:
        if self.load_study(study_name) is not None:
            raise OptimizationError(
                f"study '{study_name}' already exists in {self.path}"
            )
        self._append(
            {
                "op": "create",
                "study": study_name,
                "directions": list(directions),
                "metadata": _encode_value(dict(metadata)),
            }
        )

    def load_study(self, study_name: str) -> StoredStudy | None:
        return self.load_all().get(study_name)

    def update_metadata(self, study_name: str, metadata: dict[str, Any]) -> None:
        if self.load_study(study_name) is None:
            raise OptimizationError(f"unknown study '{study_name}' in {self.path}")
        self._append(
            {"op": "meta", "study": study_name, "metadata": _encode_value(dict(metadata))}
        )

    def record_trial_start(self, study_name: str, trial: FrozenTrial) -> None:
        self._append({"op": "start", "study": study_name, "number": trial.number})

    def record_trial_finish(self, study_name: str, trial: FrozenTrial) -> None:
        self._append(
            {"op": "finish", "study": study_name, "trial": encode_trial(trial)}
        )

    def load_all(self) -> dict[str, StoredStudy]:
        studies: dict[str, StoredStudy] = {}
        for rec in self._records():
            op = rec.get("op")
            name = rec.get("study")
            if not isinstance(name, str):
                continue
            if op == "create":
                if name in studies:
                    continue  # duplicate create: first one wins
                studies[name] = StoredStudy(
                    name=name,
                    directions=[str(d) for d in rec.get("directions", [])],
                    metadata=_decode_value(rec.get("metadata", {})),
                )
            elif op == "meta" and name in studies:
                studies[name].metadata = _decode_value(rec.get("metadata", {}))
            elif op == "start" and name in studies:
                number = int(rec["number"])
                studies[name].trials_by_number[number] = FrozenTrial(number=number)
            elif op == "finish" and name in studies:
                trial = decode_trial(rec["trial"])
                studies[name].trials_by_number[trial.number] = trial
        return studies

    # -- compaction ---------------------------------------------------------

    def compact(self) -> tuple[int, int]:
        """Rewrite the journal to its last-write-wins fixed point.

        Resume re-runs and shard renumbering re-tell trials under their
        existing numbers, so a long-lived journal accumulates records
        replay immediately overwrites; replaying it costs O(history).
        Compaction keeps exactly what replay keeps — one ``create`` per
        study (first wins) and the final record per trial number (a full
        ``finish`` snapshot, or a bare ``start`` for trials that were
        still RUNNING, which resume must keep discarding) — so loading a
        compacted journal yields byte-identical study state at O(live
        trials) cost, and compacting a compacted journal is a no-op.

        The rewrite is crash-safe: records go to a sibling temp file,
        fsynced, then atomically ``os.replace``d over the journal — a
        kill at any point leaves either the old or the new file, never a
        mix.  Returns ``(records_before, records_after)``.

        Compact **quiescent** studies only: a concurrent writer's
        appends detect the inode swap and land in the rewritten file
        (see ``_append``), but a record committed *during* the
        compaction window itself — after this replay read, before the
        replace — is not in the rewrite and is lost.
        """
        before = len(self._records())
        studies = self.load_all()
        # The append handle (if open) points at the old inode; close it so
        # post-compaction appends land in the rewritten file.  This also
        # drops the record cache, which holds the pre-compaction decode.
        self.close()
        if not studies:
            return before, before

        tmp_path = self.path.with_name(self.path.name + ".compact.tmp")
        with open(tmp_path, "w", encoding="utf-8") as f:
            for name, stored in studies.items():
                f.write(
                    json.dumps(
                        {
                            "op": "create",
                            "study": name,
                            "directions": list(stored.directions),
                            "metadata": _encode_value(dict(stored.metadata)),
                        }
                    )
                    + "\n"
                )
                for trial in stored.trials:
                    if trial.state.is_finished():
                        rec = {"op": "finish", "study": name, "trial": encode_trial(trial)}
                    else:
                        rec = {"op": "start", "study": name, "number": trial.number}
                    f.write(json.dumps(rec) + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, self.path)
        self._records_cache = None  # the path now names a different inode
        return before, len(self._records())
