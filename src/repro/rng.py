"""Deterministic random-number management.

Every synthetic dataset in this reproduction (weather, wind, workload,
carbon intensity) must be bit-for-bit reproducible so that benchmark tables
are stable across runs and machines.  We derive all streams from named
seeds via :func:`numpy.random.SeedSequence.spawn`-style hashing, so that

* two generators with different purposes never share a stream, and
* adding a new consumer never perturbs existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Global root seed of the reproduction.  Changing this regenerates every
#: synthetic dataset coherently.
ROOT_SEED = 20_250_820  # arXiv submission date of the paper


def seed_for(*names: object, root: int = ROOT_SEED) -> int:
    """Derive a stable 63-bit seed from a hierarchical name.

    Parameters
    ----------
    names:
        Arbitrary hashable path components, e.g. ``("wind", "houston", 2024)``.
    root:
        Root seed mixed into the hash.

    Returns
    -------
    int
        A deterministic seed in ``[0, 2**63)``.
    """
    digest = hashlib.sha256()
    digest.update(str(root).encode())
    for name in names:
        digest.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
        digest.update(repr(name).encode())
    return int.from_bytes(digest.digest()[:8], "little") & (2**63 - 1)


def generator_for(*names: object, root: int = ROOT_SEED) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for a hierarchical name."""
    return np.random.default_rng(seed_for(*names, root=root))
