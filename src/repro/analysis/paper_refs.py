"""The paper's published numbers, as data.

Machine-readable copies of Tables 1–2 and the headline §4 claims, plus
comparison helpers that score this reproduction against them.  Used by
the paper-shape tests and by :func:`reproduction_scorecard`, which
renders the agreement summary in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.composition import MicrogridComposition
from ..core.metrics import EvaluatedComposition


@dataclass(frozen=True)
class PaperRow:
    """One row of a paper candidate table."""

    wind_mw: float
    solar_mw: float
    battery_mwh: float
    embodied_tco2: float
    operational_tco2_day: float
    coverage_pct: float
    battery_cycles: float | None

    @property
    def composition(self) -> MicrogridComposition:
        return MicrogridComposition.from_mw(self.wind_mw, self.solar_mw, self.battery_mwh)


#: Table 1 (Houston), verbatim from the paper.
PAPER_TABLE1_HOUSTON = (
    PaperRow(0, 0, 0.0, 0, 15.54, 0.00, None),
    PaperRow(12, 0, 7.5, 4_649, 5.88, 71.07, 153),
    PaperRow(9, 8, 22.5, 9_573, 1.90, 91.79, 129),
    PaperRow(12, 12, 52.5, 14_999, 0.24, 99.11, 71),
    PaperRow(30, 40, 60.0, 39_380, 0.02, 100.00, 41),
)

#: Table 2 (Berkeley), verbatim from the paper.
PAPER_TABLE2_BERKELEY = (
    PaperRow(0, 0, 0.0, 0, 9.33, 0.00, None),
    PaperRow(3, 4, 22.5, 4_961, 4.65, 60.11, 82),
    PaperRow(0, 12, 37.5, 9_885, 1.33, 91.85, 206),
    PaperRow(9, 12, 52.5, 13_953, 0.08, 99.57, 138),
    PaperRow(30, 40, 60.0, 39_380, 0.02, 99.95, 106),
)

#: §4.2 crossover years (baseline overtakes max build-out).
PAPER_CROSSOVER_YEARS = {"houston": 7.0, "berkeley": 12.0}
#: §4.4 search-performance claims.
PAPER_NSGA2_TRIALS = 350
PAPER_NSGA2_POPULATION = 50
PAPER_PARETO_RECOVERY = 0.80
PAPER_EXHAUSTIVE_COMBINATIONS = 1_089


def evaluate_paper_rows(
    rows: tuple[PaperRow, ...], evaluator
) -> list[tuple[PaperRow, EvaluatedComposition]]:
    """Simulate the paper's exact compositions with a batch evaluator."""
    comps = [row.composition for row in rows]
    return list(zip(rows, evaluator.evaluate(comps)))


def reproduction_scorecard(
    rows: tuple[PaperRow, ...], evaluator, site_label: str = ""
) -> str:
    """Side-by-side paper-vs-measured report on the paper's compositions.

    Embodied cells must match exactly (same constants); operational and
    coverage cells are compared as ratios.
    """
    pairs = evaluate_paper_rows(rows, evaluator)
    lines = [
        f"reproduction scorecard{f' ({site_label})' if site_label else ''}:",
        f"{'composition':>18} {'embodied':>18} {'operat. tCO2/d':>22} {'coverage %':>20}",
    ]
    for row, measured in pairs:
        emb_ok = "=" if abs(measured.embodied_tonnes - row.embodied_tco2) < 0.5 else "!"
        lines.append(
            f"{row.composition.label():>18} "
            f"{row.embodied_tco2:>8,.0f} {emb_ok} {measured.embodied_tonnes:>7,.0f} "
            f"{row.operational_tco2_day:>10.2f} vs {measured.operational_tco2_per_day:>7.2f} "
            f"{row.coverage_pct:>9.2f} vs {measured.metrics.coverage * 100:>7.2f}"
        )
    ops_paper = np.array([r.operational_tco2_day for r, _ in pairs])
    ops_ours = np.array([m.operational_tco2_per_day for _, m in pairs])
    # Rank agreement on the operational ordering (they are sorted rows, so
    # perfect agreement = strictly decreasing measured values).
    ordering_ok = bool(np.all(np.diff(ops_ours) <= 1e-9))
    lines.append(
        f"operational ordering preserved: {ordering_ok}; "
        f"log-space RMS deviation: "
        f"{float(np.sqrt(np.mean((np.log10(ops_ours + 0.01) - np.log10(ops_paper + 0.01)) ** 2))):.2f} dex"
    )
    return "\n".join(lines)
