"""Combined experiment reports: tables + front + projections for one site."""

from __future__ import annotations

from ..core.candidates import paper_candidates
from ..core.projection import crossover_year, project_many
from ..core.study_runner import SearchResult
from .figures import ascii_scatter
from .tables import candidate_table, format_table


def experiment_report(site_name: str, result: SearchResult, horizon_years: float = 20.0) -> str:
    """A textual report reproducing the paper's §4.1–4.2 analyses."""
    candidates = paper_candidates(result.evaluated)
    front = result.front()

    sections = [
        f"=== {site_name} ===",
        format_table(candidate_table(candidates), title=f"Candidate solutions ({site_name})"),
        "",
        "Pareto front (embodied vs operational; '^' = extracted candidates):",
        ascii_scatter(
            [e.embodied_tonnes for e in front],
            [e.operational_tco2_per_day for e in front],
            highlight=[e.composition in {c.composition for c in candidates} for e in front],
            x_label="embodied tCO2",
            y_label="operational tCO2/day",
        ),
        "",
        f"{horizon_years:.0f}-year projection (total tCO2 at horizon):",
    ]

    projections = project_many(candidates, horizon_years=horizon_years)
    for proj in projections:
        sections.append(
            f"  {proj.label:>20}: start {proj.total_tco2[0]:>9,.0f}  "
            f"end {proj.total_tco2[-1]:>10,.0f}"
        )

    if len(projections) >= 2:
        baseline, largest = projections[0], projections[-1]
        year = crossover_year(baseline, largest)
        if year is not None:
            sections.append(
                f"  baseline overtakes the largest build-out after ~{year:.1f} years"
            )
    return "\n".join(sections)
