"""Candidate tables (Tables 1–2 of the paper)."""

from __future__ import annotations

from typing import Sequence

from ..core.metrics import EvaluatedComposition

#: column order and headers matching the paper's tables
TABLE_COLUMNS = (
    ("wind_mw", "Wind (MW)"),
    ("solar_mw", "Solar (MW)"),
    ("battery_mwh", "Battery (MWh)"),
    ("embodied_tco2", "Embodied (tCO2)"),
    ("operational_tco2_day", "Operat. (tCO2/d)"),
    ("coverage_pct", "Cov. (%)"),
    ("battery_cycles", "Battery cycles"),
)


def candidate_table(candidates: Sequence[EvaluatedComposition]) -> list[dict]:
    """Rows of a paper-style candidate table."""
    return [c.table_row() for c in candidates]


def format_table(rows: Sequence[dict], title: str = "") -> str:
    """Render rows as an aligned plain-text table."""
    headers = [header for _key, header in TABLE_COLUMNS]
    keys = [key for key, _header in TABLE_COLUMNS]
    str_rows = [[_fmt(row.get(key, "")) for key in keys] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}".rstrip("0").rstrip(".") if value % 1 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,d}"
    return str(value)
