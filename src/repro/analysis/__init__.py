"""Analysis and reporting: the paper's tables and figures as data.

matplotlib is unavailable in the offline environment, so "figures" are
emitted as CSV data series plus ASCII renderings — everything needed to
recreate the plots, produced by the same benchmark harness that prints
the tables.
"""

from .tables import candidate_table, format_table
from .figures import (
    ascii_heatmap,
    ascii_scatter,
    coverage_heatmap_series,
    pareto_front_series,
    projection_series,
    write_csv,
)
from .report import experiment_report

__all__ = [
    "candidate_table",
    "format_table",
    "pareto_front_series",
    "projection_series",
    "coverage_heatmap_series",
    "ascii_scatter",
    "ascii_heatmap",
    "write_csv",
    "experiment_report",
]
