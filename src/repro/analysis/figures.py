"""Figure data series and ASCII renderings (Figures 2–4 of the paper)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.metrics import EvaluatedComposition
from ..core.projection import CumulativeProjection


# ---------------------------------------------------------------------------
# Data series
# ---------------------------------------------------------------------------


def pareto_front_series(
    front: Sequence[EvaluatedComposition],
    candidates: Sequence[EvaluatedComposition] = (),
) -> list[dict]:
    """Figure 2 series: (embodied, operational) per front point, with the
    extracted candidates flagged (the red triangles)."""
    candidate_set = {c.composition for c in candidates}
    rows = []
    for e in sorted(front, key=lambda e: e.embodied_tonnes):
        rows.append(
            {
                "wind_mw": e.composition.wind_mw,
                "solar_mw": e.composition.solar_mw,
                "battery_mwh": e.composition.battery_mwh,
                "embodied_tco2": round(e.embodied_tonnes, 1),
                "operational_tco2_day": round(e.operational_tco2_per_day, 4),
                "is_candidate": e.composition in candidate_set,
            }
        )
    return rows


def projection_series(projections: Sequence[CumulativeProjection]) -> list[dict]:
    """Figure 3 series: cumulative tCO2 per candidate per year sample."""
    rows = []
    for proj in projections:
        for year, total in zip(proj.years, proj.total_tco2):
            rows.append(
                {
                    "composition": proj.label,
                    "year": round(float(year), 3),
                    "total_tco2": round(float(total), 1),
                }
            )
    return rows


def coverage_heatmap_series(
    solar_kw_levels: Sequence[float],
    n_turbine_levels: Sequence[int],
    coverage: np.ndarray,
) -> list[dict]:
    """Figure 4 series: coverage per (solar, wind) grid cell."""
    rows = []
    for i, s in enumerate(solar_kw_levels):
        for j, k in enumerate(n_turbine_levels):
            rows.append(
                {
                    "solar_kw": float(s),
                    "wind_kw": float(k) * 3_000.0,
                    "coverage_pct": round(float(coverage[i, j]) * 100.0, 2),
                }
            )
    return rows


def write_csv(rows: Sequence[dict], path: "str | Path") -> Path:
    """Write dict rows to CSV (stable header from the first row)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        p.write_text("")
        return p
    with p.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    return p


# ---------------------------------------------------------------------------
# ASCII renderings
# ---------------------------------------------------------------------------


def ascii_scatter(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 64,
    height: int = 18,
    marker: str = "*",
    highlight: "Sequence[bool] | None" = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A terminal scatter plot (highlighted points use '^', Figure 2 style)."""
    xs = np.asarray(list(x), dtype=np.float64)
    ys = np.asarray(list(y), dtype=np.float64)
    if xs.size == 0:
        return "(no data)"
    x0, x1 = xs.min(), xs.max()
    y0, y1 = ys.min(), ys.max()
    xspan = x1 - x0 or 1.0
    yspan = y1 - y0 or 1.0
    grid = [[" "] * width for _ in range(height)]
    flags = list(highlight) if highlight is not None else [False] * xs.size
    for xi, yi, hot in zip(xs, ys, flags):
        col = int((xi - x0) / xspan * (width - 1))
        row = height - 1 - int((yi - y0) / yspan * (height - 1))
        grid[row][col] = "^" if hot else marker
    lines = [f"{y_label} (top={y1:.3g}, bottom={y0:.3g})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x0:.3g} .. {x1:.3g}")
    return "\n".join(lines)


def ascii_heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: str = "",
) -> str:
    """A character heat map (Figure 4 style): '.' low → '#' high → '@' max."""
    ramp = " .:-=+*#%@"
    m = np.asarray(matrix, dtype=np.float64)
    lo, hi = m.min(), m.max()
    span = hi - lo or 1.0
    lines = []
    if title:
        lines.append(title)
    label_w = max((len(str(r)) for r in row_labels), default=4)
    header = " " * (label_w + 1) + " ".join(f"{c:>4}" for c in col_labels)
    lines.append(header)
    for i, row_label in enumerate(row_labels):
        cells = []
        for j in range(m.shape[1]):
            level = int((m[i, j] - lo) / span * (len(ramp) - 1))
            cells.append(f"{ramp[level] * 3:>4}")
        lines.append(f"{str(row_label):>{label_w}} " + " ".join(cells))
    lines.append(f"scale: '{ramp[0]}'={lo:.3g} .. '{ramp[-1]}'={hi:.3g}")
    return "\n".join(lines)
