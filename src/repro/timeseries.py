"""Regularly-sampled time series used throughout the co-simulator.

Vessim feeds historical traces (power, irradiance, carbon intensity) to its
actors through *signals*; the backing container here is a lightweight,
NumPy-based, regularly-sampled :class:`TimeSeries`.

Design notes (hpc-parallel guide):

* values are stored as one contiguous ``float64`` array — all bulk
  operations (resampling, integration, statistics) are vectorized;
* point lookup is O(1) arithmetic on the step index, not a search;
* arithmetic between aligned series operates on the raw arrays.

Time is modeled as seconds since the simulation epoch (t=0).  For annual
resource data the epoch is midnight, Jan 1, local standard time, and the
convention is that sample ``i`` covers ``[i*step, (i+1)*step)`` —
a *left-labelled, piecewise-constant* series, which is how NSRDB/SAM label
hourly data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from .exceptions import DataError
from .units import SECONDS_PER_HOUR


@dataclass
class TimeSeries:
    """A regularly sampled, left-labelled, piecewise-constant time series.

    Parameters
    ----------
    values:
        Sample values; copied to a contiguous float64 array.
    step_s:
        Sampling period in seconds (e.g. 3600 for hourly).
    start_s:
        Time of the first sample, seconds since the simulation epoch.
    name:
        Optional label used in error messages and reports.
    """

    values: np.ndarray
    step_s: float = SECONDS_PER_HOUR
    start_s: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        self.values = np.ascontiguousarray(self.values, dtype=np.float64)
        if self.values.ndim != 1:
            raise DataError(f"TimeSeries '{self.name}' must be 1-D, got shape {self.values.shape}")
        if self.values.size == 0:
            raise DataError(f"TimeSeries '{self.name}' must contain at least one sample")
        if self.step_s <= 0:
            raise DataError(f"TimeSeries '{self.name}' step must be positive, got {self.step_s}")

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return int(self.values.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    @property
    def end_s(self) -> float:
        """End of the covered interval (exclusive)."""
        return self.start_s + self.step_s * len(self)

    @property
    def duration_s(self) -> float:
        """Total covered duration in seconds."""
        return self.step_s * len(self)

    @property
    def times_s(self) -> np.ndarray:
        """Left-edge timestamps of every sample (seconds)."""
        return self.start_s + self.step_s * np.arange(len(self), dtype=np.float64)

    # -- lookup ------------------------------------------------------------

    def index_at(self, t_s: float) -> int:
        """Index of the sample covering time ``t_s``.

        Raises
        ------
        DataError
            If ``t_s`` lies outside ``[start, end)``.
        """
        if not (self.start_s <= t_s < self.end_s):
            raise DataError(
                f"time {t_s}s outside TimeSeries '{self.name}' range "
                f"[{self.start_s}, {self.end_s})"
            )
        return int((t_s - self.start_s) // self.step_s)

    def at(self, t_s: float) -> float:
        """Piecewise-constant value at time ``t_s``."""
        return float(self.values[self.index_at(t_s)])

    def interp(self, t_s: float) -> float:
        """Linearly interpolated value at ``t_s`` (sample centers as knots)."""
        centers = self.start_s + self.step_s * (np.arange(len(self)) + 0.5)
        return float(np.interp(t_s, centers, self.values))

    # -- bulk operations (vectorized) ---------------------------------------

    def mean(self) -> float:
        """Arithmetic mean of all samples."""
        return float(self.values.mean())

    def total_energy_wh(self) -> float:
        """Interpret samples as power in W and integrate to Wh."""
        return float(self.values.sum() * self.step_s / SECONDS_PER_HOUR)

    def resample(self, new_step_s: float) -> "TimeSeries":
        """Resample to a new period.

        Downsampling averages whole groups of samples (energy-conserving for
        power series); upsampling repeats samples (consistent with the
        piecewise-constant convention).  The new step must be an integer
        multiple or divisor of the current step.
        """
        if new_step_s <= 0:
            raise DataError("new step must be positive")
        if np.isclose(new_step_s, self.step_s):
            return TimeSeries(self.values.copy(), self.step_s, self.start_s, self.name)
        if new_step_s > self.step_s:
            ratio = new_step_s / self.step_s
            if not np.isclose(ratio, round(ratio)):
                raise DataError(
                    f"downsampling step {new_step_s} is not an integer multiple of {self.step_s}"
                )
            k = int(round(ratio))
            n_full = (len(self) // k) * k
            grouped = self.values[:n_full].reshape(-1, k).mean(axis=1)
            return TimeSeries(grouped, new_step_s, self.start_s, self.name)
        ratio = self.step_s / new_step_s
        if not np.isclose(ratio, round(ratio)):
            raise DataError(
                f"upsampling step {new_step_s} is not an integer divisor of {self.step_s}"
            )
        k = int(round(ratio))
        return TimeSeries(np.repeat(self.values, k), new_step_s, self.start_s, self.name)

    def slice(self, t0_s: float, t1_s: float) -> "TimeSeries":
        """Sub-series covering ``[t0, t1)`` (snapped to sample boundaries)."""
        i0 = self.index_at(t0_s)
        if not (self.start_s < t1_s <= self.end_s):
            raise DataError(f"slice end {t1_s} outside range ({self.start_s}, {self.end_s}]")
        i1 = int(np.ceil((t1_s - self.start_s) / self.step_s))
        return TimeSeries(
            self.values[i0:i1].copy(), self.step_s, self.start_s + i0 * self.step_s, self.name
        )

    def map(self, fn: Callable[[np.ndarray], np.ndarray], name: str | None = None) -> "TimeSeries":
        """Apply a vectorized function to the sample array."""
        return TimeSeries(fn(self.values), self.step_s, self.start_s, name or self.name)

    def scale(self, factor: float) -> "TimeSeries":
        """Multiply every sample by ``factor``."""
        return TimeSeries(self.values * factor, self.step_s, self.start_s, self.name)

    # -- arithmetic between aligned series -----------------------------------

    def _check_aligned(self, other: "TimeSeries") -> None:
        if len(self) != len(other) or not np.isclose(self.step_s, other.step_s) or not np.isclose(
            self.start_s, other.start_s
        ):
            raise DataError(
                f"TimeSeries '{self.name}' and '{other.name}' are not aligned: "
                f"len {len(self)}/{len(other)}, step {self.step_s}/{other.step_s}, "
                f"start {self.start_s}/{other.start_s}"
            )

    def __add__(self, other: "TimeSeries") -> "TimeSeries":
        self._check_aligned(other)
        return TimeSeries(self.values + other.values, self.step_s, self.start_s, self.name)

    def __sub__(self, other: "TimeSeries") -> "TimeSeries":
        self._check_aligned(other)
        return TimeSeries(self.values - other.values, self.step_s, self.start_s, self.name)


@dataclass
class HourOfYearIndex:
    """Helpers for mapping epoch-seconds to calendar structure.

    The synthetic resource year is a non-leap 365-day year starting at
    midnight Jan 1 local standard time (8 760 hourly samples).
    """

    step_s: float = SECONDS_PER_HOUR
    #: cumulative day-of-year at the start of each month (non-leap)
    month_start_day: np.ndarray = field(
        default_factory=lambda: np.array(
            [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334], dtype=np.int64
        )
    )

    def hour_of_year(self, t_s: np.ndarray | float) -> np.ndarray | float:
        """Hour index within the year, wrapping for multi-year times."""
        hours = np.asarray(t_s, dtype=np.float64) / SECONDS_PER_HOUR
        return np.mod(hours, 8_760.0)

    def day_of_year(self, t_s: np.ndarray | float) -> np.ndarray | float:
        """1-based day of year (1..365)."""
        return np.floor(self.hour_of_year(t_s) / 24.0) + 1

    def hour_of_day(self, t_s: np.ndarray | float) -> np.ndarray | float:
        """Local standard-time hour of day (0..24)."""
        return np.mod(np.asarray(t_s, dtype=np.float64) / SECONDS_PER_HOUR, 24.0)


def hourly_times_s(n_hours: int = 8_760) -> np.ndarray:
    """Left-edge timestamps (s) of an ``n_hours``-long hourly series."""
    return np.arange(n_hours, dtype=np.float64) * SECONDS_PER_HOUR
