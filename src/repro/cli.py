"""Command-line interface: regenerate the paper's artifacts from a shell.

Usage (also ``python -m repro.cli``)::

    python -m repro.cli table --site houston
    python -m repro.cli pareto --site berkeley --csv front.csv
    python -m repro.cli projection --site houston --years 20
    python -m repro.cli coverage --site houston
    python -m repro.cli search --site houston --trials 350 --population 50
    python -m repro.cli report --site berkeley

Persistent, resumable, parallel studies (DESIGN.md §3–§4)::

    python -m repro.cli study run    --journal study.jsonl --site houston \
        --trials 350 --population 50 --seed 42 --workers 4
    python -m repro.cli study resume --journal study.jsonl
    python -m repro.cli study status --journal study.jsonl

Storage is pluggable (DESIGN.md §7): every verb also accepts
``--storage`` with a URL-style spec resolved through the storage
registry — ``journal:///study.jsonl``, ``sqlite:///study.db``, or a
bare path whose extension picks the backend.  Journals are compacted to
their last-write-wins fixed point with ``study compact``, and a study
sharded across per-worker stores (``study run --shards 4``) is folded
back into one store with ``study merge``::

    python -m repro.cli study run     --storage sqlite:///study.db --site houston
    python -m repro.cli study compact --journal study.jsonl
    python -m repro.cli study merge   --into merged.db \
        --from study.db.shard0 --from study.db.shard1

Robust multi-site search with an alternative dispatch policy
(DESIGN.md §5) — score every candidate against several scenarios in one
stacked time loop and optimize the worst case::

    python -m repro.cli study run --journal robust.jsonl \
        --sites berkeley,houston --policy tou_arbitrage --aggregate worst

Scenario-ensemble search (DESIGN.md §6) — cross weather years, workload
growth, carbon trajectories, tariff variants, and dunkelflaute severity
into one ensemble, and optimize a risk-aware aggregate (``worst``,
``mean``, ``cvar:alpha``, ``quantile:q``) across all members::

    python -m repro.cli study run --journal ensemble.jsonl \
        --ensemble years=2020-2029,growth=1.0:1.3 --aggregate cvar:0.25

Multi-fidelity racing (DESIGN.md §8) — evaluate each generation on
progressively larger ensemble subsets, pruning candidates proven off
the front before they ever pay for the full ensemble::

    python -m repro.cli study run --journal raced.jsonl \
        --ensemble years=2020-2029,severity=1.0:1.5 \
        --aggregate worst --racing rungs=2,8,full

``study run`` journals every trial; kill it at any point and ``study
resume`` continues to the identical final Pareto front (the scenario,
ensemble, racing, and search configuration are persisted in the
journal's study metadata, so ``resume`` needs only the journal path).

Study-as-a-service (DESIGN.md §12) — the same studies behind a
stdlib-only HTTP JSON API, with queue workers and persisted heartbeats::

    python -m repro.cli serve --storage sqlite:///studies.db --workers 2
    # POST /studies            GET /studies            GET /studies/{name}
    # GET /studies/{name}/front.csv                    POST /studies/{name}/resume

``study status --json`` prints the service's machine-readable status
documents (the exact JSON ``GET /studies/{name}`` returns).

Mirrors the Hydra-style entry point of the paper's implementation:
every command accepts ``--set key=value`` overrides applied to the
scenario config (e.g. ``--set scenario.mean_power_mw=3.0``).  With
``pip install -e .`` the console script ``repro`` is equivalent to
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.figures import (
    ascii_heatmap,
    ascii_scatter,
    coverage_heatmap_series,
    pareto_front_series,
    projection_series,
    write_csv,
)
from .analysis.report import experiment_report
from .analysis.tables import candidate_table, format_table
from .blackbox import NSGA2Sampler
from .blackbox.multiobjective import pareto_recovery_rate
from .confsys import Config, apply_overrides
from .core.candidates import paper_candidates
from .core.dispatch import POLICY_NAMES
from .core.fastsim import coverage_grid
from .core.pareto import pareto_front, pareto_points
from .core.projection import crossover_year, project_many
from .core.scenario import build_scenario
from .core.study_runner import OptimizationRunner
from .units import PERLMUTTER_MEAN_POWER_W

DEFAULT_CONFIG = {
    "scenario": {
        "location": "houston",
        "year": 2024,
        "n_hours": 8_760,
        "mean_power_mw": PERLMUTTER_MEAN_POWER_W / 1e6,
    }
}


def _scenario_from(cfg: Config):
    return build_scenario(
        cfg.scenario.location,
        year_label=cfg.scenario.year,
        n_hours=cfg.scenario.n_hours,
        mean_power_w=cfg.scenario.mean_power_mw * 1e6,
    )


def _parse_sites(args, cfg: Config) -> "list[str]":
    """``--sites a,b`` list, falling back to the single ``--site``."""
    raw = getattr(args, "sites", None) or cfg.scenario.location
    sites = [s.strip().lower() for s in raw.split(",") if s.strip()]
    if not sites:
        raise SystemExit(f"--sites parsed to an empty list from {raw!r}")
    return sites


def _exhaustive(cfg: Config):
    scenario = _scenario_from(cfg)
    return scenario, OptimizationRunner(scenario).run_exhaustive()


def cmd_table(cfg: Config, args) -> int:
    _, result = _exhaustive(cfg)
    rows = candidate_table(paper_candidates(result.evaluated))
    print(format_table(rows, title=f"Candidate solutions ({cfg.scenario.location})"))
    return 0


def cmd_pareto(cfg: Config, args) -> int:
    _, result = _exhaustive(cfg)
    front = pareto_front(result.evaluated)
    candidates = paper_candidates(result.evaluated)
    rows = pareto_front_series(front, candidates)
    if args.csv:
        path = write_csv(rows, args.csv)
        print(f"wrote {len(rows)} front points to {path}")
    print(
        ascii_scatter(
            [r["embodied_tco2"] for r in rows],
            [r["operational_tco2_day"] for r in rows],
            highlight=[r["is_candidate"] for r in rows],
            x_label="embodied tCO2",
            y_label="operational tCO2/day",
        )
    )
    return 0


def cmd_projection(cfg: Config, args) -> int:
    _, result = _exhaustive(cfg)
    candidates = paper_candidates(result.evaluated)
    projections = project_many(candidates, horizon_years=args.years)
    if args.csv:
        write_csv(projection_series(projections), args.csv)
    for proj in projections:
        print(
            f"{proj.label:>18}: start {proj.total_tco2[0]:>9,.0f} tCO2, "
            f"year {args.years:.0f}: {proj.total_tco2[-1]:>10,.0f} tCO2"
        )
    year = crossover_year(projections[0], projections[-1])
    if year is not None:
        print(f"baseline overtakes the largest build-out after {year:.1f} years")
    return 0


def cmd_coverage(cfg: Config, args) -> int:
    scenario = _scenario_from(cfg)
    solar_levels = [i * 4_000.0 for i in range(11)]
    wind_levels = list(range(11))
    grid = coverage_grid(scenario, solar_levels, wind_levels)
    if args.csv:
        write_csv(coverage_heatmap_series(solar_levels, wind_levels, grid), args.csv)
    print(
        ascii_heatmap(
            grid * 100.0,
            row_labels=[f"{s/1000:.0f}MW" for s in solar_levels],
            col_labels=[str(3 * k) for k in wind_levels],
            title=f"coverage [%] ({cfg.scenario.location}, no storage)",
        )
    )
    return 0


def cmd_search(cfg: Config, args) -> int:
    scenario = _scenario_from(cfg)
    runner = OptimizationRunner(scenario)
    exhaustive = runner.run_exhaustive()
    found = OptimizationRunner(scenario).run_blackbox(
        n_trials=args.trials,
        sampler=NSGA2Sampler(population_size=args.population, seed=args.seed),
    )
    objectives = ("operational", "embodied")
    true_front = pareto_points(exhaustive.front(objectives), objectives)
    found_points = pareto_points(found.evaluated, objectives)
    print(
        f"trials {args.trials}, unique simulations {found.n_simulations}, "
        f"recovery strict {pareto_recovery_rate(found_points, true_front):.2f}, "
        f"recovery@1% {pareto_recovery_rate(found_points, true_front, tol=0.01):.2f}, "
        f"speed-up {len(exhaustive.evaluated) / found.n_simulations:.1f}x"
    )
    return 0


def _aggregate_arg(value: str) -> str:
    """argparse type: validate --aggregate via the shared grammar."""
    from .core.metrics import parse_aggregate
    from .exceptions import ConfigurationError

    try:
        parse_aggregate(value)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _racing_arg(value: str) -> str:
    """argparse type: validate --racing and normalize to the round-trip spec."""
    from .core.racing import RungSchedule
    from .exceptions import ConfigurationError

    try:
        return RungSchedule.parse(value).spec_string()
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _fidelity_arg(value: str) -> str:
    """argparse type: validate --fidelity and normalize to the round-trip spec."""
    from .core.fidelity import FidelityLadder
    from .exceptions import ConfigurationError

    try:
        return FidelityLadder.parse(value).spec_string()
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _store_spec(args) -> str:
    """The storage spec string: ``--storage URL`` or the ``--journal`` path."""
    return args.storage or args.journal


def _open_storage(args, shards: "int | None" = None):
    """Resolve the study store, reopening an on-disk sharded topology."""
    from .blackbox.storage import open_study_storage, resolve_storage

    if shards is not None and shards > 1:
        return resolve_storage(_store_spec(args), shards=shards)
    return open_study_storage(_store_spec(args))


def _print_search_summary(result, spec: str, name: str) -> None:
    front = result.front()
    line = (
        f"study '{name}': {len(result.study.trials)} trials, "
        f"{result.n_simulations} simulations this run, "
        f"front size {len(front)} (storage: {spec})"
    )
    if result.racing is not None:
        st = result.racing
        line += (
            f"\n  racing: {result.n_pruned} trials pruned, "
            f"{st.member_evals}/{st.full_member_evals} member-evals "
            f"({st.savings:.1f}x work saved), {st.promoted_back} promoted back"
        )
        if st.low_fidelity_evals:
            line += (
                f"\n  fidelity: {st.screened} candidates screened at cheap "
                f"physics ({st.low_fidelity_evals} low-fidelity member-evals)"
            )
    print(line)


def _interrupted(spec: str) -> int:
    print(
        f"\ninterrupted — completed trials are persisted; continue with:\n"
        f"  repro study resume --storage {spec}"
    )
    return 130


def _spec_from_args(cfg: Config, args, sites: "list[str]"):
    """Build the :class:`~repro.core.study_spec.StudySpec` a ``study
    run`` invocation describes — the CLI is a thin builder over the
    spec seam (DESIGN.md §12), so the HTTP service and the CLI cannot
    drift."""
    from .core.study_spec import StudySpec

    pipeline = None
    if args.pipeline or args.speculate is not None:
        from .blackbox.parallel import pipeline_spec_string

        pipeline = pipeline_spec_string(args.speculate or 0)
    return StudySpec(
        sites=tuple(sites),
        year=cfg.scenario.year,
        n_hours=cfg.scenario.n_hours,
        mean_power_mw=cfg.scenario.mean_power_mw,
        policy=args.policy,
        aggregate=args.aggregate,
        n_trials=args.trials,
        population=args.population,
        seed=args.seed,
        ensemble=args.ensemble,
        racing=args.racing,
        fidelity=args.fidelity,
        pipeline=pipeline,
        engine=args.engine,
        shards=args.shards,
    )


def cmd_study_run(cfg: Config, args) -> int:
    from .exceptions import OptimizationError

    spec = _store_spec(args)
    sites = _parse_sites(args, cfg)
    try:
        study_spec = _spec_from_args(cfg, args, sites)
    except OptimizationError as exc:
        raise SystemExit(str(exc)) from None
    name = args.name or study_spec.default_name
    # Check for a pre-existing study before the (possibly multi-minute)
    # ensemble build, so the duplicate-run error path is near-instant.
    storage = _open_storage(args, shards=args.shards)
    if storage.load_study(name) is not None:
        print(
            f"study '{name}' already exists in {spec} — continue it with:\n"
            f"  repro study resume --storage {spec} --name {name}"
        )
        return 1
    try:
        result = study_spec.execute(storage, name, workers=args.workers)
    except KeyboardInterrupt:
        return _interrupted(spec)
    _print_search_summary(result, spec, name)
    return 0


def cmd_study_resume(cfg: Config, args) -> int:
    from .core.study_spec import StudySpec, check_resume_identity
    from .exceptions import OptimizationError

    spec = _store_spec(args)
    storage = _open_storage(args)
    studies = storage.load_all()
    if not studies:
        print(f"no studies found in {spec}")
        return 1
    if args.name:
        if args.name not in studies:
            print(f"study '{args.name}' not in {spec} (has: {sorted(studies)})")
            return 1
        name = args.name
    elif len(studies) == 1:
        name = next(iter(studies))
    else:
        print(f"store holds several studies, pass --name (one of {sorted(studies)})")
        return 1

    md = studies[name].metadata
    try:
        # The persisted identity is authoritative: rebuild the exact
        # spec the study was run with (fails loudly, naming every
        # missing key, for pre-contract stores).
        study_spec = StudySpec.from_metadata(
            md, source=spec, trials_override=args.trials
        )
        # --racing/--fidelity on resume are explicit consistency checks
        # only — a mismatch against the persisted spec is a hard error,
        # through the same validator every driver uses.
        requested = {
            key: value
            for key, value in (("racing", args.racing), ("fidelity", args.fidelity))
            if value
        }
        if requested:
            check_resume_identity(name, md, requested)
    except OptimizationError as exc:
        raise SystemExit(str(exc)) from None
    if args.engine:
        # Engines are bit-for-bit identical (DESIGN.md §9), so an
        # override never changes the front — unlike every key above.
        study_spec = study_spec.replaced(engine=args.engine)
    try:
        result = study_spec.execute(
            storage, name, workers=args.workers, load_if_exists=True
        )
    except KeyboardInterrupt:
        return _interrupted(spec)
    _print_search_summary(result, spec, name)
    return 0


def cmd_study_status(cfg: Config, args) -> int:
    from .blackbox.trial import TrialState
    from .service import stored_front_size, study_status_document

    spec = _store_spec(args)
    storage = _open_storage(args)
    studies = storage.load_all()
    if not studies:
        print(f"no studies found in {spec}")
        return 1
    if getattr(args, "json", False):
        # The service's status serializer, verbatim (DESIGN.md §12):
        # scripts and GET /studies/{name} read the same document.
        import json

        print(
            json.dumps(
                [study_status_document(studies[n]) for n in sorted(studies)],
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    for name in sorted(studies):
        stored = studies[name]
        trials = stored.trials
        counts = {state.value: 0 for state in TrialState}
        for t in trials:
            counts[t.state.value] += 1
        target = stored.metadata.get("n_trials")
        target_str = f"/{target}" if target else ""
        line = (
            f"{name}: directions={stored.directions}, "
            f"{counts['complete']}{target_str} complete, "
            f"{counts['running']} in-flight, {counts['pruned']} pruned, "
            f"{counts['failed']} failed"
        )
        front_size = stored_front_size(stored)
        if front_size is not None:
            line += f", front size {front_size}"
        sites = stored.metadata.get("sites") or (
            [stored.metadata["site"]] if stored.metadata.get("site") else []
        )
        ensemble = stored.metadata.get("ensemble")
        if sites:
            line += f" (sites: {','.join(str(s) for s in sites)}"
            if stored.metadata.get("policy"):
                line += f", policy: {stored.metadata['policy']}"
                if len(sites) > 1 or ensemble:
                    line += f", aggregate: {stored.metadata.get('aggregate', 'worst')}"
            line += ")"
        print(line)
        if ensemble:
            from .core.ensemble import EnsembleSpec

            n_members = len(EnsembleSpec.parse(str(ensemble)))
            print(f"  ensemble ({n_members} members): {ensemble}")
        racing = stored.metadata.get("racing")
        if racing:
            print(f"  racing: {racing}{_rung_stats(trials)}")
        fidelity = stored.metadata.get("fidelity")
        if fidelity:
            print(f"  fidelity: {fidelity}")
        pipeline = stored.metadata.get("pipeline")
        if pipeline:
            line = f"  pipeline: {pipeline}"
            stats = stored.metadata.get("pipeline_stats")
            if stats:
                line += (
                    f" — {stats.get('workers')} workers, "
                    f"idle {100 * float(stats.get('idle', 0.0)):.0f}%, "
                    f"{stats.get('n_speculative', 0)} speculative trials"
                )
            print(line)
        timings = stored.metadata.get("batch_timings")
        if timings:
            print(f"  batches: {_starvation_stats(timings)}")
        doc = study_status_document(stored)
        service = doc.get("service")
        heartbeat = doc.get("heartbeat")
        if service or heartbeat:
            line = f"  service: {(service or {}).get('state', 'unknown')}"
            reclaims = (service or {}).get("reclaims")
            if reclaims:
                line += f", reclaimed ×{reclaims}"
            if heartbeat:
                line += f", heartbeat {heartbeat['age_s']:.0f}s ago"
                if heartbeat.get("trials_done") is not None and target:
                    line += f" ({heartbeat['trials_done']}/{target} trials)"
                if heartbeat["stale"]:
                    line += (
                        " — STALE: worker presumed dead; the next "
                        "`repro serve` worker reclaims it automatically "
                        "(or re-queue now with `repro study resume`)"
                    )
            print(line)
        leases = doc.get("leases")
        if leases:
            workers = leases.get("workers") or {}
            line = (
                f"  leases: {leases.get('queued', 0)} queued, "
                f"{leases.get('leased', 0)} leased, "
                f"{leases.get('completed', 0)} completed, "
                f"{leases.get('reclaimed', 0)} reclaimed "
                f"(ttl {leases.get('ttl_s')}s)"
            )
            if workers:
                line += (
                    ", workers: "
                    + ", ".join(f"{w}×{n}" for w, n in sorted(workers.items()))
                )
            print(line)
    return 0


def _starvation_stats(timings: "list[dict]") -> str:
    """Worker-starvation summary of a study's per-batch timing records.

    Each record carries ``(dispatch, slowest, idle)`` — the batch's wall
    clock, its slowest trial, and the fraction of worker-seconds the
    generation barrier wasted waiting on that straggler.
    """
    n = len(timings)
    dispatch = sum(float(t.get("dispatch", 0.0)) for t in timings)
    idles = [float(t.get("idle", 0.0)) for t in timings]
    mean_idle = sum(idles) / n if n else 0.0
    return (
        f"{n} dispatched in {dispatch:.1f}s, "
        f"mean idle {100 * mean_idle:.0f}%, worst {100 * max(idles, default=0.0):.0f}%"
    )


def _rung_stats(trials) -> str:
    """Per-rung trial histogram for a raced study's status line.

    Counts trials by the ``racing:rung`` system attr (members seen when
    the trial finished): pruned trials stop at a partial rung, survivors
    reach the full ensemble.
    """
    from .blackbox.trial import RACING_RUNG_ATTR, TrialState

    by_rung: "dict[int, list]" = {}
    for t in trials:
        rung = t.system_attrs.get(RACING_RUNG_ATTR)
        if rung is not None:
            by_rung.setdefault(int(rung), []).append(t)
    if not by_rung:
        return ""
    parts = []
    for rung in sorted(by_rung):
        cohort = by_rung[rung]
        pruned = sum(1 for t in cohort if t.state == TrialState.PRUNED)
        label = f"{len(cohort)} reached {rung}"
        if pruned:
            label += f" ({pruned} pruned)"
        parts.append(label)
    return " — " + ", ".join(parts)


def cmd_study_compact(cfg: Config, args) -> int:
    from .blackbox import JournalStorage

    spec = _store_spec(args)
    storage = _open_storage(args)
    stores = storage.shards if hasattr(storage, "shards") else [storage]
    if not all(isinstance(s, JournalStorage) for s in stores):
        print(
            f"{spec} is not journal-backed — compaction rewrites append-only "
            "journals; sqlite stores are already their own fixed point"
        )
        return 1
    for store in stores:
        before, after = store.compact()
        print(
            f"compacted {store.path}: {before} records -> {after} "
            f"({before - after} overwritten by later records)"
        )
    return 0


def cmd_study_merge(cfg: Config, args) -> int:
    from .blackbox.storage import merge_stores, storage_from_url

    sources = [storage_from_url(src) for src in args.sources]
    dest = storage_from_url(args.into)
    try:
        merged = merge_stores(sources, dest, study_name=args.name)
    except Exception as exc:  # noqa: BLE001 - CLI boundary: report, don't trace
        print(f"merge failed: {exc}")
        return 1
    from .service import stored_front_size

    line = (
        f"merged {len(args.sources)} stores into {args.into}: study "
        f"'{merged.name}', {len(merged.trials)} trials"
    )
    front_size = stored_front_size(merged)
    if front_size is not None:
        line += f", front size {front_size}"
    print(line)
    return 0


_STUDY_COMMANDS = {
    "run": cmd_study_run,
    "resume": cmd_study_resume,
    "status": cmd_study_status,
    "compact": cmd_study_compact,
    "merge": cmd_study_merge,
}


def cmd_study(cfg: Config, args) -> int:
    return _STUDY_COMMANDS[args.study_command](cfg, args)


def cmd_serve(cfg: Config, args) -> int:
    """Study-as-a-service (DESIGN.md §12): stdlib HTTP API + workers."""
    from .service import StudyService
    from .service.http import serve

    service = StudyService(args.storage)
    return serve(
        service, host=args.host, port=args.port, workers=args.workers
    )


def cmd_worker(cfg: Config, args) -> int:
    """Remote evaluation worker (DESIGN.md §13): lease, evaluate, ack."""
    import os
    import socket

    from .service.remote_worker import run_remote_worker

    worker_id = args.id or f"{socket.gethostname()}-{os.getpid()}"
    return run_remote_worker(
        args.connect,
        worker_id,
        poll_s=args.poll,
        lease_limit=args.lease_limit,
        max_items=args.max_items,
        max_idle=args.max_idle,
    )


def cmd_report(cfg: Config, args) -> int:
    _, result = _exhaustive(cfg)
    print(experiment_report(cfg.scenario.location, result, horizon_years=args.years))
    return 0


def cmd_all(cfg: Config, args) -> int:
    """Regenerate every artifact for both sites into ``--output-dir``."""
    from pathlib import Path

    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    for site in ("houston", "berkeley"):
        site_cfg = cfg.updated("scenario.location", site)
        scenario = _scenario_from(site_cfg)
        result = OptimizationRunner(scenario).run_exhaustive()
        candidates = paper_candidates(result.evaluated)
        front = pareto_front(result.evaluated)

        table = format_table(
            candidate_table(candidates), title=f"Candidate solutions ({site})"
        )
        (out / f"table_{site}.txt").write_text(table + "\n")
        write_csv(pareto_front_series(front, candidates), out / f"fig2_pareto_{site}.csv")
        write_csv(
            projection_series(project_many(candidates, horizon_years=20.0)),
            out / f"fig3_projection_{site}.csv",
        )
        solar_levels = [i * 4_000.0 for i in range(11)]
        wind_levels = list(range(11))
        grid = coverage_grid(scenario, solar_levels, wind_levels)
        write_csv(
            coverage_heatmap_series(solar_levels, wind_levels, grid),
            out / f"fig4_coverage_{site}.csv",
        )
        print(f"{site}: wrote table + fig2/fig3/fig4 series to {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Microgrid-composition optimization (paper reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--site", default="houston", choices=["houston", "berkeley"])
        p.add_argument(
            "--set",
            dest="overrides",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="config override, e.g. scenario.mean_power_mw=3.0",
        )
        return p

    common(sub.add_parser("table", help="candidate table (Tables 1-2)"))
    p = common(sub.add_parser("pareto", help="Pareto front (Figure 2)"))
    p.add_argument("--csv", default=None)
    p = common(sub.add_parser("projection", help="multi-year projection (Figure 3)"))
    p.add_argument("--years", type=float, default=20.0)
    p.add_argument("--csv", default=None)
    p = common(sub.add_parser("coverage", help="coverage surface (Figure 4)"))
    p.add_argument("--csv", default=None)
    p = common(sub.add_parser("search", help="NSGA-II vs exhaustive (section 4.4)"))
    p.add_argument("--trials", type=int, default=350)
    p.add_argument("--population", type=int, default=50)
    p.add_argument("--seed", type=int, default=42)
    p = common(sub.add_parser("report", help="full site report"))
    p.add_argument("--years", type=float, default=20.0)
    p = common(sub.add_parser("all", help="write every artifact for both sites"))
    p.add_argument("--output-dir", default="artifacts")

    def store_args(p):
        """``--journal`` (historical name) or ``--storage`` (any URL spec)."""
        g = p.add_mutually_exclusive_group(required=True)
        g.add_argument(
            "--journal",
            default=None,
            help="append-only JSONL journal path (shorthand for journal:// specs)",
        )
        g.add_argument(
            "--storage",
            default=None,
            metavar="URL",
            help="storage spec: journal:///p.jsonl | sqlite:///p.db | memory:// "
            "| bare path (.db/.sqlite → sqlite, else journal) (DESIGN.md §7)",
        )
        return p

    p = sub.add_parser("study", help="persistent, resumable, parallel studies")
    ssub = p.add_subparsers(dest="study_command", required=True)
    p_run = store_args(common(ssub.add_parser("run", help="run a persisted NSGA-II study")))
    p_run.add_argument("--name", default=None, help="study name (default: <sites>-blackbox)")
    p_run.add_argument("--trials", type=int, default=350)
    p_run.add_argument("--population", type=int, default=50)
    p_run.add_argument("--seed", type=int, default=42)
    p_run.add_argument("--workers", type=int, default=1, help="evaluation worker processes")
    p_run.add_argument(
        "--shards",
        type=int,
        default=None,
        help="fan trial records across N per-worker shard stores "
        "(<path>.shard0 … shardN-1); fold back with `repro study merge`",
    )
    p_run.add_argument(
        "--sites",
        default=None,
        metavar="SITE[,SITE...]",
        help="comma-separated sites for robust multi-scenario search "
        "(e.g. berkeley,houston; default: the single --site)",
    )
    p_run.add_argument(
        "--policy",
        default="default",
        choices=list(POLICY_NAMES),
        help="vectorized dispatch policy (DESIGN.md §5)",
    )
    p_run.add_argument(
        "--aggregate",
        default="worst",
        type=_aggregate_arg,
        help="robust reduction of each objective across scenarios: "
        "worst | mean | cvar:alpha | quantile:q (DESIGN.md §6)",
    )
    p_run.add_argument(
        "--ensemble",
        default=None,
        metavar="AXIS=VALUES[,AXIS=VALUES...]",
        help="scenario-ensemble axes crossed with the site(s), e.g. "
        "years=2020-2029,growth=1.0:1.3,carbon=baseline:cleaner,"
        "severity=1.0:1.5 (DESIGN.md §6)",
    )
    p_run.add_argument(
        "--racing",
        default=None,
        type=_racing_arg,
        metavar="rungs=A,B,full[,order=hardest|seeded][,seed=N]",
        help="multi-fidelity racing: evaluate each generation on "
        "progressively larger ensemble subsets, pruning candidates "
        "proven off the front, e.g. rungs=2,8,full (DESIGN.md §8)",
    )
    p_run.add_argument(
        "--fidelity",
        default=None,
        type=_fidelity_arg,
        metavar="fidelity=lo,mid,full[,margin=M]",
        help="model-fidelity ladder (DESIGN.md §11): score trials at the "
        "ladder-top physics (perez/sapm/rainflow) and, with --racing, "
        "screen candidates on cheap physics siblings first — the front "
        "is provably unchanged, e.g. fidelity=lo,mid,full",
    )
    p_run.add_argument(
        "--engine",
        default="auto",
        choices=["auto", "loop", "segments", "njit"],
        help="dispatch execution engine (DESIGN.md §9): all engines are "
        "bit-for-bit identical, so this changes throughput only "
        "(auto = fastest available for the chosen policy)",
    )
    p_run.add_argument(
        "--pipeline",
        action="store_true",
        help="stream trials through worker slots with no generation "
        "barrier (DESIGN.md §10); without --speculate the front is "
        "bit-identical to the generation-batched driver",
    )
    p_run.add_argument(
        "--speculate",
        type=int,
        default=None,
        metavar="D",
        help="pipelined speculation depth: breed the first D candidates "
        "of each generation from the previous generation's front "
        "(implies --pipeline; deterministic per seed, independent of "
        "--workers)",
    )
    p_res = store_args(ssub.add_parser("resume", help="resume an interrupted persisted study"))
    p_res.add_argument("--name", default=None, help="study name (needed if the store holds several)")
    p_res.add_argument("--trials", type=int, default=None, help="override the persisted trial target")
    p_res.add_argument("--workers", type=int, default=1)
    p_res.add_argument(
        "--engine",
        default=None,
        choices=["auto", "loop", "segments", "njit"],
        help="dispatch engine override for this resume; engines are "
        "bit-for-bit identical, so any choice reproduces the original "
        "front (default: the study's persisted engine, else auto)",
    )
    p_res.add_argument(
        "--racing",
        default=None,
        type=_racing_arg,
        metavar="rungs=A,B,full[,...]",
        help="consistency check only: must match the study's persisted "
        "rung schedule (resume always races the persisted schedule)",
    )
    p_res.add_argument(
        "--fidelity",
        default=None,
        type=_fidelity_arg,
        metavar="fidelity=lo,mid,full[,...]",
        help="consistency check only: must match the study's persisted "
        "fidelity ladder (resume always uses the persisted ladder)",
    )
    p_stat = store_args(ssub.add_parser("status", help="summarize the studies in a store"))
    p_stat.add_argument(
        "--json",
        action="store_true",
        help="print the service's machine-readable status documents "
        "(the same JSON GET /studies/{name} returns)",
    )
    store_args(
        ssub.add_parser(
            "compact",
            help="rewrite a journal to its last-write-wins fixed point "
            "(replay becomes O(live trials), not O(history))",
        )
    )
    p_serve = sub.add_parser(
        "serve",
        help="study-as-a-service: stdlib HTTP API + queue workers "
        "over one store (DESIGN.md §12)",
    )
    p_serve.add_argument(
        "--storage",
        required=True,
        metavar="URL",
        help="the store the service queues, runs, and serves studies from "
        "(journal:///p.jsonl | sqlite:///p.db | bare path)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="queue-draining worker threads pulling submitted studies",
    )

    p_worker = sub.add_parser(
        "worker",
        help="remote evaluation worker: lease candidate batches from a "
        "`repro serve` coordinator, evaluate, post results (DESIGN.md §13)",
    )
    p_worker.add_argument(
        "--connect",
        required=True,
        metavar="URL",
        help="the serve process to lease work from, e.g. http://host:8765",
    )
    p_worker.add_argument(
        "--id",
        default=None,
        help="worker id shown in lease stats (default: <hostname>-<pid>)",
    )
    p_worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="sleep between empty lease polls",
    )
    p_worker.add_argument(
        "--lease-limit",
        type=int,
        default=1,
        metavar="N",
        help="max candidate evaluations leased per poll",
    )
    p_worker.add_argument(
        "--max-items",
        type=int,
        default=None,
        metavar="N",
        help="exit after evaluating N items (default: run until idle/killed)",
    )
    p_worker.add_argument(
        "--max-idle",
        type=int,
        default=None,
        metavar="N",
        help="exit after N consecutive empty or unreachable polls "
        "(default: poll forever)",
    )

    p_merge = ssub.add_parser(
        "merge", help="fold shard stores into one store (renumbers trials)"
    )
    p_merge.add_argument(
        "--into", required=True, metavar="URL", help="destination storage spec"
    )
    p_merge.add_argument(
        "--from",
        dest="sources",
        action="append",
        required=True,
        metavar="URL",
        help="source shard store (repeat per shard)",
    )
    p_merge.add_argument(
        "--name", default=None, help="study to merge (needed if sources hold several)"
    )
    return parser


COMMANDS = {
    "table": cmd_table,
    "pareto": cmd_pareto,
    "projection": cmd_projection,
    "coverage": cmd_coverage,
    "search": cmd_search,
    "report": cmd_report,
    "all": cmd_all,
    "study": cmd_study,
    "serve": cmd_serve,
    "worker": cmd_worker,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # `study resume`/`study status` carry no --site; the journal metadata does.
    site = getattr(args, "site", DEFAULT_CONFIG["scenario"]["location"])
    cfg = Config(DEFAULT_CONFIG).updated("scenario.location", site)
    cfg = apply_overrides(cfg, getattr(args, "overrides", []))
    return COMMANDS[args.command](cfg, args)


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
