"""Command-line interface: regenerate the paper's artifacts from a shell.

Usage (also ``python -m repro.cli``)::

    python -m repro.cli table --site houston
    python -m repro.cli pareto --site berkeley --csv front.csv
    python -m repro.cli projection --site houston --years 20
    python -m repro.cli coverage --site houston
    python -m repro.cli search --site houston --trials 350 --population 50
    python -m repro.cli report --site berkeley

Mirrors the Hydra-style entry point of the paper's implementation:
every command accepts ``--set key=value`` overrides applied to the
scenario config (e.g. ``--set scenario.mean_power_mw=3.0``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.figures import (
    ascii_heatmap,
    ascii_scatter,
    coverage_heatmap_series,
    pareto_front_series,
    projection_series,
    write_csv,
)
from .analysis.report import experiment_report
from .analysis.tables import candidate_table, format_table
from .blackbox import NSGA2Sampler
from .blackbox.multiobjective import pareto_recovery_rate
from .confsys import Config, apply_overrides
from .core.candidates import paper_candidates
from .core.fastsim import coverage_grid
from .core.pareto import pareto_front, pareto_points
from .core.projection import crossover_year, project_many
from .core.scenario import build_scenario
from .core.study_runner import OptimizationRunner
from .units import PERLMUTTER_MEAN_POWER_W

DEFAULT_CONFIG = {
    "scenario": {
        "location": "houston",
        "year": 2024,
        "n_hours": 8_760,
        "mean_power_mw": PERLMUTTER_MEAN_POWER_W / 1e6,
    }
}


def _scenario_from(cfg: Config):
    return build_scenario(
        cfg.scenario.location,
        year_label=cfg.scenario.year,
        n_hours=cfg.scenario.n_hours,
        mean_power_w=cfg.scenario.mean_power_mw * 1e6,
    )


def _exhaustive(cfg: Config):
    scenario = _scenario_from(cfg)
    return scenario, OptimizationRunner(scenario).run_exhaustive()


def cmd_table(cfg: Config, args) -> int:
    _, result = _exhaustive(cfg)
    rows = candidate_table(paper_candidates(result.evaluated))
    print(format_table(rows, title=f"Candidate solutions ({cfg.scenario.location})"))
    return 0


def cmd_pareto(cfg: Config, args) -> int:
    _, result = _exhaustive(cfg)
    front = pareto_front(result.evaluated)
    candidates = paper_candidates(result.evaluated)
    rows = pareto_front_series(front, candidates)
    if args.csv:
        path = write_csv(rows, args.csv)
        print(f"wrote {len(rows)} front points to {path}")
    print(
        ascii_scatter(
            [r["embodied_tco2"] for r in rows],
            [r["operational_tco2_day"] for r in rows],
            highlight=[r["is_candidate"] for r in rows],
            x_label="embodied tCO2",
            y_label="operational tCO2/day",
        )
    )
    return 0


def cmd_projection(cfg: Config, args) -> int:
    _, result = _exhaustive(cfg)
    candidates = paper_candidates(result.evaluated)
    projections = project_many(candidates, horizon_years=args.years)
    if args.csv:
        write_csv(projection_series(projections), args.csv)
    for proj in projections:
        print(
            f"{proj.label:>18}: start {proj.total_tco2[0]:>9,.0f} tCO2, "
            f"year {args.years:.0f}: {proj.total_tco2[-1]:>10,.0f} tCO2"
        )
    year = crossover_year(projections[0], projections[-1])
    if year is not None:
        print(f"baseline overtakes the largest build-out after {year:.1f} years")
    return 0


def cmd_coverage(cfg: Config, args) -> int:
    scenario = _scenario_from(cfg)
    solar_levels = [i * 4_000.0 for i in range(11)]
    wind_levels = list(range(11))
    grid = coverage_grid(scenario, solar_levels, wind_levels)
    if args.csv:
        write_csv(coverage_heatmap_series(solar_levels, wind_levels, grid), args.csv)
    print(
        ascii_heatmap(
            grid * 100.0,
            row_labels=[f"{s/1000:.0f}MW" for s in solar_levels],
            col_labels=[str(3 * k) for k in wind_levels],
            title=f"coverage [%] ({cfg.scenario.location}, no storage)",
        )
    )
    return 0


def cmd_search(cfg: Config, args) -> int:
    scenario = _scenario_from(cfg)
    runner = OptimizationRunner(scenario)
    exhaustive = runner.run_exhaustive()
    found = OptimizationRunner(scenario).run_blackbox(
        n_trials=args.trials,
        sampler=NSGA2Sampler(population_size=args.population, seed=args.seed),
    )
    objectives = ("operational", "embodied")
    true_front = pareto_points(exhaustive.front(objectives), objectives)
    found_points = pareto_points(found.evaluated, objectives)
    print(
        f"trials {args.trials}, unique simulations {found.n_simulations}, "
        f"recovery strict {pareto_recovery_rate(found_points, true_front):.2f}, "
        f"recovery@1% {pareto_recovery_rate(found_points, true_front, tol=0.01):.2f}, "
        f"speed-up {len(exhaustive.evaluated) / found.n_simulations:.1f}x"
    )
    return 0


def cmd_report(cfg: Config, args) -> int:
    _, result = _exhaustive(cfg)
    print(experiment_report(cfg.scenario.location, result, horizon_years=args.years))
    return 0


def cmd_all(cfg: Config, args) -> int:
    """Regenerate every artifact for both sites into ``--output-dir``."""
    from pathlib import Path

    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    for site in ("houston", "berkeley"):
        site_cfg = cfg.updated("scenario.location", site)
        scenario = _scenario_from(site_cfg)
        result = OptimizationRunner(scenario).run_exhaustive()
        candidates = paper_candidates(result.evaluated)
        front = pareto_front(result.evaluated)

        table = format_table(
            candidate_table(candidates), title=f"Candidate solutions ({site})"
        )
        (out / f"table_{site}.txt").write_text(table + "\n")
        write_csv(pareto_front_series(front, candidates), out / f"fig2_pareto_{site}.csv")
        write_csv(
            projection_series(project_many(candidates, horizon_years=20.0)),
            out / f"fig3_projection_{site}.csv",
        )
        solar_levels = [i * 4_000.0 for i in range(11)]
        wind_levels = list(range(11))
        grid = coverage_grid(scenario, solar_levels, wind_levels)
        write_csv(
            coverage_heatmap_series(solar_levels, wind_levels, grid),
            out / f"fig4_coverage_{site}.csv",
        )
        print(f"{site}: wrote table + fig2/fig3/fig4 series to {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Microgrid-composition optimization (paper reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--site", default="houston", choices=["houston", "berkeley"])
        p.add_argument(
            "--set",
            dest="overrides",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="config override, e.g. scenario.mean_power_mw=3.0",
        )
        return p

    common(sub.add_parser("table", help="candidate table (Tables 1-2)"))
    p = common(sub.add_parser("pareto", help="Pareto front (Figure 2)"))
    p.add_argument("--csv", default=None)
    p = common(sub.add_parser("projection", help="multi-year projection (Figure 3)"))
    p.add_argument("--years", type=float, default=20.0)
    p.add_argument("--csv", default=None)
    p = common(sub.add_parser("coverage", help="coverage surface (Figure 4)"))
    p.add_argument("--csv", default=None)
    p = common(sub.add_parser("search", help="NSGA-II vs exhaustive (section 4.4)"))
    p.add_argument("--trials", type=int, default=350)
    p.add_argument("--population", type=int, default=50)
    p.add_argument("--seed", type=int, default=42)
    p = common(sub.add_parser("report", help="full site report"))
    p.add_argument("--years", type=float, default=20.0)
    p = common(sub.add_parser("all", help="write every artifact for both sites"))
    p.add_argument("--output-dir", default="artifacts")
    return parser


COMMANDS = {
    "table": cmd_table,
    "pareto": cmd_pareto,
    "projection": cmd_projection,
    "coverage": cmd_coverage,
    "search": cmd_search,
    "report": cmd_report,
    "all": cmd_all,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    cfg = Config(DEFAULT_CONFIG).updated("scenario.location", args.site)
    cfg = apply_overrides(cfg, args.overrides)
    return COMMANDS[args.command](cfg, args)


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
