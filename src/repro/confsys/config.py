"""Hierarchical configuration objects with Hydra-style addressing.

A :class:`Config` wraps a nested dict and supports

* attribute and dot-path access (``cfg.scenario.location``,
  ``cfg.get("scenario.location")``),
* composition of layered defaults (later layers win, dicts merge deep),
* Hydra-style command-line overrides (``scenario.location=houston``,
  ``+new.key=3``, ``~removed.key``),
* conversion back to plain dicts for serialization.
"""

from __future__ import annotations

import copy
from typing import Any, Iterator, Mapping

from ..exceptions import ConfigurationError


def _coerce(text: str) -> Any:
    """Parse a scalar override value: bool/null/int/float/str."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("null", "none", "~"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if "," in text:
        return [_coerce(part) for part in text.split(",") if part != ""]
    return text


class Config:
    """An immutable-ish nested configuration."""

    def __init__(self, data: Mapping[str, Any] | None = None) -> None:
        object.__setattr__(self, "_data", copy.deepcopy(dict(data or {})))

    # -- mapping protocol ------------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        value = self.get(key)
        if value is None and not self.has(key):
            raise KeyError(key)
        return value

    def __contains__(self, key: str) -> bool:
        return self.has(key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        if name not in self._data:
            raise AttributeError(f"config has no key '{name}'")
        value = self._data[name]
        return Config(value) if isinstance(value, dict) else value

    def __setattr__(self, name: str, value: Any) -> None:
        raise ConfigurationError("Config is read-only; use .updated()/apply_overrides()")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Config):
            return self._data == other._data
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Config({self._data!r})"

    # -- dotted-path access ------------------------------------------------------

    def get(self, path: str, default: Any = None) -> Any:
        """Value at a dot path, or ``default``."""
        node: Any = self._data
        for part in path.split("."):
            if not isinstance(node, dict) or part not in node:
                return default
            node = node[part]
        return Config(node) if isinstance(node, dict) else node

    def has(self, path: str) -> bool:
        sentinel = object()
        return self.get(path, sentinel) is not sentinel

    def require(self, path: str) -> Any:
        """Value at a dot path; raises ConfigurationError when missing."""
        sentinel = object()
        value = self.get(path, sentinel)
        if value is sentinel:
            raise ConfigurationError(f"missing required config key '{path}'")
        return value

    # -- functional updates --------------------------------------------------------

    def updated(self, path: str, value: Any) -> "Config":
        """A copy with ``path`` set to ``value`` (creating parents)."""
        data = copy.deepcopy(self._data)
        node = data
        parts = path.split(".")
        for part in parts[:-1]:
            nxt = node.setdefault(part, {})
            if not isinstance(nxt, dict):
                raise ConfigurationError(
                    f"cannot descend through non-dict at '{part}' in '{path}'"
                )
            node = nxt
        node[parts[-1]] = copy.deepcopy(value)
        return Config(data)

    def removed(self, path: str) -> "Config":
        """A copy with ``path`` deleted (no-op if missing)."""
        data = copy.deepcopy(self._data)
        node = data
        parts = path.split(".")
        for part in parts[:-1]:
            if not isinstance(node, dict) or part not in node:
                return Config(data)
            node = node[part]
        if isinstance(node, dict):
            node.pop(parts[-1], None)
        return Config(data)

    def to_dict(self) -> dict[str, Any]:
        return copy.deepcopy(self._data)

    def flat(self, prefix: str = "") -> dict[str, Any]:
        """Flattened ``{dot.path: leaf}`` view."""
        out: dict[str, Any] = {}

        def walk(node: Any, path: str) -> None:
            if isinstance(node, dict):
                for key, value in node.items():
                    walk(value, f"{path}.{key}" if path else str(key))
            else:
                out[path] = node

        walk(self._data, prefix)
        return out


def _deep_merge(base: dict, extra: Mapping) -> dict:
    for key, value in extra.items():
        if isinstance(value, Mapping) and isinstance(base.get(key), dict):
            base[key] = _deep_merge(base[key], value)
        else:
            base[key] = copy.deepcopy(value)
    return base


def compose(*layers: "Mapping[str, Any] | Config") -> Config:
    """Merge config layers left → right (later keys win, dicts merge deep).

    Mirrors Hydra's defaults-list composition.
    """
    merged: dict[str, Any] = {}
    for layer in layers:
        data = layer.to_dict() if isinstance(layer, Config) else dict(layer)
        merged = _deep_merge(merged, data)
    return Config(merged)


def parse_override(text: str) -> tuple[str, str, Any]:
    """Parse one Hydra-style override.

    Returns ``(op, path, value)`` with op in ``{"set", "add", "del"}``:
    ``a.b=3`` → set, ``+a.b=3`` → add (must not exist), ``~a.b`` → delete.
    """
    text = text.strip()
    if not text:
        raise ConfigurationError("empty override")
    if text.startswith("~"):
        return ("del", text[1:], None)
    op = "set"
    if text.startswith("+"):
        op = "add"
        text = text[1:]
    if "=" not in text:
        raise ConfigurationError(f"override '{text}' must look like key=value")
    path, raw = text.split("=", 1)
    if not path:
        raise ConfigurationError(f"override '{text}' has an empty key")
    return (op, path, _coerce(raw))


def apply_overrides(config: Config, overrides: list[str]) -> Config:
    """Apply a list of Hydra-style override strings."""
    for override in overrides:
        op, path, value = parse_override(override)
        if op == "del":
            config = config.removed(path)
        elif op == "add":
            if config.has(path):
                raise ConfigurationError(f"override '+{path}' but key already exists")
            config = config.updated(path, value)
        else:
            config = config.updated(path, value)
    return config
