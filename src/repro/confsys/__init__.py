"""Configuration and sweep system (Hydra + Optuna-sweeper stand-in).

The paper's implementation "builds on Hydra in combination with the
Optuna sweeper plugin which allows for easy configuration through YAML
files and can parallelize the search across a cluster of compute nodes"
(§3.3).  This package reproduces that workflow:

* :mod:`repro.confsys.config` — dot-path-addressable config objects with
  composition (defaults + overrides) and ``key=value`` override parsing;
* :mod:`repro.confsys.yaml_io` — YAML load/dump round-tripping;
* :mod:`repro.confsys.sweeper` — grid and black-box sweepers expanding a
  config into jobs;
* :mod:`repro.confsys.launcher` — serial and multiprocessing job
  launchers.
"""

from .config import Config, apply_overrides, compose, parse_override
from .yaml_io import load_yaml, dump_yaml, load_config, save_config
from .sweeper import BlackboxSweeper, GridSweeper, SweepJob
from .launcher import MultiprocessingLauncher, SerialLauncher, ThreadLauncher

__all__ = [
    "Config",
    "compose",
    "apply_overrides",
    "parse_override",
    "load_yaml",
    "dump_yaml",
    "load_config",
    "save_config",
    "GridSweeper",
    "BlackboxSweeper",
    "SweepJob",
    "SerialLauncher",
    "MultiprocessingLauncher",
    "ThreadLauncher",
]
