"""Sweepers: expand a base config into a batch of parameterized jobs.

Mirrors the Hydra sweeper / Optuna-sweeper-plugin split:

* :class:`GridSweeper` — Cartesian product of per-key choice lists
  (Hydra's basic sweeper; the paper's exhaustive baseline);
* :class:`BlackboxSweeper` — asks a :class:`~repro.blackbox.study.Study`
  for the next configurations and feeds results back, so any sampler
  (NSGA-II in the paper) can drive config-space search.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..blackbox.distributions import Distribution
from ..blackbox.study import Study
from ..exceptions import ConfigurationError
from .config import Config


@dataclass(frozen=True)
class SweepJob:
    """One job of a sweep: an index plus the fully resolved config."""

    index: int
    config: Config
    overrides: dict[str, Any] = field(default_factory=dict)


class GridSweeper:
    """Cartesian-product sweeper over explicit choice lists."""

    def __init__(self, base: Config, choices: dict[str, Sequence[Any]]) -> None:
        if not choices:
            raise ConfigurationError("grid sweep needs at least one swept key")
        for key, values in choices.items():
            if len(values) == 0:
                raise ConfigurationError(f"swept key '{key}' has no values")
        self.base = base
        self.choices = {key: list(values) for key, values in choices.items()}

    def __len__(self) -> int:
        n = 1
        for values in self.choices.values():
            n *= len(values)
        return n

    def jobs(self) -> list[SweepJob]:
        """All jobs in deterministic (row-major) order."""
        keys = list(self.choices)
        out: list[SweepJob] = []
        for index, combo in enumerate(itertools.product(*(self.choices[k] for k in keys))):
            config = self.base
            overrides = dict(zip(keys, combo))
            for key, value in overrides.items():
                config = config.updated(key, value)
            out.append(SweepJob(index=index, config=config, overrides=overrides))
        return out


class BlackboxSweeper:
    """Study-driven sweeper: configs proposed by a black-box sampler.

    Parameters
    ----------
    base:
        Base config every proposal is overlaid on.
    space:
        Mapping of config dot-paths to blackbox distributions.
    study:
        The (possibly multi-objective) study that proposes and records.
    """

    def __init__(
        self,
        base: Config,
        space: dict[str, Distribution],
        study: Study,
    ) -> None:
        if not space:
            raise ConfigurationError("black-box sweep needs a non-empty space")
        self.base = base
        self.space = dict(space)
        self.study = study

    def run(
        self,
        evaluate: Callable[[Config], "float | Sequence[float]"],
        n_trials: int,
    ) -> Study:
        """Drive the study for ``n_trials`` config evaluations."""

        def objective(trial):
            config = self.base
            for path, dist in self.space.items():
                value = trial._suggest(path, dist)
                config = config.updated(path, value)
            return evaluate(config)

        self.study.optimize(objective, n_trials=n_trials)
        return self.study
