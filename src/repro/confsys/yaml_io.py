"""YAML persistence for configs (the paper's configs are YAML files)."""

from __future__ import annotations

from pathlib import Path
from typing import Any

import yaml

from ..exceptions import ConfigurationError
from .config import Config


def load_yaml(path: "str | Path") -> dict[str, Any]:
    """Load a YAML file into a plain dict (empty file → empty dict)."""
    p = Path(path)
    if not p.exists():
        raise ConfigurationError(f"config file not found: {p}")
    with p.open("r", encoding="utf-8") as fh:
        data = yaml.safe_load(fh)
    if data is None:
        return {}
    if not isinstance(data, dict):
        raise ConfigurationError(f"top level of {p} must be a mapping, got {type(data).__name__}")
    return data


def dump_yaml(data: dict[str, Any], path: "str | Path") -> None:
    """Write a dict to a YAML file (stable key order)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", encoding="utf-8") as fh:
        yaml.safe_dump(data, fh, sort_keys=True, default_flow_style=False)


def load_config(path: "str | Path") -> Config:
    """Load a YAML file as a :class:`Config`."""
    return Config(load_yaml(path))


def save_config(config: Config, path: "str | Path") -> None:
    """Persist a :class:`Config` as YAML."""
    dump_yaml(config.to_dict(), path)
