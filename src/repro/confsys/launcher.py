"""Job launchers: run independent jobs serially or across processes.

The paper parallelizes its search "across a cluster of compute nodes"
through Hydra; here the same seam is a launcher object.  The
multiprocessing launcher fans jobs out to worker processes — on a
multi-core machine this parallelizes scenario evaluation with no code
changes upstream (hpc-parallel guide: prefer process-level parallelism
for CPU-bound NumPy workloads, since the battery loop holds the GIL).

Launchers are payload-agnostic: a job is any picklable object (a
:class:`~repro.confsys.sweeper.SweepJob` for config sweeps, a
``(objective, params)`` pair for
:class:`~repro.blackbox.parallel.ParallelStudyRunner` trial batches, a
``(scenario, compositions)`` chunk for the parallel batch evaluator).
``fn`` and jobs must both be picklable (module-level functions/classes)
for the multiprocessing path, and results always come back in job order.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Callable, Sequence

from ..exceptions import ConfigurationError

JobFn = Callable[[Any], Any]


def chunk_evenly(items: Sequence[Any], n_chunks: int) -> list[list[Any]]:
    """Split ``items`` into ≤ ``n_chunks`` contiguous, order-preserving
    chunks of near-equal size (the per-worker job shape both parallel
    drivers fan out)."""
    if not items:
        return []
    size = -(-len(items) // max(n_chunks, 1))  # ceil division
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


class SerialLauncher:
    """Runs jobs in order in the current process."""

    def launch(self, fn: JobFn, jobs: Sequence[Any]) -> list[Any]:
        return [fn(job) for job in jobs]


def _invoke(args: tuple[JobFn, Any]) -> Any:  # pragma: no cover - subprocess
    fn, job = args
    return fn(job)


class MultiprocessingLauncher:
    """Fans jobs out to a process pool (order-preserving results)."""

    def __init__(self, n_workers: int | None = None, chunksize: int = 1) -> None:
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1")
        self.n_workers = n_workers or max(os.cpu_count() or 1, 1)
        self.chunksize = chunksize

    def launch(self, fn: JobFn, jobs: Sequence[Any]) -> list[Any]:
        if not jobs:
            return []
        if self.n_workers == 1 or len(jobs) == 1:
            return SerialLauncher().launch(fn, jobs)
        ctx = mp.get_context("spawn")
        with ctx.Pool(processes=min(self.n_workers, len(jobs))) as pool:
            return pool.map(_invoke, [(fn, job) for job in jobs], chunksize=self.chunksize)


class ThreadLauncher:
    """Fans jobs out to a thread pool (order-preserving results).

    For objectives that release the GIL — or deliberately GIL-free
    workloads like the sleep-cost dispatch benches — threads give
    process-pool concurrency without pickling or spawn cost.  Same
    contract as the other launchers: results in job order, exceptions
    propagate to the caller.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        self.n_workers = n_workers or max(os.cpu_count() or 1, 1)

    def launch(self, fn: JobFn, jobs: Sequence[Any]) -> list[Any]:
        if not jobs:
            return []
        if self.n_workers == 1 or len(jobs) == 1:
            return SerialLauncher().launch(fn, jobs)
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(self.n_workers, len(jobs))) as pool:
            return list(pool.map(fn, jobs))
