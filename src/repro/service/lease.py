"""Lease-based liveness: TTL leases over trial work items and study claims.

A **lease** is the one liveness primitive of the cluster layer
(DESIGN.md §13): a worker that takes work — a whole queued study, or a
batch of candidate evaluations — holds it for a bounded TTL, renewed
implicitly by making progress.  A lease that expires (worker crashed,
network partition, SIGKILL) is *reclaimed*: the work silently returns
to the queue for the next live worker, with no human in the loop.
Because every candidate's parameters were fixed by the coordinator's
epoch-tagged ask schedule before dispatch (§10), re-evaluating a
reclaimed item cannot change the front — the objective is
deterministic, so at-least-once delivery is idempotent.

Two layers share the primitive:

* :class:`LeaseTable` — the bookkeeping core: grant / release /
  reclaim-expired over opaque keys, injectable clock, thread-safe.
* :class:`LeasedWorkQueue` — the coordinator side of the remote worker
  protocol.  It implements the :class:`~repro.blackbox.parallel.
  PipelinedDispatcher` executor seam (``submit_trial`` /
  ``submit_rung`` returning futures), but instead of running
  submissions in a local pool it parks them in a queue that remote
  workers drain over HTTP: ``POST /lease`` grants a TTL-stamped batch,
  ``POST /studies/{name}/results`` resolves the matching futures.

Whole-study claims reuse the same semantics without this table: a
claimed study's lease is its persisted heartbeat (`heartbeat_ts` +
``stale_after``), so :meth:`~repro.service.StudyService.claim_next`
reclaims a dead worker's study exactly like :meth:`LeasedWorkQueue.
reclaim_expired` reclaims a dead worker's candidate batch.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..exceptions import OptimizationError

#: default seconds a leased work item may stay unacknowledged before it
#: is reclaimed; tune per deployment with the study's ``lease_ttl``
#: transport knob (docs/OPERATIONS.md covers the trade-off)
DEFAULT_LEASE_TTL_S = 60.0


@dataclass(frozen=True)
class Lease:
    """One granted lease: who holds which key until when."""

    key: str
    owner: str
    granted_ts: float
    ttl: float

    @property
    def expires_ts(self) -> float:
        return self.granted_ts + self.ttl

    def expired(self, now: float) -> bool:
        return now >= self.expires_ts


class LeaseTable:
    """Thread-safe grant/release/reclaim bookkeeping over opaque keys."""

    def __init__(self, ttl: float = DEFAULT_LEASE_TTL_S, clock: Callable[[], float] = time.time) -> None:
        if ttl <= 0:
            raise OptimizationError(f"lease ttl must be positive, got {ttl}")
        self.ttl = float(ttl)
        self._clock = clock
        self._lock = threading.Lock()
        self._leases: "dict[str, Lease]" = {}

    def grant(self, key: str, owner: str) -> Lease:
        with self._lock:
            if key in self._leases:
                raise OptimizationError(
                    f"lease for {key!r} already held by {self._leases[key].owner!r}"
                )
            lease = Lease(key, owner, float(self._clock()), self.ttl)
            self._leases[key] = lease
            return lease

    def release(self, key: str) -> "Lease | None":
        with self._lock:
            return self._leases.pop(key, None)

    def reclaim_expired(self) -> "list[Lease]":
        """Drop and return every expired lease (their keys are free again)."""
        now = float(self._clock())
        with self._lock:
            expired = [l for l in self._leases.values() if l.expired(now)]
            for lease in expired:
                del self._leases[lease.key]
            return expired

    def active(self) -> "list[Lease]":
        with self._lock:
            return list(self._leases.values())

    def holder(self, key: str) -> "str | None":
        with self._lock:
            lease = self._leases.get(key)
            return lease.owner if lease is not None else None


@dataclass
class _WorkItem:
    """One dispatched candidate evaluation awaiting a worker."""

    key: str
    kind: str  # "trial" | "rung"
    params: "dict[str, Any]"
    members: "tuple[int, ...] | None"
    future: "Future[Any]"
    done: bool = False

    def wire_document(self) -> "dict[str, Any]":
        doc: "dict[str, Any]" = {"item": self.key, "kind": self.kind, "params": self.params}
        if self.members is not None:
            doc["members"] = list(self.members)
        return doc


def _decode_outcome(kind: str, tag: str, payload: Any) -> "tuple[str, Any]":
    """Rebuild a worker's JSON outcome into the executor's native shape.

    Floats survive the JSON round-trip exactly (``repr`` grammar both
    ways), so a remotely evaluated value is bit-identical to a local
    one — the property every front-parity test leans on.
    """
    if tag == "ok":
        if kind == "trial":
            return tag, tuple(float(v) for v in payload)
        return tag, tuple(tuple(float(v) for v in vec) for vec in payload)
    if tag == "pruned":
        return tag, None
    detail = payload if isinstance(payload, Mapping) else {"message": str(payload)}
    return tag, OptimizationError(
        f"remote worker reported {detail.get('type', 'error')}: "
        f"{detail.get('message', '<no message>')}"
    )


class LeasedWorkQueue:
    """Coordinator-side work queue: futures in, leased HTTP batches out.

    The remote counterpart of the dispatcher's local pools: the
    coordinator's :class:`~repro.blackbox.parallel.PipelinedDispatcher`
    submits candidate evaluations here (``submit_trial`` /
    ``submit_rung``), remote workers drain them through the HTTP verbs
    (:meth:`lease` / :meth:`complete`), and the returned futures resolve
    when results are acknowledged.

    Lease lifecycle per item (DESIGN.md §13)::

        queued ──lease()──▶ leased ──complete()──▶ done
          ▲                    │
          └──reclaim_expired()─┘   (TTL elapsed: worker presumed dead)

    ``complete`` is first-write-wins and owner-agnostic: a reclaimed
    item re-evaluated elsewhere may race its original worker's late
    result, but both computed the same deterministic outcome, so
    whichever lands first resolves the future and the other is
    acknowledged as stale.
    """

    def __init__(
        self,
        ttl: float = DEFAULT_LEASE_TTL_S,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.leases = LeaseTable(ttl=ttl, clock=clock)
        self._clock = clock
        self._lock = threading.Lock()
        self._items: "dict[str, _WorkItem]" = {}
        self._queue: "deque[str]" = deque()
        self._keys = itertools.count()
        self._closed = False
        self._completed = 0
        self._reclaimed = 0
        self._workers: "dict[str, int]" = {}

    @property
    def ttl(self) -> float:
        return self.leases.ttl

    # -- the dispatcher's executor seam --------------------------------------

    def _submit(self, kind: str, params: "dict[str, Any]", members=None) -> "Future[Any]":
        with self._lock:
            if self._closed:
                raise OptimizationError("work queue is shut down")
            key = f"{kind}-{next(self._keys)}"
            item = _WorkItem(key, kind, dict(params), members, Future())
            self._items[key] = item
            self._queue.append(key)
            return item.future

    def submit_trial(self, params: "dict[str, Any]") -> "Future[Any]":
        return self._submit("trial", params)

    def submit_rung(self, params: "dict[str, Any]", members) -> "Future[Any]":
        return self._submit("rung", params, tuple(int(m) for m in members))

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        with self._lock:
            self._closed = True
            items = list(self._items.values()) if cancel_futures else []
        for item in items:
            if not item.done:
                item.future.cancel()

    # -- the worker protocol ---------------------------------------------------

    def lease(self, owner: str, limit: int = 1) -> "list[dict[str, Any]]":
        """Grant up to ``limit`` queued items to ``owner`` under the TTL.

        Every grant first sweeps expired leases back into the queue, so
        a dead worker's in-flight items are re-dispatched by the next
        live worker's poll — reclaim needs no dedicated reaper as long
        as one worker survives.
        """
        self.reclaim_expired()
        granted: "list[dict[str, Any]]" = []
        with self._lock:
            if self._closed:
                return granted
            self._workers.setdefault(str(owner), 0)
            while self._queue and len(granted) < max(1, int(limit)):
                key = self._queue.popleft()
                item = self._items.get(key)
                if item is None or item.done:
                    continue  # completed while queued for re-dispatch
                self.leases.grant(key, str(owner))
                granted.append(item.wire_document())
        return granted

    def complete(
        self,
        owner: str,
        key: str,
        tag: str,
        payload: Any = None,
        seconds: float = 0.0,
    ) -> bool:
        """Resolve one leased item with a worker's outcome.

        Returns ``False`` (a *stale* ack) when the item is unknown or
        already resolved — the late-result side of lease reclaim.
        """
        with self._lock:
            item = self._items.get(key)
            if item is None or item.done:
                return False
            item.done = True
            self._completed += 1
            self._workers[str(owner)] = self._workers.get(str(owner), 0) + 1
            self.leases.release(key)
            del self._items[key]
        decoded_tag, decoded = _decode_outcome(item.kind, str(tag), payload)
        item.future.set_result((decoded_tag, decoded, float(seconds)))
        return True

    def reclaim_expired(self) -> int:
        """Return expired leases' items to the queue; count reclaimed."""
        reclaimed = 0
        for lease in self.leases.reclaim_expired():
            with self._lock:
                item = self._items.get(lease.key)
                if item is None or item.done:
                    continue
                self._queue.appendleft(lease.key)
                self._reclaimed += 1
                reclaimed += 1
        return reclaimed

    # -- observability ---------------------------------------------------------

    def stats(self) -> "dict[str, Any]":
        """Lease columns for ``study status`` and the HTTP status doc."""
        active = self.leases.active()
        with self._lock:
            return {
                "queued": len(self._queue),
                "leased": len(active),
                "completed": self._completed,
                "reclaimed": self._reclaimed,
                "ttl_s": self.ttl,
                "workers": {
                    owner: count for owner, count in sorted(self._workers.items())
                },
                "active_workers": sorted({l.owner for l in active}),
            }
