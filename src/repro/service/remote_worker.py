"""Remote evaluation workers: lease candidates over HTTP, post results.

The worker half of the cluster protocol (DESIGN.md §13).  A
:class:`RemoteWorkerClient` connects to a ``repro serve`` process and
loops:

1. ``POST /lease`` — ask any live coordinator for a candidate batch.
   The grant names the study, the lease TTL, and the work items
   (params-only; the worker brings its own objective).
2. On the first grant from a study, ``GET /studies/{name}/spec`` and
   rebuild the *exact* objective the coordinator would have evaluated
   locally (``StudySpec.from_metadata(...).build_objective()``) — same
   scenario stack, policy, aggregate, and physics, which is why the
   distributed front is bit-identical to a single-process run.
3. Evaluate each item through the same ``_guarded`` outcome transport
   the local pools use, and ``POST /studies/{name}/results`` *per
   item* — acking eagerly keeps results flowing well inside the lease
   TTL, so a healthy worker's leases never expire.

Liveness needs no heartbeat here: the lease **is** the liveness
contract.  A worker that dies mid-batch simply stops acking; its items'
leases expire and the coordinator re-dispatches them.  A late result
racing that reclaim is acknowledged as ``stale`` and discarded — both
evaluations computed the same deterministic outcome, so first-write-
wins loses nothing.

Size the TTL above the worst single-item evaluation cost (items are
acked one at a time, so batch size does not stretch the requirement);
``docs/OPERATIONS.md`` covers tuning.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Mapping

from ..exceptions import OptimizationError

#: seconds a worker sleeps between empty lease polls
DEFAULT_POLL_S = 0.5


def encode_outcome(tag: str, payload: Any) -> Any:
    """Flatten a ``_guarded`` payload into its JSON wire value.

    ``ok`` payloads are tuples of floats (trial) or tuples of vectors
    (rung) — JSON lists either way, with every float surviving the
    round-trip exactly.  Errors ship as ``{type, message}``; the
    coordinator rebuilds an exception from them.
    """
    if tag == "ok":
        if payload and not isinstance(payload[0], (int, float)):
            return [[float(v) for v in vec] for vec in payload]
        return [float(v) for v in payload]
    if tag == "pruned":
        return None
    return {"type": type(payload).__name__, "message": str(payload)}


class RemoteWorkerClient:
    """One remote evaluation worker bound to a ``repro serve`` URL.

    ``objective_override`` swaps the spec-built objective for an
    arbitrary callable (benchmarks use a synthetic sleeper); everything
    else — leasing, evaluation, acking — is the production path.
    """

    def __init__(
        self,
        base_url: str,
        worker_id: str,
        *,
        poll_s: float = DEFAULT_POLL_S,
        lease_limit: int = 1,
        timeout_s: float = 30.0,
        objective_override: "Callable[..., Any] | None" = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.worker_id = str(worker_id)
        self.poll_s = float(poll_s)
        self.lease_limit = max(1, int(lease_limit))
        self.timeout_s = float(timeout_s)
        self._objective_override = objective_override
        self._objectives: "dict[str, Any]" = {}
        #: items evaluated and accepted / acked stale, for the CLI log
        self.accepted = 0
        self.stale = 0

    # -- transport (monkeypatch seams for the kill tests) ----------------------

    def _request(self, method: str, path: str, payload: "Mapping[str, Any] | None" = None) -> Any:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
            return json.loads(response.read().decode())

    def _lease(self) -> "dict[str, Any]":
        return self._request(
            "POST", "/lease", {"worker": self.worker_id, "limit": self.lease_limit}
        )

    def _result(self, study: str, result: "dict[str, Any]") -> "dict[str, Any]":
        return self._request(
            "POST",
            f"/studies/{study}/results",
            {"worker": self.worker_id, "results": [result]},
        )

    # -- evaluation ------------------------------------------------------------

    def objective_for(self, study: str) -> Any:
        """The study's objective, rebuilt once from its persisted spec."""
        objective = self._objectives.get(study)
        if objective is None:
            if self._objective_override is not None:
                objective = self._objective_override
            else:
                from ..core.study_spec import StudySpec

                document = self._request("GET", f"/studies/{study}/spec")
                objective = StudySpec.from_metadata(
                    document["metadata"], source=self.base_url
                ).build_objective()
            self._objectives[study] = objective
        return objective

    def evaluate_item(self, study: str, item: "Mapping[str, Any]") -> "dict[str, Any]":
        """Evaluate one leased item into its wire result document."""
        from ..blackbox.parallel import _guarded

        objective = self.objective_for(study)
        params = dict(item["params"])
        if item.get("kind") == "rung":
            members = tuple(int(m) for m in item.get("members") or ())
            tag, payload, seconds = _guarded(objective.member_values, params, members)
        else:
            tag, payload, seconds = _guarded(objective, params)
        return {
            "item": str(item["item"]),
            "tag": tag,
            "value": encode_outcome(tag, payload),
            "seconds": seconds,
        }

    # -- the worker loop -------------------------------------------------------

    def run(
        self,
        *,
        max_items: "int | None" = None,
        max_idle: "int | None" = None,
        stop_event=None,
    ) -> int:
        """Lease, evaluate, ack — until stopped; returns items evaluated.

        ``max_items`` bounds the run (tests and benchmarks);
        ``max_idle`` exits after that many *consecutive* empty or
        unreachable polls — how a fleet drains itself once the
        coordinator finishes and its server goes away.  An unreachable
        coordinator is an idle poll, not an error: transient network
        trouble and a completed study look identical from here, and
        both are survivable.
        """
        evaluated = 0
        idle = 0
        while not (stop_event is not None and stop_event.is_set()):
            if max_items is not None and evaluated >= max_items:
                break
            try:
                grant = self._lease()
            except (urllib.error.URLError, socket.timeout, ConnectionError, OSError):
                grant = {"study": None, "items": []}
            study = grant.get("study")
            items = grant.get("items") or []
            if not study or not items:
                idle += 1
                if max_idle is not None and idle >= max_idle:
                    break
                time.sleep(self.poll_s)
                continue
            idle = 0
            for item in items:
                if max_items is not None and evaluated >= max_items:
                    break
                result = self.evaluate_item(study, item)
                evaluated += 1
                try:
                    ack = self._result(study, result)
                except (urllib.error.URLError, socket.timeout, ConnectionError, OSError):
                    continue  # lease will expire; the item is re-dispatched
                self.accepted += int(ack.get("accepted", 0))
                self.stale += int(ack.get("stale", 0))
        return evaluated


def run_remote_worker(
    connect: str,
    worker_id: str,
    *,
    poll_s: float = DEFAULT_POLL_S,
    lease_limit: int = 1,
    max_items: "int | None" = None,
    max_idle: "int | None" = None,
) -> int:
    """CLI entry: run one worker against ``connect`` until drained."""
    if not str(connect).startswith(("http://", "https://")):
        raise OptimizationError(
            f"--connect needs an http(s):// URL, got {connect!r}"
        )
    client = RemoteWorkerClient(
        connect, worker_id, poll_s=poll_s, lease_limit=lease_limit
    )
    evaluated = client.run(max_items=max_items, max_idle=max_idle)
    print(
        f"worker {worker_id}: evaluated {evaluated} item"
        f"{'s' if evaluated != 1 else ''} "
        f"({client.accepted} accepted, {client.stale} stale)"
    )
    return 0
