"""Study-as-a-service (DESIGN.md §12): queue, workers, and HTTP API.

Mounts the service verbs — submit / status / resume / results / front /
cancel — on the storage contract (§7) and the :class:`~repro.core.
study_spec.StudySpec` identity seam, so the HTTP API, the worker loop,
and the CLI all drive the exact same code path:

* :class:`StudyService` — the verbs plus a queue-draining worker loop
  over any storage URL;
* :class:`HeartbeatStorage` — delegating backend wrapper persisting
  ``heartbeat_ts`` / ``trials_done`` liveness through
  ``update_metadata``;
* :func:`study_status_document` — the one machine-readable status
  serializer (``repro study status --json`` and GET /studies/{name});
* :mod:`repro.service.http` — the stdlib-only ``ThreadingHTTPServer``
  JSON API behind ``repro serve``.
"""

from .service import (
    HEARTBEAT_EVERY_S,
    SERVICE_KEY,
    STALE_AFTER_S,
    HeartbeatStorage,
    ServiceError,
    StudyConflictError,
    StudyService,
    UnknownStudyError,
    front_csv,
    front_rows,
    front_trials,
    spec_from_document,
    stored_front_size,
    study_status_document,
)

__all__ = [
    "HEARTBEAT_EVERY_S",
    "SERVICE_KEY",
    "STALE_AFTER_S",
    "HeartbeatStorage",
    "ServiceError",
    "StudyConflictError",
    "StudyService",
    "UnknownStudyError",
    "front_csv",
    "front_rows",
    "front_trials",
    "spec_from_document",
    "stored_front_size",
    "study_status_document",
]
