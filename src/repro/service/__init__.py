"""Study-as-a-service (DESIGN.md §12–§13): queue, workers, leases, HTTP.

Mounts the service verbs — submit / status / resume / results / front /
cancel — on the storage contract (§7) and the :class:`~repro.core.
study_spec.StudySpec` identity seam, so the HTTP API, the worker loop,
and the CLI all drive the exact same code path:

* :class:`StudyService` — the verbs plus a queue-draining worker loop
  over any storage URL, and the trial-level lease verbs
  (``lease_work`` / ``complete_work``) behind the remote protocol;
* :class:`HeartbeatStorage` — delegating backend wrapper persisting
  ``heartbeat_ts`` / ``trials_done`` liveness through
  ``update_metadata``;
* :func:`study_status_document` — the one machine-readable status
  serializer (``repro study status --json`` and GET /studies/{name});
* :mod:`repro.service.lease` — the lease primitive (§13):
  :class:`LeaseTable` bookkeeping and :class:`LeasedWorkQueue`, the
  coordinator-side executor remote workers drain;
* :mod:`repro.service.remote_worker` — :class:`RemoteWorkerClient`,
  the ``repro worker --connect URL`` loop: lease over HTTP, evaluate
  with a spec-rebuilt objective, post results back;
* :mod:`repro.service.http` — the stdlib-only ``ThreadingHTTPServer``
  JSON API behind ``repro serve`` (routes declared in
  :data:`repro.service.http.ROUTES`).
"""

from .lease import DEFAULT_LEASE_TTL_S, Lease, LeaseTable, LeasedWorkQueue
from .remote_worker import RemoteWorkerClient, run_remote_worker
from .service import (
    HEARTBEAT_EVERY_S,
    SERVICE_KEY,
    STALE_AFTER_S,
    HeartbeatStorage,
    ServiceError,
    StudyConflictError,
    StudyService,
    UnknownStudyError,
    front_csv,
    front_rows,
    front_trials,
    spec_from_document,
    stored_front_size,
    study_status_document,
)

__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "HEARTBEAT_EVERY_S",
    "SERVICE_KEY",
    "STALE_AFTER_S",
    "HeartbeatStorage",
    "Lease",
    "LeaseTable",
    "LeasedWorkQueue",
    "RemoteWorkerClient",
    "ServiceError",
    "StudyConflictError",
    "StudyService",
    "UnknownStudyError",
    "front_csv",
    "front_rows",
    "front_trials",
    "run_remote_worker",
    "spec_from_document",
    "stored_front_size",
    "study_status_document",
]
