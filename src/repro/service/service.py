"""Study-as-a-service: queue, run, and inspect studies over any store.

The service layer mounts directly on the two seams the rest of the repo
already standardized (DESIGN.md §12):

* the **storage contract** (DESIGN.md §7) — a submitted study is just a
  study record whose metadata carries a small ``service`` envelope
  (``state``/timestamps) next to its :class:`~repro.core.study_spec.
  StudySpec` identity keys, so any backend the URL registry resolves is
  a job queue for free, and every existing tool (``study status``,
  ``study compact``, ``study merge``) works on service-run studies;
* the **StudySpec seam** — :meth:`StudyService.submit` persists
  ``spec.to_metadata()``, the worker loop rebuilds the spec with
  ``StudySpec.from_metadata`` and calls ``spec.execute(...,
  load_if_exists=True)``, which picks the batched or pipelined driver
  and routes resume-identity checks through the one shared validator.
  The service cannot diverge from the CLI because they run the same
  code path, not a copy of it.

Liveness is persisted through the contract too: the worker wraps its
backend in :class:`HeartbeatStorage`, which stamps ``heartbeat_ts`` and
``trials_done`` into the study metadata on a throttle as trials finish
— so ``repro study status`` (and GET /studies/{name}) can age the last
heartbeat and flag runs whose worker died (kill -9, OOM, node loss)
without any side channel.  A flagged study is restarted by re-queueing
it (:meth:`StudyService.resume`); the drivers' prefix-replay semantics
then guarantee the resumed front is bit-identical to an uninterrupted
run's.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Mapping

import numpy as np

from ..blackbox.storage import StudyStorage, open_study_storage
from ..blackbox.storage.base import StoredStudy
from ..blackbox.trial import TrialState
from ..core.study_spec import StudySpec
from ..exceptions import OptimizationError

#: a running study whose last heartbeat is older than this is flagged
#: stale — its worker is presumed dead and the study safe to re-queue
STALE_AFTER_S = 300.0

#: minimum seconds between heartbeat metadata writes (a full-year
#: vectorized batch finishes many trials per second; stamping each one
#: would turn the journal into a heartbeat log)
HEARTBEAT_EVERY_S = 5.0

#: metadata key holding the service envelope (queue state + timestamps)
SERVICE_KEY = "service"

_QUEUEABLE_STATES = ("queued", "running", "done", "failed", "cancelled")


class ServiceError(OptimizationError):
    """A service request was invalid (maps to HTTP 400)."""


class UnknownStudyError(ServiceError):
    """The named study does not exist in the store (HTTP 404)."""


class StudyConflictError(ServiceError):
    """The request conflicts with the study's current state (HTTP 409)."""


# -- front extraction (shared by CLI, service, and HTTP) -----------------------


def front_trials(stored: StoredStudy) -> "list[Any]":
    """Pareto-optimal completed trials, deduped by parameter vector.

    Revisited elite genomes collapse to one entry (matching the front
    size ``study run``/``study resume`` print), and the survivors are
    returned in trial-number order so the serialization is
    deterministic for a deterministic study.
    """
    from ..blackbox.multiobjective import pareto_front_indices

    completed = [
        t for t in stored.trials if t.state == TrialState.COMPLETE and t.values
    ]
    if not completed:
        return []
    unique = {tuple(sorted(t.params.items())): t for t in completed}
    trials = list(unique.values())
    signs = np.array([1.0 if d == "minimize" else -1.0 for d in stored.directions])
    values = np.array([t.values for t in trials]) * signs
    indices = pareto_front_indices(values)
    return sorted((trials[i] for i in indices), key=lambda t: t.number)


def stored_front_size(stored: StoredStudy) -> "int | None":
    """Pareto-front size of a replayed study; ``None`` when nothing completed."""
    front = front_trials(stored)
    return len(front) if front else None


def front_rows(stored: StoredStudy) -> "list[dict[str, Any]]":
    """JSON-ready front rows: trial number, objective values, params."""
    return [
        {"trial": t.number, "values": [float(v) for v in t.values], "params": dict(t.params)}
        for t in front_trials(stored)
    ]


def front_csv(stored: StoredStudy) -> str:
    """The front as CSV text (``repr`` floats, so values round-trip exactly)."""
    rows = front_rows(stored)
    param_keys = sorted({k for row in rows for k in row["params"]})
    header = (
        ["trial"]
        + [f"value_{i}" for i in range(len(stored.directions))]
        + param_keys
    )
    lines = [",".join(header)]
    for row in rows:
        cells = [str(row["trial"])]
        cells += [repr(v) for v in row["values"]]
        cells += [repr(row["params"].get(k, "")) for k in param_keys]
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


# -- status serialization (shared by `study status --json` and HTTP) -----------


def study_status_document(
    stored: StoredStudy,
    *,
    stale_after: float = STALE_AFTER_S,
    now: "float | None" = None,
) -> dict[str, Any]:
    """The one machine-readable status document for a persisted study.

    ``repro study status --json`` and GET /studies/{name} both print
    exactly this, so scripts never see two dialects.  ``heartbeat`` is
    present once a worker has stamped liveness: ``age_s`` is relative
    to ``now`` (wall clock by default) and ``stale`` flags a *running*
    study whose heartbeat is older than ``stale_after`` seconds — the
    signature of a dead worker, safe to re-queue.
    """
    md = stored.metadata
    counts = {state.value: 0 for state in TrialState}
    for t in stored.trials:
        counts[t.state.value] += 1
    doc: dict[str, Any] = {
        "name": stored.name,
        "directions": list(stored.directions),
        "trials": counts,
        "n_trials": md.get("n_trials"),
        "front_size": stored_front_size(stored),
    }
    sites = md.get("sites") or ([md["site"]] if md.get("site") else [])
    doc["sites"] = [str(s) for s in sites]
    for key in (
        "policy", "aggregate", "seed", "population",
        "ensemble", "racing", "fidelity", "pipeline", "engine", "transport",
    ):
        doc[key] = md.get(key)
    service = md.get(SERVICE_KEY)
    if isinstance(service, Mapping):
        doc[SERVICE_KEY] = dict(service)
    if isinstance(md.get("leases"), Mapping):
        # Lease counters the coordinator folded into its liveness
        # writes; the live queue's numbers (when this process hosts the
        # coordinator) are overlaid by StudyService.status.
        doc["leases"] = dict(md["leases"])
    heartbeat_ts = md.get("heartbeat_ts")
    if heartbeat_ts is not None:
        now = time.time() if now is None else now
        age = max(0.0, float(now) - float(heartbeat_ts))
        state = (service or {}).get("state") if isinstance(service, Mapping) else None
        doc["heartbeat"] = {
            "ts": float(heartbeat_ts),
            "age_s": age,
            "trials_done": md.get("trials_done"),
            "stale": bool(state == "running" and age > stale_after),
        }
    return doc


def spec_from_document(document: Mapping[str, Any]) -> "tuple[StudySpec, str | None]":
    """Build a ``(spec, name)`` pair from a submission document.

    The document's keys are :class:`StudySpec` fields, plus the
    conveniences the CLI offers: ``name`` (the study name), ``trials``
    (alias for ``n_trials``), and ``speculate`` (an integer depth that
    expands to the canonical ``pipeline`` spec string).  Unknown keys
    are a hard error — a typoed identity key silently falling back to
    its default is exactly the failure mode the spec exists to prevent.
    """
    doc = dict(document)
    name = doc.pop("name", None)
    if "trials" in doc:
        doc.setdefault("n_trials", doc.pop("trials"))
    if doc.get("speculate") is not None and doc.get("pipeline") is None:
        from ..blackbox.parallel import pipeline_spec_string

        doc["pipeline"] = pipeline_spec_string(int(doc.pop("speculate")))
    else:
        doc.pop("speculate", None)
    allowed = {f.name for f in dataclasses.fields(StudySpec)}
    unknown = sorted(set(doc) - allowed)
    if unknown:
        raise ServiceError(
            f"unknown StudySpec fields: {', '.join(unknown)} "
            f"(expected a subset of {sorted(allowed | {'name', 'trials', 'speculate'})})"
        )
    return StudySpec(**doc), (str(name) if name is not None else None)


# -- heartbeat persistence ------------------------------------------------------


class HeartbeatStorage(StudyStorage):
    """Delegating storage wrapper that persists worker liveness.

    Wraps the real backend a worker drives a study through: every
    ``record_trial_finish`` counts progress, and at most once per
    ``interval`` seconds the wrapper stamps ``heartbeat_ts`` +
    ``trials_done`` into the study metadata (an ``update_metadata``
    write — last-write-wins on replay, exactly like the drivers' own
    metadata updates).  Driver-initiated metadata writes are merged
    with the current heartbeat so neither side clobbers the other.

    ``extra`` (optional) is called on every liveness write and its dict
    merged in — the coordinator rides it to persist lease counters
    atomically with the heartbeat instead of racing a second metadata
    writer against the drivers.
    """

    def __init__(
        self,
        inner: StudyStorage,
        study_name: str,
        *,
        interval: float = HEARTBEAT_EVERY_S,
        clock=time.time,
        initial_trials_done: int = 0,
        extra=None,
    ) -> None:
        self._inner = inner
        self._study_name = study_name
        self._interval = float(interval)
        self._clock = clock
        self._lock = threading.Lock()
        self._trials_done = int(initial_trials_done)
        self._last_beat = float("-inf")
        self._extra = extra

    def _liveness(self) -> dict[str, Any]:
        liveness: dict[str, Any] = {
            "heartbeat_ts": float(self._clock()),
            "trials_done": self._trials_done,
        }
        if self._extra is not None:
            liveness.update(self._extra())
        return liveness

    def beat(self) -> None:
        """Stamp liveness into the study metadata unconditionally."""
        stored = self._inner.load_study(self._study_name)
        if stored is None:
            return
        md = dict(stored.metadata)
        md.update(self._liveness())
        self._inner.update_metadata(self._study_name, md)

    # -- the storage protocol, delegated ------------------------------------

    def create_study(self, study_name, directions, metadata) -> None:
        self._inner.create_study(study_name, directions, metadata)

    def load_study(self, study_name):
        return self._inner.load_study(study_name)

    def update_metadata(self, study_name, metadata) -> None:
        md = dict(metadata)
        if study_name == self._study_name:
            # The driver rewrites metadata from its in-memory snapshot
            # (batch timings, pipeline stats); fold the live heartbeat
            # in so progress never moves backwards.
            md.update(self._liveness())
            with self._lock:
                self._last_beat = self._clock()
        self._inner.update_metadata(study_name, md)

    def record_trial_start(self, study_name, trial) -> None:
        self._inner.record_trial_start(study_name, trial)

    def record_trial_finish(self, study_name, trial) -> None:
        self._inner.record_trial_finish(study_name, trial)
        if study_name != self._study_name:
            return
        with self._lock:
            # Trial numbers are study-global, so a resumed worker's
            # progress counter continues where the dead one stopped.
            self._trials_done = max(self._trials_done + 1, int(trial.number) + 1)
            due = self._clock() - self._last_beat >= self._interval
            if due:
                self._last_beat = self._clock()
        if due:
            self.beat()

    def load_all(self):
        return self._inner.load_all()

    def close(self) -> None:
        self._inner.close()


# -- the service ----------------------------------------------------------------


class StudyService:
    """Submit, run, and inspect persisted studies over one storage backend.

    ``storage`` is any spec string the URL registry resolves — or a
    ready-made backend instance.  The service holds exactly **one**
    resolved backend for its lifetime: ``memory://`` intentionally
    resolves to a fresh empty store on every resolution, so re-resolving
    per request would lose every submitted study.
    """

    def __init__(
        self,
        storage: "StudyStorage | str",
        *,
        stale_after: float = STALE_AFTER_S,
        heartbeat_interval: float = HEARTBEAT_EVERY_S,
        clock=time.time,
    ) -> None:
        if isinstance(storage, StudyStorage):
            self.storage = storage
            self.storage_spec = type(storage).__name__
        else:
            self.storage_spec = str(storage)
            self.storage = open_study_storage(self.storage_spec)
        self.stale_after = float(stale_after)
        self.heartbeat_interval = float(heartbeat_interval)
        self._clock = clock
        self._claim_lock = threading.Lock()
        self._work_lock = threading.Lock()
        #: study name → live LeasedWorkQueue while this process hosts
        #: that study's coordinator (the remote-dispatch run_study path)
        self._work_queues: "dict[str, Any]" = {}

    # -- lookups -------------------------------------------------------------

    def _get(self, name: str) -> StoredStudy:
        stored = self.storage.load_study(name)
        if stored is None:
            raise UnknownStudyError(
                f"unknown study '{name}' in {self.storage_spec}"
            )
        return stored

    def _service_state(self, stored: StoredStudy) -> "str | None":
        envelope = stored.metadata.get(SERVICE_KEY)
        if isinstance(envelope, Mapping):
            return envelope.get("state")
        return None

    def _set_state(self, stored: StoredStudy, state: str, **extra: Any) -> None:
        md = dict(stored.metadata)
        envelope = dict(md.get(SERVICE_KEY) or {})
        envelope["state"] = state
        envelope.update(extra)
        md[SERVICE_KEY] = envelope
        self.storage.update_metadata(stored.name, md)

    # -- the service verbs ----------------------------------------------------

    def submit(self, spec: StudySpec, name: "str | None" = None) -> dict[str, Any]:
        """Queue a new study and return its status document."""
        name = name or spec.default_name
        if self.storage.load_study(name) is not None:
            raise StudyConflictError(
                f"study '{name}' already exists in {self.storage_spec}; "
                f"POST /studies/{name}/resume (or `repro study resume "
                f"--storage {self.storage_spec} --name {name}`) to continue it"
            )
        metadata = spec.to_metadata()
        metadata[SERVICE_KEY] = {
            "state": "queued",
            "submitted_ts": float(self._clock()),
        }
        # Two minimized objectives (operational, embodied) — the same
        # directions every driver registers (study_runner.py).
        self.storage.create_study(name, ["minimize", "minimize"], metadata)
        return self.status(name)

    def status(self, name: str) -> dict[str, Any]:
        doc = study_status_document(
            self._get(name), stale_after=self.stale_after, now=self._clock()
        )
        queue = self.work_queue(name)
        if queue is not None:
            doc["leases"] = queue.stats()
        return doc

    def list_studies(self) -> "list[dict[str, Any]]":
        now = self._clock()
        return [
            study_status_document(stored, stale_after=self.stale_after, now=now)
            for _, stored in sorted(self.storage.load_all().items())
        ]

    def results(self, name: str) -> "list[dict[str, Any]]":
        """The study's current Pareto front as JSON-ready rows."""
        return front_rows(self._get(name))

    def front(self, name: str) -> str:
        """The study's current Pareto front as CSV text."""
        return front_csv(self._get(name))

    def resume(self, name: str) -> dict[str, Any]:
        """Re-queue a study so the next free worker continues it.

        Refuses only a study that is *live* — running with a fresh
        heartbeat.  A stale running study (dead worker) re-queues; the
        drivers' prefix-replay semantics make the continuation
        bit-identical to an uninterrupted run.
        """
        stored = self._get(name)
        doc = study_status_document(
            stored, stale_after=self.stale_after, now=self._clock()
        )
        if self._service_state(stored) == "running" and not (
            doc.get("heartbeat") or {}
        ).get("stale", True):
            raise StudyConflictError(
                f"study '{name}' is running with a live heartbeat "
                f"(age {doc['heartbeat']['age_s']:.1f}s); not re-queueing"
            )
        # Resume must replay the persisted identity; fail loudly now —
        # naming every missing key — rather than when a worker picks it up.
        StudySpec.from_metadata(stored.metadata, source=self.storage_spec)
        self._set_state(stored, "queued", requeued_ts=float(self._clock()))
        return self.status(name)

    def cancel(self, name: str) -> dict[str, Any]:
        """Drop a queued study from the queue (workers never claim it)."""
        stored = self._get(name)
        state = self._service_state(stored)
        if state == "running":
            raise StudyConflictError(
                f"study '{name}' is already running; cancel only dequeues"
            )
        self._set_state(stored, "cancelled", cancelled_ts=float(self._clock()))
        return self.status(name)

    # -- trial-level work (the coordinator's remote dispatch) ------------------

    def register_work_queue(self, name: str, queue: Any) -> None:
        """Expose a coordinator's live work queue to the lease verbs."""
        with self._work_lock:
            self._work_queues[name] = queue

    def unregister_work_queue(self, name: str) -> None:
        with self._work_lock:
            self._work_queues.pop(name, None)

    def work_queue(self, name: str) -> "Any | None":
        with self._work_lock:
            return self._work_queues.get(name)

    def spec_document(self, name: str) -> dict[str, Any]:
        """The persisted identity a remote worker rebuilds its objective
        from — exactly what ``StudySpec.from_metadata`` accepts, so the
        worker-side physics cannot drift from the coordinator's."""
        stored = self._get(name)
        StudySpec.from_metadata(stored.metadata, source=self.storage_spec)
        return {"name": name, "metadata": dict(stored.metadata)}

    def lease_work(self, worker_id: str, limit: int = 1) -> dict[str, Any]:
        """Grant up to ``limit`` candidate evaluations to a remote worker.

        Scans every live coordinator queue (oldest registration first)
        and returns the first non-empty grant; ``study`` is ``None``
        when nothing is dispatchable — the worker's signal to idle-poll.
        """
        with self._work_lock:
            queues = list(self._work_queues.items())
        for name, queue in queues:
            items = queue.lease(str(worker_id), limit)
            if items:
                return {"study": name, "ttl_s": queue.ttl, "items": items}
        return {"study": None, "ttl_s": None, "items": []}

    def complete_work(
        self, name: str, worker_id: str, results: "list[Mapping[str, Any]]"
    ) -> dict[str, Any]:
        """Acknowledge a worker's evaluated batch against a live queue.

        Results for a finished (or never-coordinated-here) study are
        acknowledged as ``stale`` rather than erroring: a worker racing
        a reclaim — or outliving its study — is normal operation, not a
        fault.
        """
        queue = self.work_queue(name)
        accepted = stale = 0
        for result in results:
            ok = queue is not None and queue.complete(
                str(worker_id),
                str(result["item"]),
                str(result["tag"]),
                result.get("value"),
                float(result.get("seconds", 0.0)),
            )
            accepted += bool(ok)
            stale += not ok
        return {"study": name, "accepted": accepted, "stale": stale}

    # -- the worker loop ------------------------------------------------------

    def _last_alive_ts(self, stored: StoredStudy) -> float:
        """Newest liveness evidence for a claimed study (its lease clock)."""
        envelope = stored.metadata.get(SERVICE_KEY) or {}
        stamps = [
            stored.metadata.get("heartbeat_ts"),
            envelope.get("started_ts") if isinstance(envelope, Mapping) else None,
        ]
        return max((float(s) for s in stamps if s is not None), default=0.0)

    def claim_next(self, worker_id: "str | None" = None) -> "str | None":
        """Atomically claim the oldest queued study (``None`` if idle).

        Whole-study claims are leases (DESIGN.md §13): a *running*
        study whose liveness evidence is older than ``stale_after`` has
        an expired lease — its worker is presumed dead — and is
        reclaimed here automatically, no explicit ``resume`` required.
        Queued studies win over reclaims so fresh work is never starved
        by a crash loop.
        """
        with self._claim_lock:
            now = float(self._clock())
            queued: "list[tuple[float, str]]" = []
            expired: "list[tuple[float, str, Any]]" = []
            for name, s in self.storage.load_all().items():
                state = self._service_state(s)
                envelope = s.metadata.get(SERVICE_KEY) or {}
                if state == "queued":
                    queued.append(
                        (float(envelope.get("submitted_ts", 0.0)), name)
                    )
                elif state == "running":
                    last_alive = self._last_alive_ts(s)
                    if now - last_alive > self.stale_after:
                        expired.append((last_alive, name, envelope.get("worker")))
            if queued:
                _, name = min(queued)
                self._set_state(
                    self._get(name),
                    "running",
                    started_ts=now,
                    worker=worker_id,
                )
                return name
            if expired:
                _, name, dead_worker = min(expired)
                stored = self._get(name)
                envelope = stored.metadata.get(SERVICE_KEY) or {}
                self._set_state(
                    stored,
                    "running",
                    started_ts=now,
                    worker=worker_id,
                    reclaims=int(envelope.get("reclaims", 0)) + 1,
                    reclaimed_ts=now,
                    reclaimed_from=dead_worker,
                )
                return name
            return None

    def run_study(self, name: str) -> dict[str, Any]:
        """Drive one claimed study to completion through its spec.

        Rebuilds the :class:`StudySpec` from the persisted metadata
        (the identity the submit wrote), wraps the backend in
        :class:`HeartbeatStorage`, and lets ``spec.execute`` pick the
        batched or pipelined driver.  Success/failure lands back in the
        service envelope, so the queue state survives the process.

        A spec with ``remote_slots`` set makes this process the study's
        **coordinator**: it owns the sampler's ask/tell loop but
        evaluates nothing itself — candidates stream through a
        :class:`~repro.service.lease.LeasedWorkQueue` registered under
        the study name, which remote workers drain via ``POST /lease``
        and ``POST /studies/{name}/results``.  Lease counters ride the
        heartbeat writes, so ``study status`` shows them even from
        another process.
        """
        stored = self._get(name)
        queue = None
        try:
            spec = StudySpec.from_metadata(stored.metadata, source=self.storage_spec)
            extra = None
            if spec.remote_slots is not None:
                from .lease import DEFAULT_LEASE_TTL_S, LeasedWorkQueue

                queue = LeasedWorkQueue(
                    ttl=spec.lease_ttl or DEFAULT_LEASE_TTL_S, clock=self._clock
                )
                extra = lambda: {"leases": queue.stats()}  # noqa: E731
                self.register_work_queue(name, queue)
            heartbeat = HeartbeatStorage(
                self.storage,
                name,
                interval=self.heartbeat_interval,
                clock=self._clock,
                initial_trials_done=len(stored.finished_trials()),
                extra=extra,
            )
            heartbeat.beat()
            spec.execute(heartbeat, name, load_if_exists=True, executor=queue)
            heartbeat.beat()  # the throttle may have swallowed the tail
        except Exception as exc:
            self._set_state(
                self._get(name),
                "failed",
                failed_ts=float(self._clock()),
                error=str(exc),
            )
            raise
        finally:
            if queue is not None:
                self.unregister_work_queue(name)
                queue.shutdown(cancel_futures=True)
        self._set_state(
            self._get(name), "done", finished_ts=float(self._clock())
        )
        return self.status(name)

    def worker_loop(
        self,
        *,
        stop_event: "threading.Event | None" = None,
        poll_interval: float = 0.5,
        max_studies: "int | None" = None,
        worker_id: "str | None" = None,
    ) -> int:
        """Pull queued studies until stopped; returns the number run.

        Without ``stop_event`` the loop *drains*: it returns as soon as
        the queue is empty (the mode tests and one-shot batch runs
        want).  With one it idles on the event between polls until the
        event is set (the mode ``repro serve`` wants).  A failed study
        is marked ``failed`` and the loop moves on — one poisoned spec
        must not wedge the queue.
        """
        completed = 0
        while not (stop_event is not None and stop_event.is_set()):
            name = self.claim_next(worker_id)
            if name is None:
                if stop_event is None:
                    break
                stop_event.wait(poll_interval)
                continue
            try:
                self.run_study(name)
            except Exception:
                pass  # persisted as state=failed; keep serving the queue
            else:
                completed += 1
            if max_studies is not None and completed >= max_studies:
                break
        return completed
