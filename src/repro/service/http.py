"""Stdlib-only HTTP front end for :class:`~repro.service.StudyService`.

A deliberately small JSON API over ``http.server`` — no web framework,
matching the repo's no-new-hard-deps precedent (numba is optional, the
service is plain stdlib).  ``ThreadingHTTPServer`` gives one thread per
request; the study work itself happens in the service's worker threads,
so handlers only read/write study metadata and return quickly.

Routes (DESIGN.md §12):

==========================================  ====================================
``POST /studies``                           submit a study — body is a JSON
                                            document of StudySpec fields plus
                                            optional ``name``/``trials``/
                                            ``speculate`` (201, status doc)
``GET /studies``                            every study's status doc (200)
``GET /studies/{name}``                     one study's status doc (200)
``GET /studies/{name}/front.csv``           current Pareto front as CSV (200)
``POST /studies/{name}/resume``             re-queue for the next worker (202)
``POST /studies/{name}/cancel``             drop a queued study (200)
==========================================  ====================================

Errors are JSON ``{"error": ...}`` with 400 (bad spec), 404 (unknown
study), 409 (conflict: duplicate submit, live-heartbeat resume), or 405.

``repro serve --storage URL --workers N`` (cli.py) builds the service,
starts N daemon worker threads on :meth:`StudyService.worker_loop`, and
blocks in ``serve_forever``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .service import (
    ServiceError,
    StudyConflictError,
    StudyService,
    UnknownStudyError,
    spec_from_document,
)


class StudyServiceHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`StudyService` via subclassing."""

    service: StudyService  # injected by make_server()

    # Silence the default stderr access log — the CLI prints one line
    # per lifecycle event instead of one per poll.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- response helpers -----------------------------------------------------

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode() + b"\n"
        self._send(status, body, "application/json")

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def _dispatch(self, handler) -> None:
        try:
            handler()
        except UnknownStudyError as exc:
            self._error(404, str(exc))
        except StudyConflictError as exc:
            self._error(409, str(exc))
        except (ServiceError, ValueError) as exc:
            self._error(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - HTTP boundary: report, don't crash the server thread
            self._error(500, str(exc))

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from None

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(self._get)

    def _get(self) -> None:
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if parts == ["studies"]:
            self._json(200, {"studies": self.service.list_studies()})
        elif len(parts) == 2 and parts[0] == "studies":
            self._json(200, self.service.status(parts[1]))
        elif len(parts) == 3 and parts[0] == "studies" and parts[2] == "front.csv":
            self._send(200, self.service.front(parts[1]).encode(), "text/csv")
        else:
            self._error(404, f"no route for GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(self._post)

    def _post(self) -> None:
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if parts == ["studies"]:
            document = self._read_json()
            if not isinstance(document, dict):
                raise ServiceError("POST /studies body must be a JSON object")
            spec, name = spec_from_document(document)
            self._json(201, self.service.submit(spec, name))
        elif len(parts) == 3 and parts[0] == "studies" and parts[2] == "resume":
            self._json(202, self.service.resume(parts[1]))
        elif len(parts) == 3 and parts[0] == "studies" and parts[2] == "cancel":
            self._json(200, self.service.cancel(parts[1]))
        else:
            self._error(404, f"no route for POST {self.path}")


def make_server(
    service: StudyService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A bound (not yet serving) HTTP server for ``service``.

    ``port=0`` lets the OS pick a free port (``server.server_address``
    has the real one) — what tests use to avoid collisions.
    """
    handler = type(
        "BoundStudyServiceHandler", (StudyServiceHandler,), {"service": service}
    )
    return ThreadingHTTPServer((host, port), handler)


def serve(
    service: StudyService,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 1,
    stop_event: "threading.Event | None" = None,
) -> int:
    """Run the HTTP API plus ``workers`` queue-draining worker threads.

    Blocks in ``serve_forever`` until interrupted (or ``stop_event`` is
    set by another thread, which also stops the workers).  Returns 0 —
    the CLI exit code.
    """
    stop = stop_event or threading.Event()
    server = make_server(service, host, port)
    threads = [
        threading.Thread(
            target=service.worker_loop,
            kwargs={"stop_event": stop, "worker_id": f"worker-{i}"},
            daemon=True,
            name=f"study-worker-{i}",
        )
        for i in range(max(1, int(workers)))
    ]
    for thread in threads:
        thread.start()
    bound_host, bound_port = server.server_address[:2]
    print(
        f"serving {service.storage_spec} on http://{bound_host}:{bound_port} "
        f"({len(threads)} worker thread{'s' if len(threads) != 1 else ''})"
    )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        server.server_close()
        for thread in threads:
            thread.join(timeout=5.0)
    return 0
