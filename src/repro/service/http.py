"""Stdlib-only HTTP front end for :class:`~repro.service.StudyService`.

A deliberately small JSON API over ``http.server`` — no web framework,
matching the repo's no-new-hard-deps precedent (numba is optional, the
service is plain stdlib).  ``ThreadingHTTPServer`` gives one thread per
request; whole-study work happens in the service's worker threads and
remote evaluation in external worker processes, so handlers only
read/write study metadata, grant leases, and return quickly.

The full route set lives in :data:`ROUTES` — one declarative
``(method, path template, handler)`` table that drives dispatch *and*
is what the README's HTTP API reference is tested against
(``tests/test_docs_consistency.py``), so the docs cannot drift from the
registered routes.  The lease verbs (DESIGN.md §13) are the remote
worker protocol: ``POST /lease`` grants a TTL-stamped candidate batch
from any live coordinator, ``GET /studies/{name}/spec`` hands the
worker the persisted identity to rebuild its objective from, and
``POST /studies/{name}/results`` acknowledges evaluated batches
(late results after a reclaim are acked as stale, never errors).

Errors are JSON ``{"error": ...}`` with 400 (bad spec/body), 404
(unknown study or route), 409 (conflict: duplicate submit,
live-heartbeat resume), or 500.

``repro serve --storage URL --workers N`` (cli.py) builds the service,
starts N daemon worker threads on :meth:`StudyService.worker_loop`, and
blocks in ``serve_forever``; ``repro worker --connect URL`` runs the
remote side of the lease verbs.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .service import (
    ServiceError,
    StudyConflictError,
    StudyService,
    UnknownStudyError,
    spec_from_document,
)

#: the service API, as data: ``(method, path template, handler name)``.
#: ``{name}`` segments capture into handler kwargs.  Dispatch iterates
#: this table, and the docs-consistency suite pins the README endpoint
#: reference to exactly these rows — extend the API here or nowhere.
ROUTES: "tuple[tuple[str, str, str], ...]" = (
    ("GET", "/studies", "list"),
    ("POST", "/studies", "submit"),
    ("GET", "/studies/{name}", "status"),
    ("GET", "/studies/{name}/spec", "spec"),
    ("GET", "/studies/{name}/front.csv", "front"),
    ("POST", "/studies/{name}/resume", "resume"),
    ("POST", "/studies/{name}/cancel", "cancel"),
    ("POST", "/studies/{name}/results", "results"),
    ("POST", "/lease", "lease"),
)


def match_route(template: str, path: str) -> "dict[str, str] | None":
    """Match ``path`` against a ``/segment/{capture}`` template."""
    t_parts = [p for p in template.split("/") if p]
    p_parts = [p for p in path.split("/") if p]
    if len(t_parts) != len(p_parts):
        return None
    captures: "dict[str, str]" = {}
    for t, p in zip(t_parts, p_parts):
        if t.startswith("{") and t.endswith("}"):
            captures[t[1:-1]] = p
        elif t != p:
            return None
    return captures


class StudyServiceHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`StudyService` via subclassing."""

    service: StudyService  # injected by make_server()

    # Silence the default stderr access log — the CLI prints one line
    # per lifecycle event instead of one per poll.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- response helpers -----------------------------------------------------

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode() + b"\n"
        self._send(status, body, "application/json")

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from None

    def _read_object(self, label: str) -> "dict[str, Any]":
        document = self._read_json()
        if not isinstance(document, dict):
            raise ServiceError(f"{label} body must be a JSON object")
        return document

    # -- dispatch -------------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        try:
            path = self.path.split("?", 1)[0]
            for route_method, template, name in ROUTES:
                if route_method != method:
                    continue
                captures = match_route(template, path)
                if captures is not None:
                    getattr(self, f"_route_{name}")(**captures)
                    return
            self._error(404, f"no route for {method} {self.path}")
        except UnknownStudyError as exc:
            self._error(404, str(exc))
        except StudyConflictError as exc:
            self._error(409, str(exc))
        except (ServiceError, ValueError) as exc:
            self._error(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - HTTP boundary: report, don't crash the server thread
            self._error(500, str(exc))

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    # -- routes ---------------------------------------------------------------

    def _route_list(self) -> None:
        self._json(200, {"studies": self.service.list_studies()})

    def _route_submit(self) -> None:
        spec, name = spec_from_document(self._read_object("POST /studies"))
        self._json(201, self.service.submit(spec, name))

    def _route_status(self, name: str) -> None:
        self._json(200, self.service.status(name))

    def _route_spec(self, name: str) -> None:
        self._json(200, self.service.spec_document(name))

    def _route_front(self, name: str) -> None:
        self._send(200, self.service.front(name).encode(), "text/csv")

    def _route_resume(self, name: str) -> None:
        self._json(202, self.service.resume(name))

    def _route_cancel(self, name: str) -> None:
        self._json(200, self.service.cancel(name))

    def _route_lease(self) -> None:
        document = self._read_object("POST /lease")
        worker = document.get("worker")
        if not worker:
            raise ServiceError("POST /lease needs a 'worker' id")
        self._json(
            200,
            self.service.lease_work(str(worker), int(document.get("limit", 1))),
        )

    def _route_results(self, name: str) -> None:
        document = self._read_object(f"POST /studies/{name}/results")
        worker = document.get("worker")
        results = document.get("results")
        if not worker:
            raise ServiceError("results need a 'worker' id")
        if not isinstance(results, list):
            raise ServiceError("'results' must be a list of outcome objects")
        self._json(200, self.service.complete_work(name, str(worker), results))


def make_server(
    service: StudyService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A bound (not yet serving) HTTP server for ``service``.

    ``port=0`` lets the OS pick a free port (``server.server_address``
    has the real one) — what tests use to avoid collisions.
    """
    handler = type(
        "BoundStudyServiceHandler", (StudyServiceHandler,), {"service": service}
    )
    return ThreadingHTTPServer((host, port), handler)


def serve(
    service: StudyService,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 1,
    stop_event: "threading.Event | None" = None,
) -> int:
    """Run the HTTP API plus ``workers`` queue-draining worker threads.

    Blocks in ``serve_forever`` until interrupted (or ``stop_event`` is
    set by another thread, which also stops the workers).  Returns 0 —
    the CLI exit code.
    """
    stop = stop_event or threading.Event()
    server = make_server(service, host, port)
    threads = [
        threading.Thread(
            target=service.worker_loop,
            kwargs={"stop_event": stop, "worker_id": f"worker-{i}"},
            daemon=True,
            name=f"study-worker-{i}",
        )
        for i in range(max(1, int(workers)))
    ]
    for thread in threads:
        thread.start()
    bound_host, bound_port = server.server_address[:2]
    print(
        f"serving {service.storage_spec} on http://{bound_host}:{bound_port} "
        f"({len(threads)} worker thread{'s' if len(threads) != 1 else ''})"
    )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        server.server_close()
        for thread in threads:
            thread.join(timeout=5.0)
    return 0
