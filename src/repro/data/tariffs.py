"""Time-of-use electricity tariffs (paper extension, §4.3).

The paper lists "electricity cost reduction ... in regions with volatile
grid pricing or time-of-use tariffs" as an additional optimization
objective.  This module provides stylized TOU tariffs for the two study
regions so the cost objective in :mod:`repro.core.metrics` has a concrete
price signal to work against.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import ConfigurationError

HOURS_PER_YEAR = 8_760


@dataclass(frozen=True)
class TouTariff:
    """A simple weekday-agnostic TOU tariff ($ per kWh by hour of day)."""

    name: str
    off_peak_usd_kwh: float
    mid_peak_usd_kwh: float
    on_peak_usd_kwh: float
    #: half-open local-hour windows [start, end)
    mid_peak_hours: tuple[tuple[int, int], ...] = ((7, 16),)
    on_peak_hours: tuple[tuple[int, int], ...] = ((16, 21),)
    #: price paid for exported energy ($/kWh); 0 disables export credit
    export_credit_usd_kwh: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.off_peak_usd_kwh <= self.mid_peak_usd_kwh <= self.on_peak_usd_kwh:
            raise ConfigurationError(
                "need 0 < off_peak <= mid_peak <= on_peak, got "
                f"{self.off_peak_usd_kwh}/{self.mid_peak_usd_kwh}/{self.on_peak_usd_kwh}"
            )
        for windows in (self.mid_peak_hours, self.on_peak_hours):
            for start, end in windows:
                if not 0 <= start < end <= 24:
                    raise ConfigurationError(f"invalid TOU window ({start}, {end})")

    def price_by_hour_of_day(self) -> np.ndarray:
        """24-vector of $/kWh prices by local hour."""
        prices = np.full(24, self.off_peak_usd_kwh)
        for start, end in self.mid_peak_hours:
            prices[start:end] = self.mid_peak_usd_kwh
        for start, end in self.on_peak_hours:
            prices[start:end] = self.on_peak_usd_kwh
        return prices

    def hourly_prices(self, n_hours: int = HOURS_PER_YEAR) -> np.ndarray:
        """Price series ($/kWh) for a run of hourly samples from hour 0."""
        day = self.price_by_hour_of_day()
        reps = int(np.ceil(n_hours / 24.0))
        return np.tile(day, reps)[:n_hours]


#: Stylized PG&E-like commercial TOU (Berkeley) — expensive evening peak.
CAISO_TOU = TouTariff(
    name="caiso-commercial-tou",
    off_peak_usd_kwh=0.14,
    mid_peak_usd_kwh=0.18,
    on_peak_usd_kwh=0.32,
    mid_peak_hours=((7, 16),),
    on_peak_hours=((16, 21),),
    export_credit_usd_kwh=0.05,
)

#: Stylized ERCOT-like commercial rate (Houston) — flatter, cheaper.
ERCOT_TOU = TouTariff(
    name="ercot-commercial-tou",
    off_peak_usd_kwh=0.07,
    mid_peak_usd_kwh=0.09,
    on_peak_usd_kwh=0.15,
    mid_peak_hours=((6, 14),),
    on_peak_hours=((14, 20),),
    export_credit_usd_kwh=0.03,
)

_TARIFFS = {"CAISO": CAISO_TOU, "ERCOT": ERCOT_TOU}

#: Named rate-structure futures for scenario ensembles (DESIGN.md §6):
#: deterministic transforms of the regional base tariff, so the tariff
#: axis crosses freely with every other axis and consumes no RNG.
TARIFF_VARIANTS = ("default", "flat", "volatile")


def tou_tariff_for(region: str, variant: str = "default") -> TouTariff:
    """Look up the stylized tariff for a grid region.

    ``variant`` selects a rate-structure future (DESIGN.md §6):
    ``default`` is today's tariff, ``flat`` removes the TOU spread
    (every hour priced at the mid-peak rate), and ``volatile`` widens it
    (cheaper off-peak, a much more expensive evening peak).
    """
    key = region.strip().upper()
    try:
        base = _TARIFFS[key]
    except KeyError:
        known = ", ".join(sorted(_TARIFFS))
        raise ConfigurationError(f"no tariff for region '{region}' (known: {known})") from None
    if variant == "default":
        return base
    if variant == "flat":
        return replace(
            base,
            name=f"{base.name}-flat",
            off_peak_usd_kwh=base.mid_peak_usd_kwh,
            on_peak_usd_kwh=base.mid_peak_usd_kwh,
        )
    if variant == "volatile":
        return replace(
            base,
            name=f"{base.name}-volatile",
            off_peak_usd_kwh=0.8 * base.off_peak_usd_kwh,
            on_peak_usd_kwh=1.6 * base.on_peak_usd_kwh,
        )
    known = ", ".join(TARIFF_VARIANTS)
    raise ConfigurationError(f"unknown tariff variant '{variant}' (known: {known})")
