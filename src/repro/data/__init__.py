"""Synthetic data substrates replacing the paper's external datasets.

The paper drives its experiments with four external data sources that are
not redistributable/reachable offline:

* NSRDB solar irradiance            → :mod:`repro.data.solar_resource`
* NREL WIND Toolkit wind speeds     → :mod:`repro.data.wind_resource`
* NERSC Perlmutter power traces     → :mod:`repro.data.workload`
* Electricity Maps carbon intensity → :mod:`repro.data.carbon_intensity`

Each generator is deterministic (seeded via :mod:`repro.rng`) and calibrated
to the published site statistics, so the *relative* behaviour the paper's
conclusions rest on (Houston wind-rich / Berkeley solar-rich, CAISO cleaner
than ERCOT, 1.62 MW mean load) is preserved.  See DESIGN.md §1 for the
substitution rationale.
"""

from .locations import BERKELEY, HOUSTON, Location, get_location
from .solar_resource import SolarResource, synthesize_solar_resource
from .wind_resource import WindResource, synthesize_wind_resource
from .workload import WorkloadTrace, synthesize_datacenter_trace
from .carbon_intensity import CarbonIntensityProfile, synthesize_carbon_intensity
from .tariffs import TouTariff, tou_tariff_for
from .forecast import ForecastModel
from .weather_events import WeatherEvent, dunkelflaute_events

__all__ = [
    "BERKELEY",
    "HOUSTON",
    "Location",
    "get_location",
    "SolarResource",
    "synthesize_solar_resource",
    "WindResource",
    "synthesize_wind_resource",
    "WorkloadTrace",
    "synthesize_datacenter_trace",
    "CarbonIntensityProfile",
    "synthesize_carbon_intensity",
    "TouTariff",
    "tou_tariff_for",
    "ForecastModel",
    "WeatherEvent",
    "dunkelflaute_events",
]
