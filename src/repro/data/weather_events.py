"""Coordinated extreme-weather events ("dunkelflaute").

Real resource years contain stretches where a stagnant synoptic system
suppresses wind *and* solar output simultaneously for days — the German
grid literature's *Dunkelflaute* ("dark doldrums").  These events are the
physical reason the paper's Pareto fronts flatten out: pushing coverage
from ~99 % to ~100 % requires overbuilding against the worst week of the
year, which is why the paper's minimum-operational composition carries
39 380 tCO₂ of embodied carbon (§4.1).

Independent AR(1) weather layers do not produce correlated multi-day
droughts, so this module synthesizes them explicitly: a seeded event list
per (site, year) that *both* the solar and wind generators apply, keeping
the two resource files consistent (the events share one RNG stream).

Scenario ensembles (DESIGN.md §6) stress-test sizing against *harsher*
climate futures through the ``severity`` hook: the base events are drawn
from the unchanged ``("dunkelflaute", site, year)`` RNG stream and then
scaled by a deterministic transform (deeper attenuation, longer
duration), so adding the severity axis to an ensemble never perturbs any
other member's weather realization.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import generator_for
from .locations import Location


@dataclass(frozen=True)
class WeatherEvent:
    """One suppressed-resource event (hour indices, attenuation factors)."""

    start_hour: int
    duration_hours: int
    wind_factor: float
    solar_factor: float

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise ConfigurationError("event duration must be positive")
        if not 0.0 <= self.wind_factor <= 1.0 or not 0.0 <= self.solar_factor <= 1.0:
            raise ConfigurationError("attenuation factors must lie in [0, 1]")

    def scaled(self, severity: float) -> "WeatherEvent":
        """This event under a harsher (or milder) climate future.

        ``severity > 1`` deepens the attenuation (factors are raised to
        the ``severity`` power, pushing them toward 0) and stretches the
        duration proportionally; ``severity = 1`` returns ``self``
        unchanged, so the default ensemble axis is bit-identical to the
        historical event list (DESIGN.md §6).
        """
        if severity <= 0.0:
            raise ConfigurationError(f"severity must be positive, got {severity}")
        if severity == 1.0:
            return self
        return WeatherEvent(
            start_hour=self.start_hour,
            duration_hours=max(int(round(self.duration_hours * severity)), 1),
            wind_factor=min(self.wind_factor**severity, 1.0),
            solar_factor=min(self.solar_factor**severity, 1.0),
        )


#: events per synthetic year by site (Gulf-coast winters see more stagnant
#: high-pressure stretches than the Bay Area)
_EVENTS_PER_YEAR = {"houston": 5, "berkeley": 4}
_DEFAULT_EVENTS = 4

#: winter-season window (day-of-year) events are drawn from: Nov–Feb.
_WINTER_DAYS = list(range(305, 365)) + list(range(0, 60))


def dunkelflaute_events(
    location: Location,
    year_label: int = 2024,
    n_hours: int = 8_760,
    severity: float = 1.0,
) -> list[WeatherEvent]:
    """The deterministic event list for a site-year.

    Both resource generators call this with identical arguments, so the
    wind lull and the overcast period coincide by construction.

    ``severity`` scales the drawn events through
    :meth:`WeatherEvent.scaled` *after* all RNG draws, so every severity
    level of an ensemble (DESIGN.md §6) sees the same base events at a
    different depth/length, and ``severity=1.0`` is bit-identical to the
    historical list.
    """
    if severity <= 0.0:
        raise ConfigurationError(f"severity must be positive, got {severity}")
    rng = generator_for("dunkelflaute", location.name, year_label)
    n_events = _EVENTS_PER_YEAR.get(location.name, _DEFAULT_EVENTS)
    events: list[WeatherEvent] = []
    for _ in range(n_events):
        day = int(rng.choice(_WINTER_DAYS))
        start = day * 24 + int(rng.integers(0, 12))
        duration = int(rng.integers(48, 132))  # 2–5.5 days
        wind_factor = float(rng.uniform(0.05, 0.25))
        solar_factor = float(rng.uniform(0.30, 0.55))
        if start < n_hours:
            event = WeatherEvent(
                start_hour=start,
                duration_hours=duration,
                wind_factor=wind_factor,
                solar_factor=solar_factor,
            ).scaled(severity)
            events.append(
                replace(event, duration_hours=min(event.duration_hours, n_hours - start))
            )
    events.sort(key=lambda e: e.start_hour)
    return events


def apply_events(
    series: np.ndarray,
    events: list[WeatherEvent],
    which: str,
    n_hours: int | None = None,
) -> np.ndarray:
    """Attenuate a resource series in place during events; returns it.

    ``which`` selects the factor: ``"wind"`` or ``"solar"``.  Event edges
    are ramped over 6 hours so the attenuation does not introduce
    unphysical step discontinuities.
    """
    if which not in ("wind", "solar"):
        raise ConfigurationError(f"unknown event channel '{which}'")
    n = n_hours if n_hours is not None else series.shape[0]
    ramp_h = 6
    for event in events:
        factor = event.wind_factor if which == "wind" else event.solar_factor
        start, dur = event.start_hour, event.duration_hours
        end = min(start + dur, n)
        if start >= n:
            continue
        envelope = np.full(end - start, factor)
        ramp = min(ramp_h, max((end - start) // 2, 1))
        blend = np.linspace(1.0, factor, ramp)
        envelope[:ramp] = blend
        envelope[-ramp:] = blend[::-1]
        series[start:end] *= envelope
    return series
