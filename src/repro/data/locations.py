"""Site definitions for the paper's two case studies.

The paper places the simulated data center in Berkeley, CA and Houston, TX,
"chosen for their contrasting solar and wind resource profiles" (§4).  A
:class:`Location` bundles everything the resource generators and SAM-style
models need: geography, climate calibration parameters, and the grid region
whose carbon intensity applies.

Climate parameters are calibrated to public long-term statistics:

* Berkeley (37.87°N, 122.27°W, CAISO): Mediterranean climate — clear, dry
  summers (high clearness index), moderate coastal winds (~5.5–6 m/s at
  100 m), strong solar resource (GHI ≈ 4.8 kWh/m²/day).
* Houston (29.76°N, 95.37°W, ERCOT): humid subtropical — hazier/cloudier
  summers, strong Gulf-coast wind resource typical of ERCOT wind build-out
  (~7.5–8 m/s at 100 m), solar GHI ≈ 4.4 kWh/m²/day.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class ClearnessClimate:
    """Seasonal clearness-index climatology for the solar generator.

    ``mean_winter``/``mean_summer`` are the mean daily clearness indices
    (fraction of clear-sky irradiance reaching the ground) around Jan 1 and
    Jul 1; ``variability`` scales day-to-day cloud variance; ``persistence``
    is the lag-1 autocorrelation of the daily cloud state.
    """

    mean_winter: float
    mean_summer: float
    variability: float
    persistence: float

    def __post_init__(self) -> None:
        for name in ("mean_winter", "mean_summer"):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {v}")
        if not 0.0 <= self.persistence < 1.0:
            raise ConfigurationError(f"persistence must be in [0, 1), got {self.persistence}")


@dataclass(frozen=True)
class WindClimate:
    """Wind climatology for the synthetic WIND-Toolkit-style generator.

    ``mean_speed_ms`` is the long-term mean speed at ``reference_height_m``;
    ``weibull_k`` the Weibull shape; ``diurnal_amplitude`` the relative
    day/night modulation (positive → windier afternoons, as for Gulf-coast
    sea breeze); ``seasonal_amplitude`` the relative winter/summer swing
    (positive → windier in spring/winter); ``persistence_hours`` the e-folding
    autocorrelation time of the wind-speed process.
    """

    mean_speed_ms: float
    weibull_k: float
    reference_height_m: float
    shear_exponent: float
    diurnal_amplitude: float
    seasonal_amplitude: float
    persistence_hours: float
    #: local hour of the diurnal wind maximum.  Coastal sea-breeze sites
    #: peak mid-afternoon (~15 h); the Texas interior wind fleet peaks at
    #: night (~2 h), anticorrelated with solar — the complementarity that
    #: drives ERCOT's nocturnal carbon dips and the paper's wind-led
    #: Houston decarbonization.
    diurnal_peak_hour: float = 15.0

    def __post_init__(self) -> None:
        if self.mean_speed_ms <= 0:
            raise ConfigurationError(f"mean wind speed must be positive, got {self.mean_speed_ms}")
        if not 1.0 <= self.weibull_k <= 4.0:
            raise ConfigurationError(f"weibull_k must be in [1, 4], got {self.weibull_k}")
        if self.persistence_hours <= 0:
            raise ConfigurationError("persistence_hours must be positive")


@dataclass(frozen=True)
class Location:
    """A data-center site with the attributes the simulation stack needs."""

    name: str
    latitude_deg: float
    longitude_deg: float
    #: offset of local standard time from UTC in hours (PST=-8, CST=-6)
    timezone_hours: float
    elevation_m: float
    grid_region: str  # e.g. "CAISO", "ERCOT"
    solar_climate: ClearnessClimate
    wind_climate: WindClimate
    #: mean 2 m air temperature (°C) and seasonal amplitude for the
    #: module-temperature model
    mean_temperature_c: float = 15.0
    temperature_seasonal_amplitude_c: float = 8.0
    temperature_diurnal_amplitude_c: float = 5.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ConfigurationError(f"latitude out of range: {self.latitude_deg}")
        if not -180.0 <= self.longitude_deg <= 180.0:
            raise ConfigurationError(f"longitude out of range: {self.longitude_deg}")


#: Berkeley, CA — strong and consistent solar, moderate coastal wind (CAISO).
BERKELEY = Location(
    name="berkeley",
    latitude_deg=37.8715,
    longitude_deg=-122.2730,
    timezone_hours=-8.0,
    elevation_m=52.0,
    grid_region="CAISO",
    solar_climate=ClearnessClimate(
        mean_winter=0.55, mean_summer=0.76, variability=0.16, persistence=0.55
    ),
    # Bay-Area onshore wind at 100 m is modest (CAISO's utility wind sits in
    # the passes, not at the shoreline): mean ≈4.9 m/s → farm CF ≈ 0.12,
    # with day-scale persistence producing becalmed stretches.
    wind_climate=WindClimate(
        mean_speed_ms=4.9,
        weibull_k=1.9,
        reference_height_m=100.0,
        shear_exponent=0.14,
        diurnal_amplitude=0.18,
        seasonal_amplitude=0.10,
        persistence_hours=24.0,
    ),
    mean_temperature_c=14.0,
    temperature_seasonal_amplitude_c=5.0,
    temperature_diurnal_amplitude_c=4.5,
)

#: Houston, TX — Gulf-coast wind resource, hazier subtropical solar (ERCOT).
HOUSTON = Location(
    name="houston",
    latitude_deg=29.7604,
    longitude_deg=-95.3698,
    timezone_hours=-6.0,
    elevation_m=24.0,
    grid_region="ERCOT",
    solar_climate=ClearnessClimate(
        mean_winter=0.50, mean_summer=0.62, variability=0.22, persistence=0.62
    ),
    # Gulf-coast wind: strong mean resource (farm CF ≈ 0.40) but driven by
    # synoptic systems with multi-day persistence — the becalmed stretches
    # are what make "the last few percent" of coverage so expensive (§4.1).
    wind_climate=WindClimate(
        mean_speed_ms=8.0,
        weibull_k=2.0,
        reference_height_m=100.0,
        shear_exponent=0.16,
        diurnal_amplitude=0.22,
        seasonal_amplitude=0.14,
        persistence_hours=30.0,
        diurnal_peak_hour=2.0,
    ),
    mean_temperature_c=21.0,
    temperature_seasonal_amplitude_c=9.0,
    temperature_diurnal_amplitude_c=5.5,
)

_REGISTRY: dict[str, Location] = {loc.name: loc for loc in (BERKELEY, HOUSTON)}


def get_location(name: str) -> Location:
    """Look up a built-in site by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown location '{name}' (known: {known})") from None


def register_location(location: Location, *, overwrite: bool = False) -> None:
    """Register a custom site so it can be resolved by name in configs."""
    key = location.name.strip().lower()
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"location '{key}' already registered")
    _REGISTRY[key] = location
