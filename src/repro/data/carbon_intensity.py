"""Synthetic grid carbon-intensity profiles (Electricity Maps stand-in).

The paper computes operational (Scope 2) emissions with *average* hourly
carbon intensity from Electricity Maps for CAISO (Berkeley) and ERCOT
(Houston), 2024.  Those datasets are licensed; we synthesize profiles with
the structure that drives the paper's results:

* **CAISO** — mean ≈ 240 gCO₂/kWh (reproducing the 9.33 tCO₂/day grid-only
  baseline at 1.62 MW), with the solar *duck curve*: deep midday dips
  (solar flooding the grid), steep evening ramps to gas peakers, cleaner
  springs, dirtier late summers.
* **ERCOT** — mean ≈ 400 gCO₂/kWh (reproducing 15.54 tCO₂/day), with
  night-time dips from West-Texas wind, afternoon summer peaks (AC load on
  gas/coal), and larger day-to-day volatility.

Baseline check (by construction): 1.62 MW × 24 h = 38.88 MWh/day;
38 880 kWh × 399.7 g/kWh ≈ 15.54 tCO₂/day and × 240.0 ≈ 9.33 tCO₂/day —
the first rows of Tables 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import generator_for
from ..timeseries import TimeSeries, hourly_times_s
from ..units import SECONDS_PER_HOUR

HOURS_PER_YEAR = 8_760

#: Calibrated regional annual means (gCO2/kWh) — chosen so the grid-only
#: baselines match the paper's Tables 1–2 at 1.62 MW mean load.
REGION_MEANS_G_PER_KWH = {
    "ERCOT": 399.7,
    "CAISO": 240.0,
}

#: Named grid-decarbonization futures (DESIGN.md §6): each trajectory is
#: a pure multiplier on the calibrated regional mean, applied *after*
#: the shape/anomaly synthesis, so every trajectory of an ensemble sees
#: the same hourly structure at a different carbon level and adding the
#: axis never perturbs any other member's RNG streams.
CARBON_TRAJECTORIES = {
    "baseline": 1.0,   # today's calibrated grid mix
    "cleaner": 0.7,    # sustained renewable build-out
    "cleanest": 0.4,   # aggressive decarbonization
    "dirtier": 1.3,    # gas/coal backsliding
}


def carbon_trajectory_multiplier(trajectory: str) -> float:
    """Mean-CI multiplier for a named grid future (DESIGN.md §6)."""
    try:
        return CARBON_TRAJECTORIES[trajectory]
    except KeyError:
        known = ", ".join(sorted(CARBON_TRAJECTORIES))
        raise ConfigurationError(
            f"unknown carbon trajectory '{trajectory}' (known: {known})"
        ) from None


@dataclass(frozen=True)
class CarbonIntensityProfile:
    """Hourly average carbon intensity of a grid region (gCO2/kWh)."""

    region: str
    times_s: np.ndarray
    intensity_g_per_kwh: np.ndarray

    def __post_init__(self) -> None:
        if self.intensity_g_per_kwh.shape != self.times_s.shape:
            raise ConfigurationError("carbon intensity arrays misaligned")
        if np.any(self.intensity_g_per_kwh < 0):
            raise ConfigurationError("carbon intensity must be non-negative")

    @property
    def step_s(self) -> float:
        return float(self.times_s[1] - self.times_s[0]) if self.times_s.size > 1 else SECONDS_PER_HOUR

    def mean(self) -> float:
        return float(self.intensity_g_per_kwh.mean())

    def as_timeseries(self) -> TimeSeries:
        return TimeSeries(
            self.intensity_g_per_kwh, self.step_s, float(self.times_s[0]), f"ci-{self.region}"
        )


def _caiso_shape(hour_of_day: np.ndarray, day_of_year: np.ndarray) -> np.ndarray:
    """Relative CAISO diurnal/seasonal shape (mean ≈ 1)."""
    # Duck curve: deep dip centered 12–13h, evening peak ~19–20h.
    midday_dip = -0.38 * np.exp(-0.5 * ((hour_of_day - 12.5) / 2.6) ** 2)
    evening_peak = 0.30 * np.exp(-0.5 * ((hour_of_day - 19.5) / 2.0) ** 2)
    morning_peak = 0.10 * np.exp(-0.5 * ((hour_of_day - 7.0) / 1.8) ** 2)
    # Seasonal: cleanest in spring (hydro + solar, ~day 110), dirtier in
    # late summer (day ~240, AC-driven gas).
    seasonal = 0.10 * np.cos(2.0 * np.pi * (day_of_year - 245.0) / 365.0)
    return 1.0 + midday_dip + evening_peak + morning_peak + seasonal


def _ercot_shape(hour_of_day: np.ndarray, day_of_year: np.ndarray) -> np.ndarray:
    """Relative ERCOT diurnal/seasonal shape (mean ≈ 1)."""
    # Night wind dips, late-afternoon peaks; smaller solar dip than CAISO.
    night_dip = -0.16 * np.exp(-0.5 * ((np.mod(hour_of_day + 12.0, 24.0) - 12.0) / 3.4) ** 2)
    afternoon_peak = 0.15 * np.exp(-0.5 * ((hour_of_day - 16.5) / 2.6) ** 2)
    midday_dip = -0.06 * np.exp(-0.5 * ((hour_of_day - 12.0) / 2.2) ** 2)
    # Seasonal: windy spring nights clean, summer peaks dirty.
    seasonal = 0.08 * np.cos(2.0 * np.pi * (day_of_year - 225.0) / 365.0)
    return 1.0 + night_dip + afternoon_peak + midday_dip + seasonal


_SHAPES = {"CAISO": _caiso_shape, "ERCOT": _ercot_shape}
_VOLATILITY = {"CAISO": 0.06, "ERCOT": 0.10}


def synthesize_carbon_intensity(
    region: str,
    year_label: int = 2024,
    n_hours: int = HOURS_PER_YEAR,
    mean_g_per_kwh: float | None = None,
    trajectory: str = "baseline",
) -> CarbonIntensityProfile:
    """Generate a deterministic synthetic hourly CI year for a region.

    ``trajectory`` names a grid future from :data:`CARBON_TRAJECTORIES`
    (DESIGN.md §6): the mean is rescaled, the hourly structure and the
    RNG stream are untouched.
    """
    key = region.strip().upper()
    if key not in _SHAPES:
        known = ", ".join(sorted(_SHAPES))
        raise ConfigurationError(f"unknown grid region '{region}' (known: {known})")
    target_mean = mean_g_per_kwh if mean_g_per_kwh is not None else REGION_MEANS_G_PER_KWH[key]
    target_mean *= carbon_trajectory_multiplier(trajectory)
    if target_mean <= 0:
        raise ConfigurationError("mean carbon intensity must be positive")

    rng = generator_for("carbon", key, year_label)
    times = hourly_times_s(n_hours)
    hour_of_day = np.mod(np.arange(n_hours), 24).astype(np.float64)
    day_of_year = (np.arange(n_hours) // 24 + 1).astype(np.float64)

    shape = _SHAPES[key](hour_of_day, day_of_year)

    # Day-scale AR(1) anomaly (weather systems move the whole fuel mix).
    n_days = int(np.ceil(n_hours / 24.0))
    daily = np.empty(n_days)
    innov = rng.standard_normal(n_days)
    daily[0] = innov[0]
    rho = 0.6
    for d in range(1, n_days):
        daily[d] = rho * daily[d - 1] + np.sqrt(1.0 - rho**2) * innov[d]
    anomaly = 1.0 + _VOLATILITY[key] * daily[(np.arange(n_hours) // 24)]

    intensity = shape * anomaly
    intensity = np.clip(intensity, 0.15, None)
    intensity *= target_mean / intensity.mean()  # exact mean calibration

    return CarbonIntensityProfile(
        region=key, times_s=times, intensity_g_per_kwh=intensity
    )
