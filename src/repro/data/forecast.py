"""Forecast generation for predictive operational strategies.

Vessim serves "historical or forecasted power traces" (§3.1); the
operational strategies of §4.3 (load shifting, carbon-aware scheduling)
need *imperfect* forecasts to be meaningful.  This module turns any
ground-truth hourly profile into a forecast with the standard error
structure of numerical weather/carbon forecasts:

* errors grow with lead time (√h scaling, persistence-like),
* errors are autocorrelated across lead times within one issue,
* forecasts are re-issued periodically (rolling horizon).

Deterministic per (name, issue time) via :mod:`repro.rng`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import generator_for


@dataclass(frozen=True)
class ForecastModel:
    """Generates rolling forecasts of an hourly ground-truth profile.

    Parameters
    ----------
    truth:
        Ground-truth hourly series (any unit).
    name:
        Stream name (seeds the error realizations).
    error_at_1h:
        Relative RMS error at one hour lead.
    error_growth_per_sqrt_hour:
        Additional relative error per √hour of lead time.
    nonnegative:
        Clip forecasts at zero (power, irradiance, CI are non-negative).
    """

    truth: np.ndarray
    name: str = "forecast"
    error_at_1h: float = 0.05
    error_growth_per_sqrt_hour: float = 0.03
    nonnegative: bool = True

    def __post_init__(self) -> None:
        if self.truth.ndim != 1 or self.truth.size == 0:
            raise ConfigurationError("truth must be a non-empty 1-D array")
        if self.error_at_1h < 0 or self.error_growth_per_sqrt_hour < 0:
            raise ConfigurationError("error coefficients must be non-negative")

    def issue(self, issue_hour: int, horizon_hours: int) -> np.ndarray:
        """Forecast values for hours ``issue_hour+1 .. issue_hour+horizon``.

        Lead-time-dependent multiplicative errors with AR(1) correlation
        across leads; the same issue always returns the same forecast.
        """
        if horizon_hours <= 0:
            raise ConfigurationError("horizon must be positive")
        n = self.truth.size
        leads = np.arange(1, horizon_hours + 1, dtype=np.float64)
        idx = (issue_hour + leads.astype(np.int64)) % n

        rng = generator_for("forecast", self.name, int(issue_hour))
        innovations = rng.standard_normal(horizon_hours)
        rho = 0.8
        noise = np.empty(horizon_hours)
        noise[0] = innovations[0]
        scale = np.sqrt(1.0 - rho**2)
        for i in range(1, horizon_hours):
            noise[i] = rho * noise[i - 1] + scale * innovations[i]

        sigma = self.error_at_1h + self.error_growth_per_sqrt_hour * (np.sqrt(leads) - 1.0)
        reference = max(float(np.abs(self.truth).mean()), 1e-12)
        forecast = self.truth[idx] + noise * sigma * reference
        if self.nonnegative:
            forecast = np.maximum(forecast, 0.0)
        return forecast

    def rms_error(self, lead_hours: int, n_issues: int = 200) -> float:
        """Empirical relative RMS error at a fixed lead (diagnostics)."""
        if lead_hours <= 0:
            raise ConfigurationError("lead must be positive")
        errors = []
        n = self.truth.size
        step = max(n // n_issues, 1)
        for issue_hour in range(0, n, step):
            fc = self.issue(issue_hour, lead_hours)
            actual = self.truth[(issue_hour + lead_hours) % n]
            errors.append(fc[-1] - actual)
        reference = max(float(np.abs(self.truth).mean()), 1e-12)
        return float(np.sqrt(np.mean(np.square(errors))) / reference)
