"""Synthetic NSRDB-style solar resource generator.

The paper pulls Berkeley/Houston irradiance from the National Solar
Radiation Data Base (NSRDB), which is not redistributable here.  This
module synthesizes a statistically faithful replacement:

1. a deterministic **physical layer** — hourly solar geometry and the
   Haurwitz clear-sky GHI for the site;
2. a stochastic **weather layer** — a seeded daily clearness-index process
   with seasonal climatology (site-calibrated winter/summer means), AR(1)
   day-to-day persistence and bounded variability, plus mild intra-day
   modulation (afternoon cloud build-up);
3. **decomposition** — Erbs split of the resulting GHI into DNI/DHI, so
   the transposition model sees physically consistent components;
4. an **ambient temperature** model (seasonal + diurnal sinusoids + AR
   noise) for the cell-temperature chain, and a surface wind speed proxy.

Everything is vectorized over the 8 760-hour year and fully reproducible
via :mod:`repro.rng`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import generator_for
from ..sam.solar.clearsky import haurwitz_ghi
from ..sam.solar.geometry import solar_position
from ..sam.solar.irradiance import erbs_decomposition
from ..timeseries import hourly_times_s
from ..units import SECONDS_PER_HOUR
from .locations import Location
from .weather_events import apply_events, dunkelflaute_events

HOURS_PER_YEAR = 8_760
DAYS_PER_YEAR = 365

#: Clearness index of a fully clear sky: the Haurwitz model already
#: attenuates the extraterrestrial beam to ~78 % on average, so a site
#: climatology expressed as a clearness index (fraction of extraterrestrial)
#: must be rescaled into a *clear-sky fraction* before multiplying the
#: clear-sky GHI — otherwise atmospheric attenuation is double-counted.
CLEARSKY_KT = 0.78


@dataclass(frozen=True)
class SolarResource:
    """One synthetic resource year at a site (hourly, left-labelled)."""

    location: Location
    times_s: np.ndarray
    ghi_w_m2: np.ndarray
    dni_w_m2: np.ndarray
    dhi_w_m2: np.ndarray
    ambient_temperature_c: np.ndarray
    wind_speed_ms: np.ndarray

    def __post_init__(self) -> None:
        n = self.times_s.size
        for name in ("ghi_w_m2", "dni_w_m2", "dhi_w_m2", "ambient_temperature_c", "wind_speed_ms"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ConfigurationError(f"{name} misaligned: {arr.shape} vs ({n},)")

    @property
    def step_s(self) -> float:
        return float(self.times_s[1] - self.times_s[0]) if self.times_s.size > 1 else SECONDS_PER_HOUR

    def mean_daily_ghi_kwh_m2(self) -> float:
        """Mean daily GHI in kWh/m²/day — the headline resource statistic."""
        hours = self.ghi_w_m2.size
        return float(self.ghi_w_m2.sum() / 1_000.0 / (hours / 24.0))


def _seasonal_clearness(location: Location, day_of_year: np.ndarray) -> np.ndarray:
    """Mean clearness index per day: cosine between winter/summer values."""
    clim = location.solar_climate
    mean = (clim.mean_winter + clim.mean_summer) / 2.0
    amp = (clim.mean_summer - clim.mean_winter) / 2.0
    # Peak at day ~196 (mid July), trough mid January.
    phase = 2.0 * np.pi * (day_of_year - 196.0) / 365.0
    return mean + amp * np.cos(phase)


def _daily_cloud_state(location: Location, n_days: int, rng: np.random.Generator) -> np.ndarray:
    """AR(1) daily cloud anomaly, mapped into a bounded clearness multiplier."""
    clim = location.solar_climate
    rho = clim.persistence
    innovations = rng.standard_normal(n_days)
    state = np.empty(n_days)
    state[0] = innovations[0]
    scale = np.sqrt(1.0 - rho**2)
    for d in range(1, n_days):
        state[d] = rho * state[d - 1] + scale * innovations[d]
    return state


def synthesize_solar_resource(
    location: Location,
    year_label: int = 2024,
    n_hours: int = HOURS_PER_YEAR,
    include_extreme_events: bool = True,
    event_severity: float = 1.0,
) -> SolarResource:
    """Generate one deterministic synthetic resource year for a site.

    ``include_extreme_events=False`` drops the coordinated dunkelflaute
    events (ablation use only — real climates have them).
    ``event_severity`` scales their depth/length for harsher ensemble
    futures (DESIGN.md §6) without consuming extra RNG draws.
    """
    if n_hours <= 0 or n_hours % 24 != 0:
        raise ConfigurationError(f"n_hours must be a positive multiple of 24, got {n_hours}")
    rng = generator_for("solar", location.name, year_label)
    times = hourly_times_s(n_hours)
    n_days = n_hours // 24

    solar = solar_position(
        times, location.latitude_deg, location.longitude_deg, location.timezone_hours
    )
    clearsky = haurwitz_ghi(solar.zenith_deg)

    day_index = (np.arange(n_hours) // 24).astype(np.int64)
    day_of_year = day_index + 1.0
    hour_of_day = np.mod(np.arange(n_hours), 24).astype(np.float64)

    clim = location.solar_climate
    kt_mean_daily = _seasonal_clearness(location, np.arange(1.0, n_days + 1.0))
    cloud_state = _daily_cloud_state(location, n_days, rng)
    kt_daily = kt_mean_daily + clim.variability * cloud_state
    kt_daily = np.clip(kt_daily, 0.05, 0.85)
    # Convert clearness index → clear-sky fraction (see CLEARSKY_KT note).
    csf_daily = np.clip(kt_daily / CLEARSKY_KT, 0.05, 1.0)

    # Intra-day modulation: slight afternoon attenuation on cloudy days
    # (convective build-up, stronger in humid Houston-like climates) plus
    # small hourly noise with short memory.
    afternoon = np.clip((hour_of_day - 12.0) / 6.0, 0.0, 1.0)
    cloudiness = np.clip(1.0 - csf_daily[day_index], 0.0, 1.0)
    intra_day = 1.0 - 0.15 * clim.variability * afternoon * cloudiness

    hourly_noise = rng.standard_normal(n_hours)
    # cheap AR smoothing of hourly noise (vectorized convolution)
    kernel = np.array([0.25, 0.5, 0.25])
    hourly_noise = np.convolve(hourly_noise, kernel, mode="same")
    csf_hourly = csf_daily[day_index] * intra_day * (1.0 + 0.08 * hourly_noise)
    csf_hourly = np.clip(csf_hourly, 0.03, 1.0)

    ghi = clearsky * csf_hourly
    # Coordinated multi-day dark-doldrum events (shared with the wind
    # generator; see repro.data.weather_events).
    if include_extreme_events:
        events = dunkelflaute_events(location, year_label, n_hours, event_severity)
        ghi = apply_events(ghi, events, "solar", n_hours)
    dni, dhi = erbs_decomposition(ghi, solar.zenith_deg, solar.extraterrestrial_w_m2)

    # Ambient temperature: seasonal + diurnal (lagging solar noon) + AR noise.
    seasonal_t = location.mean_temperature_c + location.temperature_seasonal_amplitude_c * np.cos(
        2.0 * np.pi * (day_of_year - 196.0) / 365.0
    )
    diurnal_t = location.temperature_diurnal_amplitude_c * np.cos(
        2.0 * np.pi * (hour_of_day - 15.0) / 24.0
    )
    t_noise = np.convolve(rng.standard_normal(n_hours), kernel, mode="same")
    temperature = seasonal_t + diurnal_t + 1.2 * t_noise

    # Surface wind proxy for SAPM cooling: modest mean, daytime bump.
    ws = 2.5 + 1.2 * np.cos(2.0 * np.pi * (hour_of_day - 15.0) / 24.0) + 0.4 * np.abs(
        np.convolve(rng.standard_normal(n_hours), kernel, mode="same")
    )
    ws = np.clip(ws, 0.2, None)

    return SolarResource(
        location=location,
        times_s=times,
        ghi_w_m2=ghi,
        dni_w_m2=dni,
        dhi_w_m2=dhi,
        ambient_temperature_c=temperature,
        wind_speed_ms=ws,
    )
