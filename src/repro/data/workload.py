"""Synthetic supercomputer power-trace generator (Perlmutter stand-in).

The paper drives its data center demand with real power traces from the
Perlmutter system at NERSC averaging **1.62 MW** over the study window.
Those traces are not public offline, so we synthesize a trace with the
features HPC facility telemetry exhibits (Zhang et al. 2024; Patel et al.
HPC power studies):

* a high **base load** (idle nodes, cooling, storage — HPC systems run hot:
  typical min/mean ratio ≈ 0.7);
* **job-driven fluctuations** — an Ornstein–Uhlenbeck (mean-reverting)
  process with a few-hour correlation time, reflecting the arrival and
  completion of large jobs;
* occasional **power steps** from very large campaigns (days-long elevated
  plateaus);
* rare **maintenance dips** toward base power;
* no meaningful diurnal cycle (batch queues keep utilization high around
  the clock) — which is exactly what makes the storage-sizing problem
  interesting: demand does *not* follow the sun.

The trace is rescaled to the paper's 1.62 MW mean by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import generator_for
from ..timeseries import TimeSeries, hourly_times_s
from ..units import PERLMUTTER_MEAN_POWER_W, SECONDS_PER_HOUR

HOURS_PER_YEAR = 8_760


@dataclass(frozen=True)
class WorkloadTrace:
    """A data-center power demand trace (W, hourly, left-labelled)."""

    name: str
    times_s: np.ndarray
    power_w: np.ndarray

    def __post_init__(self) -> None:
        if self.power_w.shape != self.times_s.shape:
            raise ConfigurationError("workload arrays misaligned")
        if np.any(self.power_w < 0):
            raise ConfigurationError("power demand must be non-negative")

    @property
    def step_s(self) -> float:
        return float(self.times_s[1] - self.times_s[0]) if self.times_s.size > 1 else SECONDS_PER_HOUR

    def mean_power_w(self) -> float:
        return float(self.power_w.mean())

    def peak_power_w(self) -> float:
        return float(self.power_w.max())

    def annual_energy_kwh(self) -> float:
        return float(self.power_w.sum() * self.step_s / SECONDS_PER_HOUR / 1_000.0)

    def as_timeseries(self) -> TimeSeries:
        return TimeSeries(self.power_w, self.step_s, float(self.times_s[0]), self.name)


def _ou_process(
    n: int, correlation_hours: float, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Stationary Ornstein–Uhlenbeck path sampled hourly."""
    theta = 1.0 / max(correlation_hours, 1e-6)
    rho = np.exp(-theta)
    x = np.empty(n)
    innovations = rng.standard_normal(n)
    x[0] = sigma * innovations[0]
    step_sigma = sigma * np.sqrt(1.0 - rho**2)
    for i in range(1, n):
        x[i] = rho * x[i - 1] + step_sigma * innovations[i]
    return x


def synthesize_datacenter_trace(
    mean_power_w: float = PERLMUTTER_MEAN_POWER_W,
    year_label: int = 2024,
    n_hours: int = HOURS_PER_YEAR,
    name: str = "perlmutter-like",
    base_fraction: float = 0.70,
    fluctuation_sigma: float = 0.10,
    job_correlation_hours: float = 6.0,
    n_campaigns: int = 10,
    n_maintenance: int = 4,
) -> WorkloadTrace:
    """Generate a deterministic Perlmutter-like power trace.

    Parameters
    ----------
    mean_power_w:
        Target mean demand; the paper's window averages 1.62 MW.
    base_fraction:
        Idle/base power as a fraction of the mean.
    fluctuation_sigma:
        Std-dev of the job-driven OU fluctuations, relative to the mean.
    n_campaigns / n_maintenance:
        Counts of multi-day elevated plateaus and maintenance dips.
    """
    if mean_power_w <= 0:
        raise ConfigurationError(f"mean power must be positive, got {mean_power_w}")
    if not 0.0 < base_fraction < 1.0:
        raise ConfigurationError(f"base fraction must be in (0, 1), got {base_fraction}")
    rng = generator_for("workload", name, year_label, round(mean_power_w))
    times = hourly_times_s(n_hours)

    base = base_fraction * mean_power_w
    headroom = mean_power_w - base

    # Job-mix fluctuation around the running level.
    ou = _ou_process(n_hours, job_correlation_hours, fluctuation_sigma * mean_power_w, rng)

    # Campaign plateaus: elevated utilization for 2–10 days.
    level = np.full(n_hours, headroom)
    for _ in range(n_campaigns):
        start = int(rng.integers(0, max(n_hours - 24, 1)))
        duration = int(rng.integers(48, 240))
        boost = float(rng.uniform(0.1, 0.35)) * mean_power_w
        level[start : start + duration] += boost

    power = base + level + ou

    # Maintenance dips: 6–24 h at near-base power.
    for _ in range(n_maintenance):
        start = int(rng.integers(0, max(n_hours - 24, 1)))
        duration = int(rng.integers(6, 24))
        power[start : start + duration] = base * float(rng.uniform(0.85, 1.0))

    power = np.clip(power, 0.3 * mean_power_w, 1.9 * mean_power_w)
    # Exact mean calibration (the paper's 1.62 MW is a hard anchor for the
    # baseline emissions rows of Tables 1–2).
    power *= mean_power_w / power.mean()

    return WorkloadTrace(name=name, times_s=times, power_w=power)


def constant_trace(
    power_w: float, n_hours: int = HOURS_PER_YEAR, name: str = "constant"
) -> WorkloadTrace:
    """A flat demand trace (useful for tests and analytic cross-checks)."""
    if power_w < 0:
        raise ConfigurationError("power must be non-negative")
    times = hourly_times_s(n_hours)
    return WorkloadTrace(name=name, times_s=times, power_w=np.full(n_hours, float(power_w)))
