"""Synthetic WIND-Toolkit-style wind resource generator.

The paper takes Berkeley/Houston wind speeds from the NREL WIND Toolkit;
this module synthesizes a replacement calibrated to each site's
:class:`~repro.data.locations.WindClimate`:

* the marginal speed distribution is **Weibull(k, λ)** with λ chosen so the
  long-term mean matches the climate's ``mean_speed_ms``;
* temporal structure comes from an **AR(1) Gaussian copula**: a latent
  standard-normal AR process with the climate's persistence time is mapped
  through Φ → Weibull-quantile, preserving both the marginal distribution
  and realistic autocorrelation (the standard synthetic-wind construction,
  e.g. Brokish & Kirtley 2009);
* deterministic **diurnal** (sea-breeze afternoon peak) and **seasonal**
  (windy spring) modulations are layered multiplicatively and the series
  rescaled so the annual mean stays calibrated.

Vectorized except the inherently sequential AR recursion, which runs once
per site per year (8 760 scalar steps — negligible against simulation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special, stats

from ..exceptions import ConfigurationError
from ..rng import generator_for
from ..timeseries import hourly_times_s
from ..units import SECONDS_PER_HOUR
from .locations import Location
from .weather_events import apply_events, dunkelflaute_events

HOURS_PER_YEAR = 8_760


@dataclass(frozen=True)
class WindResource:
    """One synthetic wind year at a site (hourly, at reference height)."""

    location: Location
    times_s: np.ndarray
    speed_ms: np.ndarray
    temperature_c: np.ndarray
    reference_height_m: float

    def __post_init__(self) -> None:
        n = self.times_s.size
        if self.speed_ms.shape != (n,) or self.temperature_c.shape != (n,):
            raise ConfigurationError("wind resource arrays misaligned")
        if np.any(self.speed_ms < 0):
            raise ConfigurationError("wind speeds must be non-negative")

    @property
    def step_s(self) -> float:
        return float(self.times_s[1] - self.times_s[0]) if self.times_s.size > 1 else SECONDS_PER_HOUR

    def mean_speed(self) -> float:
        return float(self.speed_ms.mean())


def weibull_scale_for_mean(mean_speed: float, k: float) -> float:
    """Weibull λ so that E[V] = λ·Γ(1 + 1/k) equals the target mean."""
    if mean_speed <= 0 or k <= 0:
        raise ConfigurationError("mean speed and shape must be positive")
    return mean_speed / special.gamma(1.0 + 1.0 / k)


def _ar1_latent(n: int, persistence_hours: float, rng: np.random.Generator) -> np.ndarray:
    """Standard-normal AR(1) with e-folding time ``persistence_hours``."""
    rho = float(np.exp(-1.0 / max(persistence_hours, 1e-6)))
    innovations = rng.standard_normal(n)
    z = np.empty(n)
    z[0] = innovations[0]
    scale = np.sqrt(1.0 - rho**2)
    for i in range(1, n):
        z[i] = rho * z[i - 1] + scale * innovations[i]
    return z


def synthesize_wind_resource(
    location: Location,
    year_label: int = 2024,
    n_hours: int = HOURS_PER_YEAR,
    include_extreme_events: bool = True,
    event_severity: float = 1.0,
) -> WindResource:
    """Generate one deterministic synthetic wind year for a site.

    ``include_extreme_events=False`` drops the coordinated dunkelflaute
    events (ablation use only).  ``event_severity`` scales their
    depth/length for harsher ensemble futures (DESIGN.md §6) without
    consuming extra RNG draws.
    """
    if n_hours <= 0:
        raise ConfigurationError(f"n_hours must be positive, got {n_hours}")
    clim = location.wind_climate
    rng = generator_for("wind", location.name, year_label)
    times = hourly_times_s(n_hours)
    hour_of_day = np.mod(np.arange(n_hours), 24).astype(np.float64)
    day_of_year = (np.arange(n_hours) // 24 + 1).astype(np.float64)

    # Gaussian copula: latent AR(1) → uniform → Weibull quantile.
    z = _ar1_latent(n_hours, clim.persistence_hours, rng)
    u = stats.norm.cdf(z)
    u = np.clip(u, 1e-6, 1.0 - 1e-6)
    lam = weibull_scale_for_mean(clim.mean_speed_ms, clim.weibull_k)
    base_speed = lam * (-np.log1p(-u)) ** (1.0 / clim.weibull_k)

    # Diurnal modulation peaking at the site's characteristic hour
    # (afternoon sea breeze vs nocturnal plains jet); seasonal: spring
    # (≈ day 105) peak.
    diurnal = 1.0 + clim.diurnal_amplitude * np.cos(
        2.0 * np.pi * (hour_of_day - clim.diurnal_peak_hour) / 24.0
    )
    seasonal = 1.0 + clim.seasonal_amplitude * np.cos(2.0 * np.pi * (day_of_year - 105.0) / 365.0)
    speed = base_speed * diurnal * seasonal

    # Rescale so the realized annual mean matches the climatology exactly —
    # keeps capacity factors stable across seed choices.
    speed *= clim.mean_speed_ms / speed.mean()
    speed = np.clip(speed, 0.0, None)

    # Coordinated multi-day dark-doldrum events (shared with the solar
    # generator; see repro.data.weather_events).  Applied after the mean
    # calibration on purpose: a dunkelflaute removes energy from the year
    # the way a real stagnant system does, rather than being smoothed away
    # by renormalization.
    if include_extreme_events:
        events = dunkelflaute_events(location, year_label, n_hours, event_severity)
        speed = apply_events(speed, events, "wind", n_hours)

    # Hub-layer temperature (used for air density): reuse the seasonal
    # surface climatology with damped diurnal swing.
    seasonal_t = location.mean_temperature_c + location.temperature_seasonal_amplitude_c * np.cos(
        2.0 * np.pi * (day_of_year - 196.0) / 365.0
    )
    diurnal_t = 0.5 * location.temperature_diurnal_amplitude_c * np.cos(
        2.0 * np.pi * (hour_of_day - 15.0) / 24.0
    )
    temperature = seasonal_t + diurnal_t

    return WindResource(
        location=location,
        times_s=times,
        speed_ms=speed,
        temperature_c=temperature,
        reference_height_m=clim.reference_height_m,
    )
