"""Dataset persistence: save/load synthetic resource years as ``.npz``.

Scenario construction is fast (~1 s) but downstream users often want the
exact arrays on disk — to inspect them, to feed external tools, or to
pin a weather year independent of library versions.  The format is a
plain NumPy archive with a small JSON-ish metadata header, mirroring the
role of the paper's NSRDB/WIND-Toolkit CSV downloads.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..exceptions import DataError
from .carbon_intensity import CarbonIntensityProfile
from .locations import get_location
from .solar_resource import SolarResource
from .wind_resource import WindResource
from .workload import WorkloadTrace

_FORMAT_VERSION = 1


def save_solar_resource(resource: SolarResource, path: "str | Path") -> Path:
    """Persist a solar resource year to ``.npz``."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        p,
        kind="solar",
        version=_FORMAT_VERSION,
        location=resource.location.name,
        times_s=resource.times_s,
        ghi_w_m2=resource.ghi_w_m2,
        dni_w_m2=resource.dni_w_m2,
        dhi_w_m2=resource.dhi_w_m2,
        ambient_temperature_c=resource.ambient_temperature_c,
        wind_speed_ms=resource.wind_speed_ms,
    )
    return p


def load_solar_resource(path: "str | Path") -> SolarResource:
    """Load a solar resource year saved by :func:`save_solar_resource`."""
    data = _load(path, expected_kind="solar")
    return SolarResource(
        location=get_location(str(data["location"])),
        times_s=data["times_s"],
        ghi_w_m2=data["ghi_w_m2"],
        dni_w_m2=data["dni_w_m2"],
        dhi_w_m2=data["dhi_w_m2"],
        ambient_temperature_c=data["ambient_temperature_c"],
        wind_speed_ms=data["wind_speed_ms"],
    )


def save_wind_resource(resource: WindResource, path: "str | Path") -> Path:
    """Persist a wind resource year to ``.npz``."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        p,
        kind="wind",
        version=_FORMAT_VERSION,
        location=resource.location.name,
        times_s=resource.times_s,
        speed_ms=resource.speed_ms,
        temperature_c=resource.temperature_c,
        reference_height_m=resource.reference_height_m,
    )
    return p


def load_wind_resource(path: "str | Path") -> WindResource:
    """Load a wind resource year saved by :func:`save_wind_resource`."""
    data = _load(path, expected_kind="wind")
    return WindResource(
        location=get_location(str(data["location"])),
        times_s=data["times_s"],
        speed_ms=data["speed_ms"],
        temperature_c=data["temperature_c"],
        reference_height_m=float(data["reference_height_m"]),
    )


def save_workload(trace: WorkloadTrace, path: "str | Path") -> Path:
    """Persist a workload trace to ``.npz``."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        p, kind="workload", version=_FORMAT_VERSION, name=trace.name,
        times_s=trace.times_s, power_w=trace.power_w,
    )
    return p


def load_workload(path: "str | Path") -> WorkloadTrace:
    data = _load(path, expected_kind="workload")
    return WorkloadTrace(name=str(data["name"]), times_s=data["times_s"],
                         power_w=data["power_w"])


def save_carbon_profile(profile: CarbonIntensityProfile, path: "str | Path") -> Path:
    """Persist a carbon-intensity profile to ``.npz``."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        p, kind="carbon", version=_FORMAT_VERSION, region=profile.region,
        times_s=profile.times_s, intensity_g_per_kwh=profile.intensity_g_per_kwh,
    )
    return p


def load_carbon_profile(path: "str | Path") -> CarbonIntensityProfile:
    data = _load(path, expected_kind="carbon")
    return CarbonIntensityProfile(
        region=str(data["region"]), times_s=data["times_s"],
        intensity_g_per_kwh=data["intensity_g_per_kwh"],
    )


def _load(path: "str | Path", expected_kind: str) -> dict:
    p = Path(path)
    if not p.exists():
        raise DataError(f"dataset file not found: {p}")
    with np.load(p, allow_pickle=False) as archive:
        data = {key: archive[key] for key in archive.files}
    kind = str(data.get("kind"))
    if kind != expected_kind:
        raise DataError(f"{p} holds a '{kind}' dataset, expected '{expected_kind}'")
    version = int(data.get("version", -1))
    if version != _FORMAT_VERSION:
        raise DataError(f"{p} has format version {version}, expected {_FORMAT_VERSION}")
    return data
