"""Embodied-carbon accounting (GHG Protocol Scope 3, §3.3).

Per the GHG Protocol guidance the paper quotes, capital-good emissions
are booked **in full at acquisition** — no amortization.  The footprints
are the paper's exact constants:

* solar: 630 kgCO₂/kW ("low carbon" modules, Global Electronics Council),
* wind: 1 046 tCO₂ per 3 MW turbine (Smoucha et al. 2016),
* battery: 62 kgCO₂/kWh LFP (Peiseler et al. 2024) → 465 tCO₂ per
  7.5 MWh unit.

These reproduce the tables' embodied column exactly, e.g. Houston's
(12 MW wind, 12 MW solar, 52.5 MWh) → 4·1 046 + 3·2 520 + 7·465 =
14 999 tCO₂.
"""

from __future__ import annotations

from ..units import (
    BATTERY_EMBODIED_KG_PER_KWH,
    BATTERY_UNIT_KWH,
    KG_PER_TONNE,
    SOLAR_EMBODIED_KG_PER_KW,
    WIND_EMBODIED_KG_PER_TURBINE,
)
from .composition import MicrogridComposition


def solar_embodied_kg(solar_kw: float) -> float:
    """Embodied footprint of the solar farm (kgCO2)."""
    return solar_kw * SOLAR_EMBODIED_KG_PER_KW


def wind_embodied_kg(n_turbines: int) -> float:
    """Embodied footprint of the wind farm (kgCO2)."""
    return n_turbines * WIND_EMBODIED_KG_PER_TURBINE


def battery_embodied_kg(battery_units: int) -> float:
    """Embodied footprint of the battery system (kgCO2)."""
    return battery_units * BATTERY_UNIT_KWH * BATTERY_EMBODIED_KG_PER_KWH


def embodied_carbon_kg(comp: MicrogridComposition) -> float:
    """Total embodied footprint of a composition (kgCO2)."""
    return (
        solar_embodied_kg(comp.solar_kw)
        + wind_embodied_kg(comp.n_turbines)
        + battery_embodied_kg(comp.battery_units)
    )


def embodied_carbon_tonnes(comp: MicrogridComposition) -> float:
    """Total embodied footprint (tCO2) — the tables' 'Embodied' column."""
    return embodied_carbon_kg(comp) / KG_PER_TONNE


def embodied_breakdown_tonnes(comp: MicrogridComposition) -> dict[str, float]:
    """Per-technology embodied footprint (tCO2)."""
    return {
        "solar": solar_embodied_kg(comp.solar_kw) / KG_PER_TONNE,
        "wind": wind_embodied_kg(comp.n_turbines) / KG_PER_TONNE,
        "battery": battery_embodied_kg(comp.battery_units) / KG_PER_TONNE,
    }
