"""Declarative study identity: one spec, one validator, every driver.

A persisted study's **search identity** is the set of keys that decide
which Pareto front a fixed seed produces: the scenario keys (sites,
year, horizon, load), the objective keys (dispatch policy, robust
aggregate), the sampler keys (trials, population, seed), and the
optional driver specs (ensemble, racing rung schedule, fidelity
ladder, pipeline speculation depth, batch size).  Resuming a study
with *any* of them guessed instead of replayed silently produces a
different front than the original run — the single most dangerous
failure mode in the repo.

Before this module that identity was assembled, persisted, and
resume-checked in three divergent copies (the CLI's metadata plumbing,
``OptimizationRunner``'s setdefault-plus-check blocks, and the
pipelined dispatcher's ``_validate_metadata``).  Now it lives in one
frozen dataclass:

* :class:`StudySpec` — the full identity as data, with a
  ``to_metadata()`` / ``from_metadata()`` round-trip onto the storage
  contract's study-metadata dict (DESIGN.md §7) and an
  :meth:`StudySpec.execute` that builds the scenario list, runner, and
  sampler and dispatches to the batched or pipelined driver;
* :func:`check_resume_identity` — THE resume validator.  Every driver
  (``OptimizationRunner._run_blackbox_study``,
  ``ParallelStudyRunner.optimize``, ``PipelinedDispatcher``) routes its
  persisted-vs-requested comparison through this one function, so the
  mismatch semantics (and error text) cannot drift between drivers.

The CLI's ``study run`` / ``study resume`` and the service layer
(:mod:`repro.service`) are thin builders over this spec — the HTTP API
submits a ``StudySpec``, the worker loop rebuilds one from persisted
metadata, and both are guaranteed to agree with the CLI because they
share this code, not a copy of it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..exceptions import OptimizationError
from ..units import PERLMUTTER_MEAN_POWER_W
from .dispatch import POLICY_NAMES
from .fidelity import FidelityLadder
from .kernel import ENGINES
from .metrics import parse_aggregate
from .racing import RungSchedule

#: metadata keys that define the search objective and sampler identity —
#: resuming with a *guessed* value for any of them silently produces a
#: different Pareto front than the original run, the exact failure mode
#: the persisted-metadata contract exists to prevent
RESUME_REQUIRED_KEYS = (
    "site", "year", "n_hours", "mean_power_mw",  # scenario identity
    "policy", "aggregate",                       # objective identity
    "population", "seed", "n_trials",            # sampler identity
)

#: optional identity keys: absent means "feature off", but present keys
#: must match exactly on resume (``batch`` is lenient when either side
#: has not pinned a value yet — a direct runner call learns its batch
#: size from the sampler, which the metadata round-trip preserves)
RESUME_OPTIONAL_KEYS = ("batch", "ensemble", "racing", "fidelity", "pipeline")

#: why each identity key is unchangeable mid-study — surfaced verbatim
#: in every mismatch error, whichever driver raises it
_IDENTITY_REASONS = {
    "batch": "generation boundaries cannot be aligned across batch sizes",
    "racing": (
        "the rung schedule decides which trials are pruned, so resume "
        "must race the identical schedule"
    ),
    "fidelity": (
        "the fidelity ladder decides which physics scored every trial, "
        "so resume must use the identical ladder"
    ),
    "pipeline": (
        "the speculation depth decides every trial's parent epoch, so "
        "resume must pipeline identically"
    ),
    "ensemble": (
        "the ensemble spec decides the member list every aggregate "
        "reduced, so resume must rebuild the identical ensemble"
    ),
}

#: per-key normalizers so ``5`` and ``"5"`` (a JSON round-trip) compare
#: equal without ever letting a real mismatch through
_INT_KEYS = frozenset(
    {"batch", "year", "n_hours", "population", "seed", "n_trials", "shards"}
)
_FLOAT_KEYS = frozenset({"mean_power_mw"})


def _normalize(key: str, value: Any) -> Any:
    if value is None:
        return None
    if key in _INT_KEYS:
        return int(value)
    if key in _FLOAT_KEYS:
        return float(value)
    if key == "sites":
        if isinstance(value, str):
            value = value.split(",")
        return ",".join(str(s).strip().lower() for s in value)
    return str(value)


def check_resume_identity(
    study_name: str,
    persisted: Mapping[str, Any],
    requested: Mapping[str, Any],
    *,
    lenient: Sequence[str] = ("batch",),
) -> None:
    """The one resume validator every driver shares (DESIGN.md §12).

    Compares the ``requested`` identity keys against the ``persisted``
    study metadata and raises :class:`OptimizationError` on the first
    mismatch, naming the key, both values, and why that key cannot
    change mid-study.  Keys listed in ``lenient`` are skipped when
    either side is ``None`` (unpinned), mirroring the historical batch
    semantics; all other keys treat ``None`` as "feature off", which
    must also match.

    Key order in ``requested`` is the check order, so callers control
    which mismatch a multi-way divergence reports first.
    """
    for key, req in requested.items():
        per = persisted.get(key)
        if key in lenient and (per is None or req is None):
            continue
        per_n, req_n = _normalize(key, per), _normalize(key, req)
        if per_n != req_n:
            label = "batch/population" if key == "batch" else key
            reason = _IDENTITY_REASONS.get(
                key, "resume must replay the identical value"
            )
            raise OptimizationError(
                f"study '{study_name}' was persisted with {label}="
                f"{per_n if per_n is not None else '<none>'}, resumed with "
                f"{req_n if req_n is not None else '<none>'}; {reason}"
            )


def _missing_metadata_error(missing: Sequence[str], source: str) -> OptimizationError:
    return OptimizationError(
        f"cannot resume from {source}: study metadata is missing "
        f"{', '.join(repr(k) for k in missing)}. Resuming with defaults "
        "would silently produce a different Pareto front than the "
        "original run.  The study predates the persisted-search-"
        "parameter contract (or was written by a custom driver); "
        "re-run it with current code to resume safely."
    )


@dataclass(frozen=True)
class StudySpec:
    """The full search identity of one persisted study, as data.

    Construction normalizes every spec string through its round-trip
    grammar (``RungSchedule`` / ``FidelityLadder`` / ``EnsembleSpec`` /
    pipeline spec), so two specs describing the same search compare
    equal regardless of how they were written, and ``to_metadata()``
    always persists canonical forms.
    """

    sites: tuple[str, ...] = ("houston",)
    year: int = 2024
    n_hours: int = 8_760
    mean_power_mw: float = PERLMUTTER_MEAN_POWER_W / 1e6
    policy: str = "default"
    aggregate: str = "worst"
    n_trials: int = 350
    population: int = 50
    seed: int = 42
    batch: "int | None" = None
    ensemble: "str | None" = None
    racing: "str | None" = None
    fidelity: "str | None" = None
    pipeline: "str | None" = None
    engine: str = "auto"
    shards: "int | None" = None
    #: transport knobs (non-identity, like ``engine``): how many remote
    #: worker slots the coordinator keeps in flight, and the lease TTL
    #: its work items carry.  Neither changes which candidates are bred
    #: — the epoch schedule is a pure function of the trial number — so
    #: both may differ freely between a run and its resume.
    remote_slots: "int | None" = None
    lease_ttl: "float | None" = None

    def __post_init__(self) -> None:
        sites = self.sites
        if isinstance(sites, str):
            sites = sites.split(",")
        sites = tuple(str(s).strip().lower() for s in sites if str(s).strip())
        if not sites:
            raise OptimizationError("a StudySpec needs at least one site")
        object.__setattr__(self, "sites", sites)
        for key in ("year", "n_hours", "n_trials", "population", "seed"):
            object.__setattr__(self, key, int(getattr(self, key)))
        object.__setattr__(self, "mean_power_mw", float(self.mean_power_mw))
        for key in ("batch", "shards"):
            value = getattr(self, key)
            if value is not None:
                object.__setattr__(self, key, int(value))
        if self.n_trials <= 0:
            raise OptimizationError("n_trials must be positive")
        if self.population <= 0:
            raise OptimizationError("population must be positive")
        if self.policy not in POLICY_NAMES:
            raise OptimizationError(
                f"unknown policy {self.policy!r}; expected one of {POLICY_NAMES}"
            )
        if self.engine not in ENGINES:
            raise OptimizationError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        parse_aggregate(self.aggregate)  # fail fast on a bad grammar
        if self.racing is not None:
            object.__setattr__(
                self, "racing", RungSchedule.parse(self.racing).spec_string()
            )
        if self.fidelity is not None:
            object.__setattr__(
                self, "fidelity", FidelityLadder.parse(self.fidelity).spec_string()
            )
        if self.ensemble is not None:
            from .ensemble import EnsembleSpec

            spec = EnsembleSpec.parse(
                str(self.ensemble),
                sites=list(self.sites),
                n_hours=self.n_hours,
                mean_power_w=self.mean_power_mw * 1e6,
            )
            object.__setattr__(self, "ensemble", spec.spec_string())
        if self.remote_slots is not None:
            object.__setattr__(self, "remote_slots", int(self.remote_slots))
            if self.remote_slots < 1:
                raise OptimizationError("remote_slots must be >= 1")
            if self.pipeline is None:
                # Remote dispatch rides the pipelined driver (it needs
                # slot-granular futures); speculate=0 keeps the front
                # bit-identical to the batched runner.
                object.__setattr__(self, "pipeline", "speculate=0")
        if self.lease_ttl is not None:
            object.__setattr__(self, "lease_ttl", float(self.lease_ttl))
            if self.lease_ttl <= 0:
                raise OptimizationError("lease_ttl must be positive")
        if self.pipeline is not None:
            from ..blackbox.parallel import (
                parse_pipeline_spec,
                pipeline_spec_string,
            )

            object.__setattr__(
                self,
                "pipeline",
                pipeline_spec_string(parse_pipeline_spec(str(self.pipeline))),
            )

    # -- round-trip onto the storage contract's metadata dict ----------------

    def to_metadata(self) -> dict[str, Any]:
        """The study-metadata dict this spec persists (DESIGN.md §7).

        Key-compatible with what ``cmd_study_run`` historically wrote, so
        every pre-spec study round-trips through :meth:`from_metadata`.
        """
        metadata: dict[str, Any] = {
            "site": self.sites[0],
            "sites": list(self.sites),
            "policy": self.policy,
            "aggregate": self.aggregate,
            "year": self.year,
            "n_hours": self.n_hours,
            "mean_power_mw": self.mean_power_mw,
            "n_trials": self.n_trials,
            "population": self.population,
            "seed": self.seed,
        }
        if self.shards is not None and self.shards > 1:
            metadata["shards"] = self.shards
        if self.batch is not None:
            metadata["batch"] = self.batch
        for key in ("ensemble", "racing", "fidelity", "pipeline"):
            value = getattr(self, key)
            if value is not None:
                metadata[key] = value
        if self.engine != "auto":
            # Informational only: every engine is bit-for-bit identical,
            # so resume is free to pick a different one (unlike racing).
            metadata["engine"] = self.engine
        if self.remote_slots is not None or self.lease_ttl is not None:
            # Transport envelope — informational like ``engine``: slots
            # and TTLs shape scheduling, never the bred candidates, so
            # they are excluded from every resume-identity check.
            transport: dict[str, Any] = {}
            if self.remote_slots is not None:
                transport["slots"] = self.remote_slots
            if self.lease_ttl is not None:
                transport["lease_ttl_s"] = self.lease_ttl
            metadata["transport"] = transport
        return metadata

    @classmethod
    def from_metadata(
        cls,
        metadata: Mapping[str, Any],
        *,
        source: str = "study metadata",
        trials_override: "int | None" = None,
    ) -> "StudySpec":
        """Rebuild the identity a persisted study was run with.

        Fails loudly — naming every missing key — instead of defaulting:
        a guessed value silently produces a different front.  ``source``
        names the store in the error; ``trials_override`` waives the
        ``n_trials`` requirement (and takes its place), matching the
        CLI's ``study resume --trials``.
        """
        required = [
            k
            for k in RESUME_REQUIRED_KEYS
            if not (k == "n_trials" and trials_override is not None)
        ]
        missing = [k for k in required if metadata.get(k) is None]
        if missing:
            raise _missing_metadata_error(missing, source)
        sites = metadata.get("sites") or [metadata["site"]]
        n_trials = (
            trials_override
            if trials_override is not None
            else metadata["n_trials"]
        )
        return cls(
            sites=tuple(str(s) for s in sites),
            year=metadata["year"],
            n_hours=metadata["n_hours"],
            mean_power_mw=metadata["mean_power_mw"],
            policy=str(metadata["policy"]),
            aggregate=str(metadata["aggregate"]),
            n_trials=n_trials,
            population=metadata["population"],
            seed=metadata["seed"],
            batch=metadata.get("batch"),
            ensemble=metadata.get("ensemble"),
            racing=metadata.get("racing"),
            fidelity=metadata.get("fidelity"),
            pipeline=metadata.get("pipeline"),
            engine=str(metadata.get("engine") or "auto"),
            shards=metadata.get("shards"),
            remote_slots=(metadata.get("transport") or {}).get("slots"),
            lease_ttl=(metadata.get("transport") or {}).get("lease_ttl_s"),
        )

    def validate_resume(
        self, persisted: Mapping[str, Any], study_name: "str | None" = None
    ) -> None:
        """Check this spec against a persisted study's metadata.

        Subsumes the historical per-driver validators: every identity
        key — scenario, objective, sampler, and driver specs — is
        compared through :func:`check_resume_identity` in one pass.
        """
        requested: dict[str, Any] = {
            "sites": ",".join(self.sites),
            "year": self.year,
            "n_hours": self.n_hours,
            "mean_power_mw": self.mean_power_mw,
            "policy": self.policy,
            "aggregate": self.aggregate,
            "population": self.population,
            "seed": self.seed,
            "ensemble": self.ensemble,
            "racing": self.racing,
            "fidelity": self.fidelity,
            "pipeline": self.pipeline,
            "batch": self.batch,
        }
        check_resume_identity(
            study_name or self.default_name,
            persisted,
            requested,
            lenient=("batch", "sites"),
        )

    # -- derived views --------------------------------------------------------

    @property
    def default_name(self) -> str:
        """The CLI's historical default study name for this spec."""
        suffix = "-ensemble-blackbox" if self.ensemble else "-blackbox"
        return "-".join(self.sites) + suffix

    @property
    def speculate(self) -> "int | None":
        """Pipeline speculation depth, or ``None`` for the batched driver."""
        if self.pipeline is None:
            return None
        from ..blackbox.parallel import parse_pipeline_spec

        return parse_pipeline_spec(self.pipeline)

    # -- execution -------------------------------------------------------------

    def build_scenarios(self, launcher=None):
        """The scenario list this identity evaluates candidates against."""
        from .scenario import build_scenario

        if self.ensemble is None:
            return [
                build_scenario(
                    site,
                    year_label=self.year,
                    n_hours=self.n_hours,
                    mean_power_w=self.mean_power_mw * 1e6,
                )
                for site in self.sites
            ]
        from .ensemble import EnsembleSpec, build_ensemble

        spec = EnsembleSpec.parse(
            self.ensemble,
            sites=list(self.sites),
            n_hours=self.n_hours,
            mean_power_w=self.mean_power_mw * 1e6,
        )
        return build_ensemble(spec, launcher=launcher)

    def build_runner(self, launcher=None):
        """The scenario stack + runner this identity evaluates through."""
        from .dispatch import make_policy
        from .study_runner import OptimizationRunner

        scenarios = self.build_scenarios(launcher)
        return OptimizationRunner(
            scenarios,
            launcher=launcher,
            policy=make_policy(self.policy, scenarios),
            aggregate=self.aggregate,
            engine=self.engine,
            fidelity=self.fidelity,
        )

    def build_objective(self):
        """The exact params → objectives callable this identity scores with.

        Remote workers rebuild it from the coordinator's persisted
        metadata (``GET /studies/{name}/spec`` →
        :meth:`from_metadata` → this), so a leased candidate evaluates
        through the *same* scenario stack, policy, aggregate, and
        physics as a local run — the reason a remote front is
        bit-identical (DESIGN.md §13).
        """
        from .study_runner import CompositionObjective

        runner = self.build_runner()
        return CompositionObjective(
            runner.scenarios,
            space=runner.space,
            objectives=runner.objectives,
            policy=runner.policy,
            aggregate=runner.aggregate,
            engine=runner.engine,
        )

    def execute(
        self,
        storage,
        study_name: "str | None" = None,
        *,
        workers: int = 1,
        load_if_exists: bool = False,
        launcher=None,
        executor=None,
    ):
        """Run (or resume) this study and return the ``SearchResult``.

        The one driver dispatch shared by the CLI and the service
        worker loop: builds the launcher/scenarios/runner/sampler from
        the spec and picks the pipelined or batched driver by whether
        ``pipeline`` is set.  ``storage`` is a resolved backend or any
        URL spec the registry accepts.

        ``executor`` is the remote seam: pass an executor *object* (a
        :class:`~repro.service.lease.LeasedWorkQueue`) and the
        pipelined driver streams candidates to it — up to
        ``remote_slots`` in flight — instead of a local pool.
        """
        from ..blackbox.samplers.nsga2 import NSGA2Sampler

        if executor is None and launcher is None and workers and workers > 1:
            from ..confsys import MultiprocessingLauncher

            launcher = MultiprocessingLauncher(n_workers=workers)
        runner = self.build_runner(launcher)
        sampler = NSGA2Sampler(population_size=self.population, seed=self.seed)
        name = study_name or self.default_name
        metadata = self.to_metadata()
        if executor is not None:
            return runner.run_pipelined(
                n_trials=self.n_trials,
                sampler=sampler,
                storage=storage,
                study_name=name,
                load_if_exists=load_if_exists,
                metadata=metadata,
                racing=self.racing,
                workers=self.remote_slots or max(workers, 1),
                executor=executor,
                speculate=self.speculate or 0,
            )
        if self.pipeline is not None:
            return runner.run_pipelined(
                n_trials=self.n_trials,
                sampler=sampler,
                storage=storage,
                study_name=name,
                load_if_exists=load_if_exists,
                metadata=metadata,
                racing=self.racing,
                workers=workers,
                executor="process" if workers > 1 else "thread",
                speculate=self.speculate or 0,
            )
        return runner.run_blackbox(
            n_trials=self.n_trials,
            sampler=sampler,
            storage=storage,
            study_name=name,
            load_if_exists=load_if_exists,
            metadata=metadata,
            racing=self.racing,
        )

    def replaced(self, **changes: Any) -> "StudySpec":
        """A copy with ``changes`` applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)
