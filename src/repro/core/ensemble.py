"""Scenario ensembles: weather × growth × carbon × tariff × severity.

The paper sizes each microgrid against a single resource year; real
sizing must survive every future the planner can imagine.  This module
(DESIGN.md §6) composes the axes the repo already models — but never
crossed — into one first-class object:

* **years** — weather-year labels, each an independent realization of
  the site climatology (with its own dunkelflaute events);
* **growth** — workload-growth factors scaling the data-center mean
  power (the 1.62 MW Perlmutter anchor times 1.0, 1.15, 1.3, …);
* **carbon** — named grid-decarbonization trajectories
  (:data:`repro.data.carbon_intensity.CARBON_TRAJECTORIES`);
* **tariff** — rate-structure variants
  (:data:`repro.data.tariffs.TARIFF_VARIANTS`);
* **severity** — dunkelflaute severity multipliers (deeper/longer
  coordinated droughts);
* **sites** — and the original site axis, so multi-site robustness is
  just another factor of the cross product.

An :class:`EnsembleSpec` crosses them into a named, seeded member list;
:func:`build_ensemble` materializes the members as
:class:`~repro.core.scenario.Scenario` objects — computing the
expensive per-unit profiles for *unique* (site, year, severity) keys
only, optionally in parallel through a ``confsys`` launcher, and
sharing them across all members via the scenario layer's unit-profile
cache.  The members then flow as one stacked S × N tensor through
:func:`repro.core.fastsim.evaluate_across_scenarios`, and the risk
reducers of :mod:`repro.core.metrics` (``worst`` / ``mean`` /
``cvar:alpha`` / ``quantile:q``) turn the per-member outcomes into the
robust objectives NSGA-II optimizes.

Seeding (DESIGN.md §6): every random draw keeps its pre-ensemble
``seed_for`` namespace — weather streams key on ``(channel, site,
year)``, the workload on its mean power — and the new axes (severity,
carbon trajectory, tariff variant) are deterministic *transforms*
applied downstream of the draws.  Adding an axis therefore never
perturbs existing members: a ``years=2020-2024`` ensemble's members are
bit-identical whether or not a growth or severity axis is later crossed
in.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Sequence

import numpy as np

from ..data.carbon_intensity import carbon_trajectory_multiplier
from ..data.locations import get_location
from ..data.tariffs import TARIFF_VARIANTS
from ..exceptions import ConfigurationError
from ..rng import seed_for
from ..units import PERLMUTTER_MEAN_POWER_W
from .composition import MicrogridComposition
from .dispatch import VectorizedPolicy
from .fastsim import evaluate_across_scenarios
from .metrics import RobustEvaluatedComposition, parse_aggregate, robust_evaluations
from .scenario import (
    Scenario,
    UnitProfiles,
    build_scenario,
    has_unit_profiles,
    prime_unit_profile_cache,
    unit_profiles,
)

__all__ = [
    "EnsembleMember",
    "EnsembleSpec",
    "build_ensemble",
    "evaluate_ensemble",
    "member_permutation",
    "member_subset",
]

#: Axis names in canonical order — also the member-name suffix order.
AXES = ("sites", "years", "growth", "carbon", "tariff", "severity")


@dataclass(frozen=True)
class EnsembleMember:
    """One fully specified future: a point in the axis cross product."""

    site: str
    year_label: int
    growth: float
    carbon_trajectory: str
    tariff_variant: str
    event_severity: float

    def name(self) -> str:
        """Compact unique member name, e.g. ``houston-2021+g1.15+x1.5``.

        Default axis values are omitted so single-axis ensembles keep
        the familiar ``site-year`` naming.
        """
        parts = [f"{self.site}-{self.year_label}"]
        if self.growth != 1.0:
            parts.append(f"+g{self.growth:g}")
        if self.carbon_trajectory != "baseline":
            parts.append(f"+c{self.carbon_trajectory}")
        if self.tariff_variant != "default":
            parts.append(f"+t{self.tariff_variant}")
        if self.event_severity != 1.0:
            parts.append(f"+x{self.event_severity:g}")
        return "".join(parts)


def _parse_years(raw: str) -> tuple[int, ...]:
    """``2020-2024`` (inclusive range) or ``2020:2022:2024`` (list)."""
    raw = raw.strip()
    if "-" in raw:
        lo_s, _, hi_s = raw.partition("-")
        try:
            lo, hi = int(lo_s), int(hi_s)
        except ValueError:
            raise ConfigurationError(f"malformed year range '{raw}'") from None
        if hi < lo:
            raise ConfigurationError(f"empty year range '{raw}'")
        return tuple(range(lo, hi + 1))
    try:
        return tuple(int(v) for v in raw.split(":") if v.strip())
    except ValueError:
        raise ConfigurationError(f"malformed years '{raw}'") from None


def _parse_floats(raw: str, axis: str) -> tuple[float, ...]:
    try:
        return tuple(float(v) for v in raw.split(":") if v.strip())
    except ValueError:
        raise ConfigurationError(f"malformed {axis} values '{raw}'") from None


@dataclass(frozen=True)
class EnsembleSpec:
    """A cross product of scenario axes (DESIGN.md §6).

    The member list is ``itertools.product`` over the axes in
    :data:`AXES` order — deterministic, so journal metadata
    (:meth:`spec_string`) round-trips to the identical member ordering
    on resume.
    """

    sites: tuple[str, ...] = ("houston",)
    years: tuple[int, ...] = (2024,)
    growth: tuple[float, ...] = (1.0,)
    carbon: tuple[str, ...] = ("baseline",)
    tariff: tuple[str, ...] = ("default",)
    severity: tuple[float, ...] = (1.0,)
    n_hours: int = 8_760
    mean_power_w: float = PERLMUTTER_MEAN_POWER_W

    def __post_init__(self) -> None:
        for axis in AXES:
            values = getattr(self, axis)
            if not values:
                raise ConfigurationError(f"ensemble axis '{axis}' is empty")
            if len(set(values)) != len(values):
                raise ConfigurationError(f"ensemble axis '{axis}' has duplicates: {values}")
        for site in self.sites:
            get_location(site)  # raises ConfigurationError for unknown sites
        for trajectory in self.carbon:
            carbon_trajectory_multiplier(trajectory)
        for variant in self.tariff:
            if variant not in TARIFF_VARIANTS:
                known = ", ".join(TARIFF_VARIANTS)
                raise ConfigurationError(
                    f"unknown tariff variant '{variant}' (known: {known})"
                )
        for g in self.growth:
            if g <= 0.0:
                raise ConfigurationError(f"growth factors must be positive, got {g}")
        for s in self.severity:
            if s <= 0.0:
                raise ConfigurationError(f"severity factors must be positive, got {s}")
        if self.n_hours <= 0:
            raise ConfigurationError(f"n_hours must be positive, got {self.n_hours}")
        if self.mean_power_w <= 0:
            raise ConfigurationError("mean power must be positive")

    def __len__(self) -> int:
        n = 1
        for axis in AXES:
            n *= len(getattr(self, axis))
        return n

    def members(self) -> list[EnsembleMember]:
        """The crossed member list, in canonical axis order."""
        return [
            EnsembleMember(
                site=site,
                year_label=year,
                growth=growth,
                carbon_trajectory=carbon,
                tariff_variant=tariff,
                event_severity=severity,
            )
            for site, year, growth, carbon, tariff, severity in product(
                self.sites, self.years, self.growth, self.carbon,
                self.tariff, self.severity,
            )
        ]

    @classmethod
    def parse(
        cls,
        text: str,
        sites: Sequence[str] = ("houston",),
        n_hours: int = 8_760,
        mean_power_w: float = PERLMUTTER_MEAN_POWER_W,
    ) -> "EnsembleSpec":
        """Parse the CLI grammar, e.g. ``years=2020-2029,growth=1.0:1.3``.

        Comma-separated ``axis=values`` pairs; values are ``:``-separated
        lists, and ``years`` additionally accepts an inclusive ``A-B``
        range.  An explicit ``sites=a:b`` axis overrides the ``sites``
        default (which usually comes from ``--site``/``--sites``).
        Unknown axes and malformed values raise
        :class:`~repro.exceptions.ConfigurationError`.
        """
        fields: dict[str, Any] = {
            "sites": tuple(s.strip().lower() for s in sites),
            "n_hours": n_hours,
            "mean_power_w": mean_power_w,
        }
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            axis, sep, raw = chunk.partition("=")
            axis = axis.strip()
            if not sep or not raw.strip():
                raise ConfigurationError(f"malformed ensemble axis '{chunk}'")
            if axis == "years":
                fields["years"] = _parse_years(raw)
            elif axis in ("growth", "severity"):
                fields[axis] = _parse_floats(raw, axis)
            elif axis in ("carbon", "tariff", "sites"):
                fields[axis] = tuple(
                    v.strip().lower() for v in raw.split(":") if v.strip()
                )
            else:
                known = ", ".join(AXES)
                raise ConfigurationError(
                    f"unknown ensemble axis '{axis}' (known: {known})"
                )
        return cls(**fields)

    def spec_string(self) -> str:
        """Round-trippable spec (journal metadata; DESIGN.md §6).

        Every axis is explicit, so ``EnsembleSpec.parse(spec_string())``
        rebuilds the identical member list regardless of defaults.
        """
        return ",".join(
            f"{axis}={':'.join(str(v) for v in getattr(self, axis))}"
            for axis in AXES
        )


def member_permutation(n_members: int, seed: int = 0) -> tuple[int, ...]:
    """Deterministic member ordering for nested racing subsets (DESIGN.md §8).

    The permutation depends only on ``(seed, n_members)`` — never on
    process state — so every rung subset a :class:`~repro.core.racing.
    RungSchedule` derives from it is reproducible across processes,
    resumes, and machines.
    """
    if n_members <= 0:
        raise ConfigurationError(f"n_members must be positive, got {n_members}")
    rng = np.random.default_rng(seed_for("racing", "members", int(seed), int(n_members)))
    return tuple(int(i) for i in rng.permutation(n_members))


def member_subset(n_members: int, size: int, seed: int = 0) -> tuple[int, ...]:
    """Sorted ``size``-member subset: a prefix of the seeded permutation.

    Prefixes of one fixed permutation make subsets of increasing size
    *nest* — every member evaluated at rung *k* is also in rung *k+1* —
    which is what lets the racing engine evaluate only the members new
    to each rung.  Sorting keeps the member slice in canonical ensemble
    order, so partial-stack evaluation visits scenarios in the same
    order the full stack does.
    """
    if not 1 <= size <= n_members:
        raise ConfigurationError(
            f"subset size must be in [1, {n_members}], got {size}"
        )
    return tuple(sorted(member_permutation(n_members, seed)[:size]))


def _unit_profile_key(member: EnsembleMember, spec: EnsembleSpec) -> tuple:
    """Cache key of the member's weather-determined half (DESIGN.md §6)."""
    loc = get_location(member.site)
    return (loc.name, member.year_label, spec.n_hours, True, float(member.event_severity))


def _compute_unit_profiles(key: tuple) -> "tuple[tuple, UnitProfiles]":
    """Worker-side per-unit-profile synthesis (picklable launcher job)."""
    site, year_label, n_hours, include_extreme_events, event_severity = key
    profiles = unit_profiles(
        site,
        year_label=year_label,
        n_hours=n_hours,
        include_extreme_events=include_extreme_events,
        event_severity=event_severity,
        use_cache=False,
    )
    return key, profiles


def build_ensemble(
    spec: EnsembleSpec, launcher: Any | None = None
) -> list[Scenario]:
    """Materialize the ensemble's members as scenarios, in member order.

    The expensive half of scenario construction — resource synthesis and
    the two SAM model runs — is computed once per *unique* (site, year,
    severity) key and shared across all members through the scenario
    layer's unit-profile cache; with ``launcher`` set (e.g.
    ``MultiprocessingLauncher(4)``) the missing keys are synthesized in
    parallel worker processes and the cache is primed with the results
    (DESIGN.md §6).  Member assembly (workload, carbon, tariff) is cheap
    and stays in-process.
    """
    members = spec.members()
    if launcher is not None:
        unique_keys = dict.fromkeys(_unit_profile_key(m, spec) for m in members)
        missing = [k for k in unique_keys if not has_unit_profiles(k)]
        if missing:
            computed = launcher.launch(_compute_unit_profiles, missing)
            prime_unit_profile_cache(dict(computed))
    return [
        build_scenario(
            member.site,
            year_label=member.year_label,
            n_hours=spec.n_hours,
            mean_power_w=spec.mean_power_w * member.growth,
            event_severity=member.event_severity,
            carbon_trajectory=member.carbon_trajectory,
            tariff_variant=member.tariff_variant,
            name=member.name(),
        )
        for member in members
    ]


def evaluate_ensemble(
    spec: "EnsembleSpec | Sequence[Scenario]",
    compositions: Sequence[MicrogridComposition],
    aggregate: str = "worst",
    policy: VectorizedPolicy | None = None,
    launcher: Any | None = None,
) -> list[RobustEvaluatedComposition]:
    """Score compositions against a whole ensemble in one stacked loop.

    Builds the members (if given a spec), advances the full S-members ×
    N-candidates tensor through one batched time loop, and reduces each
    objective by ``aggregate`` (the :func:`parse_aggregate` grammar) —
    bit-for-bit identical to evaluating every member serially
    (``benchmarks/bench_ensemble.py`` asserts this).
    """
    parse_aggregate(aggregate)
    scenarios = (
        build_ensemble(spec, launcher=launcher)
        if isinstance(spec, EnsembleSpec)
        else list(spec)
    )
    per_scenario = evaluate_across_scenarios(scenarios, list(compositions), policy=policy)
    return robust_evaluations(per_scenario, aggregate)
