"""Candidate extraction: a small, decision-ready set from a Pareto front.

§3.3 of the paper: "we further process the Pareto front to extract a
smaller, representative set of candidate compositions ... through, for
example, greedy diversity maximization, k-means clustering, or
threshold-based approaches".  All three are implemented; the tables in §4
use the threshold approach (best operational emissions under embodied
budgets of 5 000 / 10 000 / 15 000 tCO₂, plus the baseline and the
unconstrained best).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import OptimizationError
from .metrics import EvaluatedComposition
from .pareto import pareto_points

#: The paper's embodied budgets (tCO2) for Tables 1–2.
PAPER_BUDGETS_TCO2 = (5_000.0, 10_000.0, 15_000.0)


def threshold_candidates(
    evaluated: Sequence[EvaluatedComposition],
    budgets_tco2: Sequence[float] = PAPER_BUDGETS_TCO2,
    include_baseline: bool = True,
    include_best: bool = True,
) -> list[EvaluatedComposition]:
    """The tables' candidate set: best-under-budget + baseline + best.

    For each embodied budget, selects the composition with the lowest
    operational emissions among those whose embodied emissions stay under
    the budget (ties broken by lower embodied emissions).
    """
    if not evaluated:
        raise OptimizationError("no evaluations to extract candidates from")
    chosen: list[EvaluatedComposition] = []

    if include_baseline:
        baselines = [e for e in evaluated if e.composition.is_grid_only]
        if baselines:
            chosen.append(baselines[0])

    for budget in sorted(budgets_tco2):
        within = [e for e in evaluated if e.embodied_tonnes <= budget]
        if not within:
            continue
        best = min(
            within, key=lambda e: (e.operational_tco2_per_day, e.embodied_tonnes)
        )
        chosen.append(best)

    if include_best:
        best_overall = min(
            evaluated, key=lambda e: (e.operational_tco2_per_day, e.embodied_tonnes)
        )
        chosen.append(best_overall)

    # De-duplicate while preserving order (budgets can collapse).
    seen: set = set()
    unique: list[EvaluatedComposition] = []
    for e in chosen:
        key = e.composition
        if key not in seen:
            seen.add(key)
            unique.append(e)
    return unique


def _normalized_points(
    evaluated: Sequence[EvaluatedComposition], objectives: Sequence[str]
) -> np.ndarray:
    points = pareto_points(evaluated, objectives)
    span = points.max(axis=0) - points.min(axis=0)
    span[span <= 0] = 1.0
    return (points - points.min(axis=0)) / span


def greedy_diversity_candidates(
    evaluated: Sequence[EvaluatedComposition],
    k: int,
    objectives: Sequence[str] = ("embodied", "operational"),
) -> list[EvaluatedComposition]:
    """Greedy max-min diversity: k solutions maximally spread in objective
    space (farthest-point heuristic, 2-approximation of max-min dispersion).

    Starts from the lowest-operational-emission solution, then repeatedly
    adds the point farthest from the chosen set.
    """
    if k <= 0:
        raise OptimizationError("k must be positive")
    if not evaluated:
        return []
    k = min(k, len(evaluated))
    normalized = _normalized_points(evaluated, objectives)

    start = int(np.argmin(pareto_points(evaluated, ("operational",))[:, 0]))
    chosen_idx = [start]
    min_dist = np.linalg.norm(normalized - normalized[start], axis=1)
    while len(chosen_idx) < k:
        nxt = int(np.argmax(min_dist))
        chosen_idx.append(nxt)
        dist = np.linalg.norm(normalized - normalized[nxt], axis=1)
        np.minimum(min_dist, dist, out=min_dist)
    order = np.argsort(
        [pareto_points([evaluated[i]], objectives)[0, 0] for i in chosen_idx]
    )
    return [evaluated[chosen_idx[i]] for i in order]


def kmeans_candidates(
    evaluated: Sequence[EvaluatedComposition],
    k: int,
    objectives: Sequence[str] = ("embodied", "operational"),
    n_iterations: int = 50,
    seed: int = 0,
) -> list[EvaluatedComposition]:
    """K-means in normalized objective space; the representative of each
    cluster is the member closest to its centroid (medoid snap-back).
    """
    if k <= 0:
        raise OptimizationError("k must be positive")
    if not evaluated:
        return []
    k = min(k, len(evaluated))
    points = _normalized_points(evaluated, objectives)
    rng = np.random.default_rng(seed)

    # k-means++ style init: spread initial centers.
    centers = [points[int(rng.integers(0, len(points)))]]
    for _ in range(1, k):
        d2 = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centers], axis=0
        )
        total = d2.sum()
        if total <= 0:
            centers.append(points[int(rng.integers(0, len(points)))])
            continue
        probs = d2 / total
        centers.append(points[int(rng.choice(len(points), p=probs))])
    centers = np.asarray(centers)

    assignment = np.zeros(len(points), dtype=np.int64)
    for _ in range(n_iterations):
        dists = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        new_assignment = np.argmin(dists, axis=1)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for j in range(k):
            members = points[assignment == j]
            if members.size:
                centers[j] = members.mean(axis=0)

    representatives: list[EvaluatedComposition] = []
    for j in range(k):
        member_idx = np.nonzero(assignment == j)[0]
        if member_idx.size == 0:
            continue
        dists = np.linalg.norm(points[member_idx] - centers[j], axis=1)
        representatives.append(evaluated[int(member_idx[np.argmin(dists)])])
    representatives.sort(key=lambda e: e.embodied_tonnes)
    return representatives


def paper_candidates(
    evaluated: Sequence[EvaluatedComposition],
) -> list[EvaluatedComposition]:
    """The exact 5-row candidate protocol of Tables 1–2."""
    return threshold_candidates(
        evaluated,
        budgets_tco2=PAPER_BUDGETS_TCO2,
        include_baseline=True,
        include_best=True,
    )
