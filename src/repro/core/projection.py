"""Long-term emission projection (Figure 3, §4.2).

"Each line begins at the respective composition's embodied emissions and
accumulates operational emissions over time, assuming a constant daily
emissions rate and no reinvestments."  The projection is deliberately
naive (the paper calls it a conservative baseline); the degradation-aware
extension adds battery-replacement reinvestment as an option.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..units import DAYS_PER_YEAR
from .embodied import battery_embodied_kg
from .metrics import EvaluatedComposition


@dataclass(frozen=True)
class CumulativeProjection:
    """Cumulative total emissions (tCO2) of one composition over years."""

    label: str
    years: np.ndarray
    total_tco2: np.ndarray

    def at_year(self, year: float) -> float:
        """Interpolated cumulative emissions at a (fractional) year."""
        return float(np.interp(year, self.years, self.total_tco2))


def project_emissions(
    evaluated: EvaluatedComposition,
    horizon_years: float = 20.0,
    samples_per_year: int = 4,
    battery_replacement_years: float | None = None,
) -> CumulativeProjection:
    """Project total (embodied + operational) emissions over a horizon.

    Parameters
    ----------
    battery_replacement_years:
        If set, re-book the battery's embodied carbon every this-many
        years (the reinvestment scenario the paper's §4.2 excludes but
        flags: "batteries may require replacement within 10–15 years").
    """
    if horizon_years <= 0:
        raise ConfigurationError("horizon must be positive")
    if samples_per_year < 1:
        raise ConfigurationError("need at least one sample per year")
    n = int(round(horizon_years * samples_per_year)) + 1
    years = np.linspace(0.0, horizon_years, n)

    daily_rate_t = evaluated.operational_tco2_per_day
    total = evaluated.embodied_tonnes + daily_rate_t * DAYS_PER_YEAR * years

    if battery_replacement_years is not None:
        if battery_replacement_years <= 0:
            raise ConfigurationError("replacement interval must be positive")
        battery_t = battery_embodied_kg(evaluated.composition.battery_units) / 1_000.0
        n_replacements = np.floor(years / battery_replacement_years)
        # The initial install is already in embodied_tonnes; only count
        # subsequent replacements.
        total = total + battery_t * n_replacements

    return CumulativeProjection(
        label=evaluated.composition.label(), years=years, total_tco2=total
    )


def project_many(
    evaluated: Sequence[EvaluatedComposition],
    horizon_years: float = 20.0,
    samples_per_year: int = 4,
) -> list[CumulativeProjection]:
    """Project a set of candidates (one Figure-3 panel)."""
    return [project_emissions(e, horizon_years, samples_per_year) for e in evaluated]


def crossover_year(
    a: CumulativeProjection, b: CumulativeProjection
) -> float | None:
    """First year where projection ``a`` overtakes ``b`` (becomes worse).

    Returns ``None`` if the curves never cross within the horizon.  Used
    to reproduce the §4.2 observation that the grid-only baseline becomes
    the worst option after ≈7 years (Houston) / ≈12 years (Berkeley).
    """
    years = a.years
    if not np.array_equal(years, b.years):
        raise ConfigurationError("projections must share the year grid")
    diff = a.total_tco2 - b.total_tco2
    sign_change = np.nonzero((diff[:-1] <= 0) & (diff[1:] > 0))[0]
    if sign_change.size == 0:
        return None
    i = int(sign_change[0])
    # Linear interpolation inside the crossing interval.
    y0, y1 = years[i], years[i + 1]
    d0, d1 = diff[i], diff[i + 1]
    if d1 == d0:
        return float(y1)
    return float(y0 + (y1 - y0) * (0.0 - d0) / (d1 - d0))
