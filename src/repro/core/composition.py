"""Microgrid compositions: the design points of the optimization.

A composition is the paper's three design parameters (§3.3): number of
wind turbines, installed solar capacity, battery storage capacity.  The
canonical representation uses the paper's physical units — turbines are
3 MW each, batteries come in 7.5 MWh Fluence-Smartstack units — with
convenience constructors in MW/MWh matching the tables' notation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..units import (
    BATTERY_UNIT_KWH,
    SOLAR_INCREMENT_KW,
    WIND_TURBINE_RATED_KW,
)


@dataclass(frozen=True, order=True)
class MicrogridComposition:
    """One candidate microgrid design.

    Attributes
    ----------
    n_turbines:
        Number of 3 MW wind turbines (0–10 in the paper).
    solar_kw:
        Installed solar DC capacity in kW (0–40 000 in 4 000 steps).
    battery_units:
        Number of 7.5 MWh battery units (0–8).
    """

    n_turbines: int
    solar_kw: float
    battery_units: int

    def __post_init__(self) -> None:
        if self.n_turbines < 0:
            raise ConfigurationError(f"n_turbines must be >= 0, got {self.n_turbines}")
        if self.solar_kw < 0:
            raise ConfigurationError(f"solar_kw must be >= 0, got {self.solar_kw}")
        if self.battery_units < 0:
            raise ConfigurationError(f"battery_units must be >= 0, got {self.battery_units}")

    # -- derived quantities in the paper's table units -------------------------

    @property
    def wind_mw(self) -> float:
        """Wind farm rated capacity (MW) — the tables' 'Wind' column."""
        return self.n_turbines * WIND_TURBINE_RATED_KW / 1_000.0

    @property
    def solar_mw(self) -> float:
        """Solar rated capacity (MW) — the tables' 'Solar' column."""
        return self.solar_kw / 1_000.0

    @property
    def battery_mwh(self) -> float:
        """Battery capacity (MWh) — the tables' 'Battery' column."""
        return self.battery_units * BATTERY_UNIT_KWH / 1_000.0

    @property
    def battery_wh(self) -> float:
        """Battery capacity in Wh (simulation unit)."""
        return self.battery_units * BATTERY_UNIT_KWH * 1_000.0

    @property
    def is_grid_only(self) -> bool:
        """True for the no-microgrid baseline (first rows of Tables 1–2)."""
        return self.n_turbines == 0 and self.solar_kw == 0 and self.battery_units == 0

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_mw(
        cls, wind_mw: float, solar_mw: float, battery_mwh: float
    ) -> "MicrogridComposition":
        """Build from the tables' (MW, MW, MWh) notation.

        Values must align with the discrete increments (3 MW turbines,
        7.5 MWh battery units).
        """
        turbine_mw = WIND_TURBINE_RATED_KW / 1_000.0
        unit_mwh = BATTERY_UNIT_KWH / 1_000.0
        n_turb = wind_mw / turbine_mw
        n_units = battery_mwh / unit_mwh
        if abs(n_turb - round(n_turb)) > 1e-9:
            raise ConfigurationError(f"wind_mw={wind_mw} is not a multiple of {turbine_mw} MW")
        if abs(n_units - round(n_units)) > 1e-9:
            raise ConfigurationError(
                f"battery_mwh={battery_mwh} is not a multiple of {unit_mwh} MWh"
            )
        return cls(
            n_turbines=int(round(n_turb)),
            solar_kw=solar_mw * 1_000.0,
            battery_units=int(round(n_units)),
        )

    def label(self) -> str:
        """Figure-3-style label: ``(wind MW, solar MW, battery MWh)``."""
        return (
            f"({self.wind_mw:g}, {self.solar_mw:g}, {self.battery_mwh:g})"
        )

    @property
    def solar_increments(self) -> float:
        """Number of 4 MW solar increments (may be fractional off-grid)."""
        return self.solar_kw / SOLAR_INCREMENT_KW
