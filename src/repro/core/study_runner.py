"""Optimization drivers: exhaustive and black-box composition search.

Couples the black-box layer (:mod:`repro.blackbox`) to composition
evaluation, reproducing the paper's two search modes:

* **exhaustive** — evaluate all 1 089 grid points (via the vectorized
  batch evaluator, so this is seconds, not the paper's >24 h of
  co-simulations);
* **black-box** — an NSGA-II study (350 trials, population 50 by
  default) where each trial maps to one composition and is scored by the
  batch evaluator; results cached per composition so repeated visits are
  free (matching how Optuna-with-Vessim would memoize identical configs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..blackbox.multiobjective import pareto_recovery_rate
from ..blackbox.samplers.base import Sampler
from ..blackbox.samplers.nsga2 import NSGA2Sampler
from ..blackbox.study import Study, create_study
from ..exceptions import OptimizationError
from .composition import MicrogridComposition
from .fastsim import BatchEvaluator
from .metrics import EvaluatedComposition
from .parameterspace import PAPER_SPACE, ParameterSpace
from .pareto import pareto_front, pareto_points
from .scenario import Scenario


@dataclass
class SearchResult:
    """Outcome of a composition search."""

    evaluated: list[EvaluatedComposition]
    study: Study | None = None
    n_simulations: int = 0

    def front(
        self, objectives: Sequence[str] = ("embodied", "operational")
    ) -> list[EvaluatedComposition]:
        return pareto_front(self.evaluated, objectives)


@dataclass
class OptimizationRunner:
    """Runs composition searches against one scenario."""

    scenario: Scenario
    space: ParameterSpace = field(default_factory=lambda: PAPER_SPACE)
    objectives: tuple[str, ...] = ("operational", "embodied")

    def __post_init__(self) -> None:
        self._batch = BatchEvaluator(self.scenario)
        self._cache: dict[MicrogridComposition, EvaluatedComposition] = {}

    # -- evaluation with memoization ------------------------------------------

    def evaluate(self, comps: Sequence[MicrogridComposition]) -> list[EvaluatedComposition]:
        """Evaluate compositions, reusing cached results."""
        missing = [c for c in dict.fromkeys(comps) if c not in self._cache]
        if missing:
            for res in self._batch.evaluate(missing):
                self._cache[res.composition] = res
        return [self._cache[c] for c in comps]

    @property
    def n_simulations(self) -> int:
        """Distinct compositions actually simulated so far."""
        return len(self._cache)

    # -- search modes ---------------------------------------------------------

    def run_exhaustive(self) -> SearchResult:
        """Evaluate the full parameter space (§4.4 baseline)."""
        comps = self.space.all_compositions()
        evaluated = self.evaluate(comps)
        return SearchResult(evaluated=evaluated, n_simulations=len(comps))

    def run_blackbox(
        self,
        n_trials: int = 350,
        sampler: Sampler | None = None,
        seed: int | None = None,
        batch_size: int | None = None,
    ) -> SearchResult:
        """Multi-objective black-box search (§4.4: NSGA-II, pop. 50).

        Trials are asked and told in generation-sized batches so each
        generation is simulated as **one** vectorized batch-evaluator call
        — semantically identical to per-trial evaluation for generational
        samplers (NSGA-II only consults *completed* trials when breeding),
        but ~population× faster.  The paper parallelizes the same step
        across cluster nodes through Hydra; here the batch axis is the
        vector axis.
        """
        if n_trials <= 0:
            raise OptimizationError("n_trials must be positive")
        sampler = sampler or NSGA2Sampler(population_size=50, seed=seed)
        batch = batch_size or getattr(sampler, "population_size", 25)
        study = create_study(
            directions=["minimize"] * len(self.objectives),
            sampler=sampler,
            study_name=f"{self.scenario.name}-blackbox",
        )
        seen: list[EvaluatedComposition] = []
        before = self.n_simulations

        remaining = n_trials
        while remaining > 0:
            k = min(batch, remaining)
            trials = [study.ask() for _ in range(k)]
            comps = [self.space.suggest(t) for t in trials]
            evaluated = self.evaluate(comps)
            for trial, result in zip(trials, evaluated):
                trial.set_user_attr("composition", result.composition)
                study.tell(trial, result.objectives(self.objectives))
                seen.append(result)
            remaining -= k

        # Deduplicate evaluations (GA revisits elite genomes).
        unique = list({e.composition: e for e in seen}.values())
        return SearchResult(
            evaluated=unique, study=study, n_simulations=self.n_simulations - before
        )

    # -- search-quality analysis (§4.4) -----------------------------------------

    def recovery_rate(
        self,
        found: SearchResult,
        exhaustive: SearchResult,
        objectives: Sequence[str] | None = None,
    ) -> float:
        """Fraction of true Pareto-optimal points the search recovered."""
        objs = tuple(objectives or self.objectives)
        true_front = pareto_points(exhaustive.front(objs), objs)
        found_points = pareto_points(found.evaluated, objs) if found.evaluated else np.empty((0, len(objs)))
        return pareto_recovery_rate(found_points, true_front)


def run_exhaustive_search(
    scenario: Scenario, space: ParameterSpace | None = None
) -> SearchResult:
    """Convenience: exhaustive sweep of the (default) paper space."""
    runner = OptimizationRunner(scenario, space=space or PAPER_SPACE)
    return runner.run_exhaustive()


def run_blackbox_search(
    scenario: Scenario,
    n_trials: int = 350,
    population_size: int = 50,
    seed: int | None = None,
    space: ParameterSpace | None = None,
) -> SearchResult:
    """Convenience: the paper's NSGA-II configuration."""
    runner = OptimizationRunner(scenario, space=space or PAPER_SPACE)
    return runner.run_blackbox(
        n_trials=n_trials, sampler=NSGA2Sampler(population_size=population_size, seed=seed)
    )
