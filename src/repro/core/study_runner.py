"""Optimization drivers: exhaustive and black-box composition search.

Couples the black-box layer (:mod:`repro.blackbox`) to composition
evaluation, reproducing the paper's two search modes:

* **exhaustive** — evaluate all 1 089 grid points (via the vectorized
  batch evaluator, so this is seconds, not the paper's >24 h of
  co-simulations);
* **black-box** — an NSGA-II study (350 trials, population 50 by
  default) where each trial maps to one composition and is scored by the
  batch evaluator; results cached per composition so repeated visits are
  free (matching how Optuna-with-Vessim would memoize identical configs).

Both modes compose with the persistence/parallelism subsystem
(DESIGN.md §3–§4):

* pass ``storage=JournalStorage(path)`` — or any storage spec the URL
  registry resolves, e.g. ``"sqlite:///study.db"`` (DESIGN.md §7) —
  (and later ``load_if_exists=True``) to ``run_blackbox`` and an
  interrupted search resumes to the *identical* Pareto front an
  uninterrupted run produces under the same seed — the CLI verbs
  ``repro study run / resume / status`` drive exactly this path;
* pass ``launcher=MultiprocessingLauncher(n)`` to fan batch evaluation
  out across worker processes (order-preserving, numerically identical
  to serial).

Multi-scenario robustness (DESIGN.md §5–§6): pass a *list* of scenarios
(``OptimizationRunner([berkeley, houston], aggregate="worst")`` — or an
ensemble built by :func:`repro.core.ensemble.build_ensemble`) and every
candidate is scored against all scenarios in one stacked N×S time loop;
objectives seen by the sampler are the per-candidate robust aggregates
(``worst``, ``mean``, ``cvar:alpha``, or ``quantile:q`` across
scenarios — the :func:`repro.core.metrics.parse_aggregate` grammar).
``policy`` swaps the dispatch strategy on the same fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..blackbox.multiobjective import pareto_recovery_rate
from ..blackbox.samplers.base import Sampler
from ..blackbox.samplers.nsga2 import NSGA2Sampler
from ..blackbox.storage import StudyStorage, resolve_storage
from ..blackbox.study import Study, create_study
from ..blackbox.trial import RACING_RUNG_ATTR, TrialState
from ..exceptions import OptimizationError
from .composition import MicrogridComposition
from .dispatch import VectorizedPolicy
from .fastsim import evaluate_across_scenarios, evaluate_member_slice
from .metrics import (
    EvaluatedComposition,
    RobustEvaluatedComposition,
    parse_aggregate,
    robust_evaluations,
)
from .fidelity import FidelityLadder, FidelityRacingEvaluator, sibling_stack
from .parameterspace import PAPER_SPACE, ParameterSpace
from .pareto import pareto_front, pareto_points
from .racing import RacingEvaluator, RacingStats, RungSchedule
from .scenario import Scenario
from .study_spec import check_resume_identity

#: Either a plain single-scenario evaluation or its multi-scenario wrapper —
#: both expose ``composition`` and ``objectives(names)``.
AnyEvaluated = "EvaluatedComposition | RobustEvaluatedComposition"


def _as_scenarios(scenario: "Scenario | Sequence[Scenario]") -> tuple[Scenario, ...]:
    if isinstance(scenario, Scenario):
        return (scenario,)
    scenarios = tuple(scenario)
    if not scenarios:
        raise OptimizationError("need at least one scenario")
    return scenarios


@dataclass
class SearchResult:
    """Outcome of a composition search."""

    evaluated: "list[AnyEvaluated]"
    study: Study | None = None
    n_simulations: int = 0
    #: trials pruned by the racing engine (0 without ``racing``)
    n_pruned: int = 0
    #: accumulated racing work accounting (None without ``racing``)
    racing: "RacingStats | None" = None

    def front(
        self, objectives: Sequence[str] = ("embodied", "operational")
    ) -> "list[AnyEvaluated]":
        return pareto_front(self.evaluated, objectives)


def _evaluate_chunk(
    job: "tuple[tuple[Scenario, ...], VectorizedPolicy | None, str, str, list[MicrogridComposition]]",
) -> "list[AnyEvaluated]":
    """Worker-side batch evaluation of one composition chunk (picklable)."""
    scenarios, policy, aggregate, engine, comps = job
    per_scenario = evaluate_across_scenarios(scenarios, comps, policy=policy, engine=engine)
    if len(scenarios) == 1:
        return per_scenario[0]
    return robust_evaluations(per_scenario, aggregate)


def _evaluate_slice_chunk(
    job: "tuple[tuple[Scenario, ...], VectorizedPolicy | None, str, tuple[int, ...], list[MicrogridComposition]]",
) -> "list[list[EvaluatedComposition]]":
    """Worker-side rung evaluation: one member slice × one comp chunk.

    The racing engine's rung dispatch (DESIGN.md §8) — per-member,
    per-candidate cells, *not* aggregated, so the parent can fill its
    incremental member matrix.
    """
    scenarios, policy, engine, member_indices, comps = job
    return evaluate_member_slice(
        scenarios, member_indices, comps, policy=policy, engine=engine
    )


@dataclass
class CompositionObjective:
    """Picklable objective: trial params → objective vector.

    The worker-process counterpart of ``ParameterSpace.suggest``: rebuild
    the composition from the suggested parameters, evaluate it, and
    return the requested objectives.  Instances ship cleanly through
    :class:`~repro.confsys.launcher.MultiprocessingLauncher` (scenarios,
    space, and dispatch policies are plain picklable dataclasses), so
    this is the natural objective for
    :class:`~repro.blackbox.parallel.ParallelStudyRunner`.

    ``scenario`` may be a single scenario or a sequence; with several,
    the trial is scored by the robust ``aggregate`` across all of them
    (one stacked time loop on the fast path; per-scenario co-simulations
    with the policy's scalar twin when ``cosim=True``).

    ``cosim=True`` scores through the full co-simulator (the paper's
    faithful-but-slow path, DESIGN.md §2) — the case where fanning trials
    across processes actually pays; the default fast path evaluates via
    the vectorized :class:`~repro.core.fastsim.BatchEvaluator`.
    """

    scenario: "Scenario | Sequence[Scenario]"
    space: ParameterSpace = field(default_factory=lambda: PAPER_SPACE)
    objectives: tuple[str, ...] = ("operational", "embodied")
    cosim: bool = False
    policy: VectorizedPolicy | None = None
    aggregate: str = "worst"
    #: dispatch engine for the fast path (DESIGN.md §9); bit-for-bit across engines
    engine: str = "auto"

    def __call__(self, params: dict[str, Any]) -> tuple[float, ...]:
        comp = self.space.from_params(params)
        scenarios = _as_scenarios(self.scenario)
        if self.cosim:
            from .evaluator import CompositionEvaluator

            per_scenario = [
                [
                    CompositionEvaluator(
                        sc,
                        policy=(
                            self.policy.cosim_twin(sc, i)
                            if self.policy is not None
                            else None
                        ),
                    ).evaluate(comp)
                ]
                for i, sc in enumerate(scenarios)
            ]
        else:
            per_scenario = evaluate_across_scenarios(
                scenarios, [comp], policy=self.policy, engine=self.engine
            )
        if len(scenarios) == 1:
            evaluated: "AnyEvaluated" = per_scenario[0][0]
        else:
            evaluated = robust_evaluations(per_scenario, self.aggregate)[0]
        return evaluated.objectives(self.objectives)

    # -- multi-fidelity hooks (racing rung dispatch, DESIGN.md §8) ------------

    @property
    def n_members(self) -> int:
        """Ensemble size — the racing engine's full-fidelity resource."""
        return len(_as_scenarios(self.scenario))

    def member_difficulty(self) -> list[float]:
        """Per-member first-objective values of the fixed probe build.

        Ranks the ensemble for the ``hardest`` rung order when this
        objective drives :class:`~repro.blackbox.parallel.
        ParallelStudyRunner` racing — the same probe
        :class:`~repro.core.racing.RacingEvaluator` uses, so both
        drivers race identical subsets for a given ensemble.
        """
        from .racing import PROBE_COMPOSITION

        per_member = evaluate_across_scenarios(
            _as_scenarios(self.scenario),
            [PROBE_COMPOSITION],
            policy=self.policy,
            engine=self.engine,
        )
        return [row[0].objectives(self.objectives)[0] for row in per_member]

    def member_values(
        self, params: dict[str, Any], member_indices: Sequence[int]
    ) -> tuple[tuple[float, ...], ...]:
        """Per-member objective vectors on a member slice (fast path).

        The rung evaluation :class:`~repro.blackbox.parallel.
        ParallelStudyRunner` fans across workers: one vector per named
        member, in slice order.  Returning *per-member* values (rather
        than a pre-reduced aggregate) is what lets the parent fill each
        trial's member matrix incrementally — a rung only ever pays for
        its new members — and reduce in canonical member order, so a
        finalist's parent-side aggregate is bit-identical to
        ``__call__``'s.
        """
        comp = self.space.from_params(params)
        per_scenario = evaluate_member_slice(
            _as_scenarios(self.scenario),
            member_indices,
            [comp],
            policy=self.policy,
            engine=self.engine,
        )
        return tuple(row[0].objectives(self.objectives) for row in per_scenario)


@dataclass
class OptimizationRunner:
    """Runs composition searches against one scenario — or several.

    With a sequence of scenarios — paper sites or a full scenario
    ensemble (DESIGN.md §6) — every batch is evaluated as one stacked
    N-candidates × S-scenarios time loop (DESIGN.md §5) and the search
    optimizes the robust ``aggregate`` (``worst``, ``mean``,
    ``cvar:alpha``, ``quantile:q``) of each objective across scenarios.

    With ``launcher`` set to a
    :class:`~repro.confsys.launcher.MultiprocessingLauncher`, batch
    evaluation of uncached compositions is split into per-worker chunks
    and fanned across processes; results are order-preserving and
    numerically identical to serial (each candidate's column is
    independent in the vectorized time loop).
    """

    scenario: "Scenario | Sequence[Scenario]"
    space: ParameterSpace = field(default_factory=lambda: PAPER_SPACE)
    objectives: tuple[str, ...] = ("operational", "embodied")
    launcher: Any | None = None
    policy: VectorizedPolicy | None = None
    aggregate: str = "worst"
    #: dispatch engine for every batch/rung evaluation (DESIGN.md §9)
    engine: str = "auto"
    #: model-fidelity ladder (DESIGN.md §11): when set, the runner's
    #: scenario stack is lifted to the ladder-top (``full``) physics
    #: siblings for every evaluation path, and raced generations screen
    #: candidates on the cheap levels first (front unchanged — the
    #: envelope proofs guarantee it)
    fidelity: "FidelityLadder | str | None" = None

    def __post_init__(self) -> None:
        parse_aggregate(self.aggregate)  # fail fast, before any evaluation
        from .kernel import resolve_engine

        resolve_engine(self.engine, self.policy)  # fail fast on bad engine/policy
        self.scenarios: tuple[Scenario, ...] = _as_scenarios(self.scenario)
        self._base_scenarios: tuple[Scenario, ...] = self.scenarios
        self._fidelity: "FidelityLadder | None" = None
        if self.fidelity is not None:
            self._fidelity = FidelityLadder.parse(self.fidelity)
            # Every evaluation path — batch, rung slice, pipelined
            # objective — runs the ladder-top physics, so raced and
            # non-raced fronts agree and resume identity is physical.
            self.scenarios = tuple(sibling_stack(list(self.scenarios), "full"))
        self._cache: "dict[MicrogridComposition, AnyEvaluated]" = {}

    # -- evaluation with memoization ------------------------------------------

    def evaluate(
        self, comps: Sequence[MicrogridComposition]
    ) -> "list[AnyEvaluated]":
        """Evaluate compositions, reusing cached results."""
        missing = [c for c in dict.fromkeys(comps) if c not in self._cache]
        if missing:
            for res in self._evaluate_missing(missing):
                self._cache[res.composition] = res
        return [self._cache[c] for c in comps]

    def _evaluate_missing(
        self, missing: list[MicrogridComposition]
    ) -> "list[AnyEvaluated]":
        n_workers = getattr(self.launcher, "n_workers", 1)
        if self.launcher is None or n_workers <= 1 or len(missing) < 2 * n_workers:
            return _evaluate_chunk(
                (self.scenarios, self.policy, self.aggregate, self.engine, missing)
            )
        from ..confsys.launcher import chunk_evenly

        jobs = [
            (self.scenarios, self.policy, self.aggregate, self.engine, chunk)
            for chunk in chunk_evenly(missing, n_workers)
        ]
        results = self.launcher.launch(_evaluate_chunk, jobs)
        return [res for chunk_result in results for res in chunk_result]

    def _evaluate_slice(
        self, member_indices: Sequence[int], comps: "list[MicrogridComposition]"
    ) -> "list[list[EvaluatedComposition]]":
        """Rung dispatch: evaluate one member slice, fanned over workers.

        The racing engine's :data:`~repro.core.racing.SliceEvaluator`
        bound to this runner's scenarios/policy/launcher — candidate
        chunks go to worker processes (order-preserving, numerically
        identical to serial, exactly like :meth:`_evaluate_missing`).
        """
        return self._slice_eval(self.scenarios, member_indices, comps)

    def _slice_eval(
        self,
        scenarios: "tuple[Scenario, ...]",
        member_indices: Sequence[int],
        comps: "list[MicrogridComposition]",
    ) -> "list[list[EvaluatedComposition]]":
        indices = tuple(int(j) for j in member_indices)
        n_workers = getattr(self.launcher, "n_workers", 1)
        if self.launcher is None or n_workers <= 1 or len(comps) < 2 * n_workers:
            return _evaluate_slice_chunk(
                (scenarios, self.policy, self.engine, indices, comps)
            )
        from ..confsys.launcher import chunk_evenly

        jobs = [
            (scenarios, self.policy, self.engine, indices, chunk)
            for chunk in chunk_evenly(comps, n_workers)
        ]
        results = self.launcher.launch(_evaluate_slice_chunk, jobs)
        # Each worker returns [member][candidate-chunk]; re-join the
        # candidate axis in chunk order.
        return [
            [cell for chunk_result in results for cell in chunk_result[j]]
            for j in range(len(indices))
        ]

    def _fidelity_slice_factory(self, stack: "list[Scenario]"):
        """Launcher-fanned slice evaluator bound to one fidelity stack."""
        scenarios = tuple(stack)

        def _slice(member_indices, comps):
            return self._slice_eval(scenarios, member_indices, comps)

        return _slice

    @property
    def n_simulations(self) -> int:
        """Distinct compositions actually simulated so far."""
        return len(self._cache)

    # -- search modes ---------------------------------------------------------

    def run_exhaustive(self) -> SearchResult:
        """Evaluate the full parameter space (§4.4 baseline)."""
        comps = self.space.all_compositions()
        evaluated = self.evaluate(comps)
        return SearchResult(evaluated=evaluated, n_simulations=len(comps))

    def run_blackbox(
        self,
        n_trials: int = 350,
        sampler: Sampler | None = None,
        seed: int | None = None,
        batch_size: int | None = None,
        storage: "StudyStorage | str | None" = None,
        study_name: str | None = None,
        load_if_exists: bool = False,
        metadata: dict[str, Any] | None = None,
        racing: "RungSchedule | str | None" = None,
    ) -> SearchResult:
        """Multi-objective black-box search (§4.4: NSGA-II, pop. 50).

        Trials are asked and told in generation-sized batches so each
        generation is simulated as **one** vectorized batch-evaluator call
        — semantically identical to per-trial evaluation for generational
        samplers (NSGA-II only consults *completed* trials when breeding),
        but ~population× faster.  The paper parallelizes the same step
        across cluster nodes through Hydra; here the batch axis is the
        vector axis (and optionally the runner's ``launcher`` processes).

        **Persistence/resume** (DESIGN.md §3): with ``storage`` set every
        trial is journaled, and the sampler switches to deterministic
        per-trial RNG streams.  With ``load_if_exists=True`` a previously
        interrupted study is reloaded; any trailing partial generation is
        discarded and re-run so the sampler sees exactly the
        completed-trial history an uninterrupted run would have seen at
        that generation boundary — which makes the resumed final Pareto
        front *identical* to the uninterrupted one under a fixed seed.
        ``SearchResult.n_simulations`` counts simulations performed by
        this call (a resumed call re-simulates the reloaded compositions
        once — cheap, vectorized, and hitting the runner's memo cache
        thereafter).

        **Racing** (DESIGN.md §8): with ``racing`` set to a
        :class:`~repro.core.racing.RungSchedule` (or its spec string,
        e.g. ``"rungs=2,8,full"``) each generation races through
        progressively larger ensemble-member subsets; candidates proven
        off the generation's front are told PRUNED (their per-rung
        partial aggregates become intermediate reports), survivors are
        evaluated at full fidelity — their told values are bit-identical
        to a non-raced evaluation.  The schedule is persisted in the
        study metadata, so a resumed raced study replays the identical
        rung subsets and reaches the identical front an uninterrupted
        raced run reaches.
        """
        if n_trials <= 0:
            raise OptimizationError("n_trials must be positive")
        if racing is not None:
            racing = RungSchedule.parse(racing)
        sampler = sampler or NSGA2Sampler(population_size=50, seed=seed)
        batch = batch_size or getattr(sampler, "population_size", 25)
        storage = resolve_storage(storage)  # spec strings → backend (§7)
        prior_seeding = sampler.per_trial_seeding
        if storage is not None:
            # Persist everything resume needs to rebuild this exact
            # search — a journal without these keys used to resume with
            # default sampler parameters and silently produce a
            # *different* front.  Caller-supplied metadata (e.g. the
            # CLI's) wins; these fill the gaps for direct runner calls.
            metadata = dict(metadata or {})
            metadata.setdefault("n_trials", n_trials)
            metadata.setdefault("seed", sampler.seed)
            metadata.setdefault("batch", batch)
            population = getattr(sampler, "population_size", None)
            if population is not None:
                metadata.setdefault("population", population)
            if racing is not None:
                # Resume must race the identical rung subsets; the spec
                # string round-trips through RungSchedule.parse (§8).
                metadata.setdefault("racing", racing.spec_string())
            if self._fidelity is not None:
                # The ladder decides which physics scored every trial —
                # resume identity, like the racing spec (§11).
                metadata.setdefault("fidelity", self._fidelity.spec_string())
            # Resume must replay the exact RNG draws of the original run.
            # Restored afterwards so a caller-supplied sampler keeps its
            # documented single-stream behaviour outside this run.
            sampler.per_trial_seeding = True
        try:
            return self._run_blackbox_study(
                n_trials, sampler, batch, storage, study_name, load_if_exists,
                metadata, racing,
            )
        finally:
            sampler.per_trial_seeding = prior_seeding

    def _default_study_name(self) -> str:
        return "-".join(sc.name for sc in self.scenarios) + "-blackbox"

    def _run_blackbox_study(
        self,
        n_trials: int,
        sampler: Sampler,
        batch: int,
        storage: StudyStorage | None,
        study_name: str | None,
        load_if_exists: bool,
        metadata: dict[str, Any] | None,
        racing: "RungSchedule | None" = None,
    ) -> SearchResult:
        study = create_study(
            directions=["minimize"] * len(self.objectives),
            sampler=sampler,
            study_name=study_name or self._default_study_name(),
            storage=storage,
            load_if_exists=load_if_exists,
            metadata=metadata,
        )
        if storage is not None:
            # Identity checks route through the one shared validator
            # (DESIGN.md §12): the rung schedule decides which trials
            # get pruned and the fidelity ladder which physics scored
            # them, so resuming either differently silently breeds a
            # different population than the original run.  A fresh
            # study always matches (run_blackbox just persisted both).
            check_resume_identity(
                study.study_name,
                study.metadata,
                {
                    "racing": (
                        racing.spec_string() if racing is not None else None
                    ),
                    "fidelity": (
                        self._fidelity.spec_string()
                        if self._fidelity is not None
                        else None
                    ),
                },
            )
        racer: "RacingEvaluator | FidelityRacingEvaluator | None" = None
        racing_stats: "RacingStats | None" = None
        n_pruned = 0
        if racing is not None:
            if self._fidelity is not None:
                racer = FidelityRacingEvaluator(
                    self._base_scenarios,
                    ladder=self._fidelity,
                    schedule=racing,
                    aggregate=self.aggregate,
                    objectives=self.objectives,
                    policy=self.policy,
                    engine=self.engine,
                    slice_factory=self._fidelity_slice_factory,
                )
            else:
                racer = RacingEvaluator(
                    self.scenarios,
                    schedule=racing,
                    aggregate=self.aggregate,
                    objectives=self.objectives,
                    policy=self.policy,
                    evaluate_slice=self._evaluate_slice,
                )
            racing_stats = RacingStats()
        seen: "list[AnyEvaluated]" = []
        before = self.n_simulations

        if study.trials:
            # Resumed study: drop the trailing partial generation (its
            # trials were bred from a history an uninterrupted run never
            # sees) and rebuild the evaluation record for the rest.  A
            # study that already reached its target needs no alignment —
            # trimming would only re-run finished work.
            #
            # The generation boundary is the *original* run's batch size
            # (persisted in the study metadata), not this call's:
            # trimming a pop-50 history at a resumed batch of 40 would
            # hand the sampler a history no uninterrupted run ever saw.
            # A mismatch cannot be aligned, so it is a hard error.
            check_resume_identity(study.study_name, study.metadata, {"batch": batch})
            if len(study.trials) < n_trials:
                study.drop_trailing_partial_batch(batch)
            # Rebuild the evaluation record for COMPLETE trials only: a
            # racing study's PRUNED trials were never fully evaluated,
            # and exactly re-evaluating them here would hand the final
            # front candidates the original run never scored (the same
            # accounting keeps FAILED trials out of non-raced resumes).
            comps = [
                self.space.from_params(t.params)
                for t in study.trials
                if t.state == TrialState.COMPLETE
            ]
            seen.extend(self.evaluate(comps))

        remaining = max(n_trials - len(study.trials), 0)
        while remaining > 0:
            k = min(batch, remaining)
            trials = [study.ask() for _ in range(k)]
            comps = [self.space.suggest(t) for t in trials]
            if racer is None:
                evaluated = self.evaluate(comps)
                for trial, result in zip(trials, evaluated):
                    trial.set_user_attr("composition", result.composition)
                    study.tell(trial, result.objectives(self.objectives))
                    seen.append(result)
            else:
                n_pruned += self._race_generation(
                    study, racer, racing_stats, trials, comps, seen
                )
            remaining -= k

        # Deduplicate evaluations (GA revisits elite genomes).
        unique = list({e.composition: e for e in seen}.values())
        return SearchResult(
            evaluated=unique,
            study=study,
            n_simulations=self.n_simulations - before,
            n_pruned=n_pruned,
            racing=racing_stats,
        )

    def _race_generation(
        self,
        study: Study,
        racer: "RacingEvaluator | FidelityRacingEvaluator",
        racing_stats: RacingStats,
        trials: "list[Any]",
        comps: "list[MicrogridComposition]",
        seen: "list[AnyEvaluated]",
    ) -> int:
        """Race one generation's candidates through the rung ladder.

        Survivors (exactly evaluated — bit-identical values to a
        non-raced evaluation) are told COMPLETE; candidates proven
        dominated are told PRUNED, with each rung's partial aggregate
        reported at ``step = members seen`` and the rung reached
        recorded in :data:`RACING_RUNG_ATTR`.  Returns the number of
        pruned trials.
        """
        unique = list(dict.fromkeys(comps))
        known = {c: self._cache[c] for c in unique if c in self._cache}
        outcome = racer.race(unique, known=known)
        racing_stats.merge(outcome.stats)
        for comp, evaluated in outcome.evaluated.items():
            # Survivors join the memo cache: revisited elite genomes pay
            # nothing in later generations (and sharpen their proofs).
            self._cache.setdefault(comp, evaluated)

        n_pruned = 0
        for trial, comp in zip(trials, comps):
            if comp in outcome.evaluated:
                evaluated = outcome.evaluated[comp]
                trial.set_user_attr("composition", evaluated.composition)
                trial.set_system_attr(RACING_RUNG_ATTR, len(self.scenarios))
                study.tell(trial, evaluated.objectives(self.objectives))
                seen.append(evaluated)
            else:
                pruned = outcome.pruned[comp]
                for rung_size, partial in pruned.partials:
                    trial.report(partial[0], step=rung_size)
                trial.set_system_attr(RACING_RUNG_ATTR, pruned.rung_size)
                study.tell(trial, state=TrialState.PRUNED)
                n_pruned += 1
        return n_pruned

    def run_pipelined(
        self,
        n_trials: int = 350,
        sampler: Sampler | None = None,
        seed: int | None = None,
        batch_size: int | None = None,
        storage: "StudyStorage | str | None" = None,
        study_name: str | None = None,
        load_if_exists: bool = False,
        metadata: dict[str, Any] | None = None,
        racing: "RungSchedule | str | None" = None,
        workers: int = 1,
        executor: "str | Any" = "thread",
        speculate: int = 0,
    ) -> SearchResult:
        """Generation-free search through the pipelined dispatcher.

        Same study semantics as :meth:`run_blackbox` — NSGA-II over the
        composition space, persisted/resumable, optionally raced — but
        candidates stream through worker slots individually instead of
        in barrier-synchronized generations (DESIGN.md §10).  With
        ``speculate=0`` the final front is bit-identical to
        :meth:`run_blackbox` under the same seed; with ``speculate=D``
        the first ``D`` candidates of each generation are bred one
        generation early (deterministic for a fixed seed, independent of
        ``workers``).

        ``workers``/``executor`` pick the slot pool (``thread`` |
        ``process`` | ``serial``) — per-slot futures, not the runner's
        chunked launcher, since streaming needs slot-level completion.
        ``executor`` may also be an executor *object* exposing
        ``submit_trial``/``submit_rung`` (the remote seam, DESIGN.md
        §13): candidates then stream to remote workers instead of a
        local pool, with ``workers`` capping the in-flight count.
        """
        from ..blackbox.parallel import PipelinedDispatcher, pipeline_spec_string

        if n_trials <= 0:
            raise OptimizationError("n_trials must be positive")
        if racing is not None:
            racing = RungSchedule.parse(racing)
        sampler = sampler or NSGA2Sampler(population_size=50, seed=seed)
        batch = batch_size or getattr(sampler, "population_size", 25)
        storage = resolve_storage(storage)
        if storage is not None:
            metadata = dict(metadata or {})
            metadata.setdefault("n_trials", n_trials)
            metadata.setdefault("seed", sampler.seed)
            metadata.setdefault("batch", batch)
            metadata.setdefault("pipeline", pipeline_spec_string(speculate))
            population = getattr(sampler, "population_size", None)
            if population is not None:
                metadata.setdefault("population", population)
            if racing is not None:
                metadata.setdefault("racing", racing.spec_string())
            if self._fidelity is not None:
                metadata.setdefault("fidelity", self._fidelity.spec_string())
        study = create_study(
            directions=["minimize"] * len(self.objectives),
            sampler=sampler,
            study_name=study_name or self._default_study_name(),
            storage=storage,
            load_if_exists=load_if_exists,
            metadata=metadata,
        )
        # Pipelined trials stream individually, so candidates are scored
        # straight at the ladder-top physics (self.scenarios is already
        # the full-sibling stack when a fidelity ladder is set); the
        # cheap-level screening is a generation-batched feature of
        # run_blackbox.  The ladder still persists as resume identity.
        objective = CompositionObjective(
            self.scenarios,
            space=self.space,
            objectives=self.objectives,
            policy=self.policy,
            aggregate=self.aggregate,
            engine=self.engine,
        )
        dispatcher = PipelinedDispatcher(
            study,
            self.space.distributions(),
            workers=workers,
            executor=executor,
            speculate=speculate,
            batch_size=batch,
        )
        before = self.n_simulations
        dispatcher.optimize(
            objective,
            n_trials,
            racing=racing,
            fidelity=(
                self._fidelity.spec_string() if self._fidelity is not None else None
            ),
        )
        # Rebuild the evaluation record through the vectorized batch
        # evaluator (memoized) — COMPLETE trials only, exactly like a
        # resumed run_blackbox; a raced study's PRUNED trials were never
        # fully evaluated.
        comps = [
            self.space.from_params(t.params)
            for t in study.trials
            if t.state == TrialState.COMPLETE
        ]
        evaluated = self.evaluate(comps)
        unique = list({e.composition: e for e in evaluated}.values())
        n_pruned = sum(1 for t in study.trials if t.state == TrialState.PRUNED)
        return SearchResult(
            evaluated=unique,
            study=study,
            n_simulations=self.n_simulations - before,
            n_pruned=n_pruned,
        )

    # -- search-quality analysis (§4.4) -----------------------------------------

    def recovery_rate(
        self,
        found: SearchResult,
        exhaustive: SearchResult,
        objectives: Sequence[str] | None = None,
    ) -> float:
        """Fraction of true Pareto-optimal points the search recovered."""
        objs = tuple(objectives or self.objectives)
        true_front = pareto_points(exhaustive.front(objs), objs)
        found_points = pareto_points(found.evaluated, objs) if found.evaluated else np.empty((0, len(objs)))
        return pareto_recovery_rate(found_points, true_front)


def run_exhaustive_search(
    scenario: "Scenario | Sequence[Scenario]",
    space: ParameterSpace | None = None,
    policy: VectorizedPolicy | None = None,
    aggregate: str = "worst",
) -> SearchResult:
    """Convenience: exhaustive sweep of the (default) paper space."""
    runner = OptimizationRunner(
        scenario, space=space or PAPER_SPACE, policy=policy, aggregate=aggregate
    )
    return runner.run_exhaustive()


def run_blackbox_search(
    scenario: "Scenario | Sequence[Scenario]",
    n_trials: int = 350,
    population_size: int = 50,
    seed: int | None = None,
    space: ParameterSpace | None = None,
    storage: "StudyStorage | str | None" = None,
    study_name: str | None = None,
    load_if_exists: bool = False,
    launcher: Any | None = None,
    metadata: dict[str, Any] | None = None,
    policy: VectorizedPolicy | None = None,
    aggregate: str = "worst",
    racing: "RungSchedule | str | None" = None,
    engine: str = "auto",
    fidelity: "FidelityLadder | str | None" = None,
) -> SearchResult:
    """Convenience: the paper's NSGA-II configuration.

    Storage-aware and parallel-capable: ``storage``/``load_if_exists``
    give journaled, resumable studies (DESIGN.md §3); ``launcher`` fans
    batch evaluation across processes (DESIGN.md §4).  A scenario
    sequence plus ``aggregate`` gives robust multi-site search, and
    ``policy`` swaps the dispatch strategy (DESIGN.md §5).  ``racing``
    races each generation over ensemble-member subsets (DESIGN.md §8);
    ``fidelity`` adds the model-fidelity ladder on the orthogonal axis
    (DESIGN.md §11) — trials are scored at the ladder-top physics and
    raced generations screen on the cheap levels first.  The CLI's
    ``repro study run / resume`` verbs call straight through here.
    """
    runner = OptimizationRunner(
        scenario,
        space=space or PAPER_SPACE,
        launcher=launcher,
        policy=policy,
        aggregate=aggregate,
        engine=engine,
        fidelity=fidelity,
    )
    return runner.run_blackbox(
        n_trials=n_trials,
        sampler=NSGA2Sampler(population_size=population_size, seed=seed),
        storage=storage,
        study_name=study_name,
        load_if_exists=load_if_exists,
        metadata=metadata,
        racing=racing,
    )


def run_pipelined_search(
    scenario: "Scenario | Sequence[Scenario]",
    n_trials: int = 350,
    population_size: int = 50,
    seed: int | None = None,
    space: ParameterSpace | None = None,
    storage: "StudyStorage | str | None" = None,
    study_name: str | None = None,
    load_if_exists: bool = False,
    workers: int = 1,
    executor: str = "thread",
    speculate: int = 0,
    metadata: dict[str, Any] | None = None,
    policy: VectorizedPolicy | None = None,
    aggregate: str = "worst",
    racing: "RungSchedule | str | None" = None,
    engine: str = "auto",
    fidelity: "FidelityLadder | str | None" = None,
) -> SearchResult:
    """Convenience: the paper's NSGA-II search, pipelined (DESIGN.md §10).

    Identical search semantics to :func:`run_blackbox_search` — same
    sampler, storage/resume contract, racing integration, and fidelity
    identity — but trials stream through ``workers`` slots with no
    generation barrier, and ``speculate=D`` breeds the first ``D``
    candidates of each generation one generation early to keep slots
    full.  ``speculate=0`` reproduces the generation-batched front
    bit-for-bit.  The CLI's ``repro study run --pipeline`` calls
    straight through here.
    """
    runner = OptimizationRunner(
        scenario,
        space=space or PAPER_SPACE,
        policy=policy,
        aggregate=aggregate,
        engine=engine,
        fidelity=fidelity,
    )
    return runner.run_pipelined(
        n_trials=n_trials,
        sampler=NSGA2Sampler(population_size=population_size, seed=seed),
        storage=storage,
        study_name=study_name,
        load_if_exists=load_if_exists,
        metadata=metadata,
        racing=racing,
        workers=workers,
        executor=executor,
        speculate=speculate,
    )
