"""Financial evaluation of compositions (SAM's second half).

The real System Advisor Model couples performance models with financial
models; the paper's §4.3 lists "electricity cost reduction" as an
optimization objective.  This module supplies the financial layer:

* CAPEX / fixed-O&M per technology (defaults near NREL ATB 2024
  utility-scale figures),
* net present cost over the facility horizon (CAPEX + discounted O&M +
  discounted net grid electricity cost from the TOU tariff),
* LCOE-style "levelized cost of served energy", and
* a cost objective usable alongside the carbon objectives in any study
  (``EvaluatedComposition.objectives`` already exposes ``cost`` for the
  annual grid bill; this module adds the capital side).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..units import KW_PER_MW, WH_PER_MWH
from .composition import MicrogridComposition
from .metrics import EvaluatedComposition


@dataclass(frozen=True)
class CostParameters:
    """Technology cost assumptions (USD, utility scale, ATB-2024-like)."""

    solar_capex_usd_per_kw: float = 1_050.0
    wind_capex_usd_per_kw: float = 1_400.0
    battery_capex_usd_per_kwh: float = 280.0
    solar_om_usd_per_kw_year: float = 16.0
    wind_om_usd_per_kw_year: float = 40.0
    battery_om_usd_per_kwh_year: float = 7.0
    discount_rate: float = 0.07
    horizon_years: float = 20.0

    def __post_init__(self) -> None:
        for name in (
            "solar_capex_usd_per_kw",
            "wind_capex_usd_per_kw",
            "battery_capex_usd_per_kwh",
            "solar_om_usd_per_kw_year",
            "wind_om_usd_per_kw_year",
            "battery_om_usd_per_kwh_year",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if not 0.0 <= self.discount_rate < 1.0:
            raise ConfigurationError("discount rate must be in [0, 1)")
        if self.horizon_years <= 0:
            raise ConfigurationError("horizon must be positive")

    def annuity_factor(self) -> float:
        """Present value of a $1/year stream over the horizon."""
        r = self.discount_rate
        n = self.horizon_years
        if r == 0.0:
            return n
        return (1.0 - (1.0 + r) ** -n) / r


def capex_usd(comp: MicrogridComposition, params: CostParameters | None = None) -> float:
    """Upfront capital cost of a composition."""
    p = params or CostParameters()
    return (
        comp.solar_kw * p.solar_capex_usd_per_kw
        + comp.wind_mw * KW_PER_MW * p.wind_capex_usd_per_kw
        + comp.battery_mwh * 1_000.0 * p.battery_capex_usd_per_kwh
    )


def annual_om_usd(comp: MicrogridComposition, params: CostParameters | None = None) -> float:
    """Fixed annual operations & maintenance cost."""
    p = params or CostParameters()
    return (
        comp.solar_kw * p.solar_om_usd_per_kw_year
        + comp.wind_mw * KW_PER_MW * p.wind_om_usd_per_kw_year
        + comp.battery_mwh * 1_000.0 * p.battery_om_usd_per_kwh_year
    )


def net_present_cost_usd(
    evaluated: EvaluatedComposition, params: CostParameters | None = None
) -> float:
    """Total discounted cost of ownership over the horizon.

    CAPEX (year 0) + annuity of (fixed O&M + net grid electricity bill).
    The grid bill comes from the simulation's TOU accounting (imports
    charged, exports credited), assumed constant across years like the
    paper's §4.2 projection.
    """
    p = params or CostParameters()
    annual = annual_om_usd(evaluated.composition, p) + evaluated.metrics.electricity_cost_usd
    return capex_usd(evaluated.composition, p) + annual * p.annuity_factor()


def levelized_cost_usd_per_mwh(
    evaluated: EvaluatedComposition, params: CostParameters | None = None
) -> float:
    """Net present cost per (discounted) MWh of demand served.

    The conventional LCOE construction with served demand in place of
    generation, i.e. the levelized cost of *keeping the data center
    powered* under this composition.
    """
    p = params or CostParameters()
    served_mwh_per_year = (
        evaluated.metrics.demand_energy_wh
        - evaluated.metrics.unserved_energy_wh
    ) / WH_PER_MWH
    if served_mwh_per_year <= 0:
        raise ConfigurationError("no served energy to levelize over")
    return net_present_cost_usd(evaluated, p) / (served_mwh_per_year * p.annuity_factor())


def cost_carbon_points(
    evaluated: "list[EvaluatedComposition]", params: CostParameters | None = None
) -> np.ndarray:
    """(net present cost, operational tCO2/day) objective matrix.

    Feeds a cost-vs-carbon Pareto analysis — the "electricity cost
    reduction" objective of §4.3 combined with the carbon objective.
    """
    p = params or CostParameters()
    return np.array(
        [
            (net_present_cost_usd(e, p), e.operational_tco2_per_day)
            for e in evaluated
        ],
        dtype=np.float64,
    )
