"""Vectorized batch evaluation of many compositions at once.

This is the HPC path of the framework (hpc-parallel guide: *vectorize
across the independent axis*).  All N candidate compositions share the
same exogenous inputs (load, per-unit generation, carbon intensity); the
only per-candidate state is the battery energy.  So instead of running N
sequential year-simulations, we run **one** time loop whose state is an
N-vector:

* per-candidate generation at step t is a two-term linear combination
  (``solar_kw · solar_per_kw[t] + n_turb_eff · wind_per_turbine[t]``) —
  two scalar-by-vector multiplies;
* the battery advance is one call to
  :func:`repro.sam.batterymodels.clc.clc_step_arrays` with the capacity
  vector — the *same equations* the co-simulated battery uses;
* imports/exports/emissions accumulate into N-vectors in place.

For the paper's 1 089-point exhaustive sweep this is ~400× faster than
looping the co-simulator, while agreeing with it to float tolerance
(see ``tests/test_cross_validation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..sam.batterymodels.clc import CLCParameters, clc_step_arrays
from ..sam.wind.wake import jensen_array_efficiency
from ..units import SECONDS_PER_HOUR, WH_PER_KWH
from .composition import MicrogridComposition
from .embodied import embodied_carbon_kg
from .metrics import EvaluatedComposition, SimulationMetrics
from .scenario import Scenario

#: grid import below this power (W) counts as "islanded" for the
#: reliability metric — float noise guard at MW scale.
ISLANDED_EPS_W = 1e-3


@dataclass
class BatchEvaluator:
    """Evaluates batches of compositions against one scenario."""

    scenario: Scenario
    battery_params: CLCParameters = field(
        default_factory=lambda: CLCParameters(capacity_wh=1.0)
    )
    initial_soc: float = 0.5

    def evaluate(
        self, compositions: Sequence[MicrogridComposition]
    ) -> list[EvaluatedComposition]:
        """Simulate all compositions over the scenario horizon."""
        if not compositions:
            return []
        sc = self.scenario
        n = len(compositions)
        t_steps = sc.n_steps
        dt_s = sc.step_s
        dt_h = dt_s / SECONDS_PER_HOUR

        # -- per-candidate constants (N-vectors) ---------------------------
        solar_kw = np.array([c.solar_kw for c in compositions], dtype=np.float64)
        turb_eff = np.array(
            [c.n_turbines * jensen_array_efficiency(c.n_turbines) for c in compositions],
            dtype=np.float64,
        )
        capacity_wh = np.array([c.battery_wh for c in compositions], dtype=np.float64)

        p = self.battery_params
        initial_soc = float(np.clip(self.initial_soc, p.soc_min, p.soc_max))
        energy_wh = capacity_wh * initial_soc

        # -- accumulators (in place, hpc-parallel guide) ---------------------
        import_wh = np.zeros(n)
        export_wh = np.zeros(n)
        charge_wh = np.zeros(n)
        discharge_wh = np.zeros(n)
        emissions_kg = np.zeros(n)
        cost_usd = np.zeros(n)
        islanded_steps = np.zeros(n)

        load = sc.workload.power_w
        per_kw = sc.solar_per_kw_w
        per_turb = sc.wind_per_turbine_w
        ci = sc.carbon.intensity_g_per_kwh
        prices = sc.tariff.hourly_prices(t_steps)
        export_credit = sc.tariff.export_credit_usd_kwh

        for t in range(t_steps):
            gen_t = per_kw[t] * solar_kw + per_turb[t] * turb_eff
            net_t = gen_t - load[t]  # + = surplus

            # Greedy self-consumption (DefaultPolicy): the battery sees the
            # full net balance as its request.
            accepted, energy_wh = clc_step_arrays(
                capacity_wh,
                energy_wh,
                net_t,
                dt_s,
                eta_charge=p.eta_charge,
                eta_discharge=p.eta_discharge,
                max_charge_c_rate=p.max_charge_c_rate,
                max_discharge_c_rate=p.max_discharge_c_rate,
                taper_soc_threshold=p.taper_soc_threshold,
                soc_min=p.soc_min,
                soc_max=p.soc_max,
                self_discharge_per_hour=p.self_discharge_per_hour,
            )
            residual = net_t - accepted  # + = export, − = import

            imp_t = np.maximum(-residual, 0.0) * dt_h
            exp_t = np.maximum(residual, 0.0) * dt_h
            import_wh += imp_t
            export_wh += exp_t
            charge_wh += np.maximum(accepted, 0.0) * dt_h
            discharge_wh += np.maximum(-accepted, 0.0) * dt_h
            emissions_kg += imp_t / WH_PER_KWH * ci[t] / 1_000.0
            cost_usd += imp_t / WH_PER_KWH * prices[t] - exp_t / WH_PER_KWH * export_credit
            islanded_steps += imp_t <= ISLANDED_EPS_W * dt_h

        demand_wh = float(load.sum() * dt_h)
        gen_total_wh = (
            per_kw.sum() * dt_h * solar_kw + per_turb.sum() * dt_h * turb_eff
        )
        usable_wh = capacity_wh * (p.soc_max - p.soc_min)
        horizon_days = sc.horizon_days

        results: list[EvaluatedComposition] = []
        for i, comp in enumerate(compositions):
            metrics = SimulationMetrics(
                horizon_days=horizon_days,
                demand_energy_wh=demand_wh,
                onsite_generation_wh=float(gen_total_wh[i]),
                grid_import_wh=float(import_wh[i]),
                grid_export_wh=float(export_wh[i]),
                battery_charge_wh=float(charge_wh[i]),
                battery_discharge_wh=float(discharge_wh[i]),
                operational_emissions_kg=float(emissions_kg[i]),
                battery_usable_wh=float(usable_wh[i]),
                electricity_cost_usd=float(cost_usd[i]),
                islanded_fraction=float(islanded_steps[i]) / t_steps,
            )
            results.append(
                EvaluatedComposition(
                    composition=comp,
                    embodied_kg=embodied_carbon_kg(comp),
                    metrics=metrics,
                )
            )
        return results

    def evaluate_one(self, composition: MicrogridComposition) -> EvaluatedComposition:
        """Evaluate a single composition (N=1 batch)."""
        return self.evaluate([composition])[0]

    def soc_history(self, composition: MicrogridComposition) -> np.ndarray:
        """Hourly SoC trace of one composition (degradation analyses)."""
        sc = self.scenario
        p = self.battery_params
        cap = composition.battery_wh
        if cap <= 0:
            return np.zeros(sc.n_steps + 1)
        eff = composition.n_turbines * jensen_array_efficiency(composition.n_turbines)
        gen = sc.solar_per_kw_w * composition.solar_kw + sc.wind_per_turbine_w * eff
        net = gen - sc.workload.power_w
        energy = cap * float(np.clip(self.initial_soc, p.soc_min, p.soc_max))
        soc = np.empty(sc.n_steps + 1)
        soc[0] = energy / cap
        for t in range(sc.n_steps):
            _, energy = clc_step_arrays(
                cap,
                energy,
                float(net[t]),
                sc.step_s,
                eta_charge=p.eta_charge,
                eta_discharge=p.eta_discharge,
                max_charge_c_rate=p.max_charge_c_rate,
                max_discharge_c_rate=p.max_discharge_c_rate,
                taper_soc_threshold=p.taper_soc_threshold,
                soc_min=p.soc_min,
                soc_max=p.soc_max,
                self_discharge_per_hour=p.self_discharge_per_hour,
            )
            soc[t + 1] = energy / cap
        return soc


def coverage_grid(
    scenario: Scenario,
    solar_kw_levels: Sequence[float],
    n_turbine_levels: Sequence[int],
) -> np.ndarray:
    """Coverage matrix over (solar, wind) without batteries — Figure 4.

    Fully vectorized: with no storage the coverage of every combination
    follows from ``min(load, generation)`` summed over time, computed as
    one broadcast over a (T, n_solar, n_wind) tensor in chunks.
    """
    sc = scenario
    solar_levels = np.asarray(list(solar_kw_levels), dtype=np.float64)
    turb_levels = np.asarray(list(n_turbine_levels), dtype=np.float64)
    eff = np.array([jensen_array_efficiency(int(k)) for k in turb_levels])
    load = sc.workload.power_w
    demand = load.sum()

    coverage = np.empty((solar_levels.size, turb_levels.size))
    for j, (k, e) in enumerate(zip(turb_levels, eff)):
        wind_profile = sc.wind_per_turbine_w * (k * e)  # (T,)
        # direct (no-storage) supply: elementwise min of load and generation
        gen = sc.solar_per_kw_w[:, None] * solar_levels[None, :] + wind_profile[:, None]
        served = np.minimum(gen, load[:, None]).sum(axis=0)
        coverage[:, j] = served / demand
    return coverage
