"""Vectorized batch evaluation of many compositions at once.

This is the HPC path of the framework (hpc-parallel guide: *vectorize
across the independent axis*).  All N candidate compositions share the
same exogenous inputs (load, per-unit generation, carbon intensity); the
only per-candidate state is the battery energy.  So instead of running N
sequential year-simulations, we run **one** time loop whose state is an
N-vector — and, since PR 2, an (S, N) tensor over S scenarios at once:

* per-candidate generation at step t is a two-term linear combination
  (``solar_kw · solar_per_kw[t] + n_turb_eff · wind_per_turbine[t]``) —
  two scalar-by-vector multiplies;
* the battery/grid dispatch *decision* is delegated to a
  :class:`~repro.core.dispatch.VectorizedPolicy` (DESIGN.md §5) — greedy
  self-consumption by default, carbon-/price-aware strategies as
  drop-ins — and the battery advance is one call to
  :func:`repro.sam.batterymodels.clc.clc_step_arrays` with the capacity
  vector — the *same equations* the co-simulated battery uses;
* imports/exports/emissions accumulate into (S, N) tensors in place.

For the paper's 1 089-point exhaustive sweep this is ~400× faster than
looping the co-simulator, while agreeing with it to float tolerance
(see ``tests/test_cross_validation.py``).  The stacked multi-scenario
loop (:func:`evaluate_across_scenarios`) is additionally bit-for-bit
identical to evaluating each scenario serially — every (scenario,
candidate) cell is independent, so stacking cannot change the numbers
(``benchmarks/bench_dispatch.py`` measures the throughput gain).  The
scenario axis is deliberately agnostic about *what* the scenarios are:
paper sites, weather years, or a full cross-product ensemble from
:mod:`repro.core.ensemble` (DESIGN.md §6,
``benchmarks/bench_ensemble.py``) all ride the same loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..sam.batterymodels.clc import CLCParameters
from ..sam.batterymodels.degradation import DegradationModel
from ..sam.wind.wake import jensen_array_efficiency
from ..units import DAYS_PER_YEAR, SECONDS_PER_HOUR
from .composition import MicrogridComposition
from .dispatch import (
    ISLANDED_EPS_W,
    DispatchResult,
    ScenarioStack,
    VectorizedPolicy,
    run_dispatch,
    stack_scenarios,
)
from .embodied import embodied_carbon_kg
from .metrics import EvaluatedComposition, SimulationMetrics
from .scenario import Scenario

__all__ = [
    "ISLANDED_EPS_W",
    "BatchEvaluator",
    "coverage_grid",
    "evaluate_across_scenarios",
    "evaluate_member_slice",
]


def _candidate_vectors(
    compositions: Sequence[MicrogridComposition],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(solar_kw, wake-adjusted turbine factor, battery capacity) (N,)-vectors."""
    solar_kw = np.array([c.solar_kw for c in compositions], dtype=np.float64)
    turb_eff = np.array(
        [c.n_turbines * jensen_array_efficiency(c.n_turbines) for c in compositions],
        dtype=np.float64,
    )
    capacity_wh = np.array([c.battery_wh for c in compositions], dtype=np.float64)
    return solar_kw, turb_eff, capacity_wh


def _results_from_dispatch(
    stack: ScenarioStack,
    compositions: Sequence[MicrogridComposition],
    solar_kw: np.ndarray,
    turb_eff: np.ndarray,
    capacity_wh: np.ndarray,
    params: CLCParameters,
    res: DispatchResult,
) -> list[list[EvaluatedComposition]]:
    """Package accumulated (S, N) flows as per-scenario evaluation lists."""
    dt_h = stack.step_s / SECONDS_PER_HOUR
    t_steps = stack.n_steps
    demand_wh = stack.load_w.sum(axis=1) * dt_h  # (S,)
    gen_total_wh = (
        stack.solar_per_kw_w.sum(axis=1)[:, None] * dt_h * solar_kw
        + stack.wind_per_turbine_w.sum(axis=1)[:, None] * dt_h * turb_eff
    )  # (S, N)
    usable_wh = capacity_wh * (params.soc_max - params.soc_min)
    embodied = [embodied_carbon_kg(c) for c in compositions]
    deg_model = DegradationModel()

    out: list[list[EvaluatedComposition]] = []
    for s, scenario in enumerate(stack.scenarios):
        horizon_days = scenario.horizon_days
        degradation = scenario.battery_degradation
        years = horizon_days / DAYS_PER_YEAR
        if degradation == "rainflow" and res.soc is None:
            raise ConfigurationError(
                "rainflow degradation needs a SoC trace; run the dispatch "
                "with trace_soc=True (evaluate_across_scenarios does this "
                "automatically)"
            )
        row: list[EvaluatedComposition] = []
        for i, comp in enumerate(compositions):
            fade = 0.0
            if degradation is not None and usable_wh[i] > 0.0:
                if degradation == "linear":
                    # Closed form, no trace needed: √t calendar fade plus
                    # equivalent-full-cycle damage at 100 % DoD cost.
                    efc = float(res.discharge_wh[s, i]) / float(usable_wh[i])
                    p = deg_model.params
                    fade = (
                        deg_model.calendar_fade(years)
                        + efc * p.eol_fade / p.cycles_to_failure_full_dod
                    )
                else:  # rainflow
                    fade = deg_model.total_fade(res.soc[s, i], years)
            metrics = SimulationMetrics(
                horizon_days=horizon_days,
                demand_energy_wh=float(demand_wh[s]),
                onsite_generation_wh=float(gen_total_wh[s, i]),
                grid_import_wh=float(res.import_wh[s, i]),
                grid_export_wh=float(res.export_wh[s, i]),
                battery_charge_wh=float(res.charge_wh[s, i]),
                battery_discharge_wh=float(res.discharge_wh[s, i]),
                operational_emissions_kg=float(res.emissions_kg[s, i]),
                battery_usable_wh=float(usable_wh[i]),
                unserved_energy_wh=float(res.unserved_wh[s, i]),
                electricity_cost_usd=float(res.cost_usd[s, i]),
                islanded_fraction=float(res.islanded_steps[s, i]) / t_steps,
                battery_fade=fade,
            )
            row.append(
                EvaluatedComposition(
                    composition=comp, embodied_kg=embodied[i], metrics=metrics
                )
            )
        out.append(row)
    return out


def evaluate_across_scenarios(
    scenarios: Sequence[Scenario],
    compositions: Sequence[MicrogridComposition],
    policy: VectorizedPolicy | None = None,
    battery_params: CLCParameters | None = None,
    initial_soc: float = 0.5,
    engine: str = "auto",
) -> list[list[EvaluatedComposition]]:
    """Evaluate the full N-candidates × S-scenarios tensor in one time loop.

    Returns one evaluation list per scenario (``result[s][i]`` pairs
    ``scenarios[s]`` with ``compositions[i]``).  Results are bit-for-bit
    identical to running :class:`BatchEvaluator` per scenario — every
    (scenario, candidate) cell is an independent column of the stacked
    loop — while amortizing the Python-level time loop across all
    scenarios (DESIGN.md §5).  ``engine`` selects the dispatch execution
    strategy (DESIGN.md §9); every engine is bit-for-bit equal to the
    reference loop, so this changes throughput only.
    """
    if not compositions:
        return [[] for _ in scenarios]
    stack = stack_scenarios(scenarios)
    solar_kw, turb_eff, capacity_wh = _candidate_vectors(compositions)
    params = battery_params or CLCParameters(capacity_wh=1.0)
    # Rainflow degradation (DESIGN.md §11) counts cycles off the SoC
    # trace, so those scenarios force trace mode (the auto engine falls
    # back to the reference loop under tracing — engines are bit-equal,
    # so only throughput changes).
    needs_trace = any(s.battery_degradation == "rainflow" for s in scenarios)
    res = run_dispatch(
        stack,
        solar_kw,
        turb_eff,
        capacity_wh,
        params,
        initial_soc=initial_soc,
        policy=policy,
        trace_soc=needs_trace,
        engine=engine,
    )
    return _results_from_dispatch(
        stack, compositions, solar_kw, turb_eff, capacity_wh, params, res
    )


def evaluate_member_slice(
    scenarios: Sequence[Scenario],
    member_indices: Sequence[int],
    compositions: Sequence[MicrogridComposition],
    policy: VectorizedPolicy | None = None,
    battery_params: CLCParameters | None = None,
    initial_soc: float = 0.5,
    engine: str = "auto",
) -> list[list[EvaluatedComposition]]:
    """Evaluate a *member slice* of a scenario ensemble (DESIGN.md §8).

    The partial-stack primitive of the racing engine: the same (S, N)
    tensor loop as :func:`evaluate_across_scenarios`, run over only the
    ensemble members named by ``member_indices``.  Because every
    (scenario, candidate) cell of the stacked loop is independent, the
    results are bit-for-bit the rows of a full-stack evaluation — a rung
    can therefore be filled incrementally, member subset by member
    subset, and the finalists' full-ensemble values are identical to a
    never-raced evaluation.

    Returns one evaluation list per *slice position*:
    ``result[j][i]`` pairs ``scenarios[member_indices[j]]`` with
    ``compositions[i]``.
    """
    indices = [int(j) for j in member_indices]
    if not indices:
        raise ConfigurationError("member slice needs at least one member index")
    if len(set(indices)) != len(indices):
        raise ConfigurationError(f"duplicate member indices: {indices}")
    for j in indices:
        if not 0 <= j < len(scenarios):
            raise ConfigurationError(
                f"member index {j} out of range for {len(scenarios)} scenarios"
            )
    return evaluate_across_scenarios(
        [scenarios[j] for j in indices],
        compositions,
        policy=policy,
        battery_params=battery_params,
        initial_soc=initial_soc,
        engine=engine,
    )


@dataclass
class BatchEvaluator:
    """Evaluates batches of compositions against one scenario.

    ``policy`` selects the dispatch strategy (DESIGN.md §5); ``None``
    means the paper's greedy self-consumption
    (:class:`~repro.core.dispatch.DefaultDispatch`).
    """

    scenario: Scenario
    battery_params: CLCParameters = field(
        default_factory=lambda: CLCParameters(capacity_wh=1.0)
    )
    initial_soc: float = 0.5
    policy: VectorizedPolicy | None = None
    #: dispatch execution strategy (DESIGN.md §9); bit-for-bit across engines
    engine: str = "auto"

    def evaluate(
        self, compositions: Sequence[MicrogridComposition]
    ) -> list[EvaluatedComposition]:
        """Simulate all compositions over the scenario horizon."""
        if not compositions:
            return []
        return evaluate_across_scenarios(
            [self.scenario],
            compositions,
            policy=self.policy,
            battery_params=self.battery_params,
            initial_soc=self.initial_soc,
            engine=self.engine,
        )[0]

    def evaluate_one(self, composition: MicrogridComposition) -> EvaluatedComposition:
        """Evaluate a single composition (N=1 batch)."""
        return self.evaluate([composition])[0]

    def soc_histories(
        self, compositions: Sequence[MicrogridComposition]
    ) -> np.ndarray:
        """Per-step SoC traces, shape ``(n_steps + 1, N)``.

        Runs the dispatch engine in trace mode: one vectorized C/L/C
        step per hour for *all* compositions, instead of the historical
        per-composition scalar loop.
        """
        stack = stack_scenarios([self.scenario])
        solar_kw, turb_eff, capacity_wh = _candidate_vectors(compositions)
        res = run_dispatch(
            stack,
            solar_kw,
            turb_eff,
            capacity_wh,
            self.battery_params,
            initial_soc=self.initial_soc,
            policy=self.policy,
            trace_soc=True,
        )
        return res.soc[0].T  # (N, T+1) → (T+1, N)

    def soc_history(self, composition: MicrogridComposition) -> np.ndarray:
        """Hourly SoC trace of one composition (degradation analyses)."""
        if composition.battery_wh <= 0:
            return np.zeros(self.scenario.n_steps + 1)
        return self.soc_histories([composition])[:, 0]


def coverage_grid(
    scenario: Scenario,
    solar_kw_levels: Sequence[float],
    n_turbine_levels: Sequence[int],
    chunk_steps: int = 2_048,
) -> np.ndarray:
    """Coverage matrix over (solar, wind) without batteries — Figure 4.

    Fully vectorized: with no storage the coverage of every combination
    follows from ``min(load, generation)`` summed over time, computed as
    one broadcast over a (T, n_solar, n_wind) tensor in chunks of
    ``chunk_steps`` timesteps, bounding peak memory on long horizons and
    dense level grids to O(chunk_steps × n_solar) per wind level.
    """
    sc = scenario
    solar_levels = np.asarray(list(solar_kw_levels), dtype=np.float64)
    turb_levels = np.asarray(list(n_turbine_levels), dtype=np.float64)
    if chunk_steps <= 0:
        raise ConfigurationError(f"chunk_steps must be positive, got {chunk_steps}")
    eff = np.array([jensen_array_efficiency(int(k)) for k in turb_levels])
    load = sc.workload.power_w
    demand = load.sum()
    t_steps = load.size

    coverage = np.empty((solar_levels.size, turb_levels.size))
    for j, (k, e) in enumerate(zip(turb_levels, eff)):
        wind_profile = sc.wind_per_turbine_w * (k * e)  # (T,)
        served = np.zeros(solar_levels.size)
        for start in range(0, t_steps, chunk_steps):
            stop = min(start + chunk_steps, t_steps)
            # direct (no-storage) supply: elementwise min of load and generation
            gen = (
                sc.solar_per_kw_w[start:stop, None] * solar_levels[None, :]
                + wind_profile[start:stop, None]
            )
            served += np.minimum(gen, load[start:stop, None]).sum(axis=0)
        coverage[:, j] = served / demand
    return coverage
