"""Vectorized dispatch policies: one batched time loop for any strategy.

This is the "operational strategies" seam of the paper (§3.3 — demand
response, carbon-aware scheduling) lifted onto the vectorized fast path
(DESIGN.md §5).  Historically each policy experiment had to run through
the co-simulator (~400× slower, DESIGN.md §2) because the fast path
hard-coded greedy self-consumption; here the dispatch *decision* is a
:class:`VectorizedPolicy` whose :meth:`~VectorizedPolicy.dispatch_arrays`
operates on whole candidate batches at once, so every policy — including
the carbon- and price-aware ones — runs at batch-evaluator speed.

Shapes.  The engine state is an ``(S, N)`` tensor — S scenarios (sites,
weather years) × N candidate compositions — advanced by **one** time
loop: exogenous profiles are stacked ``(S, T)`` arrays
(:class:`ScenarioStack`), per-candidate constants are ``(N,)`` vectors,
and every per-step quantity (net balance, SoC, battery request, grid
flows) is an ``(S, N)`` array.  A policy never sees scalars; it maps the
``(S, N)`` net balance plus the step's price/carbon-intensity column to
an ``(S, N)`` battery *request* which the shared C/L/C physics
(:func:`repro.sam.batterymodels.clc.clc_step_arrays`) then clips.

Equivalence.  Every vectorized policy has a scalar co-simulated twin
(:meth:`VectorizedPolicy.cosim_twin`) driving the same battery equations
through :mod:`repro.cosim.policy`; ``tests/test_cross_validation.py``
pins the two paths together to float tolerance on both paper sites.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..sam.batterymodels.clc import CLCParameters, clc_step_arrays
from ..units import SECONDS_PER_HOUR, WH_PER_KWH

#: grid import below this power (W) counts as "islanded" for the
#: reliability metric — float noise guard at MW scale.
ISLANDED_EPS_W = 1e-3

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cosim.policy import MicrogridPolicy
    from .scenario import Scenario

#: Request sentinel: "charge as fast as the battery physically allows".
#: The C/L/C step clips every request to the tapered C-rate limit and the
#: SoC headroom, so an unbounded request is safe on both paths.
UNLIMITED_CHARGE_W = float(np.inf)


def _threshold_for(value: "float | np.ndarray", scenario_index: int) -> float:
    """Extract the scalar threshold a single-scenario twin should use."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        return float(arr)
    return float(arr.reshape(-1)[scenario_index])


class VectorizedPolicy(ABC):
    """Batched dispatch decision: net balance → battery power request.

    Implementations are pure functions of the step inputs (no internal
    state between steps — all state lives in the engine's SoC tensor),
    which is what makes them trivially batchable and picklable for the
    parallel launchers (DESIGN.md §4).
    """

    #: islanded policies route residual deficits to *unserved* demand
    #: instead of grid import (and export is curtailment).
    islanded: bool = False

    @abstractmethod
    def dispatch_arrays(
        self,
        net_w: np.ndarray,
        soc: np.ndarray,
        prices: "np.ndarray | float",
        ci: "np.ndarray | float",
        t_s: float,
        dt_s: float,
    ) -> np.ndarray:
        """Battery terminal-power request for every (scenario, candidate).

        Parameters
        ----------
        net_w:
            ``(S, N)`` net power balance (production − consumption; + =
            surplus) at this step.
        soc:
            ``(S, N)`` battery state of charge (fraction of nameplate).
        prices:
            ``(S, 1)`` electricity price column ($/kWh) at this step.
        ci:
            ``(S, 1)`` grid carbon-intensity column (g/kWh) at this step.
        t_s / dt_s:
            Step start time and length (seconds).

        Returns the requested battery terminal power (``+`` = charge,
        ``−`` = discharge), broadcastable to ``(S, N)``; the C/L/C step
        clips it to the physical limits, and the remainder is routed to
        the grid (or unserved demand for islanded policies).
        """

    def cosim_twin(self, scenario: "Scenario", scenario_index: int = 0) -> "MicrogridPolicy":
        """The scalar co-simulation policy making identical decisions.

        ``scenario_index`` selects the row of any per-scenario threshold
        arrays (policies built by :func:`make_policy` over several
        scenarios carry ``(S, 1)`` thresholds).
        """
        raise NotImplementedError(f"{type(self).__name__} has no co-simulated twin")


@dataclass(frozen=True)
class DefaultDispatch(VectorizedPolicy):
    """Greedy self-consumption — the paper's operating strategy.

    The battery sees the full net balance as its request: surplus
    charges, deficit discharges, the grid takes the remainder.
    """

    def dispatch_arrays(self, net_w, soc, prices, ci, t_s, dt_s):
        return net_w

    def cosim_twin(self, scenario, scenario_index: int = 0):
        from ..cosim.policy import DefaultPolicy

        return DefaultPolicy()


@dataclass(frozen=True)
class IslandedDispatch(VectorizedPolicy):
    """Off-grid operation: greedy battery use, residual deficit unserved.

    Identical battery request to :class:`DefaultDispatch`; the engine
    routes the residual to unserved demand / curtailment instead of the
    grid (reliability metric, §4.3).
    """

    islanded: bool = True

    def dispatch_arrays(self, net_w, soc, prices, ci, t_s, dt_s):
        return net_w

    def cosim_twin(self, scenario, scenario_index: int = 0):
        from ..cosim.policy import IslandedPolicy

        return IslandedPolicy()


def in_daily_window(t_s: float, start_h: float, end_h: float) -> bool:
    """Whether local hour-of-day of ``t_s`` lies in ``[start_h, end_h)``
    (windows may wrap midnight)."""
    hour = (t_s / SECONDS_PER_HOUR) % 24.0
    if start_h <= end_h:
        return start_h <= hour < end_h
    return hour >= start_h or hour < end_h


@dataclass(frozen=True)
class TimeWindowDispatch(VectorizedPolicy):
    """Discharge only inside a daily window (evening-peak shaving).

    Charging from surplus is always allowed; outside the window deficits
    go straight to the grid and the battery idles.
    """

    discharge_start_h: float = 16.0
    discharge_end_h: float = 22.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.discharge_start_h < 24.0 or not 0.0 < self.discharge_end_h <= 24.0:
            raise ConfigurationError("discharge window hours must lie in [0, 24]")

    def dispatch_arrays(self, net_w, soc, prices, ci, t_s, dt_s):
        if in_daily_window(t_s, self.discharge_start_h, self.discharge_end_h):
            return net_w
        return np.maximum(net_w, 0.0)

    def cosim_twin(self, scenario, scenario_index: int = 0):
        from ..cosim.policy import TimeWindowPolicy

        return TimeWindowPolicy(self.discharge_start_h, self.discharge_end_h)


@dataclass(frozen=True, eq=False)
class CarbonAwareDispatch(VectorizedPolicy):
    """Carbon-aware charge deferral (§3.3 "carbon-aware scheduling").

    Renewable surplus always charges (zero marginal carbon).  During
    deficits the stored charge is *deferred* while the grid is clean:
    the battery discharges only when the step's carbon intensity is at
    or above ``ci_discharge_g_per_kwh``, preserving stored energy for
    the dirtiest hours.  The threshold may be a scalar or an ``(S, 1)``
    per-scenario array (each grid has its own "dirty" level).
    """

    ci_discharge_g_per_kwh: "float | np.ndarray" = 420.0

    def dispatch_arrays(self, net_w, soc, prices, ci, t_s, dt_s):
        dirty = np.asarray(ci) >= self.ci_discharge_g_per_kwh
        return np.where(net_w >= 0.0, net_w, np.where(dirty, net_w, 0.0))

    def cosim_twin(self, scenario, scenario_index: int = 0):
        from ..cosim.policy import CarbonAwarePolicy

        return CarbonAwarePolicy(
            ci_g_per_kwh=scenario.carbon.intensity_g_per_kwh,
            step_s=scenario.step_s,
            ci_discharge_g_per_kwh=_threshold_for(
                self.ci_discharge_g_per_kwh, scenario_index
            ),
        )


@dataclass(frozen=True, eq=False)
class TouArbitrageDispatch(VectorizedPolicy):
    """TOU price arbitrage / peak shaving.

    Three price regimes per step (thresholds scalar or ``(S, 1)``):

    * price ≤ ``charge_price_usd_kwh`` (off-peak): charge as fast as the
      battery allows — surplus first, the grid covers the rest (that is
      the arbitrage buy);
    * price ≥ ``discharge_price_usd_kwh`` (on-peak): greedy dispatch —
      discharge into deficits, shaving the expensive peak;
    * in between: hold — charge from surplus only, never discharge.
    """

    charge_price_usd_kwh: "float | np.ndarray" = 0.10
    discharge_price_usd_kwh: "float | np.ndarray" = 0.20

    def __post_init__(self) -> None:
        if np.any(
            np.asarray(self.charge_price_usd_kwh)
            >= np.asarray(self.discharge_price_usd_kwh)
        ):
            raise ConfigurationError("charge price threshold must be below discharge")

    def dispatch_arrays(self, net_w, soc, prices, ci, t_s, dt_s):
        p = np.asarray(prices)
        cheap = p <= self.charge_price_usd_kwh
        peak = p >= self.discharge_price_usd_kwh
        request = np.where(peak, net_w, np.maximum(net_w, 0.0))
        return np.where(cheap, UNLIMITED_CHARGE_W, request)

    def cosim_twin(self, scenario, scenario_index: int = 0):
        from ..cosim.policy import TouArbitragePolicy

        return TouArbitragePolicy(
            prices_usd_kwh=scenario.tariff.hourly_prices(scenario.n_steps),
            step_s=scenario.step_s,
            charge_price_usd_kwh=_threshold_for(
                self.charge_price_usd_kwh, scenario_index
            ),
            discharge_price_usd_kwh=_threshold_for(
                self.discharge_price_usd_kwh, scenario_index
            ),
        )


# -- policy registry ---------------------------------------------------------


def _column(values: Sequence[float]) -> np.ndarray:
    return np.asarray(list(values), dtype=np.float64).reshape(-1, 1)


def _make_carbon_aware(scenarios: "Sequence[Scenario]") -> CarbonAwareDispatch:
    # Per-scenario "dirty grid" threshold: the site's median intensity.
    return CarbonAwareDispatch(
        ci_discharge_g_per_kwh=_column(
            [float(np.median(sc.carbon.intensity_g_per_kwh)) for sc in scenarios]
        )
    )


def _make_tou_arbitrage(scenarios: "Sequence[Scenario]") -> TouArbitrageDispatch:
    # Buy at each site's off-peak floor, sell stored energy into its peak.
    return TouArbitrageDispatch(
        charge_price_usd_kwh=_column([sc.tariff.off_peak_usd_kwh for sc in scenarios]),
        discharge_price_usd_kwh=_column([sc.tariff.on_peak_usd_kwh for sc in scenarios]),
    )


POLICY_BUILDERS: "dict[str, Callable[[Sequence[Scenario]], VectorizedPolicy]]" = {
    "default": lambda scenarios: DefaultDispatch(),
    "islanded": lambda scenarios: IslandedDispatch(),
    "time_window": lambda scenarios: TimeWindowDispatch(),
    "carbon_aware": _make_carbon_aware,
    "tou_arbitrage": _make_tou_arbitrage,
}

POLICY_NAMES: tuple[str, ...] = tuple(sorted(POLICY_BUILDERS))


def make_policy(name: str, scenarios: "Sequence[Scenario]") -> VectorizedPolicy:
    """Build a named policy with per-scenario thresholds (CLI seam)."""
    try:
        builder = POLICY_BUILDERS[name]
    except KeyError:
        known = ", ".join(POLICY_NAMES)
        raise ConfigurationError(f"unknown dispatch policy '{name}' (known: {known})") from None
    if not scenarios:
        raise ConfigurationError("make_policy needs at least one scenario")
    return builder(scenarios)


# -- scenario stacking -------------------------------------------------------


@dataclass(frozen=True)
class ScenarioStack:
    """Exogenous inputs of S aligned scenarios as ``(S, T)`` arrays."""

    scenarios: "tuple[Scenario, ...]"
    load_w: np.ndarray
    solar_per_kw_w: np.ndarray
    wind_per_turbine_w: np.ndarray
    ci_g_per_kwh: np.ndarray
    prices_usd_kwh: np.ndarray
    #: per-scenario export credit, shaped (S, 1) for broadcasting
    export_credit_usd_kwh: np.ndarray
    step_s: float

    @property
    def n_scenarios(self) -> int:
        return int(self.load_w.shape[0])

    @property
    def n_steps(self) -> int:
        return int(self.load_w.shape[1])


def stack_scenarios(scenarios: "Sequence[Scenario]") -> ScenarioStack:
    """Stack scenarios for the batched time loop (must share the grid).

    All scenarios must have the same horizon and step length — the loop
    advances every (scenario, candidate) cell in lock-step.
    """
    if not scenarios:
        raise ConfigurationError("need at least one scenario to stack")
    first = scenarios[0]
    for sc in scenarios[1:]:
        if sc.n_steps != first.n_steps or sc.step_s != first.step_s:
            raise ConfigurationError(
                f"scenarios misaligned: '{sc.name}' has {sc.n_steps} steps of "
                f"{sc.step_s}s vs '{first.name}' with {first.n_steps} of {first.step_s}s"
            )
    return ScenarioStack(
        scenarios=tuple(scenarios),
        load_w=np.stack([sc.workload.power_w for sc in scenarios]),
        solar_per_kw_w=np.stack([sc.solar_per_kw_w for sc in scenarios]),
        wind_per_turbine_w=np.stack([sc.wind_per_turbine_w for sc in scenarios]),
        ci_g_per_kwh=np.stack([sc.carbon.intensity_g_per_kwh for sc in scenarios]),
        prices_usd_kwh=np.stack(
            [sc.tariff.hourly_prices(sc.n_steps) for sc in scenarios]
        ),
        export_credit_usd_kwh=_column(
            [sc.tariff.export_credit_usd_kwh for sc in scenarios]
        ),
        step_s=first.step_s,
    )


# -- the batched engine ------------------------------------------------------


@dataclass
class DispatchResult:
    """Accumulated flows of one batched dispatch run (all ``(S, N)``)."""

    import_wh: np.ndarray
    export_wh: np.ndarray
    charge_wh: np.ndarray
    discharge_wh: np.ndarray
    unserved_wh: np.ndarray
    emissions_kg: np.ndarray
    cost_usd: np.ndarray
    islanded_steps: np.ndarray
    #: trace mode: SoC per step, ``(S, N, T+1)`` (None unless requested)
    soc: np.ndarray | None = None
    #: trace mode: per-step flows in W, each ``(S, N, T)``
    flows: dict[str, np.ndarray] | None = None


def run_dispatch(
    stack: ScenarioStack,
    solar_kw: np.ndarray,
    turbine_factor: np.ndarray,
    capacity_wh: np.ndarray,
    params: CLCParameters,
    initial_soc: float = 0.5,
    policy: VectorizedPolicy | None = None,
    trace_soc: bool = False,
    trace_flows: bool = False,
    engine: str = "auto",
) -> DispatchResult:
    """Advance all S × N (scenario, candidate) cells through one time loop.

    ``solar_kw`` / ``turbine_factor`` (turbine count × wake efficiency) /
    ``capacity_wh`` are ``(N,)`` candidate vectors; every per-step array
    broadcasts to ``(S, N)``.  The hpc-parallel rule applies throughout:
    vectorize across the independent axes (candidates *and* scenarios),
    loop only over the one axis with sequential state — time, because the
    battery couples consecutive steps.

    ``engine`` selects the execution strategy (DESIGN.md §9): the
    per-step reference ``"loop"`` below, the always-available
    ``"segments"`` engine, the compiled ``"njit"`` engine, or ``"auto"``
    (the default) which picks the fastest engine that is bit-for-bit
    equal to the loop for this call and falls back to the loop whenever
    one is not (trace mode, policies outside the standard five).
    Explicit compiled engines refuse instead of falling back — see
    :func:`repro.core.kernel.resolve_engine`.

    Trace mode (``trace_soc`` / ``trace_flows``) additionally records the
    per-step SoC and power flows — the seam behind
    :meth:`~repro.core.fastsim.BatchEvaluator.soc_history` and the
    conservation property tests.  Traces cost O(S·N·T) memory, so leave
    them off for large sweeps.
    """
    if engine != "loop":
        from . import kernel  # deferred: kernel imports this module

        resolved = kernel.resolve_engine(engine, policy, trace_soc or trace_flows)
        if resolved != "loop":
            return kernel.run_compiled(
                stack,
                solar_kw,
                turbine_factor,
                capacity_wh,
                params,
                initial_soc=initial_soc,
                policy=policy,
                engine=resolved,
            )
    n = int(solar_kw.size)
    s = stack.n_scenarios
    t_steps = stack.n_steps
    dt_s = stack.step_s
    dt_h = dt_s / SECONDS_PER_HOUR
    policy = policy or DefaultDispatch()

    cap = np.asarray(capacity_wh, dtype=np.float64)
    safe_cap = np.maximum(cap, 1e-12)
    soc0 = float(np.clip(initial_soc, params.soc_min, params.soc_max))
    energy_wh = np.broadcast_to(cap * soc0, (s, n)).copy()

    import_wh = np.zeros((s, n))
    export_wh = np.zeros((s, n))
    charge_wh = np.zeros((s, n))
    discharge_wh = np.zeros((s, n))
    unserved_wh = np.zeros((s, n))
    emissions_kg = np.zeros((s, n))
    cost_usd = np.zeros((s, n))
    islanded_steps = np.zeros((s, n))
    zeros_sn = np.zeros((s, n))

    soc_trace = np.empty((s, n, t_steps + 1)) if trace_soc else None
    if soc_trace is not None:
        soc_trace[:, :, 0] = energy_wh / safe_cap
    flow_names = ("net_w", "import_w", "export_w", "charge_w", "discharge_w", "unserved_w")
    flows = (
        {name: np.empty((s, n, t_steps)) for name in flow_names} if trace_flows else None
    )

    eps_wh = ISLANDED_EPS_W * dt_h  # islanding guard in the energy domain

    # Hoist the per-step profile slicing: time-major contiguous copies let
    # each iteration index one cached row instead of re-slicing a strided
    # (S, T) column five times per step (same values, so bit-identical).
    solar_t = np.ascontiguousarray(stack.solar_per_kw_w.T)
    wind_t = np.ascontiguousarray(stack.wind_per_turbine_w.T)
    load_t = np.ascontiguousarray(stack.load_w.T)
    prices_t = np.ascontiguousarray(stack.prices_usd_kwh.T)
    ci_t = np.ascontiguousarray(stack.ci_g_per_kwh.T)

    for t in range(t_steps):
        gen_t = (
            solar_t[t][:, None] * solar_kw
            + wind_t[t][:, None] * turbine_factor
        )
        net_t = gen_t - load_t[t][:, None]  # + = surplus

        request = policy.dispatch_arrays(
            net_t,
            energy_wh / safe_cap,
            prices_t[t][:, None],
            ci_t[t][:, None],
            t * dt_s,
            dt_s,
        )
        accepted, energy_wh = clc_step_arrays(
            cap,
            energy_wh,
            request,
            dt_s,
            eta_charge=params.eta_charge,
            eta_discharge=params.eta_discharge,
            max_charge_c_rate=params.max_charge_c_rate,
            max_discharge_c_rate=params.max_discharge_c_rate,
            taper_soc_threshold=params.taper_soc_threshold,
            soc_min=params.soc_min,
            soc_max=params.soc_max,
            self_discharge_per_hour=params.self_discharge_per_hour,
        )
        residual = net_t - accepted  # + = export, − = import (or unserved)

        if policy.islanded:
            imp_t = zeros_sn
            uns_t = np.maximum(-residual, 0.0) * dt_h
        else:
            imp_t = np.maximum(-residual, 0.0) * dt_h
            uns_t = zeros_sn
        exp_t = np.maximum(residual, 0.0) * dt_h

        import_wh += imp_t
        export_wh += exp_t
        unserved_wh += uns_t
        charge_wh += np.maximum(accepted, 0.0) * dt_h
        discharge_wh += np.maximum(-accepted, 0.0) * dt_h
        emissions_kg += imp_t / WH_PER_KWH * ci_t[t][:, None] / 1_000.0
        cost_usd += (
            imp_t / WH_PER_KWH * prices_t[t][:, None]
            - exp_t / WH_PER_KWH * stack.export_credit_usd_kwh
        )
        islanded_steps += (imp_t <= eps_wh) & (uns_t <= eps_wh)

        if soc_trace is not None:
            soc_trace[:, :, t + 1] = energy_wh / safe_cap
        if flows is not None:
            flows["net_w"][:, :, t] = net_t
            flows["import_w"][:, :, t] = imp_t / dt_h
            flows["export_w"][:, :, t] = exp_t / dt_h
            flows["charge_w"][:, :, t] = np.maximum(accepted, 0.0)
            flows["discharge_w"][:, :, t] = np.maximum(-accepted, 0.0)
            flows["unserved_w"][:, :, t] = uns_t / dt_h

    return DispatchResult(
        import_wh=import_wh,
        export_wh=export_wh,
        charge_wh=charge_wh,
        discharge_wh=discharge_wh,
        unserved_wh=unserved_wh,
        emissions_kg=emissions_kg,
        cost_usd=cost_usd,
        islanded_steps=islanded_steps,
        soc=soc_trace,
        flows=flows,
    )
