"""Compiled / segment-vectorized dispatch engines (DESIGN.md §9).

The per-timestep Python loop in :func:`repro.core.dispatch.run_dispatch`
is the framework's hot path: every study, ensemble and racing rung funnels
through it.  This module provides two drop-in replacements that compute
**bit-for-bit identical** accumulators:

``segments``
    A pure-numpy reformulation, always available.  The policy decision is
    *lowered* ahead of time to a numeric mode table (one of three request
    modes per (step, scenario) — see :func:`lower_policy`), which turns
    the per-step policy callback into array masking.  The battery
    recurrence itself stays sequential (SoC couples consecutive steps),
    but everything around it is restructured for throughput:

    * time steps are processed in blocks — the net-load/request prologue
      and the grid/cost/emissions epilogue run once per block over
      ``(block, S, N)`` tensors instead of once per step;
    * the paper's candidate grid repeats each (solar, wind) pair over the
      battery axis, so net load is computed on the ~9× smaller set of
      unique pairs and broadcast back;
    * per-step battery state lives in one contiguous ``(rows, S·N)``
      workspace so adjacent rows can share fused ufunc calls, and every
      operation writes into preallocated buffers (zero allocations in the
      inner loop).

    Each replaced expression is an exact floating-point identity of the
    reference loop's (same IEEE-754 operations, same order), so the
    results are bitwise equal — not merely close.  The identities are
    pinned by ``tests/test_kernel_differential.py``.

``njit``
    A numba ``@njit`` scalar kernel over the same mode table, compiled
    only when numba is importable (``HAS_NUMBA``).  Numba's default
    ``fastmath=False`` keeps IEEE semantics (no FMA contraction or
    reassociation), so the scalar op order mirrors the reference loop
    exactly and the outputs are bitwise equal as well.

The reference loop **stays** the oracle: it is the simplest statement of
the semantics, supports trace mode, and accepts arbitrary policy objects.
:func:`resolve_engine` therefore routes trace requests and non-lowerable
policies back to ``"loop"`` under ``engine="auto"`` and refuses them
loudly for explicitly requested compiled engines.

A ``dtype=np.float32`` knob on the segments engine provides the racing
fast path: float32 halves memory traffic for the lower fidelity rungs
where only certified bounds matter (results are then *not* bitwise — the
rung-bound test documents the epsilon and shows the final front is
unchanged after float64 promotion).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..sam.batterymodels.clc import CLCParameters
from ..units import SECONDS_PER_HOUR, WH_PER_KWH
from .dispatch import (
    ISLANDED_EPS_W,
    UNLIMITED_CHARGE_W,
    CarbonAwareDispatch,
    DefaultDispatch,
    DispatchResult,
    IslandedDispatch,
    ScenarioStack,
    TimeWindowDispatch,
    TouArbitrageDispatch,
    VectorizedPolicy,
)

try:  # pragma: no cover - exercised only on numba-enabled CI legs
    from numba import njit as _numba_njit

    HAS_NUMBA = True
except ImportError:  # pragma: no cover
    _numba_njit = None
    HAS_NUMBA = False

__all__ = [
    "ENGINES",
    "HAS_NUMBA",
    "MODE_CHARGE_ONLY",
    "MODE_GREEDY",
    "MODE_UNLIMITED",
    "is_lowerable",
    "lower_policy",
    "resolve_engine",
    "run_compiled",
    "run_dispatch_segments",
]

#: accepted values of the ``engine`` knob
ENGINES = ("auto", "loop", "segments", "njit")

# -- policy lowering ---------------------------------------------------------
#
# Every VectorizedPolicy shipped with the framework reduces, per
# (step, scenario), to one of three *request modes* — how the raw net load
# is turned into the battery power request:

#: request the net balance as-is (charge surplus, discharge into deficits)
MODE_GREEDY = 0
#: charge from surplus only; never discharge (request = max(net, 0))
MODE_CHARGE_ONLY = 1
#: charge as fast as the battery allows (request = +inf, clipped by limits)
MODE_UNLIMITED = 2

_LOWERABLE = (
    DefaultDispatch,
    IslandedDispatch,
    TimeWindowDispatch,
    CarbonAwareDispatch,
    TouArbitrageDispatch,
)


def is_lowerable(policy: VectorizedPolicy | None) -> bool:
    """Whether the policy lowers to a mode table (strict type check —
    subclasses may override ``dispatch_arrays`` arbitrarily, so they
    conservatively fall back to the reference loop)."""
    if policy is None:
        return True
    return type(policy) in _LOWERABLE


def lower_policy(
    policy: VectorizedPolicy | None, stack: ScenarioStack
) -> np.ndarray | None:
    """Lower a policy to a ``(T, S)`` uint8 mode table, or ``None``.

    The table reproduces the decisions ``policy.dispatch_arrays`` makes
    inside the reference loop *exactly*: the same comparisons are applied
    to the same values (hour-of-day, carbon-intensity and price columns),
    so the lowered request decomposition is bit-for-bit equivalent.
    """
    policy = policy or DefaultDispatch()
    if not is_lowerable(policy):
        return None
    t_steps, s = stack.n_steps, stack.n_scenarios
    kind = type(policy)
    if kind in (DefaultDispatch, IslandedDispatch):
        return np.zeros((t_steps, s), dtype=np.uint8)
    if kind is TimeWindowDispatch:
        # Same arithmetic as in_daily_window(t * dt_s, start, end) per step.
        hours = (np.arange(t_steps, dtype=np.float64) * stack.step_s) / SECONDS_PER_HOUR
        hours %= 24.0
        start, end = policy.discharge_start_h, policy.discharge_end_h
        if start <= end:
            in_window = (hours >= start) & (hours < end)
        else:
            in_window = (hours >= start) | (hours < end)
        col = np.where(in_window, MODE_GREEDY, MODE_CHARGE_ONLY).astype(np.uint8)
        return np.ascontiguousarray(np.broadcast_to(col[:, None], (t_steps, s)))
    if kind is CarbonAwareDispatch:
        dirty = stack.ci_g_per_kwh >= np.asarray(policy.ci_discharge_g_per_kwh)
        table = np.where(dirty, MODE_GREEDY, MODE_CHARGE_ONLY).astype(np.uint8)
        return np.ascontiguousarray(table.T)
    # TouArbitrageDispatch: cheap beats peak (they are mutually exclusive
    # anyway — charge threshold is validated below the discharge one).
    cheap = stack.prices_usd_kwh <= np.asarray(policy.charge_price_usd_kwh)
    peak = stack.prices_usd_kwh >= np.asarray(policy.discharge_price_usd_kwh)
    table = np.full((s, t_steps), MODE_CHARGE_ONLY, dtype=np.uint8)
    table[peak] = MODE_GREEDY
    table[cheap] = MODE_UNLIMITED
    return np.ascontiguousarray(table.T)


# -- engine selection --------------------------------------------------------


def resolve_engine(
    engine: str,
    policy: VectorizedPolicy | None = None,
    tracing: bool = False,
) -> str:
    """Resolve the ``engine`` knob to a concrete engine name.

    ``"auto"`` silently falls back to the reference loop whenever a
    compiled engine cannot reproduce it bit-for-bit (trace mode, custom
    policies) and otherwise prefers njit > segments.  Explicitly
    requested compiled engines *refuse* instead of falling back, so a
    user who asked for ``"njit"`` never silently measures the loop.
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if engine == "loop":
        return "loop"
    lowerable = is_lowerable(policy)
    if engine == "auto":
        if tracing or not lowerable:
            return "loop"
        return "njit" if HAS_NUMBA else "segments"
    if tracing:
        raise ConfigurationError(
            f"engine={engine!r} does not support trace mode; "
            "use engine='loop' (or 'auto', which falls back to it)"
        )
    if not lowerable:
        raise ConfigurationError(
            f"policy {type(policy).__name__} cannot be lowered to a dispatch "
            "table; use engine='loop' (or 'auto', which falls back to it)"
        )
    if engine == "njit" and not HAS_NUMBA:
        raise ConfigurationError(
            "engine='njit' requires numba, which is not installed; "
            "use engine='segments' or 'auto'"
        )
    return engine


def run_compiled(
    stack: ScenarioStack,
    solar_kw: np.ndarray,
    turbine_factor: np.ndarray,
    capacity_wh: np.ndarray,
    params: CLCParameters,
    initial_soc: float = 0.5,
    policy: VectorizedPolicy | None = None,
    engine: str = "segments",
    dtype: "np.dtype | type" = np.float64,
) -> DispatchResult:
    """Run a *resolved* compiled engine (``"segments"`` or ``"njit"``)."""
    if engine == "segments":
        return run_dispatch_segments(
            stack,
            solar_kw,
            turbine_factor,
            capacity_wh,
            params,
            initial_soc=initial_soc,
            policy=policy,
            dtype=dtype,
        )
    if engine == "njit":
        return _run_dispatch_njit(
            stack,
            solar_kw,
            turbine_factor,
            capacity_wh,
            params,
            initial_soc=initial_soc,
            policy=policy,
        )
    raise ConfigurationError(f"run_compiled expects a compiled engine, got {engine!r}")


# -- the segment-vectorized engine -------------------------------------------


def _candidate_groups(
    solar_kw: np.ndarray, turbine_factor: np.ndarray
) -> tuple[int, np.ndarray, np.ndarray]:
    """Detect a repeated-group candidate layout.

    The paper's composition grid varies the battery axis fastest, so the
    (solar, wind) pair — all that net load depends on — repeats in
    consecutive runs of ``g`` candidates.  Returns ``(g, unique solar,
    unique turbine factors)``; ``g == 1`` means no grouping was found and
    the prologue runs at full width.
    """
    n = solar_kw.size
    for g in (9, 8, 12, 6, 4, 3, 2):
        if n % g == 0 and n > g:
            kw_u = solar_kw[0::g]
            tb_u = turbine_factor[0::g]
            if np.array_equal(np.repeat(kw_u, g), solar_kw) and np.array_equal(
                np.repeat(tb_u, g), turbine_factor
            ):
                return g, kw_u, tb_u
    return 1, solar_kw, turbine_factor


def run_dispatch_segments(
    stack: ScenarioStack,
    solar_kw: np.ndarray,
    turbine_factor: np.ndarray,
    capacity_wh: np.ndarray,
    params: CLCParameters,
    initial_soc: float = 0.5,
    policy: VectorizedPolicy | None = None,
    dtype: "np.dtype | type" = np.float64,
    block: int = 8,
) -> DispatchResult:
    """Segment-vectorized dispatch: bitwise-equal to the reference loop.

    Restructures :func:`repro.core.dispatch.run_dispatch` around a mode
    table (policy decisions precomputed for all steps) and block
    processing, keeping every floating-point operation IEEE-identical to
    the loop.  ``dtype=np.float32`` selects the non-bitwise racing fast
    path.  ``block`` trades prologue/epilogue amortization against
    working-set size; correctness does not depend on it.
    """
    policy = policy or DefaultDispatch()
    table = lower_policy(policy, stack)
    if table is None:
        raise ConfigurationError(
            f"policy {type(policy).__name__} cannot be lowered; use engine='loop'"
        )
    if block <= 0:
        raise ConfigurationError(f"block must be positive, got {block}")
    f = np.dtype(dtype)
    if f not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise ConfigurationError(f"dtype must be float64 or float32, got {dtype!r}")
    islanded = bool(policy.islanded)

    s = stack.n_scenarios
    n = int(solar_kw.size)
    t_steps = stack.n_steps
    dt_h = stack.step_s / SECONDS_PER_HOUR
    unit_dt = dt_h == 1.0
    flat = s * n
    blk = int(block)

    cap = np.asarray(capacity_wh, dtype=np.float64)
    safe_cap = np.maximum(cap, 1e-12)
    soc0 = float(np.clip(initial_soc, params.soc_min, params.soc_max))

    # Candidate grouping for the net-load prologue (see _candidate_groups).
    group, kw_u, tb_u = _candidate_groups(
        np.asarray(solar_kw, dtype=np.float64),
        np.asarray(turbine_factor, dtype=np.float64),
    )
    grouped = group > 1
    u = n // group
    kw_u = kw_u.astype(f, copy=False)
    tb_u = tb_u.astype(f, copy=False)

    # Battery workspace: one row per per-candidate state/constant, flat
    # (S·N) so adjacent rows can share fused ufunc calls below.
    #   0 e_max | 1 energy | 2 e_min | 3 headroom | 4 available
    #   5 p_lim | 6 discharge limit | 7 soc/taper | 8 safe_cap
    #   9 cap·c_rate | 10 span | 11 eta_c | 12 eta_d
    work = np.empty((13, flat), dtype=f)

    def _fill(row: int, values: "np.ndarray | float") -> None:
        np.copyto(work[row], np.broadcast_to(np.asarray(values, dtype=f), (s, n)).reshape(-1))

    _fill(0, cap * params.soc_max)
    _fill(1, cap * soc0)
    _fill(2, cap * params.soc_min)
    _fill(6, cap * params.max_discharge_c_rate)
    _fill(8, safe_cap)
    _fill(9, cap * params.max_charge_c_rate)
    span = max(params.soc_max - params.taper_soc_threshold, 1e-9)
    work[10] = span
    work[11] = params.eta_charge
    work[12] = params.eta_discharge

    e_max, energy, head, avail, p_lim, taper = (
        work[0],
        work[1],
        work[3],
        work[4],
        work[5],
        work[7],
    )
    safe_f, capr_f, span_f, etac_f, etad_f = work[8], work[9], work[10], work[11], work[12]
    # Fused row pairs: head/avail = (e_max, energy) − (energy, e_min) and
    # min((p_lim, d_lim), (head, avail)) each run as ONE two-row ufunc call.
    rows_eh = work[0:2]
    rows_ha = work[3:5]
    rows_pd = work[5:7]
    rows_ee = work[1:3]

    decay = 1.0 - params.self_discharge_per_hour * dt_h
    eps_wh = ISLANDED_EPS_W * dt_h
    soc_max = params.soc_max

    # Time-major contiguous profiles: one cheap row index per step instead
    # of a strided column slice (the reference loop now does the same).
    sol_t = np.ascontiguousarray(stack.solar_per_kw_w.T).astype(f, copy=False)
    wind_t = np.ascontiguousarray(stack.wind_per_turbine_w.T).astype(f, copy=False)
    load_t = np.ascontiguousarray(stack.load_w.T).astype(f, copy=False)
    ci_t = np.ascontiguousarray(stack.ci_g_per_kwh.T).astype(f, copy=False)
    price_t = np.ascontiguousarray(stack.prices_usd_kwh.T).astype(f, copy=False)
    credit = stack.export_credit_usd_kwh.astype(f, copy=False)

    has_modes = bool(table.any())
    charge_only = table == MODE_CHARGE_ONLY if has_modes else None
    unlimited = table == MODE_UNLIMITED if has_modes else None

    # Accumulator rows (matching the reference loop's += order):
    #   0 import | 1 export | 2 charge | 3 discharge | 4 unserved
    #   5 emissions | 6 cost | 7 islanded steps
    # Each block writes per-step contributions into contrib[:, 1:b+1] and
    # folds them with one strictly-sequential add.reduce whose row 0 is
    # the running total — the same left-to-right addition order as the
    # loop's per-step +=.
    n_acc = 8
    totals = np.zeros((n_acc, s, n), dtype=f)
    contrib = np.empty((n_acc, blk + 1, s, n), dtype=f)
    contrib[0 if islanded else 4] = 0.0  # inactive import/unserved row
    if islanded:
        contrib[5] = 0.0  # no grid import → no operational emissions

    # Block scratch. rp/rn double as kWh scratch in the epilogue.
    net = np.empty((blk, s, n), dtype=f)
    rp = np.empty((blk, s, n), dtype=f)
    rn = np.empty((blk, s, n), dtype=f)
    accepted = np.empty((blk, s, n), dtype=f)
    residual = np.empty((blk, s, n), dtype=f)
    if grouped:
        net_u = np.empty((blk, s, u), dtype=f)
        scratch_u = np.empty((blk, s, u), dtype=f)
        rp_u = np.empty((blk, s, u), dtype=f)
        rn_u = np.empty((blk, s, u), dtype=f)
        net_g = net.reshape(blk, s, u, group)
        rp_g = rp.reshape(blk, s, u, group)
        rn_g = rn.reshape(blk, s, u, group)
    else:
        net_u, rp_u, rn_u = net, rp, rn
        scratch_u = np.empty((blk, s, n), dtype=f)

    mul, div, sub, add = np.multiply, np.divide, np.subtract, np.add
    mx, mn = np.maximum, np.minimum
    charge_rows = contrib[2]
    discharge_rows = contrib[3]

    for t0 in range(0, t_steps, blk):
        t1 = min(t0 + blk, t_steps)
        b = t1 - t0

        # --- prologue: net load and request decomposition ----------------
        # request = net (greedy) lowered to rp = max(net, 0), rn = rp − net
        # (≡ max(−net, 0)); CHARGE_ONLY zeroes rn; UNLIMITED sets rp = +inf.
        sol_c = sol_t[t0:t1, :, None]
        wind_c = wind_t[t0:t1, :, None]
        load_c = load_t[t0:t1, :, None]
        nu = net_u[:b]
        mul(sol_c, kw_u, nu)
        mul(wind_c, tb_u, scratch_u[:b])
        add(nu, scratch_u[:b], nu)
        sub(nu, load_c, nu)
        mx(nu, 0.0, out=rp_u[:b])
        sub(rp_u[:b], nu, rn_u[:b])
        if has_modes:
            m1 = charge_only[t0:t1]
            if m1.any():
                rn_u[:b][m1] = 0.0
            m2 = unlimited[t0:t1]
            if m2.any():
                rp_u[:b][m2] = UNLIMITED_CHARGE_W
                rn_u[:b][m2] = 0.0
        if grouped:
            np.copyto(net_g[:b], net_u[:b, :, :, None])
            np.copyto(rp_g[:b], rp_u[:b, :, :, None])
            np.copyto(rn_g[:b], rn_u[:b, :, :, None])

        # --- sequential battery recurrence (C/L/C, exact op order) -------
        rp_rows = [rp[i].reshape(-1) for i in range(b)]
        rn_rows = [rn[i].reshape(-1) for i in range(b)]
        acc_rows = [accepted[i].reshape(-1) for i in range(b)]
        pc_rows = [charge_rows[1 + i].reshape(-1) for i in range(b)]
        pd_rows = [discharge_rows[1 + i].reshape(-1) for i in range(b)]
        for i in range(b):
            p_charge = pc_rows[i]
            p_discharge = pd_rows[i]
            mul(energy, decay, energy)  # self-discharge (max(·,0) is a no-op: e ≥ 0)
            div(energy, safe_f, taper)
            sub(soc_max, taper, taper)
            div(taper, span_f, taper)
            mx(taper, 0.0, out=taper)
            mn(taper, 1.0, out=taper)
            mul(capr_f, taper, p_lim)
            sub(rows_eh, rows_ee, rows_ha)  # head = e_max − e ; avail = e − e_min
            if not unit_dt:
                div(head, dt_h, head)
            div(head, etac_f, head)
            mx(avail, 0.0, out=avail)
            if not unit_dt:
                div(avail, dt_h, avail)
            mul(avail, etad_f, avail)
            mn(rows_pd, rows_ha, out=rows_ha)  # min(p_lim, head) ; min(d_lim, avail)
            mn(rp_rows[i], head, out=p_charge)
            mn(rn_rows[i], avail, out=p_discharge)
            sub(p_charge, p_discharge, acc_rows[i])
            mul(p_charge, etac_f, head)  # stored gain (η_c·P_c)·dt
            if unit_dt:
                div(p_discharge, etad_f, avail)  # stored loss (P_d·dt)/η_d
            else:
                mul(head, dt_h, head)
                mul(p_discharge, dt_h, avail)
                div(avail, etad_f, avail)
            add(energy, head, energy)
            sub(energy, avail, energy)
            mx(energy, 0.0, out=energy)
            mn(energy, e_max, out=energy)

        # --- epilogue: grid split, costs, emissions, islanding -----------
        acc_b = accepted[:b]
        export_c = contrib[1, 1 : b + 1]
        deficit_c = contrib[4 if islanded else 0, 1 : b + 1]
        cost_c = contrib[6, 1 : b + 1]
        isl_c = contrib[7, 1 : b + 1]
        res_b = residual[:b]
        sub(net[:b], acc_b, res_b)
        mx(res_b, 0.0, out=export_c)  # export power
        sub(export_c, res_b, deficit_c)  # import/unserved power (= max(−res, 0))
        if not unit_dt:
            mul(export_c, dt_h, export_c)
            mul(deficit_c, dt_h, deficit_c)
            mul(contrib[2:4, 1 : b + 1], dt_h, contrib[2:4, 1 : b + 1])
        export_kwh = rn[:b]
        div(export_c, WH_PER_KWH, export_kwh)
        mul(export_kwh, credit, export_kwh)
        if islanded:
            sub(0.0, export_kwh, cost_c)
        else:
            import_kwh = rp[:b]
            div(deficit_c, WH_PER_KWH, import_kwh)
            emissions_c = contrib[5, 1 : b + 1]
            mul(import_kwh, ci_t[t0:t1, :, None], emissions_c)
            div(emissions_c, 1000.0, emissions_c)
            mul(import_kwh, price_t[t0:t1, :, None], cost_c)
            sub(cost_c, export_kwh, cost_c)
        np.less_equal(deficit_c, eps_wh, out=isl_c)

        contrib[:, 0] = totals
        np.add.reduce(contrib[:, : b + 1], axis=1, out=totals)

    out = totals.astype(np.float64)  # exact for f64; exact widening for f32
    return DispatchResult(
        import_wh=out[0],
        export_wh=out[1],
        charge_wh=out[2],
        discharge_wh=out[3],
        unserved_wh=out[4],
        emissions_kg=out[5],
        cost_usd=out[6],
        islanded_steps=out[7],
    )


# -- the numba kernel --------------------------------------------------------


def _njit_cell_loop(
    sol_t,
    wind_t,
    load_t,
    ci_t,
    price_t,
    credit,
    solar_kw,
    turbine_factor,
    cap,
    energy0,
    table,
    dt_h,
    eta_c,
    eta_d,
    c_rate,
    d_rate,
    taper_thr,
    soc_max,
    decay,
    islanded,
    out,
):
    """Scalar dispatch over all (scenario, candidate) cells.

    Mirrors the reference loop's floating-point op order exactly; with
    numba's default ``fastmath=False`` (strict IEEE, no contraction) the
    accumulators come out bitwise equal.  Kept as a plain function so the
    pure-python fallback stays importable (and testable) without numba.
    """
    t_steps, s = sol_t.shape
    n = solar_kw.shape[0]
    span = max(soc_max - taper_thr, 1e-9)
    eps_wh = ISLANDED_EPS_W * dt_h
    for si in range(s):
        cr = credit[si]
        for ni in range(n):
            c = cap[ni]
            safe = max(c, 1e-12)
            e_min = energy0[n + ni]
            e_max = c * soc_max
            p_cap = c * c_rate
            d_cap = c * d_rate
            e = energy0[ni]
            imp_a = 0.0
            exp_a = 0.0
            chg_a = 0.0
            dis_a = 0.0
            uns_a = 0.0
            em_a = 0.0
            cost_a = 0.0
            isl_a = 0.0
            for t in range(t_steps):
                net = (
                    sol_t[t, si] * solar_kw[ni]
                    + wind_t[t, si] * turbine_factor[ni]
                    - load_t[t, si]
                )
                mode = table[t, si]
                if mode == MODE_UNLIMITED:
                    rp = np.inf
                    rn = 0.0
                else:
                    rp = max(net, 0.0)
                    rn = 0.0 if mode == MODE_CHARGE_ONLY else rp - net
                e = e * decay
                taper = (soc_max - e / safe) / span
                if taper < 0.0:
                    taper = 0.0
                elif taper > 1.0:
                    taper = 1.0
                p_lim = p_cap * taper
                head = (e_max - e) / dt_h / eta_c
                avail = max(e - e_min, 0.0) / dt_h * eta_d
                p_charge = min(rp, min(p_lim, head))
                p_discharge = min(rn, min(d_cap, avail))
                acc = p_charge - p_discharge
                e = e + eta_c * p_charge * dt_h - p_discharge * dt_h / eta_d
                if e < 0.0:
                    e = 0.0
                elif e > e_max:
                    e = e_max
                res = net - acc
                exp_w = max(res, 0.0)
                def_w = exp_w - res
                exp_t = exp_w * dt_h
                def_t = def_w * dt_h
                exp_a += exp_t
                chg_a += p_charge * dt_h
                dis_a += p_discharge * dt_h
                exp_kwh = exp_t / WH_PER_KWH
                if islanded:
                    uns_a += def_t
                    cost_a += 0.0 - exp_kwh * cr
                else:
                    imp_a += def_t
                    imp_kwh = def_t / WH_PER_KWH
                    em_a += imp_kwh * ci_t[t, si] / 1000.0
                    cost_a += imp_kwh * price_t[t, si] - exp_kwh * cr
                if def_t <= eps_wh:
                    isl_a += 1.0
            out[0, si, ni] = imp_a
            out[1, si, ni] = exp_a
            out[2, si, ni] = chg_a
            out[3, si, ni] = dis_a
            out[4, si, ni] = uns_a
            out[5, si, ni] = em_a
            out[6, si, ni] = cost_a
            out[7, si, ni] = isl_a
    return out


if HAS_NUMBA:  # pragma: no cover - compiled leg runs on numba-enabled CI
    _njit_cell_loop_compiled = _numba_njit(cache=True)(_njit_cell_loop)
else:
    _njit_cell_loop_compiled = None


def _run_dispatch_njit(
    stack: ScenarioStack,
    solar_kw: np.ndarray,
    turbine_factor: np.ndarray,
    capacity_wh: np.ndarray,
    params: CLCParameters,
    initial_soc: float = 0.5,
    policy: VectorizedPolicy | None = None,
) -> DispatchResult:
    """njit engine front-end: lower the policy, call the compiled kernel."""
    if not HAS_NUMBA:
        raise ConfigurationError("engine='njit' requires numba, which is not installed")
    policy = policy or DefaultDispatch()
    table = lower_policy(policy, stack)
    if table is None:
        raise ConfigurationError(
            f"policy {type(policy).__name__} cannot be lowered; use engine='loop'"
        )
    s, n = stack.n_scenarios, int(solar_kw.size)
    cap = np.ascontiguousarray(capacity_wh, dtype=np.float64)
    soc0 = float(np.clip(initial_soc, params.soc_min, params.soc_max))
    # energy0 packs [initial energy | e_min] per candidate in one vector.
    energy0 = np.concatenate([cap * soc0, cap * params.soc_min])
    dt_h = stack.step_s / SECONDS_PER_HOUR
    out = np.empty((8, s, n), dtype=np.float64)
    _njit_cell_loop_compiled(
        np.ascontiguousarray(stack.solar_per_kw_w.T),
        np.ascontiguousarray(stack.wind_per_turbine_w.T),
        np.ascontiguousarray(stack.load_w.T),
        np.ascontiguousarray(stack.ci_g_per_kwh.T),
        np.ascontiguousarray(stack.prices_usd_kwh.T),
        np.ascontiguousarray(stack.export_credit_usd_kwh[:, 0]),
        np.ascontiguousarray(solar_kw, dtype=np.float64),
        np.ascontiguousarray(turbine_factor, dtype=np.float64),
        cap,
        energy0,
        table,
        dt_h,
        params.eta_charge,
        params.eta_discharge,
        params.max_charge_c_rate,
        params.max_discharge_c_rate,
        params.taper_soc_threshold,
        params.soc_max,
        1.0 - params.self_discharge_per_hour * dt_h,
        bool(policy.islanded),
        out,
    )
    return DispatchResult(
        import_wh=out[0],
        export_wh=out[1],
        charge_wh=out[2],
        discharge_wh=out[3],
        unserved_wh=out[4],
        emissions_kg=out[5],
        cost_usd=out[6],
        islanded_steps=out[7],
    )
