"""Scenarios: everything a composition evaluation needs, built once.

A scenario bundles the site's resource year, the data-center demand
trace, the grid carbon-intensity profile, and — critically for speed —
the **per-unit generation profiles**:

* the AC output of 1 kW(dc) of PVWatts solar, and
* the AC output of one wake-free turbine,

both computed once.  Because both SAM-style models are linear in
installed capacity (same irradiance/temperature for every module; same
wind for every turbine, with the wake factor depending only on turbine
count), every candidate's generation profile is a two-term linear
combination — the observation that makes the exhaustive 1 089-point sweep
cheap (DESIGN.md §2, "two evaluation paths").

Scenario construction costs a couple of seconds (resource synthesis +
model runs), so built scenarios are cached per configuration — and the
expensive half, the per-unit profiles, is cached separately
(:func:`unit_profiles`) keyed only on the axes that actually change the
weather, so ensemble members (DESIGN.md §6) that differ only in
workload growth, carbon trajectory, or tariff variant share one
resource synthesis and one pair of SAM model runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.carbon_intensity import CarbonIntensityProfile, synthesize_carbon_intensity
from ..data.locations import Location, get_location
from ..data.solar_resource import SolarResource, synthesize_solar_resource
from ..data.tariffs import TouTariff, tou_tariff_for
from ..data.wind_resource import WindResource, synthesize_wind_resource
from ..data.workload import WorkloadTrace, synthesize_datacenter_trace
from ..exceptions import ConfigurationError
from ..sam.solar.pvwatts import PVWattsModel, PVWattsParameters
from ..sam.wind.wake import jensen_array_efficiency
from ..sam.wind.windpower import WindFarmModel, WindFarmParameters
from ..units import PERLMUTTER_MEAN_POWER_W, SECONDS_PER_HOUR


@dataclass(frozen=True)
class Scenario:
    """A fully prepared evaluation context for one site."""

    name: str
    location: Location
    solar_resource: SolarResource
    wind_resource: WindResource
    workload: WorkloadTrace
    carbon: CarbonIntensityProfile
    tariff: TouTariff
    #: hourly AC output of 1 kW(dc) PVWatts solar (W per kWdc)
    solar_per_kw_w: np.ndarray
    #: hourly AC output of a single wake-free turbine (W)
    wind_per_turbine_w: np.ndarray
    step_s: float = SECONDS_PER_HOUR
    #: battery degradation model evaluated after dispatch (DESIGN.md §11):
    #: ``None`` (fade stays 0, the historical behaviour), ``"linear"``
    #: (closed-form calendar + equivalent-full-cycle fade), or
    #: ``"rainflow"`` (SoC-trace rainflow counting + Wöhler law)
    battery_degradation: "str | None" = None

    def __post_init__(self) -> None:
        n = self.n_steps
        for arr_name in ("solar_per_kw_w", "wind_per_turbine_w"):
            if getattr(self, arr_name).shape != (n,):
                raise ConfigurationError(f"{arr_name} misaligned with workload")
        if self.carbon.intensity_g_per_kwh.shape != (n,):
            raise ConfigurationError("carbon profile misaligned with workload")
        if self.battery_degradation not in (None, "linear", "rainflow"):
            raise ConfigurationError(
                f"unknown battery degradation model '{self.battery_degradation}' "
                "(known: linear, rainflow)"
            )

    @property
    def n_steps(self) -> int:
        return int(self.workload.power_w.size)

    @property
    def horizon_days(self) -> float:
        return self.n_steps * self.step_s / 86_400.0

    def wind_farm_profile_w(self, n_turbines: int) -> np.ndarray:
        """Farm AC profile for ``n`` turbines (wake-adjusted)."""
        if n_turbines <= 0:
            return np.zeros(self.n_steps)
        eff = jensen_array_efficiency(n_turbines)
        return self.wind_per_turbine_w * (n_turbines * eff)

    def solar_farm_profile_w(self, solar_kw: float) -> np.ndarray:
        """Solar farm AC profile for the given DC capacity (kW)."""
        return self.solar_per_kw_w * solar_kw


_SCENARIO_CACHE: dict[tuple, Scenario] = {}


@dataclass(frozen=True)
class UnitProfiles:
    """The weather-determined half of a scenario (DESIGN.md §6).

    Resource synthesis plus the two SAM model runs — everything keyed by
    (site, year, horizon, event handling) and *nothing else*, so
    ensemble members that vary only workload growth, carbon trajectory,
    or tariff variant share one instance.
    """

    solar_resource: SolarResource
    wind_resource: WindResource
    solar_per_kw_w: np.ndarray
    wind_per_turbine_w: np.ndarray


_UNIT_PROFILE_CACHE: dict[tuple, UnitProfiles] = {}


def unit_profiles(
    location: "str | Location",
    year_label: int = 2024,
    n_hours: int = 8_760,
    include_extreme_events: bool = True,
    event_severity: float = 1.0,
    use_cache: bool = True,
) -> UnitProfiles:
    """Build (or fetch from cache) a site-year's per-unit profiles.

    This is the expensive part of :func:`build_scenario`; the ensemble
    builder (:mod:`repro.core.ensemble`) precomputes missing entries in
    parallel via the ``confsys`` launchers and primes this cache.
    """
    loc = get_location(location) if isinstance(location, str) else location
    key = (loc.name, year_label, n_hours, include_extreme_events, float(event_severity))
    if use_cache and key in _UNIT_PROFILE_CACHE:
        return _UNIT_PROFILE_CACHE[key]

    solar_resource = synthesize_solar_resource(
        loc,
        year_label,
        n_hours,
        include_extreme_events=include_extreme_events,
        event_severity=event_severity,
    )
    wind_resource = synthesize_wind_resource(
        loc,
        year_label,
        n_hours,
        include_extreme_events=include_extreme_events,
        event_severity=event_severity,
    )
    pv = PVWattsModel(PVWattsParameters(dc_capacity_kw=1.0))
    wind = WindFarmModel(WindFarmParameters(n_turbines=1, wake_model="none"))
    profiles = UnitProfiles(
        solar_resource=solar_resource,
        wind_resource=wind_resource,
        solar_per_kw_w=pv.run(solar_resource).ac_power_w,
        wind_per_turbine_w=wind.run(wind_resource).ac_power_w,
    )
    if use_cache:
        _UNIT_PROFILE_CACHE[key] = profiles
    return profiles


def prime_unit_profile_cache(
    entries: "dict[tuple, UnitProfiles]",
) -> None:
    """Insert precomputed profiles (the parallel ensemble-build seam)."""
    _UNIT_PROFILE_CACHE.update(entries)


def has_unit_profiles(key: tuple) -> bool:
    """Whether a unit-profile cache entry exists (ensemble build planning)."""
    return key in _UNIT_PROFILE_CACHE


def build_scenario(
    location: "str | Location",
    year_label: int = 2024,
    n_hours: int = 8_760,
    mean_power_w: float = PERLMUTTER_MEAN_POWER_W,
    use_cache: bool = True,
    include_extreme_events: bool = True,
    event_severity: float = 1.0,
    carbon_trajectory: str = "baseline",
    tariff_variant: str = "default",
    name: str | None = None,
) -> Scenario:
    """Build (or fetch from cache) the evaluation scenario for a site.

    The two paper scenarios are ``build_scenario("berkeley")`` and
    ``build_scenario("houston")``.  ``include_extreme_events=False``
    removes the coordinated dunkelflaute events (ablation A4).

    The ensemble axes (DESIGN.md §6) thread through here:
    ``event_severity`` scales the dunkelflaute depth/length,
    ``carbon_trajectory`` names a grid-decarbonization future, and
    ``tariff_variant`` a rate-structure future; workload growth is plain
    ``mean_power_w`` scaling.  ``name`` overrides the scenario's display
    name (ensemble members need unique ones).
    """
    loc = get_location(location) if isinstance(location, str) else location
    # Key on the exact float: rounding made two mean powers within 0.5 W
    # silently share a cached scenario.
    key = (
        loc.name,
        year_label,
        n_hours,
        float(mean_power_w),
        include_extreme_events,
        float(event_severity),
        carbon_trajectory,
        tariff_variant,
        name,
    )
    if use_cache and key in _SCENARIO_CACHE:
        return _SCENARIO_CACHE[key]

    units = unit_profiles(
        loc,
        year_label,
        n_hours,
        include_extreme_events=include_extreme_events,
        event_severity=event_severity,
        use_cache=use_cache,
    )
    workload = synthesize_datacenter_trace(mean_power_w, year_label, n_hours)
    carbon = synthesize_carbon_intensity(
        loc.grid_region, year_label, n_hours, trajectory=carbon_trajectory
    )
    tariff = tou_tariff_for(loc.grid_region, variant=tariff_variant)

    scenario = Scenario(
        name=name or loc.name,
        location=loc,
        solar_resource=units.solar_resource,
        wind_resource=units.wind_resource,
        workload=workload,
        carbon=carbon,
        tariff=tariff,
        solar_per_kw_w=units.solar_per_kw_w,
        wind_per_turbine_w=units.wind_per_turbine_w,
    )
    if use_cache:
        _SCENARIO_CACHE[key] = scenario
    return scenario


def clear_scenario_cache() -> None:
    """Drop all cached scenarios and unit profiles (test isolation)."""
    _SCENARIO_CACHE.clear()
    _UNIT_PROFILE_CACHE.clear()
