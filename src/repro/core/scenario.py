"""Scenarios: everything a composition evaluation needs, built once.

A scenario bundles the site's resource year, the data-center demand
trace, the grid carbon-intensity profile, and — critically for speed —
the **per-unit generation profiles**:

* the AC output of 1 kW(dc) of PVWatts solar, and
* the AC output of one wake-free turbine,

both computed once.  Because both SAM-style models are linear in
installed capacity (same irradiance/temperature for every module; same
wind for every turbine, with the wake factor depending only on turbine
count), every candidate's generation profile is a two-term linear
combination — the observation that makes the exhaustive 1 089-point sweep
cheap (DESIGN.md §2, "two evaluation paths").

Scenario construction costs a couple of seconds (resource synthesis +
model runs), so built scenarios are cached per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.carbon_intensity import CarbonIntensityProfile, synthesize_carbon_intensity
from ..data.locations import Location, get_location
from ..data.solar_resource import SolarResource, synthesize_solar_resource
from ..data.tariffs import TouTariff, tou_tariff_for
from ..data.wind_resource import WindResource, synthesize_wind_resource
from ..data.workload import WorkloadTrace, synthesize_datacenter_trace
from ..exceptions import ConfigurationError
from ..sam.solar.pvwatts import PVWattsModel, PVWattsParameters
from ..sam.wind.wake import jensen_array_efficiency
from ..sam.wind.windpower import WindFarmModel, WindFarmParameters
from ..units import PERLMUTTER_MEAN_POWER_W, SECONDS_PER_HOUR


@dataclass(frozen=True)
class Scenario:
    """A fully prepared evaluation context for one site."""

    name: str
    location: Location
    solar_resource: SolarResource
    wind_resource: WindResource
    workload: WorkloadTrace
    carbon: CarbonIntensityProfile
    tariff: TouTariff
    #: hourly AC output of 1 kW(dc) PVWatts solar (W per kWdc)
    solar_per_kw_w: np.ndarray
    #: hourly AC output of a single wake-free turbine (W)
    wind_per_turbine_w: np.ndarray
    step_s: float = SECONDS_PER_HOUR

    def __post_init__(self) -> None:
        n = self.n_steps
        for arr_name in ("solar_per_kw_w", "wind_per_turbine_w"):
            if getattr(self, arr_name).shape != (n,):
                raise ConfigurationError(f"{arr_name} misaligned with workload")
        if self.carbon.intensity_g_per_kwh.shape != (n,):
            raise ConfigurationError("carbon profile misaligned with workload")

    @property
    def n_steps(self) -> int:
        return int(self.workload.power_w.size)

    @property
    def horizon_days(self) -> float:
        return self.n_steps * self.step_s / 86_400.0

    def wind_farm_profile_w(self, n_turbines: int) -> np.ndarray:
        """Farm AC profile for ``n`` turbines (wake-adjusted)."""
        if n_turbines <= 0:
            return np.zeros(self.n_steps)
        eff = jensen_array_efficiency(n_turbines)
        return self.wind_per_turbine_w * (n_turbines * eff)

    def solar_farm_profile_w(self, solar_kw: float) -> np.ndarray:
        """Solar farm AC profile for the given DC capacity (kW)."""
        return self.solar_per_kw_w * solar_kw


_SCENARIO_CACHE: dict[tuple, Scenario] = {}


def build_scenario(
    location: "str | Location",
    year_label: int = 2024,
    n_hours: int = 8_760,
    mean_power_w: float = PERLMUTTER_MEAN_POWER_W,
    use_cache: bool = True,
    include_extreme_events: bool = True,
) -> Scenario:
    """Build (or fetch from cache) the evaluation scenario for a site.

    The two paper scenarios are ``build_scenario("berkeley")`` and
    ``build_scenario("houston")``.  ``include_extreme_events=False``
    removes the coordinated dunkelflaute events (ablation A4).
    """
    loc = get_location(location) if isinstance(location, str) else location
    # Key on the exact float: rounding made two mean powers within 0.5 W
    # silently share a cached scenario.
    key = (loc.name, year_label, n_hours, float(mean_power_w), include_extreme_events)
    if use_cache and key in _SCENARIO_CACHE:
        return _SCENARIO_CACHE[key]

    solar_resource = synthesize_solar_resource(
        loc, year_label, n_hours, include_extreme_events=include_extreme_events
    )
    wind_resource = synthesize_wind_resource(
        loc, year_label, n_hours, include_extreme_events=include_extreme_events
    )
    workload = synthesize_datacenter_trace(mean_power_w, year_label, n_hours)
    carbon = synthesize_carbon_intensity(loc.grid_region, year_label, n_hours)
    tariff = tou_tariff_for(loc.grid_region)

    pv = PVWattsModel(PVWattsParameters(dc_capacity_kw=1.0))
    solar_per_kw = pv.run(solar_resource).ac_power_w

    wind = WindFarmModel(WindFarmParameters(n_turbines=1, wake_model="none"))
    wind_per_turbine = wind.run(wind_resource).ac_power_w

    scenario = Scenario(
        name=loc.name,
        location=loc,
        solar_resource=solar_resource,
        wind_resource=wind_resource,
        workload=workload,
        carbon=carbon,
        tariff=tariff,
        solar_per_kw_w=solar_per_kw,
        wind_per_turbine_w=wind_per_turbine,
    )
    if use_cache:
        _SCENARIO_CACHE[key] = scenario
    return scenario


def clear_scenario_cache() -> None:
    """Drop all cached scenarios (tests use this for isolation)."""
    _SCENARIO_CACHE.clear()
