"""Pareto analysis over evaluated compositions.

Thin composition-aware wrappers around the generic multi-objective
utilities in :mod:`repro.blackbox.multiobjective` (one implementation of
non-dominated sorting serves both layers).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..blackbox.multiobjective import hypervolume_2d, pareto_front_indices
from .metrics import EvaluatedComposition


def pareto_points(
    evaluated: Sequence[EvaluatedComposition],
    objectives: Sequence[str] = ("embodied", "operational"),
) -> np.ndarray:
    """Objective matrix (n × m, minimization) for a set of evaluations."""
    return np.array([e.objectives(objectives) for e in evaluated], dtype=np.float64)


def pareto_front(
    evaluated: Sequence[EvaluatedComposition],
    objectives: Sequence[str] = ("embodied", "operational"),
) -> list[EvaluatedComposition]:
    """Non-dominated subset under the given (minimized) objectives.

    For Figure 2's axes use the default ``("embodied", "operational")``.
    """
    if not evaluated:
        return []
    points = pareto_points(evaluated, objectives)
    idx = pareto_front_indices(points)
    # Sort along the first objective for stable, plot-ready ordering.
    idx = idx[np.argsort(points[idx, 0], kind="stable")]
    return [evaluated[i] for i in idx]


def front_hypervolume(
    evaluated: Sequence[EvaluatedComposition],
    reference: tuple[float, float],
    objectives: Sequence[str] = ("embodied", "operational"),
) -> float:
    """2-D hypervolume of the front (search-quality indicator, §4.4)."""
    if not evaluated:
        return 0.0
    return hypervolume_2d(pareto_points(evaluated, objectives), np.asarray(reference))
