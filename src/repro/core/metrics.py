"""Simulation metrics and evaluated compositions.

The paper's tables report, per composition: embodied emissions (tCO₂),
operational emissions (tCO₂/day), on-site coverage (%), and battery
cycles.  §4.3 adds optional objectives (cost, curtailment, reliability,
degradation) — all carried by :class:`SimulationMetrics` so any subset
can be optimized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..units import DAYS_PER_YEAR, KG_PER_TONNE, WH_PER_KWH, WH_PER_MWH
from .composition import MicrogridComposition


@dataclass(frozen=True)
class SimulationMetrics:
    """Aggregate outcome of simulating one composition for one horizon.

    All energies in Wh over the simulated horizon; emissions in kgCO2.
    """

    horizon_days: float
    demand_energy_wh: float
    onsite_generation_wh: float
    grid_import_wh: float
    grid_export_wh: float
    battery_charge_wh: float
    battery_discharge_wh: float
    operational_emissions_kg: float
    battery_usable_wh: float
    unserved_energy_wh: float = 0.0
    electricity_cost_usd: float = 0.0
    #: fraction of steps with zero grid import (reliability metric, §4.3)
    islanded_fraction: float = 0.0
    #: battery capacity fade over the horizon (degradation extension)
    battery_fade: float = 0.0

    def __post_init__(self) -> None:
        if self.horizon_days <= 0:
            raise ConfigurationError("horizon must be positive")
        for name in (
            "demand_energy_wh",
            "onsite_generation_wh",
            "grid_import_wh",
            "grid_export_wh",
            "battery_charge_wh",
            "battery_discharge_wh",
        ):
            if getattr(self, name) < -1e-6:
                raise ConfigurationError(f"{name} must be non-negative")

    # -- the tables' columns ------------------------------------------------

    @property
    def operational_tco2_per_day(self) -> float:
        """Operational emissions rate — the tables' 'Operat.' column."""
        return self.operational_emissions_kg / KG_PER_TONNE / self.horizon_days

    @property
    def coverage(self) -> float:
        """On-site coverage: fraction of demand *not* met by grid import.

        Matches the paper's 'Cov. (%)' column (0–1 here; format ×100).
        """
        if self.demand_energy_wh <= 0:
            return 0.0
        served = self.demand_energy_wh - self.grid_import_wh - self.unserved_energy_wh
        return max(min(served / self.demand_energy_wh, 1.0), 0.0)

    @property
    def battery_cycles(self) -> float | None:
        """Equivalent full cycles over the horizon ('Battery cycles').

        ``None`` when there is no battery (the tables print '–').
        """
        if self.battery_usable_wh <= 0:
            return None
        return self.battery_discharge_wh / self.battery_usable_wh

    # -- additional objectives (§4.3) -------------------------------------------

    @property
    def curtailed_energy_mwh(self) -> float:
        """Exported/curtailed on-site energy (MWh)."""
        return self.grid_export_wh / WH_PER_MWH

    @property
    def renewable_utilization(self) -> float:
        """Fraction of on-site generation actually used (1 − curtailed)."""
        if self.onsite_generation_wh <= 0:
            return 0.0
        return 1.0 - self.grid_export_wh / self.onsite_generation_wh

    @property
    def mean_import_intensity_g_per_kwh(self) -> float:
        """Average CI of imported energy (diagnostic)."""
        if self.grid_import_wh <= 0:
            return 0.0
        return self.operational_emissions_kg * 1_000.0 / (self.grid_import_wh / WH_PER_KWH)


@dataclass(frozen=True)
class EvaluatedComposition:
    """A composition together with its embodied cost and simulated metrics."""

    composition: MicrogridComposition
    embodied_kg: float
    metrics: SimulationMetrics

    @property
    def embodied_tonnes(self) -> float:
        return self.embodied_kg / KG_PER_TONNE

    @property
    def operational_tco2_per_day(self) -> float:
        return self.metrics.operational_tco2_per_day

    def objectives(self, names: Sequence[str] = ("operational", "embodied")) -> tuple[float, ...]:
        """Objective vector for the study layer (all minimized).

        Supported names: ``operational`` (tCO2/day), ``embodied`` (tCO2),
        ``cost`` ($), ``cycles`` (battery EFC), ``curtailment`` (MWh),
        ``grid_dependence`` (1 − coverage), ``unreliability``
        (1 − islanded fraction), ``fade`` (battery capacity fade — only
        non-zero when the scenario carries a degradation model,
        DESIGN.md §11).
        """
        out: list[float] = []
        for name in names:
            if name == "operational":
                out.append(self.metrics.operational_tco2_per_day)
            elif name == "embodied":
                out.append(self.embodied_tonnes)
            elif name == "cost":
                out.append(self.metrics.electricity_cost_usd)
            elif name == "cycles":
                cycles = self.metrics.battery_cycles
                out.append(0.0 if cycles is None else cycles)
            elif name == "curtailment":
                out.append(self.metrics.curtailed_energy_mwh)
            elif name == "grid_dependence":
                out.append(1.0 - self.metrics.coverage)
            elif name == "unreliability":
                out.append(1.0 - self.metrics.islanded_fraction)
            elif name == "fade":
                out.append(self.metrics.battery_fade)
            else:
                raise ConfigurationError(f"unknown objective '{name}'")
        return tuple(out)

    def table_row(self) -> dict[str, float | str]:
        """One row of the paper's candidate tables."""
        cycles = self.metrics.battery_cycles
        return {
            "wind_mw": self.composition.wind_mw,
            "solar_mw": self.composition.solar_mw,
            "battery_mwh": self.composition.battery_mwh,
            "embodied_tco2": round(self.embodied_tonnes),
            "operational_tco2_day": round(self.operational_tco2_per_day, 2),
            "coverage_pct": round(self.metrics.coverage * 100.0, 2),
            "battery_cycles": "-" if cycles is None else round(cycles),
        }


#: The scalar :class:`SimulationMetrics` fields the equivalence checks
#: compare — shared by the stacked-vs-serial bit-for-bit assertions in
#: ``tests/test_dispatch_policies.py`` and ``benchmarks/bench_dispatch.py``
#: so a new metric field cannot silently weaken one of the two.
COMPARABLE_METRIC_FIELDS = (
    "demand_energy_wh",
    "onsite_generation_wh",
    "grid_import_wh",
    "grid_export_wh",
    "battery_charge_wh",
    "battery_discharge_wh",
    "operational_emissions_kg",
    "unserved_energy_wh",
    "electricity_cost_usd",
    "islanded_fraction",
)

#: Base robust aggregations over scenarios (all objectives minimized, so
#: "worst" is the elementwise maximum).  The full grammar accepted by
#: :func:`parse_aggregate` additionally includes the parameterized
#: ``cvar:alpha`` and ``quantile:q`` reducers (DESIGN.md §6).
AGGREGATES = ("worst", "mean")

#: Parameterized reducer kinds: ``kind:param`` with param in (0, 1].
PARAMETRIC_AGGREGATES = ("cvar", "quantile")


class Aggregate(NamedTuple):
    """A parsed scenario-reduction spec (DESIGN.md §6)."""

    kind: str
    param: "float | None" = None


def parse_aggregate(spec: str) -> Aggregate:
    """Parse an aggregate spec string into a validated :class:`Aggregate`.

    Grammar (DESIGN.md §6): ``worst`` | ``mean`` | ``cvar:alpha`` |
    ``quantile:q``, with ``alpha`` in (0, 1] (fraction of worst
    scenarios averaged) and ``q`` in [0, 1].  Anything else raises
    :class:`~repro.exceptions.ConfigurationError` — this is the single
    validation point the optimizer, CLI, and journal-resume path share.
    """
    if not isinstance(spec, str):
        raise ConfigurationError(f"aggregate spec must be a string, got {spec!r}")
    kind, sep, raw_param = spec.partition(":")
    kind = kind.strip()
    if kind in AGGREGATES:
        if sep:
            raise ConfigurationError(
                f"aggregate '{kind}' takes no parameter (got '{spec}')"
            )
        return Aggregate(kind)
    if kind in PARAMETRIC_AGGREGATES:
        if not sep or not raw_param.strip():
            raise ConfigurationError(
                f"aggregate '{kind}' needs a parameter, e.g. '{kind}:0.25'"
            )
        try:
            param = float(raw_param)
        except ValueError:
            raise ConfigurationError(
                f"malformed aggregate parameter in '{spec}'"
            ) from None
        if kind == "cvar" and not 0.0 < param <= 1.0:
            raise ConfigurationError(f"cvar alpha must be in (0, 1], got {param}")
        if kind == "quantile" and not 0.0 <= param <= 1.0:
            raise ConfigurationError(f"quantile q must be in [0, 1], got {param}")
        return Aggregate(kind, param)
    known = ", ".join(AGGREGATES + tuple(f"{k}:x" for k in PARAMETRIC_AGGREGATES))
    raise ConfigurationError(f"unknown aggregate '{spec}' (known: {known})")


def cvar(values: Sequence[float], alpha: float) -> float:
    """Conditional value-at-risk: mean of the worst ``alpha`` fraction.

    All objectives are minimized, so "worst" means *largest*;
    ``alpha=1`` degenerates to the mean, small ``alpha`` to the max.
    This is the one CVaR implementation in the codebase (DESIGN.md §6) —
    the multi-year layer's ``cvar_operational`` delegates here.
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"cvar alpha must be in (0, 1], got {alpha}")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cvar needs at least one value")
    k = max(int(np.ceil(alpha * arr.size)), 1)
    return float(np.sort(arr)[::-1][:k].mean())


def aggregate_values(values: Sequence[float], spec: "str | Aggregate") -> float:
    """Reduce one objective's per-scenario values by an aggregate spec."""
    agg = parse_aggregate(spec) if isinstance(spec, str) else spec
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot aggregate an empty value list")
    if agg.kind == "worst":
        return float(arr.max())
    if agg.kind == "mean":
        return float(arr.mean())
    if agg.kind == "cvar":
        return cvar(arr, agg.param)
    if agg.kind == "quantile":
        return float(np.quantile(arr, agg.param))
    # A hand-built Aggregate can carry a kind parse_aggregate never minted.
    raise ConfigurationError(f"unknown aggregate kind '{agg.kind}'")


@dataclass(frozen=True)
class RobustEvaluatedComposition:
    """One composition scored against several scenarios (DESIGN.md §5–§6).

    Wraps the per-scenario :class:`EvaluatedComposition` results of a
    stacked multi-scenario evaluation and exposes the same
    ``objectives()`` interface the search/Pareto layers consume, with
    each objective reduced across scenarios by ``aggregate``
    (the :func:`parse_aggregate` grammar):

    * ``worst`` — minimax siting: minimize the worst per-scenario outcome;
    * ``mean`` — expected-value siting across the scenario ensemble;
    * ``cvar:alpha`` — mean of the worst ``alpha`` fraction of scenarios
      (risk-aware sizing, DESIGN.md §6);
    * ``quantile:q`` — the q-quantile across scenarios.
    """

    composition: MicrogridComposition
    embodied_kg: float
    per_scenario: tuple[EvaluatedComposition, ...]
    aggregate: str = "worst"

    def __post_init__(self) -> None:
        parse_aggregate(self.aggregate)
        if not self.per_scenario:
            raise ConfigurationError("need at least one per-scenario evaluation")

    @property
    def embodied_tonnes(self) -> float:
        return self.embodied_kg / KG_PER_TONNE

    @property
    def operational_tco2_per_day(self) -> float:
        """Aggregated operational rate (same reduction as ``objectives``)."""
        values = [e.operational_tco2_per_day for e in self.per_scenario]
        return aggregate_values(values, self.aggregate)

    def objectives(
        self, names: Sequence[str] = ("operational", "embodied")
    ) -> tuple[float, ...]:
        """Robust-aggregate objective vector (all minimized)."""
        agg = parse_aggregate(self.aggregate)
        vectors = [e.objectives(names) for e in self.per_scenario]
        return tuple(aggregate_values(col, agg) for col in zip(*vectors))

    def scenario_objectives(
        self, names: Sequence[str] = ("operational", "embodied")
    ) -> tuple[tuple[float, ...], ...]:
        """Per-scenario objective vectors, in scenario order."""
        return tuple(e.objectives(names) for e in self.per_scenario)


def robust_evaluations(
    per_scenario: Sequence[Sequence[EvaluatedComposition]],
    aggregate: str = "worst",
) -> list[RobustEvaluatedComposition]:
    """Zip per-scenario evaluation lists into robust per-candidate wrappers.

    ``per_scenario[s][i]`` must pair scenario *s* with candidate *i* —
    the layout :func:`repro.core.fastsim.evaluate_across_scenarios`
    produces.
    """
    if not per_scenario:
        raise ConfigurationError("need at least one scenario's evaluations")
    n = len(per_scenario[0])
    if any(len(row) != n for row in per_scenario):
        raise ConfigurationError("per-scenario evaluation lists are misaligned")
    out: list[RobustEvaluatedComposition] = []
    for i in range(n):
        column = tuple(row[i] for row in per_scenario)
        comp = column[0].composition
        if any(e.composition != comp for e in column[1:]):
            raise ConfigurationError(f"candidate {i} differs across scenarios")
        out.append(
            RobustEvaluatedComposition(
                composition=comp,
                embodied_kg=column[0].embodied_kg,
                per_scenario=column,
                aggregate=aggregate,
            )
        )
    return out


def annualize_horizon_days(n_hours: int) -> float:
    """Days represented by an hourly simulation horizon."""
    return n_hours / 24.0


DEFAULT_HORIZON_DAYS = DAYS_PER_YEAR
