"""Simulation metrics and evaluated compositions.

The paper's tables report, per composition: embodied emissions (tCO₂),
operational emissions (tCO₂/day), on-site coverage (%), and battery
cycles.  §4.3 adds optional objectives (cost, curtailment, reliability,
degradation) — all carried by :class:`SimulationMetrics` so any subset
can be optimized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import ConfigurationError
from ..units import DAYS_PER_YEAR, KG_PER_TONNE, WH_PER_KWH, WH_PER_MWH
from .composition import MicrogridComposition


@dataclass(frozen=True)
class SimulationMetrics:
    """Aggregate outcome of simulating one composition for one horizon.

    All energies in Wh over the simulated horizon; emissions in kgCO2.
    """

    horizon_days: float
    demand_energy_wh: float
    onsite_generation_wh: float
    grid_import_wh: float
    grid_export_wh: float
    battery_charge_wh: float
    battery_discharge_wh: float
    operational_emissions_kg: float
    battery_usable_wh: float
    unserved_energy_wh: float = 0.0
    electricity_cost_usd: float = 0.0
    #: fraction of steps with zero grid import (reliability metric, §4.3)
    islanded_fraction: float = 0.0
    #: battery capacity fade over the horizon (degradation extension)
    battery_fade: float = 0.0

    def __post_init__(self) -> None:
        if self.horizon_days <= 0:
            raise ConfigurationError("horizon must be positive")
        for name in (
            "demand_energy_wh",
            "onsite_generation_wh",
            "grid_import_wh",
            "grid_export_wh",
            "battery_charge_wh",
            "battery_discharge_wh",
        ):
            if getattr(self, name) < -1e-6:
                raise ConfigurationError(f"{name} must be non-negative")

    # -- the tables' columns ------------------------------------------------

    @property
    def operational_tco2_per_day(self) -> float:
        """Operational emissions rate — the tables' 'Operat.' column."""
        return self.operational_emissions_kg / KG_PER_TONNE / self.horizon_days

    @property
    def coverage(self) -> float:
        """On-site coverage: fraction of demand *not* met by grid import.

        Matches the paper's 'Cov. (%)' column (0–1 here; format ×100).
        """
        if self.demand_energy_wh <= 0:
            return 0.0
        served = self.demand_energy_wh - self.grid_import_wh - self.unserved_energy_wh
        return max(min(served / self.demand_energy_wh, 1.0), 0.0)

    @property
    def battery_cycles(self) -> float | None:
        """Equivalent full cycles over the horizon ('Battery cycles').

        ``None`` when there is no battery (the tables print '–').
        """
        if self.battery_usable_wh <= 0:
            return None
        return self.battery_discharge_wh / self.battery_usable_wh

    # -- additional objectives (§4.3) -------------------------------------------

    @property
    def curtailed_energy_mwh(self) -> float:
        """Exported/curtailed on-site energy (MWh)."""
        return self.grid_export_wh / WH_PER_MWH

    @property
    def renewable_utilization(self) -> float:
        """Fraction of on-site generation actually used (1 − curtailed)."""
        if self.onsite_generation_wh <= 0:
            return 0.0
        return 1.0 - self.grid_export_wh / self.onsite_generation_wh

    @property
    def mean_import_intensity_g_per_kwh(self) -> float:
        """Average CI of imported energy (diagnostic)."""
        if self.grid_import_wh <= 0:
            return 0.0
        return self.operational_emissions_kg * 1_000.0 / (self.grid_import_wh / WH_PER_KWH)


@dataclass(frozen=True)
class EvaluatedComposition:
    """A composition together with its embodied cost and simulated metrics."""

    composition: MicrogridComposition
    embodied_kg: float
    metrics: SimulationMetrics

    @property
    def embodied_tonnes(self) -> float:
        return self.embodied_kg / KG_PER_TONNE

    @property
    def operational_tco2_per_day(self) -> float:
        return self.metrics.operational_tco2_per_day

    def objectives(self, names: Sequence[str] = ("operational", "embodied")) -> tuple[float, ...]:
        """Objective vector for the study layer (all minimized).

        Supported names: ``operational`` (tCO2/day), ``embodied`` (tCO2),
        ``cost`` ($), ``cycles`` (battery EFC), ``curtailment`` (MWh),
        ``grid_dependence`` (1 − coverage), ``unreliability``
        (1 − islanded fraction).
        """
        out: list[float] = []
        for name in names:
            if name == "operational":
                out.append(self.metrics.operational_tco2_per_day)
            elif name == "embodied":
                out.append(self.embodied_tonnes)
            elif name == "cost":
                out.append(self.metrics.electricity_cost_usd)
            elif name == "cycles":
                cycles = self.metrics.battery_cycles
                out.append(0.0 if cycles is None else cycles)
            elif name == "curtailment":
                out.append(self.metrics.curtailed_energy_mwh)
            elif name == "grid_dependence":
                out.append(1.0 - self.metrics.coverage)
            elif name == "unreliability":
                out.append(1.0 - self.metrics.islanded_fraction)
            else:
                raise ConfigurationError(f"unknown objective '{name}'")
        return tuple(out)

    def table_row(self) -> dict[str, float | str]:
        """One row of the paper's candidate tables."""
        cycles = self.metrics.battery_cycles
        return {
            "wind_mw": self.composition.wind_mw,
            "solar_mw": self.composition.solar_mw,
            "battery_mwh": self.composition.battery_mwh,
            "embodied_tco2": round(self.embodied_tonnes),
            "operational_tco2_day": round(self.operational_tco2_per_day, 2),
            "coverage_pct": round(self.metrics.coverage * 100.0, 2),
            "battery_cycles": "-" if cycles is None else round(cycles),
        }


#: The scalar :class:`SimulationMetrics` fields the equivalence checks
#: compare — shared by the stacked-vs-serial bit-for-bit assertions in
#: ``tests/test_dispatch_policies.py`` and ``benchmarks/bench_dispatch.py``
#: so a new metric field cannot silently weaken one of the two.
COMPARABLE_METRIC_FIELDS = (
    "demand_energy_wh",
    "onsite_generation_wh",
    "grid_import_wh",
    "grid_export_wh",
    "battery_charge_wh",
    "battery_discharge_wh",
    "operational_emissions_kg",
    "unserved_energy_wh",
    "electricity_cost_usd",
    "islanded_fraction",
)

#: Supported robust aggregations over scenarios (all objectives minimized,
#: so "worst" is the elementwise maximum).
AGGREGATES = ("worst", "mean")


@dataclass(frozen=True)
class RobustEvaluatedComposition:
    """One composition scored against several scenarios (DESIGN.md §5).

    Wraps the per-scenario :class:`EvaluatedComposition` results of a
    stacked multi-scenario evaluation and exposes the same
    ``objectives()`` interface the search/Pareto layers consume, with
    each objective reduced across scenarios by ``aggregate``:

    * ``worst`` — minimax siting: minimize the worst per-site outcome;
    * ``mean`` — expected-value siting across the scenario ensemble.
    """

    composition: MicrogridComposition
    embodied_kg: float
    per_scenario: tuple[EvaluatedComposition, ...]
    aggregate: str = "worst"

    def __post_init__(self) -> None:
        if self.aggregate not in AGGREGATES:
            raise ConfigurationError(
                f"unknown aggregate '{self.aggregate}' (known: {', '.join(AGGREGATES)})"
            )
        if not self.per_scenario:
            raise ConfigurationError("need at least one per-scenario evaluation")

    @property
    def embodied_tonnes(self) -> float:
        return self.embodied_kg / KG_PER_TONNE

    @property
    def operational_tco2_per_day(self) -> float:
        """Aggregated operational rate (same reduction as ``objectives``)."""
        values = [e.operational_tco2_per_day for e in self.per_scenario]
        return max(values) if self.aggregate == "worst" else sum(values) / len(values)

    def objectives(
        self, names: Sequence[str] = ("operational", "embodied")
    ) -> tuple[float, ...]:
        """Robust-aggregate objective vector (all minimized)."""
        vectors = [e.objectives(names) for e in self.per_scenario]
        if self.aggregate == "worst":
            return tuple(max(col) for col in zip(*vectors))
        return tuple(sum(col) / len(col) for col in zip(*vectors))

    def scenario_objectives(
        self, names: Sequence[str] = ("operational", "embodied")
    ) -> tuple[tuple[float, ...], ...]:
        """Per-scenario objective vectors, in scenario order."""
        return tuple(e.objectives(names) for e in self.per_scenario)


def robust_evaluations(
    per_scenario: Sequence[Sequence[EvaluatedComposition]],
    aggregate: str = "worst",
) -> list[RobustEvaluatedComposition]:
    """Zip per-scenario evaluation lists into robust per-candidate wrappers.

    ``per_scenario[s][i]`` must pair scenario *s* with candidate *i* —
    the layout :func:`repro.core.fastsim.evaluate_across_scenarios`
    produces.
    """
    if not per_scenario:
        raise ConfigurationError("need at least one scenario's evaluations")
    n = len(per_scenario[0])
    if any(len(row) != n for row in per_scenario):
        raise ConfigurationError("per-scenario evaluation lists are misaligned")
    out: list[RobustEvaluatedComposition] = []
    for i in range(n):
        column = tuple(row[i] for row in per_scenario)
        comp = column[0].composition
        if any(e.composition != comp for e in column[1:]):
            raise ConfigurationError(f"candidate {i} differs across scenarios")
        out.append(
            RobustEvaluatedComposition(
                composition=comp,
                embodied_kg=column[0].embodied_kg,
                per_scenario=column,
                aggregate=aggregate,
            )
        )
    return out


def annualize_horizon_days(n_hours: int) -> float:
    """Days represented by an hourly simulation horizon."""
    return n_hours / 24.0


DEFAULT_HORIZON_DAYS = DAYS_PER_YEAR
