"""Simulation metrics and evaluated compositions.

The paper's tables report, per composition: embodied emissions (tCO₂),
operational emissions (tCO₂/day), on-site coverage (%), and battery
cycles.  §4.3 adds optional objectives (cost, curtailment, reliability,
degradation) — all carried by :class:`SimulationMetrics` so any subset
can be optimized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import ConfigurationError
from ..units import DAYS_PER_YEAR, KG_PER_TONNE, WH_PER_KWH, WH_PER_MWH
from .composition import MicrogridComposition


@dataclass(frozen=True)
class SimulationMetrics:
    """Aggregate outcome of simulating one composition for one horizon.

    All energies in Wh over the simulated horizon; emissions in kgCO2.
    """

    horizon_days: float
    demand_energy_wh: float
    onsite_generation_wh: float
    grid_import_wh: float
    grid_export_wh: float
    battery_charge_wh: float
    battery_discharge_wh: float
    operational_emissions_kg: float
    battery_usable_wh: float
    unserved_energy_wh: float = 0.0
    electricity_cost_usd: float = 0.0
    #: fraction of steps with zero grid import (reliability metric, §4.3)
    islanded_fraction: float = 0.0
    #: battery capacity fade over the horizon (degradation extension)
    battery_fade: float = 0.0

    def __post_init__(self) -> None:
        if self.horizon_days <= 0:
            raise ConfigurationError("horizon must be positive")
        for name in (
            "demand_energy_wh",
            "onsite_generation_wh",
            "grid_import_wh",
            "grid_export_wh",
            "battery_charge_wh",
            "battery_discharge_wh",
        ):
            if getattr(self, name) < -1e-6:
                raise ConfigurationError(f"{name} must be non-negative")

    # -- the tables' columns ------------------------------------------------

    @property
    def operational_tco2_per_day(self) -> float:
        """Operational emissions rate — the tables' 'Operat.' column."""
        return self.operational_emissions_kg / KG_PER_TONNE / self.horizon_days

    @property
    def coverage(self) -> float:
        """On-site coverage: fraction of demand *not* met by grid import.

        Matches the paper's 'Cov. (%)' column (0–1 here; format ×100).
        """
        if self.demand_energy_wh <= 0:
            return 0.0
        served = self.demand_energy_wh - self.grid_import_wh - self.unserved_energy_wh
        return max(min(served / self.demand_energy_wh, 1.0), 0.0)

    @property
    def battery_cycles(self) -> float | None:
        """Equivalent full cycles over the horizon ('Battery cycles').

        ``None`` when there is no battery (the tables print '–').
        """
        if self.battery_usable_wh <= 0:
            return None
        return self.battery_discharge_wh / self.battery_usable_wh

    # -- additional objectives (§4.3) -------------------------------------------

    @property
    def curtailed_energy_mwh(self) -> float:
        """Exported/curtailed on-site energy (MWh)."""
        return self.grid_export_wh / WH_PER_MWH

    @property
    def renewable_utilization(self) -> float:
        """Fraction of on-site generation actually used (1 − curtailed)."""
        if self.onsite_generation_wh <= 0:
            return 0.0
        return 1.0 - self.grid_export_wh / self.onsite_generation_wh

    @property
    def mean_import_intensity_g_per_kwh(self) -> float:
        """Average CI of imported energy (diagnostic)."""
        if self.grid_import_wh <= 0:
            return 0.0
        return self.operational_emissions_kg * 1_000.0 / (self.grid_import_wh / WH_PER_KWH)


@dataclass(frozen=True)
class EvaluatedComposition:
    """A composition together with its embodied cost and simulated metrics."""

    composition: MicrogridComposition
    embodied_kg: float
    metrics: SimulationMetrics

    @property
    def embodied_tonnes(self) -> float:
        return self.embodied_kg / KG_PER_TONNE

    @property
    def operational_tco2_per_day(self) -> float:
        return self.metrics.operational_tco2_per_day

    def objectives(self, names: Sequence[str] = ("operational", "embodied")) -> tuple[float, ...]:
        """Objective vector for the study layer (all minimized).

        Supported names: ``operational`` (tCO2/day), ``embodied`` (tCO2),
        ``cost`` ($), ``cycles`` (battery EFC), ``curtailment`` (MWh),
        ``grid_dependence`` (1 − coverage), ``unreliability``
        (1 − islanded fraction).
        """
        out: list[float] = []
        for name in names:
            if name == "operational":
                out.append(self.metrics.operational_tco2_per_day)
            elif name == "embodied":
                out.append(self.embodied_tonnes)
            elif name == "cost":
                out.append(self.metrics.electricity_cost_usd)
            elif name == "cycles":
                cycles = self.metrics.battery_cycles
                out.append(0.0 if cycles is None else cycles)
            elif name == "curtailment":
                out.append(self.metrics.curtailed_energy_mwh)
            elif name == "grid_dependence":
                out.append(1.0 - self.metrics.coverage)
            elif name == "unreliability":
                out.append(1.0 - self.metrics.islanded_fraction)
            else:
                raise ConfigurationError(f"unknown objective '{name}'")
        return tuple(out)

    def table_row(self) -> dict[str, float | str]:
        """One row of the paper's candidate tables."""
        cycles = self.metrics.battery_cycles
        return {
            "wind_mw": self.composition.wind_mw,
            "solar_mw": self.composition.solar_mw,
            "battery_mwh": self.composition.battery_mwh,
            "embodied_tco2": round(self.embodied_tonnes),
            "operational_tco2_day": round(self.operational_tco2_per_day, 2),
            "coverage_pct": round(self.metrics.coverage * 100.0, 2),
            "battery_cycles": "-" if cycles is None else round(cycles),
        }


def annualize_horizon_days(n_hours: int) -> float:
    """Days represented by an hourly simulation horizon."""
    return n_hours / 24.0


DEFAULT_HORIZON_DAYS = DAYS_PER_YEAR
