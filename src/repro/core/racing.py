"""Multi-fidelity ensemble racing: successive halving over members.

The paper names "dynamic pruning or early stopping for non-promising
simulation runs" as future work (§4.4).  This module (DESIGN.md §8) is
that subsystem for *ensemble* evaluation: instead of paying the full
S-member stacked time loop for every candidate, each candidate races
through progressively larger member subsets — rungs, e.g. ``2 → 8 → S``
— and only candidates whose partial risk-aggregate still reaches the
surviving Pareto front are promoted to the next rung.

Three properties make the race exact rather than merely heuristic:

* **Nested, deterministic subsets** — rung subsets are prefixes of one
  fixed member ordering, so rung *k*'s members are contained in rung
  *k+1*'s and each rung only evaluates the members *new* to it.  The
  default ``order=hardest`` ranks members by the operational emissions
  of a fixed probe build (hardest futures first — so the first rung's
  partial ``worst`` is usually already the exact worst and the
  elimination bounds below are tight); ``order=seeded`` uses the seeded
  permutation of :func:`repro.core.ensemble.member_subset`.  Both
  derive only from the ensemble and the schedule spec — never from
  process state — so a resumed study replays identical subsets.
* **Per-cell bit-identity** — partial rungs ride
  :func:`repro.core.fastsim.evaluate_member_slice`, the same (S, N)
  tensor loop on a member slice; every (member, candidate) cell is
  independent of which other members/candidates share the stack, so a
  finalist's incrementally-filled full-ensemble evaluation is
  bit-for-bit what a never-raced evaluation produces.
* **A sound elimination proof** — a candidate may be discarded for
  good only once some exactly-evaluated candidate strictly dominates a
  certified *lower bound* on its exact aggregate — then the exact
  candidate dominates the discarded one's exact vector too, so the
  discard provably cannot change the front.  For ``worst`` the bound is
  the running maximum of the seen members (sound for any value sign);
  ``mean``/``cvar``/``quantile`` are monotone non-decreasing in each
  member value, so zero-padding the unseen members bounds them from
  below — certified only for objectives that are non-negative by
  construction (:data:`NONNEGATIVE_OBJECTIVES`; e.g. ``cost`` can go
  negative under export credits, so its padded bound is void and such
  candidates are simply promoted rather than proven).  Eliminated
  candidates whose bound is not yet proven dominated climb the
  remaining rungs (tightening the bound) until proven or fully
  evaluated.  Consequence: :func:`race_front` returns the **identical
  Pareto front** a full-ensemble evaluation returns, at a fraction of
  the member-evaluations (``benchmarks/bench_racing.py`` asserts ≥2×).

Study integration lives in :mod:`repro.core.study_runner`
(``run_blackbox(racing=...)``) and :mod:`repro.blackbox.parallel`
(rung dispatch across worker processes); the CLI flag is
``repro study run --racing rungs=2,8,full``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..blackbox.multiobjective import pareto_front_indices
from ..exceptions import ConfigurationError
from .composition import MicrogridComposition
from .dispatch import VectorizedPolicy
from .ensemble import member_subset
from .fastsim import evaluate_member_slice
from .metrics import (
    EvaluatedComposition,
    RobustEvaluatedComposition,
    aggregate_values,
    parse_aggregate,
)
from .pareto import pareto_front
from .scenario import Scenario

__all__ = [
    "NONNEGATIVE_OBJECTIVES",
    "PrunedCandidate",
    "RaceOutcome",
    "RacingEvaluator",
    "RacingStats",
    "RungSchedule",
    "difficulty_ranking",
    "partial_lower_bound",
    "race_front",
]

#: spec token meaning "the full ensemble" (the mandatory final rung)
FULL = "full"

#: member orderings the rung subsets can be prefixes of
ORDERS = ("hardest", "seeded")

#: objectives that are non-negative by construction (emissions, energy,
#: and fraction metrics cannot go below zero) — the zero-padded
#: elimination bounds for mean/cvar/quantile are certified only for
#: these.  ``cost`` is deliberately absent: export credits can drive it
#: negative, which would turn the padding into an over-estimate.
NONNEGATIVE_OBJECTIVES = frozenset(
    {"operational", "embodied", "cycles", "curtailment", "grid_dependence",
     "unreliability", "fade"}
)

#: fixed reference build whose per-member first-objective values define
#: the ``hardest`` member order.  Any fixed probe keeps the race sound
#: (subset choice only affects bound tightness, never validity); a
#: mid-size build separates scarce from plentiful futures well on the
#: paper's sites.  Probing costs S single-candidate member evaluations,
#: once per evaluator.
PROBE_COMPOSITION = MicrogridComposition(
    n_turbines=5, solar_kw=20_000.0, battery_units=4
)


@dataclass(frozen=True)
class RungSchedule:
    """A successive-halving rung ladder over ensemble members.

    ``rungs`` are member counts in strictly increasing order; ``None``
    means *all* members and must be (only) the final entry, so finalists
    are always exactly evaluated.  ``order`` picks the member ordering
    the nested subsets are prefixes of (``hardest`` — probe-ranked,
    default — or ``seeded``); ``subset_seed`` seeds the ``seeded``
    permutation.

    The CLI grammar round-trips: ``RungSchedule.parse(s).spec_string()``
    reproduces ``s`` up to normalization, which is what lets a journal's
    study metadata rebuild the identical rung subsets on resume.
    """

    rungs: tuple[int | None, ...] = (2, 8, None)
    order: str = "hardest"
    subset_seed: int = 0

    def __post_init__(self) -> None:
        if self.order not in ORDERS:
            raise ConfigurationError(
                f"unknown racing order '{self.order}' (known: {', '.join(ORDERS)})"
            )
        if not self.rungs:
            raise ConfigurationError("racing needs at least one rung")
        if self.rungs[-1] is not None:
            raise ConfigurationError(
                "the final rung must be 'full' so finalists are exactly "
                f"evaluated (got {self.rungs})"
            )
        sizes = self.rungs[:-1]
        if any(r is None for r in sizes):
            raise ConfigurationError(f"'full' must be the final rung (got {self.rungs})")
        for r in sizes:
            if int(r) < 1:
                raise ConfigurationError(f"rung sizes must be >= 1, got {r}")
        if any(b <= a for a, b in zip(sizes, sizes[1:])):
            raise ConfigurationError(
                f"rung sizes must be strictly increasing, got {self.rungs}"
            )

    @classmethod
    def parse(cls, text: "str | RungSchedule") -> "RungSchedule":
        """Parse the CLI grammar, e.g. ``rungs=2,8,full`` or
        ``rungs=2,8,full,order=seeded,seed=7``.

        Comma-separated tokens; a ``key=`` prefix starts a key
        (``rungs``, ``order``, or ``seed``), bare tokens continue the
        current ``rungs`` list.  A leading bare token is an implicit
        ``rungs`` entry, so plain ``2,8,full`` parses too.
        """
        if isinstance(text, RungSchedule):
            return text
        key = "rungs"
        rungs_raw: list[str] = []
        order = "hardest"
        seed = 0
        for token in str(text).split(","):
            token = token.strip()
            if not token:
                continue
            name, sep, value = token.partition("=")
            if sep:
                key = name.strip()
                token = value.strip()
                if not token:
                    raise ConfigurationError(f"malformed racing token '{name}='")
            elif key != "rungs":
                # Only the rungs list continues across commas; a stray
                # bare token after order=/seed= would silently overwrite
                # the resume-identity spec.
                raise ConfigurationError(
                    f"unexpected racing token '{token}' after '{key}=' "
                    "(only the rungs list takes comma-separated values)"
                )
            if key == "rungs":
                rungs_raw.append(token)
            elif key == "order":
                order = token.lower()
            elif key == "seed":
                try:
                    seed = int(token)
                except ValueError:
                    raise ConfigurationError(
                        f"malformed racing seed '{token}'"
                    ) from None
            else:
                raise ConfigurationError(
                    f"unknown racing key '{key}' (known: rungs, order, seed)"
                )
        if not rungs_raw:
            raise ConfigurationError(f"racing spec '{text}' names no rungs")
        rungs: list[int | None] = []
        for raw in rungs_raw:
            if raw.lower() == FULL:
                rungs.append(None)
            else:
                try:
                    rungs.append(int(raw))
                except ValueError:
                    raise ConfigurationError(
                        f"malformed rung size '{raw}' (use an integer or '{FULL}')"
                    ) from None
        return cls(rungs=tuple(rungs), order=order, subset_seed=seed)

    def spec_string(self) -> str:
        """Round-trippable spec (journal metadata; DESIGN.md §8)."""
        sizes = ",".join(FULL if r is None else str(r) for r in self.rungs)
        suffix = "" if self.order == "hardest" else f",order={self.order}"
        if self.subset_seed:
            suffix += f",seed={self.subset_seed}"
        return f"rungs={sizes}{suffix}"

    def resolve(self, n_members: int) -> tuple[int, ...]:
        """Concrete rung sizes for an ``n_members`` ensemble.

        Rungs at or above the ensemble size collapse into the final
        full rung, so a ``2,8,full`` schedule degrades gracefully on a
        5-member ensemble (→ ``2, 5``) and on a single scenario (→
        ``1``, i.e. no racing at all).
        """
        if n_members <= 0:
            raise ConfigurationError(f"n_members must be positive, got {n_members}")
        sizes = [int(r) for r in self.rungs[:-1] if int(r) < n_members]
        return tuple(sizes) + (n_members,)

    def subsets(self, n_members: int) -> list[tuple[int, ...]]:
        """Nested member-index subsets, one per resolved rung.

        Only defined for ``order=seeded`` (or a single-member ensemble,
        where every order is the same): the ``hardest`` order needs a
        probe evaluation of the actual ensemble, which a bare schedule
        cannot perform — rank the members first and call
        :meth:`subsets_from_order`, as :class:`RacingEvaluator` and the
        parallel rung dispatch do.  Raising here (instead of silently
        falling back to the seeded permutation) keeps every racing
        driver honest about the order the spec string records.
        """
        if self.order == "hardest" and n_members > 1:
            raise ConfigurationError(
                "the 'hardest' order ranks members with a probe evaluation; "
                "pass the ranking to subsets_from_order() (or use "
                "order=seeded)"
            )
        return [
            member_subset(n_members, size, seed=self.subset_seed)
            for size in self.resolve(n_members)
        ]

    def subsets_from_order(self, order: Sequence[int]) -> list[tuple[int, ...]]:
        """Nested subsets as prefixes of an explicit member ranking."""
        ranking = [int(i) for i in order]
        if sorted(ranking) != list(range(len(ranking))):
            raise ConfigurationError(
                f"member ranking must be a permutation of 0..{len(ranking) - 1}"
            )
        return [
            tuple(sorted(ranking[:size])) for size in self.resolve(len(ranking))
        ]


def difficulty_ranking(difficulty: Sequence[float]) -> list[int]:
    """Member indices hardest-first (stable, so ties keep ensemble order)."""
    return [int(i) for i in np.argsort(-np.asarray(difficulty), kind="stable")]


def resolve_rung_subsets(objective, schedule: "RungSchedule") -> list[tuple[int, ...]]:
    """Validate a multi-fidelity objective and resolve its rung subsets.

    The driver-side half of Optuna-style rung dispatch (DESIGN.md §8),
    shared by :class:`~repro.blackbox.parallel.ParallelStudyRunner` and
    :class:`~repro.blackbox.parallel.PipelinedDispatcher` so both race
    identical subsets for a given ensemble: checks the objective exposes
    the ``n_members`` / ``aggregate`` / ``member_values`` hooks (plus
    ``member_difficulty`` for the probe-ranked ``hardest`` order, which
    is evaluated once per call — the ranking is deterministic per
    ensemble) and returns the nested member subsets, one per rung.
    """
    from ..exceptions import OptimizationError

    hooks = ["n_members", "aggregate", "member_values"]
    if schedule.order == "hardest":
        hooks.append("member_difficulty")  # probe-ranked subsets
    for hook in hooks:
        if not hasattr(objective, hook):
            raise OptimizationError(
                "racing needs a multi-fidelity objective exposing "
                f"'{hook}' (see CompositionObjective)"
            )
    n_members = int(objective.n_members)
    if schedule.order == "hardest" and n_members > 1:
        return schedule.subsets_from_order(
            difficulty_ranking(objective.member_difficulty())
        )
    return schedule.subsets(n_members)


def partial_lower_bound(
    seen_values: Sequence[float],
    n_members: int,
    aggregate: str,
    nonnegative: bool = True,
) -> "float | None":
    """Certified lower bound on an aggregate from a member subset.

    For ``worst`` the bound is the maximum of the seen members —
    unconditionally sound, unseen members can only raise a maximum.
    The other aggregates are monotone non-decreasing in each member
    value, so replacing the unseen members with zero bounds them from
    below — *provided every member value is ≥ 0*, including the unseen
    ones.  Callers certify that with ``nonnegative`` (see
    :data:`NONNEGATIVE_OBJECTIVES`); with ``nonnegative=False``, or
    when a seen value is already negative, there is no sound bound and
    ``None`` is returned — the candidate must then be treated as
    unproven (promoted, never silently pruned).
    """
    values = [float(v) for v in seen_values]
    if len(values) > n_members:
        raise ConfigurationError(
            f"{len(values)} seen values for an {n_members}-member ensemble"
        )
    parsed = parse_aggregate(aggregate)
    if parsed.kind == "worst":
        return max(values) if values else None
    if not nonnegative or any(v < 0.0 for v in values):
        return None
    padded = values + [0.0] * (n_members - len(values))
    return aggregate_values(padded, parsed)


@dataclass
class RacingStats:
    """Work accounting for one race (merged across generations)."""

    n_members: int = 0
    rung_sizes: tuple[int, ...] = ()
    candidates: int = 0
    #: eliminated candidates *proven* dominated (never fully evaluated)
    pruned: int = 0
    #: eliminated candidates rescued by the exactness check
    promoted_back: int = 0
    #: (candidate, member) cells actually simulated at *full physics*
    member_evals: int = 0
    #: candidates × S — what a non-raced evaluation would have simulated
    full_member_evals: int = 0
    #: (candidate, member) cells simulated on cheap fidelity siblings
    #: (screening + calibration; zero for a plain member-rung race)
    low_fidelity_evals: int = 0
    #: eliminated candidates proven dominated with *zero* full-physics
    #: member evaluations (fidelity-envelope proofs; DESIGN.md §11)
    screened: int = 0
    #: candidates entering each rung, keyed by rung size
    alive_per_rung: dict[int, int] = field(default_factory=dict)

    @property
    def savings(self) -> float:
        """Work-reduction factor vs full-ensemble evaluation."""
        if self.member_evals <= 0:
            return 1.0
        return self.full_member_evals / self.member_evals

    def merge(self, other: "RacingStats") -> None:
        """Accumulate another race's counters (per-generation merging)."""
        self.n_members = other.n_members
        self.rung_sizes = other.rung_sizes
        self.candidates += other.candidates
        self.pruned += other.pruned
        self.promoted_back += other.promoted_back
        self.member_evals += other.member_evals
        self.full_member_evals += other.full_member_evals
        self.low_fidelity_evals += other.low_fidelity_evals
        self.screened += other.screened
        for size, count in other.alive_per_rung.items():
            self.alive_per_rung[size] = self.alive_per_rung.get(size, 0) + count


@dataclass(frozen=True)
class PrunedCandidate:
    """Race record of a candidate proven off the front before full fidelity."""

    composition: MicrogridComposition
    #: members seen when the elimination proof closed
    rung_size: int
    #: ``(rung_size, partial objective vector)`` per rung climbed
    partials: tuple[tuple[int, tuple[float, ...]], ...]


@dataclass
class RaceOutcome:
    """Result of racing one candidate set."""

    #: exact full-ensemble evaluations: finalists and promoted-back
    #: candidates (plus any ``known`` evaluations passed in)
    evaluated: dict[MicrogridComposition, RobustEvaluatedComposition]
    #: candidates proven dominated, with their partial-value history
    pruned: dict[MicrogridComposition, PrunedCandidate]
    stats: RacingStats


#: ``evaluate_slice(member_indices, comps) -> result[j][i]`` pairing
#: slice position ``j`` with candidate ``i`` — the signature of
#: :func:`repro.core.fastsim.evaluate_member_slice` with the scenario
#: list bound; drivers substitute a launcher-backed implementation.
SliceEvaluator = Callable[
    [Sequence[int], "list[MicrogridComposition]"],
    "list[list[EvaluatedComposition]]",
]


def _strictly_dominated(bound: np.ndarray, exact: np.ndarray) -> bool:
    """True if some exact row dominates ``bound`` (≤ all, < somewhere).

    Then that row also dominates the candidate's *exact* vector (which
    is ≥ its bound componentwise), so the candidate is provably off the
    front.
    """
    if exact.size == 0:
        return False
    le = np.all(exact <= bound, axis=1)
    lt = np.any(exact < bound, axis=1)
    return bool(np.any(le & lt))


class RacingEvaluator:
    """Races candidate sets through the rung ladder to an exact front.

    One instance per (ensemble, schedule, aggregate, objectives); call
    :meth:`race` per candidate batch (e.g. one NSGA-II generation).
    ``evaluate_slice`` defaults to the in-process stacked tensor loop;
    the study drivers pass a launcher-backed version to fan rung
    evaluation across worker processes (DESIGN.md §8).
    """

    def __init__(
        self,
        scenarios: Sequence[Scenario],
        schedule: "RungSchedule | str" = RungSchedule(),
        aggregate: str = "worst",
        objectives: Sequence[str] = ("operational", "embodied"),
        policy: VectorizedPolicy | None = None,
        evaluate_slice: "SliceEvaluator | None" = None,
        engine: str = "auto",
        member_order: "Sequence[int] | None" = None,
    ) -> None:
        self.scenarios = list(scenarios)
        if not self.scenarios:
            raise ConfigurationError("racing needs at least one scenario")
        self.schedule = RungSchedule.parse(schedule)
        parse_aggregate(aggregate)  # fail fast
        self.aggregate = aggregate
        self.objectives = tuple(objectives)
        self.policy = policy
        #: dispatch engine for the default in-process slice evaluator
        #: (DESIGN.md §9; launcher-backed evaluators carry their own)
        self.engine = engine
        self._evaluate_slice = evaluate_slice or self._default_slice
        self.sizes = self.schedule.resolve(len(self.scenarios))
        #: explicit member ranking (hardest-first) replacing the probe —
        #: the fidelity ladder ranks members once at its cheapest level
        #: and shares the order so every level races identical subsets
        self._member_order = list(member_order) if member_order is not None else None
        self._subsets: "list[tuple[int, ...]] | None" = None
        #: member evals spent probing the 'hardest' order, charged to the
        #: first race's stats
        self._probe_evals_pending = 0

    def _default_slice(
        self, member_indices: Sequence[int], comps: "list[MicrogridComposition]"
    ) -> "list[list[EvaluatedComposition]]":
        return evaluate_member_slice(
            self.scenarios, member_indices, comps, policy=self.policy, engine=self.engine
        )

    @property
    def subsets(self) -> "list[tuple[int, ...]]":
        """Nested member subsets, one per rung (computed on first use)."""
        if self._subsets is None:
            n = len(self.scenarios)
            if self._member_order is not None:
                self._subsets = self.schedule.subsets_from_order(self._member_order)
            elif self.schedule.order == "hardest" and n > 1:
                self._subsets = self.schedule.subsets_from_order(
                    self._difficulty_order()
                )
                self._probe_evals_pending = n
            else:
                self._subsets = self.schedule.subsets(n)
        return self._subsets

    def _difficulty_order(self) -> "list[int]":
        """Members ranked hardest-first by a fixed probe build.

        One single-candidate evaluation of every member, sorted by the
        first objective descending (stable, so ties keep ensemble
        order).  Deterministic given the ensemble — resume rebuilds the
        ensemble from its persisted spec and therefore the same order.
        """
        per_member = self._evaluate_slice(
            list(range(len(self.scenarios))), [PROBE_COMPOSITION]
        )
        return difficulty_ranking(
            [row[0].objectives(self.objectives)[0] for row in per_member]
        )

    # -- per-candidate bookkeeping helpers ------------------------------------

    def _fill(
        self,
        evals: "dict[MicrogridComposition, dict[int, EvaluatedComposition]]",
        comps: "list[MicrogridComposition]",
        new_members: "list[int]",
        stats: RacingStats,
    ) -> None:
        """Evaluate ``comps`` on ``new_members`` and record per-cell results."""
        if not comps or not new_members:
            return
        per_member = self._evaluate_slice(new_members, comps)
        stats.member_evals += len(new_members) * len(comps)
        for j, m in enumerate(new_members):
            for i, comp in enumerate(comps):
                evals[comp][m] = per_member[j][i]

    def _partial_vector(
        self, member_evals: "dict[int, EvaluatedComposition]"
    ) -> tuple[float, ...]:
        """Aggregate the seen members' objective vectors (any subset size)."""
        vectors = [member_evals[m].objectives(self.objectives) for m in sorted(member_evals)]
        return tuple(
            aggregate_values(column, self.aggregate) for column in zip(*vectors)
        )

    def _exact(
        self,
        comp: MicrogridComposition,
        member_evals: "dict[int, EvaluatedComposition]",
    ) -> RobustEvaluatedComposition:
        """Exact wrapper over the full member set, in canonical order.

        Built exactly like :func:`repro.core.metrics.robust_evaluations`
        builds it from a full-stack evaluation, so ``objectives()`` runs
        the identical float reduction — finalists are bit-for-bit.
        """
        per_scenario = tuple(member_evals[m] for m in range(len(self.scenarios)))
        return RobustEvaluatedComposition(
            composition=comp,
            embodied_kg=per_scenario[0].embodied_kg,
            per_scenario=per_scenario,
            aggregate=self.aggregate,
        )

    def _lower_bounds(
        self,
        comps: "list[MicrogridComposition]",
        evals: "dict[MicrogridComposition, dict[int, EvaluatedComposition]]",
    ) -> "list[np.ndarray | None]":
        """Certified lower-bound vectors (None where no sound bound exists)."""
        n = len(self.scenarios)
        out: "list[np.ndarray | None]" = []
        for comp in comps:
            seen = [evals[comp][m].objectives(self.objectives) for m in sorted(evals[comp])]
            bounds = [
                partial_lower_bound(
                    column,
                    n,
                    self.aggregate,
                    nonnegative=name in NONNEGATIVE_OBJECTIVES,
                )
                for name, column in zip(self.objectives, zip(*seen))
            ]
            out.append(None if any(b is None for b in bounds) else np.array(bounds))
        return out

    # -- the race -------------------------------------------------------------

    def race(
        self,
        compositions: Sequence[MicrogridComposition],
        known: "dict[MicrogridComposition, RobustEvaluatedComposition] | None" = None,
    ) -> RaceOutcome:
        """Race a candidate set; return exact survivors + proven-pruned.

        ``known`` passes already-exact evaluations (e.g. the study
        runner's memo cache for revisited genomes): they pay nothing,
        and their exact vectors sharpen both the promotion fronts and
        the elimination proofs.

        Every returned ``evaluated`` entry is a full-ensemble
        evaluation; every ``pruned`` entry is *proven* strictly
        dominated by one of them, so the Pareto front over ``evaluated``
        is exactly the front a full evaluation of all candidates would
        report.
        """
        comps = list(dict.fromkeys(compositions))
        exact: "dict[MicrogridComposition, RobustEvaluatedComposition]" = dict(known or {})
        unknown = [c for c in comps if c not in exact]

        subsets = self.subsets  # may probe the member order (first race)
        stats = RacingStats(
            n_members=len(self.scenarios),
            rung_sizes=self.sizes,
            candidates=len(unknown),
            full_member_evals=len(unknown) * len(self.scenarios),
            member_evals=self._probe_evals_pending,
        )
        self._probe_evals_pending = 0
        evals: "dict[MicrogridComposition, dict[int, EvaluatedComposition]]" = {
            c: {} for c in unknown
        }
        partials: "dict[MicrogridComposition, list[tuple[int, tuple[float, ...]]]]" = {
            c: [] for c in unknown
        }
        eliminated: "list[MicrogridComposition]" = []

        known_vectors = [exact[c].objectives(self.objectives) for c in comps if c in exact]
        alive = unknown
        seen: tuple[int, ...] = ()
        for rung_index, (size, subset) in enumerate(zip(self.sizes, subsets)):
            if not alive:
                break
            stats.alive_per_rung[size] = len(alive)
            new_members = [m for m in subset if m not in seen]
            self._fill(evals, alive, new_members, stats)
            seen = subset
            if rung_index == len(self.sizes) - 1:
                for comp in alive:
                    exact[comp] = self._exact(comp, evals[comp])
                break
            vectors = [self._partial_vector(evals[c]) for c in alive]
            for comp, vec in zip(alive, vectors):
                partials[comp].append((size, vec))
            # Promotion rule: a candidate survives the rung only if its
            # partial aggregate reaches the surviving front.  Known
            # exact vectors join the pool — being dominated by an exact
            # candidate is already a closed elimination proof.
            pool = np.array(vectors + known_vectors, dtype=np.float64)
            front = set(int(i) for i in pareto_front_indices(pool))
            next_alive = [c for i, c in enumerate(alive) if i in front]
            eliminated.extend(c for i, c in enumerate(alive) if i not in front)
            alive = next_alive

        self._verify(exact, evals, partials, eliminated, stats)

        pruned = {
            c: PrunedCandidate(
                composition=c,
                rung_size=len(evals[c]),
                partials=tuple(partials[c]),
            )
            for c in unknown
            if c not in exact
        }
        stats.pruned = len(pruned)
        return RaceOutcome(evaluated=exact, pruned=pruned, stats=stats)

    def _verify(
        self,
        exact: "dict[MicrogridComposition, RobustEvaluatedComposition]",
        evals: "dict[MicrogridComposition, dict[int, EvaluatedComposition]]",
        partials: "dict[MicrogridComposition, list[tuple[int, tuple[float, ...]]]]",
        eliminated: "list[MicrogridComposition]",
        stats: RacingStats,
    ) -> None:
        """Close every elimination with a proof, or climb until exact.

        An eliminated candidate whose certified lower bound is not
        strictly dominated by some exact evaluation climbs to the next
        rung size (tightening the bound) and is re-checked; a candidate
        that reaches full fidelity joins the exact set (promoted back).
        The loop terminates because every pass either proves a candidate
        dominated or strictly grows its member set.
        """
        n = len(self.scenarios)
        pending = list(eliminated)
        while pending:
            exact_matrix = np.array(
                [e.objectives(self.objectives) for e in exact.values()],
                dtype=np.float64,
            )
            bounds = self._lower_bounds(pending, evals)
            unproven = [
                comp
                for comp, bound in zip(pending, bounds)
                if bound is None or not _strictly_dominated(bound, exact_matrix)
            ]
            if not unproven:
                break
            # Advance every unproven candidate to its next rung size,
            # grouped by how many members it has seen (so each group is
            # one vectorized slice evaluation).
            by_size: "dict[int, list[MicrogridComposition]]" = {}
            for comp in unproven:
                by_size.setdefault(len(evals[comp]), []).append(comp)
            subset_of_size = dict(zip(self.sizes, self.subsets))
            for seen_count, group in by_size.items():
                target = next((s for s in self.sizes if s > seen_count), n)
                new_members = [
                    m for m in subset_of_size[target] if m not in evals[group[0]]
                ]
                self._fill(evals, group, new_members, stats)
                for comp in group:
                    if len(evals[comp]) >= n:
                        exact[comp] = self._exact(comp, evals[comp])
                        stats.promoted_back += 1
                    else:
                        partials[comp].append(
                            (len(evals[comp]), self._partial_vector(evals[comp]))
                        )
            pending = [c for c in unproven if c not in exact]


def race_front(
    scenarios: Sequence[Scenario],
    compositions: Sequence[MicrogridComposition],
    schedule: "RungSchedule | str" = RungSchedule(),
    aggregate: str = "worst",
    objectives: Sequence[str] = ("operational", "embodied"),
    policy: VectorizedPolicy | None = None,
    evaluate_slice: "SliceEvaluator | None" = None,
    engine: str = "auto",
    fidelity: "Any | None" = None,
) -> "tuple[list[RobustEvaluatedComposition], RaceOutcome]":
    """Exact Pareto front of a candidate set via successive halving.

    Returns ``(front, outcome)`` — the front is identical to
    ``pareto_front(evaluate_ensemble(scenarios, compositions, ...))``
    (the elimination proofs of :class:`RacingEvaluator` guarantee it)
    while ``outcome.stats`` records the member-evaluation savings.

    ``fidelity`` (a spec string or
    :class:`~repro.core.fidelity.FidelityLadder`) adds the model-fidelity
    axis orthogonal to the member rungs (DESIGN.md §11): candidates are
    screened on cheap physics siblings and only climb to full physics
    when their envelope-widened bounds cannot prove them off the front.
    The returned front is then over the ladder-top (``full``) physics and
    still bit-identical to a full evaluation of every candidate on it.
    """
    if fidelity is not None:
        from .fidelity import fidelity_race_front

        return fidelity_race_front(
            scenarios,
            compositions,
            ladder=fidelity,
            schedule=schedule,
            aggregate=aggregate,
            objectives=objectives,
            policy=policy,
            engine=engine,
        )
    evaluator = RacingEvaluator(
        scenarios,
        schedule=schedule,
        aggregate=aggregate,
        objectives=objectives,
        policy=policy,
        evaluate_slice=evaluate_slice,
        engine=engine,
    )
    outcome = evaluator.race(compositions)
    front = pareto_front(list(outcome.evaluated.values()), objectives)
    return front, outcome
