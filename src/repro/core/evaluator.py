"""Co-simulation-backed composition evaluation (the faithful path).

Builds the full Vessim-style stack for one composition — SAM signals,
actors, the C/L/C battery, the default policy, grid accounting — and runs
the discrete-event engine over the scenario horizon.  Slower than
:class:`~repro.core.fastsim.BatchEvaluator` but architecturally faithful
to the paper (§3.1–3.2), supports controllers/alternative policies, and
serves as the reference implementation the batch path is validated
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cosim.actor import Actor
from ..cosim.battery import CLCBattery
from ..cosim.controller import Controller
from ..cosim.engine import CoSimEnvironment, MicrogridSimulator
from ..cosim.grid import GridConnection
from ..cosim.microgrid import Microgrid
from ..cosim.monitor import Monitor
from ..cosim.policy import MicrogridPolicy
from ..cosim.signal import TraceSignal
from ..sam.batterymodels.clc import CLCParameters
from ..timeseries import TimeSeries
from ..units import SECONDS_PER_HOUR
from .composition import MicrogridComposition
from .embodied import embodied_carbon_kg
from .fastsim import ISLANDED_EPS_W
from .metrics import EvaluatedComposition, SimulationMetrics
from .scenario import Scenario


@dataclass
class CosimRun:
    """Full co-simulation artifacts for one composition."""

    evaluated: EvaluatedComposition
    monitor: Monitor
    grid: GridConnection
    microgrid: Microgrid


@dataclass
class CompositionEvaluator:
    """Evaluates compositions by full co-simulation."""

    scenario: Scenario
    battery_params: CLCParameters = field(
        default_factory=lambda: CLCParameters(capacity_wh=1.0)
    )
    initial_soc: float = 0.5
    policy: MicrogridPolicy | None = None
    controllers: list[Controller] = field(default_factory=list)

    def build_microgrid(self, composition: MicrogridComposition) -> Microgrid:
        """Assemble the actor/storage stack for a composition."""
        sc = self.scenario
        step = sc.step_s

        def trace(values: np.ndarray, name: str) -> TraceSignal:
            return TraceSignal(TimeSeries(values, step_s=step, name=name), name=name)

        actors = [
            Actor("solar", trace(sc.solar_farm_profile_w(composition.solar_kw), "solar")),
            Actor("wind", trace(sc.wind_farm_profile_w(composition.n_turbines), "wind")),
            Actor("datacenter", trace(sc.workload.power_w, "datacenter"), is_consumer=True),
        ]
        storage = None
        if composition.battery_wh > 0:
            params = CLCParameters(
                capacity_wh=composition.battery_wh,
                eta_charge=self.battery_params.eta_charge,
                eta_discharge=self.battery_params.eta_discharge,
                max_charge_c_rate=self.battery_params.max_charge_c_rate,
                max_discharge_c_rate=self.battery_params.max_discharge_c_rate,
                taper_soc_threshold=self.battery_params.taper_soc_threshold,
                soc_min=self.battery_params.soc_min,
                soc_max=self.battery_params.soc_max,
                self_discharge_per_hour=self.battery_params.self_discharge_per_hour,
            )
            storage = CLCBattery(
                capacity_wh=composition.battery_wh,
                initial_soc=self.initial_soc,
                params=params,
            )
        return Microgrid(actors=actors, storage=storage, policy=self.policy)

    def run(self, composition: MicrogridComposition) -> CosimRun:
        """Co-simulate one composition over the scenario horizon."""
        sc = self.scenario
        microgrid = self.build_microgrid(composition)
        ci_signal = TraceSignal(sc.carbon.as_timeseries(), name="carbon")
        price_signal = TraceSignal(
            TimeSeries(sc.tariff.hourly_prices(sc.n_steps), step_s=sc.step_s, name="price")
        )
        export_signal = TraceSignal(
            TimeSeries(
                np.full(sc.n_steps, sc.tariff.export_credit_usd_kwh),
                step_s=sc.step_s,
                name="export-credit",
            )
        )
        grid = GridConnection(ci_signal, price=price_signal, export_credit=export_signal)
        monitor = Monitor()
        env = CoSimEnvironment()
        env.add_simulator(
            MicrogridSimulator(
                microgrid,
                dt_s=sc.step_s,
                grid=grid,
                monitor=monitor,
                controllers=self.controllers,
            )
        )
        env.run_until(sc.n_steps * sc.step_s)

        dt_h = sc.step_s / SECONDS_PER_HOUR
        imports = monitor.series("grid_import_w")
        unserved = monitor.series("unserved_w")
        # "Independent of the grid" means no import was needed AND all
        # demand was served (the latter matters for islanded policies,
        # where imports are zero by construction).
        independent = (imports <= ISLANDED_EPS_W) & (unserved <= ISLANDED_EPS_W)
        metrics = SimulationMetrics(
            horizon_days=sc.horizon_days,
            demand_energy_wh=float(monitor.series("consumption_w").sum() * dt_h),
            onsite_generation_wh=float(monitor.series("production_w").sum() * dt_h),
            grid_import_wh=grid.import_energy_wh,
            grid_export_wh=grid.export_energy_wh,
            battery_charge_wh=float(monitor.series("storage_charge_w").sum() * dt_h),
            battery_discharge_wh=float(monitor.series("storage_discharge_w").sum() * dt_h),
            operational_emissions_kg=grid.emissions_kg,
            battery_usable_wh=(
                microgrid.storage.usable_capacity_wh if microgrid.storage is not None else 0.0
            ),
            unserved_energy_wh=float(unserved.sum() * dt_h),
            electricity_cost_usd=grid.cost_usd,
            islanded_fraction=float(np.mean(independent)),
        )
        evaluated = EvaluatedComposition(
            composition=composition,
            embodied_kg=embodied_carbon_kg(composition),
            metrics=metrics,
        )
        return CosimRun(evaluated=evaluated, monitor=monitor, grid=grid, microgrid=microgrid)

    def evaluate(self, composition: MicrogridComposition) -> EvaluatedComposition:
        """Metrics-only convenience wrapper around :meth:`run`."""
        return self.run(composition).evaluated
