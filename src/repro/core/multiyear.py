"""Multi-year robustness analysis (beyond the paper's single year).

The paper simulates one resource year per site; real sizing decisions
must be robust to inter-annual weather variability.  This module
evaluates compositions against an **ensemble of synthetic weather
years** (different `year_label` seeds — same climatology, different
realizations) and summarizes each composition's distribution of
outcomes.  A composition that looks Pareto-optimal in one lucky year but
degrades badly in a becalmed year is exactly what this analysis exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .composition import MicrogridComposition
from .embodied import embodied_carbon_kg
from .fastsim import BatchEvaluator
from .metrics import EvaluatedComposition
from .scenario import build_scenario


@dataclass(frozen=True)
class MultiYearOutcome:
    """Distribution of annual outcomes for one composition."""

    composition: MicrogridComposition
    embodied_tonnes: float
    operational_tco2_day_by_year: np.ndarray
    coverage_by_year: np.ndarray

    @property
    def operational_mean(self) -> float:
        return float(self.operational_tco2_day_by_year.mean())

    @property
    def operational_worst(self) -> float:
        return float(self.operational_tco2_day_by_year.max())

    @property
    def operational_std(self) -> float:
        return float(self.operational_tco2_day_by_year.std())

    @property
    def coverage_mean(self) -> float:
        return float(self.coverage_by_year.mean())

    @property
    def coverage_worst(self) -> float:
        return float(self.coverage_by_year.min())

    def cvar_operational(self, alpha: float = 0.25) -> float:
        """Mean of the worst ``alpha`` fraction of years (robust objective)."""
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        values = np.sort(self.operational_tco2_day_by_year)[::-1]
        k = max(int(np.ceil(alpha * values.size)), 1)
        return float(values[:k].mean())


def evaluate_across_years(
    location: str,
    compositions: Sequence[MicrogridComposition],
    year_labels: Sequence[int] = (2020, 2021, 2022, 2023, 2024),
    n_hours: int = 8_760,
) -> list[MultiYearOutcome]:
    """Evaluate compositions against an ensemble of weather years.

    Each year label seeds an independent realization of the site's
    climatology (including its own dunkelflaute events); demand and the
    carbon-intensity *profile* also re-randomize while their calibrated
    means stay fixed.
    """
    if not year_labels:
        raise ConfigurationError("need at least one year label")
    if not compositions:
        return []

    operational = np.empty((len(compositions), len(year_labels)))
    coverage = np.empty_like(operational)
    for j, year in enumerate(year_labels):
        scenario = build_scenario(location, year_label=int(year), n_hours=n_hours)
        evaluated = BatchEvaluator(scenario).evaluate(list(compositions))
        for i, e in enumerate(evaluated):
            operational[i, j] = e.metrics.operational_tco2_per_day
            coverage[i, j] = e.metrics.coverage

    return [
        MultiYearOutcome(
            composition=comp,
            embodied_tonnes=embodied_carbon_kg(comp) / 1_000.0,
            operational_tco2_day_by_year=operational[i].copy(),
            coverage_by_year=coverage[i].copy(),
        )
        for i, comp in enumerate(compositions)
    ]


def robust_ranking(
    outcomes: Sequence[MultiYearOutcome], alpha: float = 0.25
) -> list[MultiYearOutcome]:
    """Rank by CVaR of operational emissions (ascending = most robust)."""
    return sorted(outcomes, key=lambda o: o.cvar_operational(alpha))
