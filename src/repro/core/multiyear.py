"""Multi-year robustness analysis (beyond the paper's single year).

The paper simulates one resource year per site; real sizing decisions
must be robust to inter-annual weather variability.  This module
evaluates compositions against an **ensemble of synthetic weather
years** (different `year_label` seeds — same climatology, different
realizations) and summarizes each composition's distribution of
outcomes.  A composition that looks Pareto-optimal in one lucky year but
degrades badly in a becalmed year is exactly what this analysis exposes.

Since the scenario-ensemble subsystem landed (DESIGN.md §6) this module
is a thin, weather-year-only veneer over the general machinery: the
year ensemble is evaluated as **one stacked N-candidates × S-years time
loop** (:func:`repro.core.fastsim.evaluate_across_scenarios`) instead of
a serial per-year sweep, and all risk statistics delegate to the unified
reducers in :mod:`repro.core.metrics`.  For ensembles that cross more
axes than the weather year (workload growth, carbon trajectories,
tariff variants, dunkelflaute severity), use
:class:`repro.core.ensemble.EnsembleSpec` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .composition import MicrogridComposition
from .embodied import embodied_carbon_kg
from .fastsim import evaluate_across_scenarios
from .metrics import aggregate_values
from .scenario import build_scenario


@dataclass(frozen=True)
class MultiYearOutcome:
    """Distribution of annual outcomes for one composition."""

    composition: MicrogridComposition
    embodied_tonnes: float
    operational_tco2_day_by_year: np.ndarray
    coverage_by_year: np.ndarray

    @property
    def operational_mean(self) -> float:
        return float(self.operational_tco2_day_by_year.mean())

    @property
    def operational_worst(self) -> float:
        return float(self.operational_tco2_day_by_year.max())

    @property
    def operational_std(self) -> float:
        return float(self.operational_tco2_day_by_year.std())

    @property
    def coverage_mean(self) -> float:
        return float(self.coverage_by_year.mean())

    @property
    def coverage_worst(self) -> float:
        return float(self.coverage_by_year.min())

    def cvar_operational(self, alpha: float = 0.25) -> float:
        """Mean of the worst ``alpha`` fraction of years (robust objective).

        Deprecation shim (DESIGN.md §6): the one CVaR implementation
        lives in :func:`repro.core.metrics.cvar`; this method keeps the
        historical signature and delegates there.
        """
        return aggregate_values(self.operational_tco2_day_by_year, f"cvar:{alpha}")


def evaluate_across_years(
    location: str,
    compositions: Sequence[MicrogridComposition],
    year_labels: Sequence[int] = (2020, 2021, 2022, 2023, 2024),
    n_hours: int = 8_760,
) -> list[MultiYearOutcome]:
    """Evaluate compositions against an ensemble of weather years.

    Each year label seeds an independent realization of the site's
    climatology (including its own dunkelflaute events); demand and the
    carbon-intensity *profile* also re-randomize while their calibrated
    means stay fixed.

    All years are evaluated as **one** stacked time loop (DESIGN.md §6)
    — bit-for-bit identical to the historical serial per-year sweep
    (``benchmarks/bench_ensemble.py`` asserts this), just faster.
    """
    if not year_labels:
        raise ConfigurationError("need at least one year label")
    if not compositions:
        return []

    scenarios = [
        build_scenario(location, year_label=int(year), n_hours=n_hours)
        for year in year_labels
    ]
    per_scenario = evaluate_across_scenarios(scenarios, list(compositions))

    operational = np.empty((len(compositions), len(year_labels)))
    coverage = np.empty_like(operational)
    for j, evaluated in enumerate(per_scenario):
        for i, e in enumerate(evaluated):
            operational[i, j] = e.metrics.operational_tco2_per_day
            coverage[i, j] = e.metrics.coverage

    return [
        MultiYearOutcome(
            composition=comp,
            embodied_tonnes=embodied_carbon_kg(comp) / 1_000.0,
            operational_tco2_day_by_year=operational[i].copy(),
            coverage_by_year=coverage[i].copy(),
        )
        for i, comp in enumerate(compositions)
    ]


def robust_ranking(
    outcomes: Sequence[MultiYearOutcome], alpha: float = 0.25
) -> list[MultiYearOutcome]:
    """Rank by CVaR of operational emissions (ascending = most robust).

    Deprecation shim like :meth:`MultiYearOutcome.cvar_operational`: the
    reduction itself is :func:`repro.core.metrics.cvar` (DESIGN.md §6).
    """
    return sorted(outcomes, key=lambda o: o.cvar_operational(alpha))
