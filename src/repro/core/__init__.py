"""The paper's primary contribution: the microgrid-composition
optimization framework.

Pipeline (Figure 1 of the paper):

1. a :class:`~repro.core.scenario.Scenario` bundles a site's resource
   year, the data-center workload, and the regional carbon intensity;
2. a :class:`~repro.core.parameterspace.ParameterSpace` spans candidate
   :class:`~repro.core.composition.MicrogridComposition`s (wind turbines ×
   solar capacity × battery units);
3. each candidate is evaluated — through the faithful co-simulation path
   (:mod:`repro.core.evaluator`) or the vectorized batch path
   (:mod:`repro.core.fastsim`), whose dispatch decisions come from the
   pluggable policy engine (:mod:`repro.core.dispatch`, DESIGN.md §5) —
   yielding :class:`~repro.core.metrics.SimulationMetrics`;
4. multi-objective search (:mod:`repro.core.study_runner`) produces a
   Pareto front over (embodied, operational) emissions;
5. candidate extraction (:mod:`repro.core.candidates`) and long-term
   projection (:mod:`repro.core.projection`) support the decision-making
   analyses of §4.
"""

from .composition import MicrogridComposition
from .parameterspace import PAPER_SPACE, ParameterSpace
from .embodied import embodied_carbon_kg, embodied_carbon_tonnes
from .metrics import (
    EvaluatedComposition,
    RobustEvaluatedComposition,
    SimulationMetrics,
    aggregate_values,
    parse_aggregate,
    robust_evaluations,
)
from .scenario import Scenario, build_scenario, unit_profiles
from .evaluator import CompositionEvaluator
from .dispatch import (
    POLICY_NAMES,
    CarbonAwareDispatch,
    DefaultDispatch,
    IslandedDispatch,
    TimeWindowDispatch,
    TouArbitrageDispatch,
    VectorizedPolicy,
    make_policy,
)
from .fastsim import BatchEvaluator, evaluate_across_scenarios
from .kernel import ENGINES, HAS_NUMBA, resolve_engine
from .pareto import pareto_front, pareto_points
from .candidates import (
    greedy_diversity_candidates,
    kmeans_candidates,
    paper_candidates,
    threshold_candidates,
)
from .projection import CumulativeProjection, project_emissions
from .study_runner import (
    OptimizationRunner,
    run_blackbox_search,
    run_exhaustive_search,
    run_pipelined_search,
)
from .study_spec import StudySpec, check_resume_identity
from .finance import (
    CostParameters,
    capex_usd,
    levelized_cost_usd_per_mwh,
    net_present_cost_usd,
)
from .multiyear import MultiYearOutcome, evaluate_across_years, robust_ranking
from .ensemble import (
    EnsembleMember,
    EnsembleSpec,
    build_ensemble,
    evaluate_ensemble,
    member_subset,
)
from .fidelity import (
    FidelityEnvelope,
    FidelityLadder,
    FidelityLevel,
    FidelityRacingEvaluator,
    calibrate_envelope,
    fidelity_race_front,
    sibling_scenario,
    sibling_stack,
)
from .racing import RacingEvaluator, RacingStats, RungSchedule, race_front
from .sensitivity import (
    best_under_budget_stability,
    crossover_year_analytic,
    tornado,
)

__all__ = [
    "MicrogridComposition",
    "ParameterSpace",
    "PAPER_SPACE",
    "embodied_carbon_kg",
    "embodied_carbon_tonnes",
    "SimulationMetrics",
    "EvaluatedComposition",
    "RobustEvaluatedComposition",
    "robust_evaluations",
    "Scenario",
    "build_scenario",
    "CompositionEvaluator",
    "BatchEvaluator",
    "evaluate_across_scenarios",
    "ENGINES",
    "HAS_NUMBA",
    "resolve_engine",
    "VectorizedPolicy",
    "DefaultDispatch",
    "IslandedDispatch",
    "TimeWindowDispatch",
    "CarbonAwareDispatch",
    "TouArbitrageDispatch",
    "POLICY_NAMES",
    "make_policy",
    "pareto_front",
    "pareto_points",
    "threshold_candidates",
    "kmeans_candidates",
    "greedy_diversity_candidates",
    "paper_candidates",
    "CumulativeProjection",
    "project_emissions",
    "OptimizationRunner",
    "StudySpec",
    "check_resume_identity",
    "run_exhaustive_search",
    "run_blackbox_search",
    "run_pipelined_search",
    "CostParameters",
    "capex_usd",
    "net_present_cost_usd",
    "levelized_cost_usd_per_mwh",
    "MultiYearOutcome",
    "evaluate_across_years",
    "robust_ranking",
    "member_subset",
    "RungSchedule",
    "RacingEvaluator",
    "RacingStats",
    "race_front",
    "FidelityEnvelope",
    "FidelityLadder",
    "FidelityLevel",
    "FidelityRacingEvaluator",
    "calibrate_envelope",
    "fidelity_race_front",
    "sibling_scenario",
    "sibling_stack",
    "tornado",
    "crossover_year_analytic",
    "best_under_budget_stability",
]
