"""One-at-a-time sensitivity analysis of the sizing decision.

The paper's conclusions rest on several exogenous constants — embodied
footprints, grid carbon intensity, facility load.  This module perturbs
each factor over a range and reports how the headline outputs (the
best-under-budget composition's operational emissions, and the
baseline-vs-buildout crossover year) move: a tornado analysis for the
decision-maker the framework targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..units import DAYS_PER_YEAR
from .composition import MicrogridComposition
from .metrics import EvaluatedComposition
from .scenario import Scenario


@dataclass(frozen=True)
class SensitivityResult:
    """Effect of sweeping one factor."""

    factor: str
    multipliers: np.ndarray
    values: np.ndarray  # output per multiplier

    @property
    def swing(self) -> float:
        """Output range across the sweep (the tornado bar length)."""
        return float(self.values.max() - self.values.min())


def scale_operational(
    evaluated: EvaluatedComposition, ci_multiplier: float = 1.0
) -> float:
    """Operational tCO2/day under a uniformly scaled carbon intensity.

    Because Scope-2 emissions are linear in CI, a uniform grid-mix shift
    (e.g. projected decarbonization) rescales the operational axis without
    re-simulation.
    """
    if ci_multiplier < 0:
        raise ConfigurationError("CI multiplier must be non-negative")
    return evaluated.operational_tco2_per_day * ci_multiplier


def crossover_year_analytic(
    baseline: EvaluatedComposition,
    buildout: EvaluatedComposition,
    ci_multiplier: float = 1.0,
    embodied_multiplier: float = 1.0,
) -> float | None:
    """Baseline-overtakes-buildout year under scaled CI / embodied carbon.

    Solves ``emb_b·m_e + op_b·m_c·365·t  =  emb_0 + op_0·m_c·365·t`` —
    exact because the projection is linear (§4.2).
    """
    if ci_multiplier <= 0 or embodied_multiplier <= 0:
        raise ConfigurationError("multipliers must be positive")
    op_gap_per_year = (
        (baseline.operational_tco2_per_day - buildout.operational_tco2_per_day)
        * ci_multiplier
        * DAYS_PER_YEAR
    )
    emb_gap = (buildout.embodied_tonnes - baseline.embodied_tonnes) * embodied_multiplier
    if op_gap_per_year <= 0:
        return None
    return emb_gap / op_gap_per_year


def tornado(
    baseline: EvaluatedComposition,
    buildout: EvaluatedComposition,
    multipliers: Sequence[float] = (0.5, 0.75, 1.0, 1.25, 1.5),
) -> list[SensitivityResult]:
    """Tornado analysis of the crossover year wrt CI and embodied scaling."""
    mults = np.asarray(list(multipliers), dtype=np.float64)
    results = []
    for factor, kwargs_fn in (
        ("carbon_intensity", lambda m: {"ci_multiplier": m}),
        ("embodied_carbon", lambda m: {"embodied_multiplier": m}),
    ):
        values = np.array(
            [
                crossover_year_analytic(baseline, buildout, **kwargs_fn(m)) or np.nan
                for m in mults
            ]
        )
        results.append(SensitivityResult(factor=factor, multipliers=mults, values=values))
    return sorted(results, key=lambda r: -r.swing)


def best_under_budget_stability(
    evaluated: Sequence[EvaluatedComposition],
    budget_tco2: float,
    embodied_multipliers: Sequence[float] = (0.8, 0.9, 1.0, 1.1, 1.25),
) -> dict[float, MicrogridComposition]:
    """How the best-under-budget pick shifts as embodied footprints scale.

    Rising module/turbine footprints shrink what fits under a budget;
    this maps multiplier → chosen composition, exposing decision
    robustness (a pick that flips at ±10 % is fragile).
    """
    if budget_tco2 <= 0:
        raise ConfigurationError("budget must be positive")
    picks: dict[float, MicrogridComposition] = {}
    for mult in embodied_multipliers:
        within = [e for e in evaluated if e.embodied_tonnes * mult <= budget_tco2]
        if not within:
            continue
        best = min(within, key=lambda e: (e.operational_tco2_per_day, e.embodied_tonnes))
        picks[float(mult)] = best.composition
    return picks
