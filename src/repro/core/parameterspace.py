"""The discrete design space the paper sweeps (§4).

* solar: 0–40 MW in 4 MW increments (11 levels),
* wind: 0–10 turbines of 3 MW (11 levels),
* battery: 0–60 MWh in 7.5 MWh units (9 levels),

for 11 × 11 × 9 = **1 089** valid combinations — the paper's exhaustive
baseline count.  The space knows how to enumerate itself (grid search),
how to suggest a composition through a black-box
:class:`~repro.blackbox.trial.Trial`, and how to build the matching
:class:`~repro.blackbox.samplers.grid.GridSampler` search space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, TYPE_CHECKING

from ..exceptions import ConfigurationError
from ..units import (
    BATTERY_MAX_UNITS,
    SOLAR_INCREMENT_KW,
    SOLAR_MAX_INCREMENTS,
    WIND_MAX_TURBINES,
)
from .composition import MicrogridComposition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..blackbox.trial import Trial


@dataclass(frozen=True)
class ParameterSpace:
    """Discrete composition space with per-axis increments."""

    max_turbines: int = WIND_MAX_TURBINES
    max_solar_increments: int = SOLAR_MAX_INCREMENTS
    solar_increment_kw: float = SOLAR_INCREMENT_KW
    max_battery_units: int = BATTERY_MAX_UNITS

    def __post_init__(self) -> None:
        if min(self.max_turbines, self.max_solar_increments, self.max_battery_units) < 0:
            raise ConfigurationError("space bounds must be non-negative")
        if self.solar_increment_kw <= 0:
            raise ConfigurationError("solar increment must be positive")

    # -- enumeration ------------------------------------------------------------

    def __len__(self) -> int:
        return (
            (self.max_turbines + 1)
            * (self.max_solar_increments + 1)
            * (self.max_battery_units + 1)
        )

    def __iter__(self) -> Iterator[MicrogridComposition]:
        for n_turb in range(self.max_turbines + 1):
            for solar_inc in range(self.max_solar_increments + 1):
                for batt in range(self.max_battery_units + 1):
                    yield MicrogridComposition(
                        n_turbines=n_turb,
                        solar_kw=solar_inc * self.solar_increment_kw,
                        battery_units=batt,
                    )

    def all_compositions(self) -> list[MicrogridComposition]:
        """The full enumerated space (1 089 entries for paper defaults)."""
        return list(self)

    def contains(self, comp: MicrogridComposition) -> bool:
        """Whether a composition lies on this grid."""
        if not 0 <= comp.n_turbines <= self.max_turbines:
            return False
        if not 0 <= comp.battery_units <= self.max_battery_units:
            return False
        increments = comp.solar_kw / self.solar_increment_kw
        return (
            abs(increments - round(increments)) < 1e-9
            and 0 <= round(increments) <= self.max_solar_increments
        )

    # -- black-box integration ------------------------------------------------

    def suggest(self, trial: "Trial") -> MicrogridComposition:
        """Draw a composition through the define-by-run trial API."""
        n_turb = trial.suggest_int("n_turbines", 0, self.max_turbines)
        solar_inc = trial.suggest_int("solar_increments", 0, self.max_solar_increments)
        batt = trial.suggest_int("battery_units", 0, self.max_battery_units)
        return MicrogridComposition(
            n_turbines=n_turb,
            solar_kw=solar_inc * self.solar_increment_kw,
            battery_units=batt,
        )

    def distributions(self) -> dict:
        """Declared search space ``{name: Distribution}``.

        The up-front space :class:`~repro.blackbox.parallel.
        ParallelStudyRunner` needs (parameters must exist before the
        objective ships to a worker) — the same domains ``suggest``
        declares define-by-run.
        """
        from ..blackbox.distributions import IntDistribution

        return {
            "n_turbines": IntDistribution(0, self.max_turbines),
            "solar_increments": IntDistribution(0, self.max_solar_increments),
            "battery_units": IntDistribution(0, self.max_battery_units),
        }

    def grid_search_space(self) -> dict[str, list[int]]:
        """Search space for :class:`~repro.blackbox.samplers.grid.GridSampler`."""
        return {
            "n_turbines": list(range(self.max_turbines + 1)),
            "solar_increments": list(range(self.max_solar_increments + 1)),
            "battery_units": list(range(self.max_battery_units + 1)),
        }

    def from_params(self, params: dict) -> MicrogridComposition:
        """Rebuild the composition from stored trial parameters."""
        return MicrogridComposition(
            n_turbines=int(params["n_turbines"]),
            solar_kw=int(params["solar_increments"]) * self.solar_increment_kw,
            battery_units=int(params["battery_units"]),
        )


#: The exact space of the paper's experiments (1 089 combinations).
PAPER_SPACE = ParameterSpace()
