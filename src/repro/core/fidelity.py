"""Model-fidelity ladder: race across physics rungs with certified bounds.

The racing engine (DESIGN.md §8) prunes along one axis — *ensemble
members*.  This module (DESIGN.md §11) adds the orthogonal axis the
paper's cost model actually dominates on: *model fidelity*.  Every
scenario has cheap physics siblings — swap the Perez transposition for a
clear-sky scaling, the SAPM cell temperature for NOCT, rainflow battery
degradation for a closed-form linear law — that evaluate the same
candidate far faster (the cheap siblings keep the compiled dispatch
engines; rainflow needs the SoC-trace loop).  A fidelity ladder names an
ordered subset of :data:`FIDELITY_LEVELS` ending at ``full`` and races
candidates *up* it:

1. **Siblings** — :func:`sibling_scenario` rebuilds only the per-unit
   solar profile (one 1 kW PVWatts run on the shared
   :class:`~repro.data.solar_resource.SolarResource`) and retags the
   battery degradation law; workload, wind, carbon, and tariff arrays
   are shared, so a cheap sibling stack costs one model run per member.
2. **Calibration** — per (site, cheap level), a fixed probe set
   (:data:`CALIBRATION_PROBES`, corners + interior of the paper's design
   grid) is evaluated at the cheap level *and* at ``full``; the observed
   signed per-member error ``full − cheap`` per objective, widened by a
   margin proportional to its spread and scale, becomes a
   :class:`FidelityEnvelope`.
3. **Screening** — candidates climb the member rungs of each cheap
   level; only the partial-aggregate Pareto front survives a rung.
   Screening is deliberately aggressive because it is *not* trusted:
4. **Proof or rescue** — after the survivors are raced at full physics
   (the ordinary member-rung race), every screened candidate's cheap
   values are shifted by its envelope's lower bounds, clipped to the
   non-negativity of the objective, and folded through
   :func:`~repro.core.racing.partial_lower_bound`.  If some exactly
   evaluated candidate strictly dominates that certified bound, the
   elimination is proven (``stats.screened``) and the candidate never
   touches full physics; otherwise it is rescued into a full-physics
   race.  Consequence: **the returned front is bit-identical to a full
   evaluation of every candidate on the ladder-top physics** — the
   envelopes only decide how much full-physics work is avoided, never
   what the front is (``benchmarks/bench_fidelity.py`` asserts ≥2×
   fewer full-physics member evaluations; the envelope soundness itself
   is property-fuzzed in ``tests/test_fidelity_differential.py``).

The member *difficulty order* is probed once at the ladder's cheapest
level and shared with the full-physics racer (``member_order``), so
every level races prefixes of the same member ranking and the schedules
compose into a (member rung × fidelity rung) grid.

The ladder spec round-trips (``FidelityLadder.parse`` /
``spec_string``) and is persisted as study resume identity alongside
the racing spec: resuming a study under a different ladder is a hard
error (:mod:`repro.core.study_runner`, :mod:`repro.blackbox.parallel`).
The CLI flag is ``repro study run --fidelity fidelity=lo,mid,full``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..blackbox.multiobjective import pareto_front_indices
from ..exceptions import ConfigurationError
from ..sam.solar.irradiance import TRANSPOSITION_MODELS
from ..sam.solar.pvwatts import per_kw_profile
from .composition import MicrogridComposition
from .dispatch import VectorizedPolicy
from .fastsim import evaluate_member_slice
from .metrics import (
    EvaluatedComposition,
    RobustEvaluatedComposition,
    aggregate_values,
    parse_aggregate,
)
from .pareto import pareto_front
from .racing import (
    NONNEGATIVE_OBJECTIVES,
    PROBE_COMPOSITION,
    PrunedCandidate,
    RaceOutcome,
    RacingEvaluator,
    RacingStats,
    RungSchedule,
    SliceEvaluator,
    _strictly_dominated,
    difficulty_ranking,
    partial_lower_bound,
)
from .scenario import Scenario

__all__ = [
    "CALIBRATION_PROBES",
    "FIDELITY_LEVELS",
    "FidelityEnvelope",
    "FidelityLadder",
    "FidelityLevel",
    "FidelityRacingEvaluator",
    "LEVEL_ORDER",
    "calibrate_envelope",
    "clear_fidelity_cache",
    "envelope_from_errors",
    "fidelity_race_front",
    "sibling_scenario",
    "sibling_stack",
]

#: spec token for the mandatory ladder top
FULL_LEVEL = "full"


@dataclass(frozen=True)
class FidelityLevel:
    """One rung of the physics ladder: which models the stack runs."""

    name: str
    #: sky-diffuse transposition model (:data:`TRANSPOSITION_MODELS`)
    transposition: str
    #: cell temperature model (``noct`` or ``sapm``)
    temperature_model: str
    #: battery degradation law (``None``, ``linear``, or ``rainflow``)
    battery_degradation: "str | None"

    def __post_init__(self) -> None:
        if self.transposition not in TRANSPOSITION_MODELS:
            raise ConfigurationError(
                f"unknown transposition model '{self.transposition}' "
                f"(known: {', '.join(TRANSPOSITION_MODELS)})"
            )
        if self.temperature_model not in ("noct", "sapm"):
            raise ConfigurationError(
                f"unknown temperature model '{self.temperature_model}'"
            )
        if self.battery_degradation not in (None, "linear", "rainflow"):
            raise ConfigurationError(
                f"unknown battery degradation '{self.battery_degradation}'"
            )


#: The named physics rungs, cheapest first.  ``lo`` runs the clear-sky
#: clearness-scaled transposition with NOCT temperature and the linear
#: degradation law (compiled dispatch engines stay available); ``mid``
#: upgrades transposition to Hay–Davies; ``full`` is the SAM-faithful
#: top — Perez 1990 transposition, SAPM cell temperature, and rainflow
#: cycle counting (which needs the SoC-trace dispatch loop, making the
#: full rung the expensive one the ladder tries to avoid paying).
FIDELITY_LEVELS: "dict[str, FidelityLevel]" = {
    "lo": FidelityLevel("lo", "clearsky", "noct", "linear"),
    "mid": FidelityLevel("mid", "haydavies", "noct", "linear"),
    "full": FidelityLevel("full", "perez", "sapm", "rainflow"),
}

#: canonical cheap-to-full ordering of the named levels
LEVEL_ORDER = ("lo", "mid", "full")


@dataclass(frozen=True)
class FidelityLadder:
    """An ordered subset of :data:`FIDELITY_LEVELS` ending at ``full``.

    ``margin`` widens the calibrated error envelopes: the certified
    bounds pad the observed error range by ``margin × spread`` (plus a
    5 % scale term and an absolute epsilon).  Larger margins make
    envelope proofs rarer but even harder to violate; the front is
    identical either way — only the full-physics work saved changes.

    The spec grammar round-trips, e.g. ``fidelity=lo,mid,full`` or
    ``fidelity=lo,full,margin=1.0`` — the normalized
    :meth:`spec_string` is what studies persist as resume identity.
    """

    levels: tuple[str, ...] = ("lo", "mid", "full")
    margin: float = 0.5

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError("a fidelity ladder needs at least one level")
        for name in self.levels:
            if name not in FIDELITY_LEVELS:
                raise ConfigurationError(
                    f"unknown fidelity level '{name}' "
                    f"(known: {', '.join(LEVEL_ORDER)})"
                )
        if self.levels[-1] != FULL_LEVEL:
            raise ConfigurationError(
                f"the final fidelity level must be '{FULL_LEVEL}' so the "
                f"front is exact at top physics (got {self.levels})"
            )
        ranks = [LEVEL_ORDER.index(name) for name in self.levels]
        if any(b <= a for a, b in zip(ranks, ranks[1:])):
            raise ConfigurationError(
                f"fidelity levels must climb strictly cheap-to-full, got {self.levels}"
            )
        if not self.margin >= 0.0:
            raise ConfigurationError(
                f"fidelity margin must be >= 0, got {self.margin}"
            )

    @classmethod
    def parse(cls, text: "str | FidelityLadder") -> "FidelityLadder":
        """Parse the CLI grammar, e.g. ``fidelity=lo,mid,full`` or
        ``lo,full,margin=0.75``.

        Mirrors :meth:`RungSchedule.parse`: comma-separated tokens, a
        ``key=`` prefix starts a key (``fidelity`` or ``margin``), bare
        tokens continue the levels list, and a leading bare token is an
        implicit ``fidelity`` entry.
        """
        if isinstance(text, FidelityLadder):
            return text
        key = "fidelity"
        levels: list[str] = []
        margin = 0.5
        for token in str(text).split(","):
            token = token.strip()
            if not token:
                continue
            name, sep, value = token.partition("=")
            if sep:
                key = name.strip()
                token = value.strip()
                if not token:
                    raise ConfigurationError(f"malformed fidelity token '{name}='")
            elif key != "fidelity":
                # Only the levels list continues across commas — a bare
                # token after margin= would silently corrupt the
                # resume-identity spec.
                raise ConfigurationError(
                    f"unexpected fidelity token '{token}' after '{key}=' "
                    "(only the levels list takes comma-separated values)"
                )
            if key == "fidelity":
                levels.append(token.lower())
            elif key == "margin":
                try:
                    margin = float(token)
                except ValueError:
                    raise ConfigurationError(
                        f"malformed fidelity margin '{token}'"
                    ) from None
            else:
                raise ConfigurationError(
                    f"unknown fidelity key '{key}' (known: fidelity, margin)"
                )
        if not levels:
            raise ConfigurationError(f"fidelity spec '{text}' names no levels")
        return cls(levels=tuple(levels), margin=margin)

    def spec_string(self) -> str:
        """Round-trippable spec (journal metadata; DESIGN.md §11)."""
        suffix = "" if self.margin == 0.5 else f",margin={self.margin:g}"
        return f"fidelity={','.join(self.levels)}{suffix}"

    @property
    def cheap_levels(self) -> "tuple[FidelityLevel, ...]":
        """The screening rungs — every level below the ``full`` top."""
        return tuple(FIDELITY_LEVELS[name] for name in self.levels[:-1])


# -- cheap physics siblings ----------------------------------------------------

# Scenarios hold ndarrays, so they are not hashable: the sibling cache
# keys on id().  The companion refs dict keeps every base scenario
# strongly referenced so a recycled id() can never alias a dead key.
_SIBLING_CACHE: "dict[tuple[int, str], Scenario]" = {}
_SIBLING_REFS: "dict[int, Scenario]" = {}


def _resolve_level(level: "str | FidelityLevel") -> FidelityLevel:
    if isinstance(level, FidelityLevel):
        return level
    if level not in FIDELITY_LEVELS:
        raise ConfigurationError(
            f"unknown fidelity level '{level}' (known: {', '.join(LEVEL_ORDER)})"
        )
    return FIDELITY_LEVELS[level]


def sibling_scenario(scenario: Scenario, level: "str | FidelityLevel") -> Scenario:
    """The ``level``-physics sibling of a scenario (cached).

    Re-runs only the 1 kW PVWatts chain on the scenario's existing
    :class:`~repro.data.solar_resource.SolarResource` with the level's
    transposition/temperature models and retags the battery degradation
    law; every other field (workload, wind profile, carbon, tariff) is
    shared with the base scenario.  Siblings of the same base at the
    same level are cached, so an ensemble stack pays one model run per
    (member, level).
    """
    lvl = _resolve_level(level)
    key = (id(scenario), lvl.name)
    cached = _SIBLING_CACHE.get(key)
    if cached is not None:
        return cached
    profile = per_kw_profile(
        scenario.solar_resource,
        transposition_model=lvl.transposition,
        temperature_model=lvl.temperature_model,
    )
    sibling = dataclasses.replace(
        scenario,
        solar_per_kw_w=profile,
        battery_degradation=lvl.battery_degradation,
    )
    _SIBLING_REFS[id(scenario)] = scenario
    _SIBLING_CACHE[key] = sibling
    return sibling


def sibling_stack(
    scenarios: Sequence[Scenario], level: "str | FidelityLevel"
) -> "list[Scenario]":
    """The ``level``-physics sibling of a whole ensemble stack."""
    lvl = _resolve_level(level)
    return [sibling_scenario(s, lvl) for s in scenarios]


def clear_fidelity_cache() -> None:
    """Drop all cached siblings (test isolation)."""
    _SIBLING_CACHE.clear()
    _SIBLING_REFS.clear()


# -- calibration ---------------------------------------------------------------

#: Fixed probe builds the calibration pass evaluates at every fidelity
#: level: the corners of the paper's design grid (§4), a mid-size
#: interior build, and — critically — the *low-capacity interior*
#: (small solar and/or small battery, little or no wind), where the
#: per-unit model error peaks: at low solar every transposed Wh shifts
#: grid import one-for-one, and a small battery cycles hardest, so the
#: rainflow-vs-linear fade gap is widest there.  Corners alone do NOT
#: bracket the error — large solar saturates the load and large wind
#: swamps the solar profile, both shrinking the observable error — so
#: the probe set must straddle the peak, not just the hull.  Probes
#: are *never* entered into the candidate pool or the domination
#: matrix — they only calibrate envelopes.
CALIBRATION_PROBES: "tuple[MicrogridComposition, ...]" = (
    # design-grid corners
    MicrogridComposition(n_turbines=0, solar_kw=0.0, battery_units=0),
    MicrogridComposition(n_turbines=0, solar_kw=40_000.0, battery_units=0),
    MicrogridComposition(n_turbines=0, solar_kw=40_000.0, battery_units=8),
    MicrogridComposition(n_turbines=10, solar_kw=0.0, battery_units=0),
    MicrogridComposition(n_turbines=10, solar_kw=0.0, battery_units=8),
    MicrogridComposition(n_turbines=10, solar_kw=40_000.0, battery_units=8),
    # mid-size interior
    MicrogridComposition(n_turbines=5, solar_kw=20_000.0, battery_units=4),
    MicrogridComposition(n_turbines=2, solar_kw=8_000.0, battery_units=1),
    # low-capacity interior: peak per-unit transposition error.  The
    # solar-heavy small-battery regime gets *two* neighbours so no
    # single probe is load-bearing for the fade-axis extreme (the
    # leave-one-probe-out cross-validation in
    # tests/test_fidelity_differential.py pins that redundancy).
    MicrogridComposition(n_turbines=0, solar_kw=4_000.0, battery_units=0),
    MicrogridComposition(n_turbines=0, solar_kw=8_000.0, battery_units=2),
    MicrogridComposition(n_turbines=0, solar_kw=12_000.0, battery_units=1),
    MicrogridComposition(n_turbines=0, solar_kw=16_000.0, battery_units=1),
    MicrogridComposition(n_turbines=0, solar_kw=20_000.0, battery_units=2),
    MicrogridComposition(n_turbines=1, solar_kw=4_000.0, battery_units=1),
    # wind-dominated small battery: peak rainflow-vs-linear fade gap
    MicrogridComposition(n_turbines=2, solar_kw=0.0, battery_units=1),
    MicrogridComposition(n_turbines=1, solar_kw=0.0, battery_units=2),
)


@dataclass(frozen=True)
class FidelityEnvelope:
    """Certified per-site bounds on the (full − level) member error.

    ``lower[site][k] <= full_value[m, k] - level_value[m, k] <=
    upper[site][k]`` is the certified claim for every member *m* of the
    site, per objective *k* — calibrated on :data:`CALIBRATION_PROBES`
    and widened by the ladder margin.  The differential fuzz suite
    (``tests/test_fidelity_differential.py``) hard-fails any observed
    violation on random candidates.
    """

    level: str
    objectives: tuple[str, ...]
    #: site name → per-objective certified lower bound on the error
    lower: "dict[str, np.ndarray]"
    #: site name → per-objective certified upper bound on the error
    upper: "dict[str, np.ndarray]"
    n_probes: int

    def contains(self, site: str, error: "np.ndarray") -> bool:
        """Whether an observed per-member error vector is inside bounds."""
        if site not in self.lower:
            return False
        err = np.asarray(error, dtype=np.float64)
        return bool(
            np.all(err >= self.lower[site]) and np.all(err <= self.upper[site])
        )


def envelope_from_errors(
    level: str,
    objectives: Sequence[str],
    errors: "np.ndarray",
    sites: Sequence[str],
    margin: float = 0.5,
) -> FidelityEnvelope:
    """Build a certified envelope from observed probe errors.

    ``errors[m, p, k]`` is the signed error ``full − level`` of member
    *m* on probe *p*, objective *k*; ``sites[m]`` names member *m*'s
    site.  Per (site, objective) the observed range ``[emin, emax]`` is
    widened to ``[emin − pad, emax + pad]`` with ``pad = margin × (emax
    − emin) + 0.25 × max(|emin|, |emax|) + 1e-9`` — the spread term
    covers interpolation between probes, the scale term systematic
    drift, and the epsilon keeps a degenerate (constant-error) range
    from collapsing to a zero-width interval.  The soundness of the
    resulting bounds over the whole design grid is what
    ``tests/test_fidelity_differential.py`` fuzzes — a violated
    envelope there means the pad or :data:`CALIBRATION_PROBES` must be
    strengthened, because :class:`FidelityRacingEvaluator` screening
    proofs lean on these bounds.
    """
    err = np.asarray(errors, dtype=np.float64)
    if err.ndim != 3 or err.shape[0] != len(sites):
        raise ConfigurationError(
            f"errors must be (members, probes, objectives), got {err.shape}"
        )
    lower: "dict[str, np.ndarray]" = {}
    upper: "dict[str, np.ndarray]" = {}
    for site in dict.fromkeys(sites):
        rows = err[[m for m, s in enumerate(sites) if s == site]]
        flat = rows.reshape(-1, err.shape[2])
        emin = flat.min(axis=0)
        emax = flat.max(axis=0)
        pad = margin * (emax - emin) + 0.25 * np.maximum(np.abs(emin), np.abs(emax)) + 1e-9
        lower[site] = emin - pad
        upper[site] = emax + pad
    return FidelityEnvelope(
        level=level,
        objectives=tuple(objectives),
        lower=lower,
        upper=upper,
        n_probes=err.shape[1],
    )


def calibrate_envelope(
    scenarios: Sequence[Scenario],
    level: "str | FidelityLevel",
    objectives: Sequence[str] = ("operational", "embodied"),
    margin: float = 0.5,
    policy: "VectorizedPolicy | None" = None,
    engine: str = "auto",
    probes: "Sequence[MicrogridComposition]" = CALIBRATION_PROBES,
) -> FidelityEnvelope:
    """Calibrate one cheap level's envelope against full physics.

    The standalone (in-process) form of the calibration pass the
    :class:`FidelityRacingEvaluator` runs lazily — exposed for the
    differential fuzz harness and notebooks.
    """
    lvl = _resolve_level(level)
    members = list(range(len(scenarios)))
    if not members:
        raise ConfigurationError("calibration needs at least one scenario")
    names = tuple(objectives)
    full_rows = evaluate_member_slice(
        sibling_stack(scenarios, FULL_LEVEL), members, list(probes),
        policy=policy, engine=engine,
    )
    lvl_rows = evaluate_member_slice(
        sibling_stack(scenarios, lvl), members, list(probes),
        policy=policy, engine=engine,
    )
    full_obj = np.array(
        [[e.objectives(names) for e in row] for row in full_rows], dtype=np.float64
    )
    lvl_obj = np.array(
        [[e.objectives(names) for e in row] for row in lvl_rows], dtype=np.float64
    )
    return envelope_from_errors(
        lvl.name,
        names,
        full_obj - lvl_obj,
        [s.location.name for s in scenarios],
        margin=margin,
    )


# -- the fidelity-raced evaluator ----------------------------------------------


class FidelityRacingEvaluator:
    """Races candidates up both axes: member rungs × fidelity rungs.

    One instance per (ensemble, ladder, schedule, aggregate,
    objectives); call :meth:`race` per candidate batch.  The sibling
    stacks, the shared member-difficulty order (probed at the cheapest
    level), and the calibrated envelopes are all built lazily on the
    first race and charged to its stats.

    ``slice_factory`` maps a scenario stack to a
    :data:`~repro.core.racing.SliceEvaluator` — drivers substitute a
    launcher-backed implementation per fidelity level; the default runs
    the in-process stacked tensor loop.
    """

    def __init__(
        self,
        scenarios: Sequence[Scenario],
        ladder: "FidelityLadder | str" = FidelityLadder(),
        schedule: "RungSchedule | str" = RungSchedule(),
        aggregate: str = "worst",
        objectives: Sequence[str] = ("operational", "embodied"),
        policy: "VectorizedPolicy | None" = None,
        engine: str = "auto",
        slice_factory: "Callable[[list[Scenario]], SliceEvaluator] | None" = None,
        probes: "Sequence[MicrogridComposition]" = CALIBRATION_PROBES,
    ) -> None:
        self.base = list(scenarios)
        if not self.base:
            raise ConfigurationError("fidelity racing needs at least one scenario")
        self.ladder = FidelityLadder.parse(ladder)
        self.schedule = RungSchedule.parse(schedule)
        parse_aggregate(aggregate)  # fail fast
        self.aggregate = aggregate
        self.objectives = tuple(objectives)
        self.policy = policy
        self.engine = engine
        self._slice_factory = slice_factory or self._default_factory
        self._probes = list(probes)
        self.sizes = self.schedule.resolve(len(self.base))
        self._stacks: "dict[str, list[Scenario]] | None" = None
        self._slices: "dict[str, SliceEvaluator]" = {}
        self._subsets: "list[tuple[int, ...]] | None" = None
        self._envelopes: "dict[str, FidelityEnvelope]" = {}
        self._full: "RacingEvaluator | None" = None
        #: full-physics / cheap member evals spent on setup (difficulty
        #: probe + calibration), charged to the first race's stats
        self._pending_full = 0
        self._pending_cheap = 0

    def _default_factory(self, stack: "list[Scenario]") -> SliceEvaluator:
        def _slice(member_indices, comps):
            return evaluate_member_slice(
                stack, member_indices, comps, policy=self.policy, engine=self.engine
            )

        return _slice

    @property
    def envelopes(self) -> "dict[str, FidelityEnvelope]":
        """Calibrated envelopes per cheap level (built on first use)."""
        self._prepare()
        return self._envelopes

    # -- lazy setup ------------------------------------------------------------

    def _prepare(self) -> None:
        if self._stacks is not None:
            return
        self._stacks = {
            name: sibling_stack(self.base, name) for name in self.ladder.levels
        }
        self._slices = {
            name: self._slice_factory(stack) for name, stack in self._stacks.items()
        }
        n = len(self.base)
        order: "list[int] | None" = None
        if self.schedule.order == "hardest" and n > 1:
            # Rank member difficulty once, at the *cheapest* level, and
            # share the order with every rung of every level (including
            # the inner full-physics racer) so all subsets are prefixes
            # of one ranking.
            cheapest = self.ladder.levels[0]
            rows = self._slices[cheapest](list(range(n)), [PROBE_COMPOSITION])
            if cheapest == FULL_LEVEL:
                self._pending_full += n
            else:
                self._pending_cheap += n
            order = difficulty_ranking(
                [row[0].objectives(self.objectives)[0] for row in rows]
            )
            self._subsets = self.schedule.subsets_from_order(order)
        else:
            self._subsets = self.schedule.subsets(n)
        self._full = RacingEvaluator(
            self._stacks[FULL_LEVEL],
            schedule=self.schedule,
            aggregate=self.aggregate,
            objectives=self.objectives,
            evaluate_slice=self._slices[FULL_LEVEL],
            member_order=order,
        )
        self._calibrate()

    def _calibrate(self) -> None:
        cheap = self.ladder.cheap_levels
        if not cheap:
            return
        members = list(range(len(self.base)))
        sites = [s.location.name for s in self.base]
        probes = self._probes
        full_rows = self._slices[FULL_LEVEL](members, probes)
        self._pending_full += len(members) * len(probes)
        full_obj = np.array(
            [[e.objectives(self.objectives) for e in row] for row in full_rows],
            dtype=np.float64,
        )
        for lvl in cheap:
            rows = self._slices[lvl.name](members, probes)
            self._pending_cheap += len(members) * len(probes)
            lvl_obj = np.array(
                [[e.objectives(self.objectives) for e in row] for row in rows],
                dtype=np.float64,
            )
            self._envelopes[lvl.name] = envelope_from_errors(
                lvl.name,
                self.objectives,
                full_obj - lvl_obj,
                sites,
                margin=self.ladder.margin,
            )

    # -- screening -------------------------------------------------------------

    def _partial_vector(
        self, member_evals: "dict[int, EvaluatedComposition]"
    ) -> "tuple[float, ...]":
        vectors = [
            member_evals[m].objectives(self.objectives) for m in sorted(member_evals)
        ]
        return tuple(
            aggregate_values(column, self.aggregate) for column in zip(*vectors)
        )

    def _screen(
        self,
        level: FidelityLevel,
        alive: "list[MicrogridComposition]",
        stats: RacingStats,
    ) -> "tuple[list[MicrogridComposition], list[tuple]]":
        """Race ``alive`` through one cheap level's member rungs.

        Only the partial-aggregate Pareto front survives each rung —
        deliberately aggressive, because every drop is later proven by
        an envelope bound or rescued at full physics.  Returns the
        survivors and the dropped ``(comp, level name, member evals,
        partial history)`` records.
        """
        if not alive:
            return [], []
        slice_fn = self._slices[level.name]
        evals: "dict[MicrogridComposition, dict[int, EvaluatedComposition]]" = {
            c: {} for c in alive
        }
        history: "dict[MicrogridComposition, list]" = {c: [] for c in alive}
        dropped: "list[tuple]" = []
        seen: "tuple[int, ...]" = ()
        for size, subset in zip(self.sizes, self._subsets):
            if not alive:
                break
            new_members = [m for m in subset if m not in seen]
            if new_members:
                rows = slice_fn(new_members, alive)
                stats.low_fidelity_evals += len(new_members) * len(alive)
                for j, m in enumerate(new_members):
                    for i, comp in enumerate(alive):
                        evals[comp][m] = rows[j][i]
            seen = subset
            vectors = [self._partial_vector(evals[c]) for c in alive]
            for comp, vec in zip(alive, vectors):
                history[comp].append((size, vec))
            front = set(
                int(i)
                for i in pareto_front_indices(np.array(vectors, dtype=np.float64))
            )
            dropped.extend(
                (c, level.name, evals[c], history[c])
                for i, c in enumerate(alive)
                if i not in front
            )
            alive = [c for i, c in enumerate(alive) if i in front]
        return alive, dropped

    # -- envelope proofs -------------------------------------------------------

    def _certified_bound(
        self,
        level_name: str,
        member_evals: "dict[int, EvaluatedComposition]",
    ) -> "np.ndarray | None":
        """Envelope-widened lower bound on the candidate's *full* aggregate.

        Each seen cheap member value is shifted down by the envelope's
        certified lower error bound (making it a sound lower bound on
        the member's full-physics value), clipped at zero for
        non-negative objectives, and folded through
        :func:`partial_lower_bound`.  ``None`` when no sound bound
        exists — the candidate must then be rescued, never pruned.
        """
        env = self._envelopes.get(level_name)
        if env is None or not member_evals:
            return None
        n = len(self.base)
        members = sorted(member_evals)
        rows = []
        for m in members:
            site = self.base[m].location.name
            if site not in env.lower:
                return None
            value = np.asarray(
                member_evals[m].objectives(self.objectives), dtype=np.float64
            )
            rows.append(value + env.lower[site])
        adjusted = np.array(rows, dtype=np.float64)
        bounds = []
        for k, name in enumerate(self.objectives):
            nonneg = name in NONNEGATIVE_OBJECTIVES
            column = adjusted[:, k]
            if nonneg:
                # The true full-physics values are >= 0 by construction,
                # so clipping the shifted bound at zero stays sound.
                column = np.maximum(column, 0.0)
            bound = partial_lower_bound(
                column.tolist(), n, self.aggregate, nonnegative=nonneg
            )
            if bound is None:
                return None
            bounds.append(bound)
        return np.array(bounds, dtype=np.float64)

    # -- the race --------------------------------------------------------------

    def race(
        self,
        compositions: Sequence[MicrogridComposition],
        known: "dict[MicrogridComposition, RobustEvaluatedComposition] | None" = None,
    ) -> RaceOutcome:
        """Race a candidate set up the fidelity ladder to an exact front.

        Screens at each cheap level, races the survivors at full
        physics, then closes every screening drop with an
        envelope-widened domination proof — or rescues it into a
        full-physics race.  Every ``evaluated`` entry is a full-ensemble
        *full-physics* evaluation; every ``pruned`` entry is proven
        strictly dominated by one of them, so the Pareto front over
        ``evaluated`` is exactly what full evaluation of every candidate
        would report.  ``stats.screened`` counts the candidates that
        never paid a single full-physics member evaluation.
        """
        self._prepare()
        comps = list(dict.fromkeys(compositions))
        exact: "dict[MicrogridComposition, RobustEvaluatedComposition]" = dict(
            known or {}
        )
        unknown = [c for c in comps if c not in exact]
        n = len(self.base)
        stats = RacingStats(
            n_members=n,
            rung_sizes=self.sizes,
            candidates=len(unknown),
            full_member_evals=len(unknown) * n,
            member_evals=self._pending_full,
            low_fidelity_evals=self._pending_cheap,
        )
        self._pending_full = 0
        self._pending_cheap = 0

        alive = unknown
        screened: "list[tuple]" = []
        for level in self.ladder.cheap_levels:
            alive, dropped = self._screen(level, alive, stats)
            screened.extend(dropped)

        full_outcome = self._full.race(alive, known=exact)
        self._absorb(stats, full_outcome.stats)
        stats.promoted_back += full_outcome.stats.promoted_back
        exact = full_outcome.evaluated
        pruned = dict(full_outcome.pruned)

        exact_matrix = np.array(
            [e.objectives(self.objectives) for e in exact.values()], dtype=np.float64
        ).reshape(len(exact), len(self.objectives))
        proven: "list[tuple]" = []
        rescued: "list[tuple]" = []
        for record in screened:
            comp, level_name, member_evals, history = record
            bound = self._certified_bound(level_name, member_evals)
            if bound is not None and _strictly_dominated(bound, exact_matrix):
                proven.append(record)
            else:
                rescued.append(record)
        stats.screened += len(proven)

        if rescued:
            rescue_outcome = self._full.race([r[0] for r in rescued], known=exact)
            self._absorb(stats, rescue_outcome.stats)
            stats.promoted_back += sum(
                1 for r in rescued if r[0] in rescue_outcome.evaluated
            )
            exact = rescue_outcome.evaluated
            pruned.update(rescue_outcome.pruned)

        for comp, level_name, member_evals, history in proven:
            pruned[comp] = PrunedCandidate(
                composition=comp,
                rung_size=len(member_evals),
                partials=tuple(history),
            )
        stats.pruned = len(pruned)
        return RaceOutcome(evaluated=exact, pruned=pruned, stats=stats)

    @staticmethod
    def _absorb(stats: RacingStats, inner: RacingStats) -> None:
        """Fold an inner full-physics race's work into the outer stats.

        Only the *work* counters — candidates / full_member_evals /
        pruned are outer-level quantities (the inner race would double
        count them, and its promoted_back needs rescue-aware handling
        by the caller).
        """
        stats.member_evals += inner.member_evals
        stats.low_fidelity_evals += inner.low_fidelity_evals
        for size, count in inner.alive_per_rung.items():
            stats.alive_per_rung[size] = stats.alive_per_rung.get(size, 0) + count


def fidelity_race_front(
    scenarios: Sequence[Scenario],
    compositions: Sequence[MicrogridComposition],
    ladder: "FidelityLadder | str" = FidelityLadder(),
    schedule: "RungSchedule | str" = RungSchedule(),
    aggregate: str = "worst",
    objectives: Sequence[str] = ("operational", "embodied"),
    policy: "VectorizedPolicy | None" = None,
    engine: str = "auto",
    slice_factory: "Callable[[list[Scenario]], SliceEvaluator] | None" = None,
) -> "tuple[list[RobustEvaluatedComposition], RaceOutcome]":
    """Exact ladder-top Pareto front via fidelity-laddered racing.

    Returns ``(front, outcome)`` — the front is identical to
    ``pareto_front(evaluate_ensemble(sibling_stack(scenarios, "full"),
    compositions, ...))``; ``outcome.stats`` records the full-physics
    member evaluations avoided (``member_evals`` vs
    ``full_member_evals``) and the candidates screened entirely at cheap
    physics (``screened``).
    """
    evaluator = FidelityRacingEvaluator(
        scenarios,
        ladder=ladder,
        schedule=schedule,
        aggregate=aggregate,
        objectives=objectives,
        policy=policy,
        engine=engine,
        slice_factory=slice_factory,
    )
    outcome = evaluator.race(compositions)
    front = pareto_front(list(outcome.evaluated.values()), objectives)
    return front, outcome
