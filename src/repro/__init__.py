"""repro — reproduction of "Optimizing Microgrid Composition for
Sustainable Data Centers" (Irion, Wiesner, Bader & Kao, SC Workshops '25).

The package rebuilds the paper's full stack from scratch:

* :mod:`repro.cosim` — a Vessim-style computing/energy co-simulator on a
  mosaik-like discrete-event kernel;
* :mod:`repro.sam` — NREL SAM-style renewable models (PVWatts solar,
  Windpower wind) and the C/L/C lithium-ion battery model;
* :mod:`repro.data` — deterministic synthetic substitutes for NSRDB,
  the WIND Toolkit, the Perlmutter power trace, and Electricity Maps
  carbon intensity (see DESIGN.md for the substitution rationale);
* :mod:`repro.blackbox` — an Optuna-style black-box optimizer with an
  NSGA-II multi-objective sampler, journaled/resumable study storage
  (DESIGN.md §3) and process-parallel trial execution (DESIGN.md §4);
* :mod:`repro.confsys` — a Hydra-style YAML config + sweep system;
* :mod:`repro.core` — the paper's contribution: microgrid-composition
  optimization trading off embodied vs operational carbon;
* :mod:`repro.analysis` — the paper's tables and figures as data.

Quickstart::

    from repro import build_scenario, run_exhaustive_search, paper_candidates

    scenario = build_scenario("berkeley")
    result = run_exhaustive_search(scenario)
    for row in (c.table_row() for c in paper_candidates(result.evaluated)):
        print(row)
"""

from .core import (
    BatchEvaluator,
    CompositionEvaluator,
    EnsembleSpec,
    EvaluatedComposition,
    MicrogridComposition,
    OptimizationRunner,
    PAPER_SPACE,
    ParameterSpace,
    RobustEvaluatedComposition,
    Scenario,
    SimulationMetrics,
    VectorizedPolicy,
    build_ensemble,
    build_scenario,
    evaluate_across_scenarios,
    evaluate_ensemble,
    make_policy,
    embodied_carbon_tonnes,
    greedy_diversity_candidates,
    kmeans_candidates,
    paper_candidates,
    pareto_front,
    project_emissions,
    run_blackbox_search,
    run_exhaustive_search,
    run_pipelined_search,
    threshold_candidates,
)
from .exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "MicrogridComposition",
    "ParameterSpace",
    "PAPER_SPACE",
    "Scenario",
    "build_scenario",
    "SimulationMetrics",
    "EvaluatedComposition",
    "RobustEvaluatedComposition",
    "BatchEvaluator",
    "CompositionEvaluator",
    "VectorizedPolicy",
    "EnsembleSpec",
    "build_ensemble",
    "evaluate_across_scenarios",
    "evaluate_ensemble",
    "make_policy",
    "OptimizationRunner",
    "run_exhaustive_search",
    "run_blackbox_search",
    "run_pipelined_search",
    "pareto_front",
    "paper_candidates",
    "threshold_candidates",
    "kmeans_candidates",
    "greedy_diversity_candidates",
    "project_emissions",
    "embodied_carbon_tonnes",
]
