"""Irradiance decomposition and plane-of-array (POA) transposition.

PVWatts consumes beam + diffuse irradiance on the tilted module plane.
Weather files carry global horizontal irradiance (GHI); two steps bridge
the gap:

* **decomposition** (:func:`erbs_decomposition`) — split GHI into direct
  normal (DNI) and diffuse horizontal (DHI) using the Erbs et al. (1982)
  clearness-index correlation;
* **transposition** (:func:`poa_irradiance`) — project onto the module
  plane with one of the :data:`TRANSPOSITION_MODELS`, ordered here from
  cheapest/crudest to most faithful:

  * ``"clearsky"`` — clear-sky components (Haurwitz GHI, Ineichen DNI)
    transposed once and scaled by the measured clearness index.  Uses
    only GHI and geometry, ignoring the measured DNI/DHI split; the
    bottom rung of the model-fidelity ladder (DESIGN.md §11).
  * ``"isotropic"`` — Liu–Jordan uniform sky dome.
  * ``"haydavies"`` — Hay–Davies circumsolar anisotropy (HDKR without
    the Reindl horizon-brightening term).
  * ``"hdkr"`` — Hay–Davies–Klucher–Reindl, the PVWatts-class default.
  * ``"perez"`` — the Perez et al. (1990) point-source model with the
    ``allsitescomposite1990`` coefficient set; the top of the fidelity
    ladder, matching what SAM's PVWatts actually runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...exceptions import ConfigurationError
from .geometry import SolarPosition

#: Ground reflectance (albedo) default used by PVWatts.
DEFAULT_ALBEDO = 0.2

#: Supported sky-diffuse transposition models, cheapest first.
TRANSPOSITION_MODELS = ("clearsky", "isotropic", "haydavies", "hdkr", "perez")

#: Perez et al. (1990) ``allsitescomposite1990`` brightness coefficients,
#: one row per sky-clearness (epsilon) bin.  Columns: F11 F12 F13 F21 F22
#: F23; bins bounded by :data:`_PEREZ_EPS_BINS`.
_PEREZ_COEFFS = np.array(
    [
        [-0.008, 0.588, -0.062, -0.060, 0.072, -0.022],
        [0.130, 0.683, -0.151, -0.019, 0.066, -0.029],
        [0.330, 0.487, -0.221, 0.055, -0.064, -0.026],
        [0.568, 0.187, -0.295, 0.109, -0.152, -0.014],
        [0.873, -0.392, -0.362, 0.226, -0.462, 0.001],
        [1.132, -1.237, -0.412, 0.288, -0.823, 0.056],
        [1.060, -1.600, -0.359, 0.264, -1.127, 0.131],
        [0.678, -0.327, -0.250, 0.156, -1.377, 0.251],
    ]
)

#: Upper epsilon edges of the first seven Perez clearness bins (the
#: eighth bin is open-ended).
_PEREZ_EPS_BINS = np.array([1.065, 1.23, 1.5, 1.95, 2.8, 4.5, 6.2])


def erbs_decomposition(
    ghi_w_m2: np.ndarray,
    zenith_deg: np.ndarray,
    extraterrestrial_w_m2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Split GHI into (DNI, DHI) via the Erbs diffuse-fraction correlation.

    Returns
    -------
    (dni, dhi):
        Direct normal and diffuse horizontal irradiance, W/m².
    """
    ghi = np.asarray(ghi_w_m2, dtype=np.float64)
    cos_zen = np.maximum(np.cos(np.radians(np.asarray(zenith_deg, dtype=np.float64))), 0.0)
    ext_horizontal = np.asarray(extraterrestrial_w_m2, dtype=np.float64) * cos_zen

    with np.errstate(divide="ignore", invalid="ignore"):
        kt = np.where(ext_horizontal > 1.0, ghi / np.maximum(ext_horizontal, 1e-9), 0.0)
    kt = np.clip(kt, 0.0, 1.0)

    # Erbs et al. (1982) piecewise diffuse fraction.
    df = np.where(
        kt <= 0.22,
        1.0 - 0.09 * kt,
        np.where(
            kt <= 0.80,
            0.9511 - 0.1604 * kt + 4.388 * kt**2 - 16.638 * kt**3 + 12.336 * kt**4,
            0.165,
        ),
    )
    dhi = df * ghi
    with np.errstate(divide="ignore", invalid="ignore"):
        dni = np.where(cos_zen > 0.017, (ghi - dhi) / np.maximum(cos_zen, 1e-9), 0.0)
    # Physical caps: DNI can't exceed the extraterrestrial beam.
    dni = np.clip(dni, 0.0, np.asarray(extraterrestrial_w_m2, dtype=np.float64))
    dhi = np.clip(dhi, 0.0, ghi)
    return dni, dhi


def angle_of_incidence_cos(
    solar: SolarPosition, tilt_deg: "float | np.ndarray", azimuth_deg: "float | np.ndarray"
) -> np.ndarray:
    """Cosine of the beam angle of incidence on a tilted plane.

    ``azimuth_deg`` is the surface azimuth clockwise from North
    (180 = south-facing).  Both orientation angles may be per-timestep
    arrays (single-axis trackers).
    """
    zen_r = np.radians(solar.zenith_deg)
    saz_r = np.radians(solar.azimuth_deg)
    tilt_r = np.radians(tilt_deg)
    paz_r = np.radians(azimuth_deg)
    cos_aoi = np.cos(zen_r) * np.cos(tilt_r) + np.sin(zen_r) * np.sin(tilt_r) * np.cos(
        saz_r - paz_r
    )
    return np.maximum(cos_aoi, 0.0)


@dataclass(frozen=True)
class PoaComponents:
    """POA irradiance split into its physical components (W/m²)."""

    beam: np.ndarray
    sky_diffuse: np.ndarray
    ground_reflected: np.ndarray

    @property
    def total(self) -> np.ndarray:
        return self.beam + self.sky_diffuse + self.ground_reflected


def poa_irradiance(
    solar: SolarPosition,
    ghi_w_m2: np.ndarray,
    dni_w_m2: np.ndarray,
    dhi_w_m2: np.ndarray,
    tilt_deg: "float | np.ndarray",
    azimuth_deg: "float | np.ndarray" = 180.0,
    albedo: float = DEFAULT_ALBEDO,
    model: str = "hdkr",
) -> PoaComponents:
    """Transpose horizontal irradiance onto a tilted plane.

    Parameters
    ----------
    tilt_deg / azimuth_deg:
        Scalars for fixed racks, per-timestep arrays for trackers.
    model:
        One of :data:`TRANSPOSITION_MODELS` (default ``"hdkr"``, the
        PVWatts-class anisotropic model; ``"perez"`` is the faithful
        SAM-grade top end, ``"clearsky"`` the fidelity-ladder bottom).
    """
    if model not in TRANSPOSITION_MODELS:
        raise ConfigurationError(
            f"unknown transposition model '{model}' "
            f"(known: {', '.join(TRANSPOSITION_MODELS)})"
        )
    if not np.all((np.asarray(tilt_deg) >= 0.0) & (np.asarray(tilt_deg) <= 90.0)):
        raise ConfigurationError(f"tilt must be in [0, 90] degrees, got {tilt_deg}")
    if not 0.0 <= albedo <= 1.0:
        raise ConfigurationError(f"albedo must be in [0, 1], got {albedo}")

    ghi = np.asarray(ghi_w_m2, dtype=np.float64)
    dni = np.asarray(dni_w_m2, dtype=np.float64)
    dhi = np.asarray(dhi_w_m2, dtype=np.float64)

    cos_aoi = angle_of_incidence_cos(solar, tilt_deg, azimuth_deg)
    cos_zen = solar.cos_zenith
    tilt_r = np.radians(tilt_deg)

    beam = dni * cos_aoi

    # View factors of the sky dome and ground for a tilted plane.
    f_sky = (1.0 + np.cos(tilt_r)) / 2.0
    f_ground = (1.0 - np.cos(tilt_r)) / 2.0
    ground = ghi * albedo * f_ground

    if model == "isotropic":
        sky = dhi * f_sky
    elif model == "clearsky":
        # Transpose the *clear-sky* beam/diffuse split once, then scale
        # by the measured clearness index — the measured DNI/DHI split
        # is ignored entirely, so this is the cheapest (and crudest)
        # rung of the fidelity ladder.
        from .clearsky import clearsky_dhi, haurwitz_ghi, ineichen_dni

        ghi_cs = haurwitz_ghi(solar.zenith_deg)
        dni_cs = ineichen_dni(solar.zenith_deg, solar.extraterrestrial_w_m2)
        dhi_cs = clearsky_dhi(ghi_cs, dni_cs, solar.zenith_deg)
        with np.errstate(divide="ignore", invalid="ignore"):
            kt = np.where(
                ghi_cs > 1.0,
                np.clip(ghi / np.maximum(ghi_cs, 1e-9), 0.0, 1.5),
                0.0,
            )
        beam = kt * dni_cs * cos_aoi
        sky = kt * dhi_cs * f_sky
    elif model in ("hdkr", "haydavies"):
        # Anisotropy index Ai weights circumsolar diffuse as beam;
        # HDKR adds the Reindl horizon-brightening term on top of
        # Hay–Davies.
        ext = np.maximum(solar.extraterrestrial_w_m2, 1.0)
        ai = np.clip(dni / ext, 0.0, 1.0)
        rb = np.where(cos_zen > 0.017, cos_aoi / np.maximum(cos_zen, 1e-9), 0.0)
        rb = np.clip(rb, 0.0, 10.0)  # cap horizon-grazing amplification
        if model == "haydavies":
            sky = dhi * (ai * rb + (1.0 - ai) * f_sky)
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                f_hb = np.sqrt(
                    np.where(ghi > 0.0, beam_fraction(ghi, dni, cos_zen), 0.0)
                )
            sky = dhi * (
                ai * rb + (1.0 - ai) * f_sky * (1.0 + f_hb * np.sin(tilt_r / 2.0) ** 3)
            )
    else:  # perez
        # Perez et al. (1990) point-source model: circumsolar (F1) and
        # horizon (F2) brightening coefficients looked up per sky
        # clearness bin, scaled by the brightness Δ.
        from .clearsky import relative_airmass

        ext = np.maximum(solar.extraterrestrial_w_m2, 1.0)
        zen_r = np.radians(np.asarray(solar.zenith_deg, dtype=np.float64))
        kappa_z3 = 1.041 * zen_r**3
        with np.errstate(divide="ignore", invalid="ignore"):
            eps = np.where(
                dhi > 0.0,
                ((dhi + dni) / np.maximum(dhi, 1e-9) + kappa_z3) / (1.0 + kappa_z3),
                1.0,
            )
        f11, f12, f13, f21, f22, f23 = _PEREZ_COEFFS[
            np.searchsorted(_PEREZ_EPS_BINS, eps, side="right")
        ].T
        delta = dhi * relative_airmass(solar.zenith_deg) / ext
        f1 = np.maximum(f11 + f12 * delta + f13 * zen_r, 0.0)
        f2 = f21 + f22 * delta + f23 * zen_r
        # a/b: circumsolar view-factor ratio, with the solar disc held
        # at 85° past the horizon (the Perez smoothing convention).
        a = cos_aoi
        b = np.maximum(np.cos(np.radians(85.0)), cos_zen)
        sky = dhi * ((1.0 - f1) * f_sky + f1 * a / b + f2 * np.sin(tilt_r))

    return PoaComponents(beam=beam, sky_diffuse=np.maximum(sky, 0.0), ground_reflected=ground)


def beam_fraction(ghi: np.ndarray, dni: np.ndarray, cos_zen: np.ndarray) -> np.ndarray:
    """Fraction of GHI contributed by the beam component (clipped [0,1])."""
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = np.where(ghi > 0.0, dni * cos_zen / np.maximum(ghi, 1e-9), 0.0)
    return np.clip(frac, 0.0, 1.0)
