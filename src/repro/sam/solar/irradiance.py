"""Irradiance decomposition and plane-of-array (POA) transposition.

PVWatts consumes beam + diffuse irradiance on the tilted module plane.
Weather files carry global horizontal irradiance (GHI); two steps bridge
the gap:

* **decomposition** (:func:`erbs_decomposition`) — split GHI into direct
  normal (DNI) and diffuse horizontal (DHI) using the Erbs et al. (1982)
  clearness-index correlation;
* **transposition** (:func:`poa_irradiance`) — project onto the module
  plane with either the isotropic-sky (Liu–Jordan) or the HDKR
  (Hay–Davies–Klucher–Reindl) anisotropic model.  SAM's PVWatts uses a
  Perez-class anisotropic model; HDKR captures the same circumsolar
  enhancement with far fewer empirical coefficients and is a standard
  substitute (Duffie & Beckman §2.16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...exceptions import ConfigurationError
from .geometry import SolarPosition

#: Ground reflectance (albedo) default used by PVWatts.
DEFAULT_ALBEDO = 0.2


def erbs_decomposition(
    ghi_w_m2: np.ndarray,
    zenith_deg: np.ndarray,
    extraterrestrial_w_m2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Split GHI into (DNI, DHI) via the Erbs diffuse-fraction correlation.

    Returns
    -------
    (dni, dhi):
        Direct normal and diffuse horizontal irradiance, W/m².
    """
    ghi = np.asarray(ghi_w_m2, dtype=np.float64)
    cos_zen = np.maximum(np.cos(np.radians(np.asarray(zenith_deg, dtype=np.float64))), 0.0)
    ext_horizontal = np.asarray(extraterrestrial_w_m2, dtype=np.float64) * cos_zen

    with np.errstate(divide="ignore", invalid="ignore"):
        kt = np.where(ext_horizontal > 1.0, ghi / np.maximum(ext_horizontal, 1e-9), 0.0)
    kt = np.clip(kt, 0.0, 1.0)

    # Erbs et al. (1982) piecewise diffuse fraction.
    df = np.where(
        kt <= 0.22,
        1.0 - 0.09 * kt,
        np.where(
            kt <= 0.80,
            0.9511 - 0.1604 * kt + 4.388 * kt**2 - 16.638 * kt**3 + 12.336 * kt**4,
            0.165,
        ),
    )
    dhi = df * ghi
    with np.errstate(divide="ignore", invalid="ignore"):
        dni = np.where(cos_zen > 0.017, (ghi - dhi) / np.maximum(cos_zen, 1e-9), 0.0)
    # Physical caps: DNI can't exceed the extraterrestrial beam.
    dni = np.clip(dni, 0.0, np.asarray(extraterrestrial_w_m2, dtype=np.float64))
    dhi = np.clip(dhi, 0.0, ghi)
    return dni, dhi


def angle_of_incidence_cos(
    solar: SolarPosition, tilt_deg: "float | np.ndarray", azimuth_deg: "float | np.ndarray"
) -> np.ndarray:
    """Cosine of the beam angle of incidence on a tilted plane.

    ``azimuth_deg`` is the surface azimuth clockwise from North
    (180 = south-facing).  Both orientation angles may be per-timestep
    arrays (single-axis trackers).
    """
    zen_r = np.radians(solar.zenith_deg)
    saz_r = np.radians(solar.azimuth_deg)
    tilt_r = np.radians(tilt_deg)
    paz_r = np.radians(azimuth_deg)
    cos_aoi = np.cos(zen_r) * np.cos(tilt_r) + np.sin(zen_r) * np.sin(tilt_r) * np.cos(
        saz_r - paz_r
    )
    return np.maximum(cos_aoi, 0.0)


@dataclass(frozen=True)
class PoaComponents:
    """POA irradiance split into its physical components (W/m²)."""

    beam: np.ndarray
    sky_diffuse: np.ndarray
    ground_reflected: np.ndarray

    @property
    def total(self) -> np.ndarray:
        return self.beam + self.sky_diffuse + self.ground_reflected


def poa_irradiance(
    solar: SolarPosition,
    ghi_w_m2: np.ndarray,
    dni_w_m2: np.ndarray,
    dhi_w_m2: np.ndarray,
    tilt_deg: "float | np.ndarray",
    azimuth_deg: "float | np.ndarray" = 180.0,
    albedo: float = DEFAULT_ALBEDO,
    model: str = "hdkr",
) -> PoaComponents:
    """Transpose horizontal irradiance onto a tilted plane.

    Parameters
    ----------
    tilt_deg / azimuth_deg:
        Scalars for fixed racks, per-timestep arrays for trackers.
    model:
        ``"isotropic"`` (Liu–Jordan) or ``"hdkr"`` (Hay–Davies–Klucher–
        Reindl, PVWatts-class anisotropic default).
    """
    if model not in ("isotropic", "hdkr"):
        raise ConfigurationError(f"unknown transposition model '{model}'")
    if not np.all((np.asarray(tilt_deg) >= 0.0) & (np.asarray(tilt_deg) <= 90.0)):
        raise ConfigurationError(f"tilt must be in [0, 90] degrees, got {tilt_deg}")
    if not 0.0 <= albedo <= 1.0:
        raise ConfigurationError(f"albedo must be in [0, 1], got {albedo}")

    ghi = np.asarray(ghi_w_m2, dtype=np.float64)
    dni = np.asarray(dni_w_m2, dtype=np.float64)
    dhi = np.asarray(dhi_w_m2, dtype=np.float64)

    cos_aoi = angle_of_incidence_cos(solar, tilt_deg, azimuth_deg)
    cos_zen = solar.cos_zenith
    tilt_r = np.radians(tilt_deg)

    beam = dni * cos_aoi

    # View factors of the sky dome and ground for a tilted plane.
    f_sky = (1.0 + np.cos(tilt_r)) / 2.0
    f_ground = (1.0 - np.cos(tilt_r)) / 2.0
    ground = ghi * albedo * f_ground

    if model == "isotropic":
        sky = dhi * f_sky
    else:
        # HDKR: anisotropy index Ai weights circumsolar diffuse as beam,
        # horizon-brightening term f per Reindl.
        ext = np.maximum(solar.extraterrestrial_w_m2, 1.0)
        ai = np.clip(dni / ext, 0.0, 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            f_hb = np.sqrt(np.where(ghi > 0.0, beam_fraction(ghi, dni, cos_zen), 0.0))
        rb = np.where(cos_zen > 0.017, cos_aoi / np.maximum(cos_zen, 1e-9), 0.0)
        rb = np.clip(rb, 0.0, 10.0)  # cap horizon-grazing amplification
        sky = dhi * (
            ai * rb + (1.0 - ai) * f_sky * (1.0 + f_hb * np.sin(tilt_r / 2.0) ** 3)
        )

    return PoaComponents(beam=beam, sky_diffuse=np.maximum(sky, 0.0), ground_reflected=ground)


def beam_fraction(ghi: np.ndarray, dni: np.ndarray, cos_zen: np.ndarray) -> np.ndarray:
    """Fraction of GHI contributed by the beam component (clipped [0,1])."""
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = np.where(ghi > 0.0, dni * cos_zen / np.maximum(ghi, 1e-9), 0.0)
    return np.clip(frac, 0.0, 1.0)
