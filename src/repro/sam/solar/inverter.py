"""Inverter model: DC → AC conversion with part-load efficiency and clipping.

PVWatts v5 uses a nominal inverter efficiency plus an empirical part-load
curve derived from the Sandia/CEC inverter database, and clips output at
the AC nameplate (``P_dc0 / dc_ac_ratio``).  We reproduce that behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...exceptions import ConfigurationError


@dataclass(frozen=True)
class InverterModel:
    """PVWatts-style inverter with part-load efficiency and AC clipping.

    Parameters
    ----------
    ac_rated_w:
        AC nameplate power (clipping limit).
    nominal_efficiency:
        Rated (CEC weighted) efficiency η_nom, e.g. 0.96.
    reference_efficiency:
        Reference efficiency the PVWatts part-load curve is normalized to
        (0.9637 in PVWatts v5).
    """

    ac_rated_w: float
    nominal_efficiency: float = 0.96
    reference_efficiency: float = 0.9637

    def __post_init__(self) -> None:
        if self.ac_rated_w <= 0:
            raise ConfigurationError(f"ac_rated_w must be positive, got {self.ac_rated_w}")
        if not 0.5 < self.nominal_efficiency <= 1.0:
            raise ConfigurationError(
                f"nominal_efficiency must be in (0.5, 1], got {self.nominal_efficiency}"
            )

    def ac_power_w(self, dc_power_w: np.ndarray) -> np.ndarray:
        """Convert DC power (W) to AC power (W).

        Implements the PVWatts v5 part-load efficiency polynomial
        ``η(ζ) = η_nom/η_ref * (-0.0162 ζ - 0.0059/ζ + 0.9858)`` with
        ``ζ = P_dc / P_dc0`` where ``P_dc0 = P_ac0 / η_nom``, followed by
        clipping at the AC nameplate.
        """
        dc = np.asarray(dc_power_w, dtype=np.float64)
        p_dc0 = self.ac_rated_w / self.nominal_efficiency
        zeta = np.clip(dc / p_dc0, 1e-4, None)
        eta = (
            self.nominal_efficiency
            / self.reference_efficiency
            * (-0.0162 * zeta - 0.0059 / zeta + 0.9858)
        )
        eta = np.clip(eta, 0.0, 1.0)
        ac = eta * dc
        # Clip at nameplate; zero out negligible nighttime tare values.
        ac = np.minimum(ac, self.ac_rated_w)
        return np.where(dc > 0.0, np.maximum(ac, 0.0), 0.0)

    def clipping_fraction(self, dc_power_w: np.ndarray) -> float:
        """Fraction of timesteps where the inverter clips at nameplate."""
        ac = self.ac_power_w(dc_power_w)
        produced = np.asarray(dc_power_w) > 0
        if not produced.any():
            return 0.0
        return float(np.mean(np.isclose(ac[produced], self.ac_rated_w)))
