"""PVWatts-style photovoltaic system model.

This is the reimplementation of the SAM ``Pvwattsv8`` compute module the
paper drives through PySAM: given an hourly solar resource year and a
system description (DC capacity, tilt, azimuth, losses, inverter ratio) it
produces the hourly AC generation profile.

The full chain:

``GHI → (DNI, DHI) → POA transposition → cell temperature → DC power
→ system losses → inverter → AC power``

All steps are vectorized over the full year at once (hpc-parallel guide:
vectorize the independent axis; a year is 8 760 trivially independent
samples apart from the resource synthesis itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ...exceptions import ConfigurationError
from ...units import KW_PER_MW, W_PER_KW
from .geometry import SolarPosition, solar_position
from .inverter import InverterModel
from .irradiance import TRANSPOSITION_MODELS, poa_irradiance
from .losses import DEFAULT_LOSSES, SystemLosses
from .temperature import (
    REFERENCE_CELL_TEMPERATURE_C,
    REFERENCE_IRRADIANCE_W_M2,
    cell_temperature_noct,
    cell_temperature_sapm,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...data.solar_resource import SolarResource


@dataclass(frozen=True)
class PVWattsParameters:
    """System description mirroring the PVWatts inputs the paper uses.

    Parameters
    ----------
    dc_capacity_kw:
        Nameplate DC capacity (kWdc).  The paper sweeps 0–40 MW in 4 MW
        increments.
    array_type:
        ``"fixed"`` (open rack) or ``"single_axis"`` (horizontal N–S-axis
        tracker, SAM array types 2/3); trackers ignore tilt/azimuth.
    tilt_deg / azimuth_deg:
        Fixed-rack orientation; tilt defaults to site latitude at build
        time (a common PVWatts choice), azimuth 180° = south.
    gamma_pdc_per_c:
        Temperature coefficient of power (1/°C); −0.47 %/°C std. c-Si.
    dc_ac_ratio:
        DC/AC sizing ratio (inverter loading ratio).
    temperature_model:
        ``"noct"`` or ``"sapm"``.
    """

    dc_capacity_kw: float
    array_type: str = "fixed"
    tilt_deg: float | None = None
    azimuth_deg: float = 180.0
    max_tracker_rotation_deg: float = 60.0
    gamma_pdc_per_c: float = -0.0047
    dc_ac_ratio: float = 1.15
    albedo: float = 0.2
    transposition_model: str = "hdkr"
    temperature_model: str = "noct"
    noct_c: float = 45.0
    losses: SystemLosses = field(default_factory=lambda: DEFAULT_LOSSES)

    def __post_init__(self) -> None:
        if self.dc_capacity_kw < 0:
            raise ConfigurationError(f"dc_capacity_kw must be >= 0, got {self.dc_capacity_kw}")
        if self.dc_ac_ratio <= 0:
            raise ConfigurationError(f"dc_ac_ratio must be positive, got {self.dc_ac_ratio}")
        if self.temperature_model not in ("noct", "sapm"):
            raise ConfigurationError(f"unknown temperature model '{self.temperature_model}'")
        if self.transposition_model not in TRANSPOSITION_MODELS:
            raise ConfigurationError(
                f"unknown transposition model '{self.transposition_model}' "
                f"(known: {', '.join(TRANSPOSITION_MODELS)})"
            )
        if self.array_type not in ("fixed", "single_axis"):
            raise ConfigurationError(f"unknown array type '{self.array_type}'")
        if not -0.02 <= self.gamma_pdc_per_c <= 0.0:
            raise ConfigurationError(
                f"gamma_pdc_per_c should be a small negative number, got {self.gamma_pdc_per_c}"
            )

    @property
    def dc_capacity_mw(self) -> float:
        return self.dc_capacity_kw / KW_PER_MW


@dataclass(frozen=True)
class PVWattsResult:
    """Hourly outputs of a PVWatts run (arrays aligned with the resource)."""

    ac_power_w: np.ndarray
    dc_power_w: np.ndarray
    poa_w_m2: np.ndarray
    cell_temperature_c: np.ndarray

    @property
    def annual_energy_kwh(self) -> float:
        """Annual AC energy assuming hourly samples (kWh)."""
        return float(self.ac_power_w.sum() / W_PER_KW)

    def capacity_factor(self, dc_capacity_kw: float) -> float:
        """Net AC capacity factor relative to DC nameplate."""
        if dc_capacity_kw <= 0:
            return 0.0
        hours = len(self.ac_power_w)
        return float(self.ac_power_w.mean() / (dc_capacity_kw * W_PER_KW)) if hours else 0.0


class PVWattsModel:
    """Runs the PVWatts chain for one system at one site."""

    def __init__(self, params: PVWattsParameters) -> None:
        self.params = params

    def run(self, resource: "SolarResource") -> PVWattsResult:
        """Simulate the system against an hourly solar resource year."""
        p = self.params
        loc = resource.location

        solar: SolarPosition = solar_position(
            resource.times_s, loc.latitude_deg, loc.longitude_deg, loc.timezone_hours
        )
        if p.array_type == "single_axis":
            from .tracking import single_axis_orientation

            orientation = single_axis_orientation(solar, p.max_tracker_rotation_deg)
            tilt: "float | np.ndarray" = orientation.tilt_deg
            azimuth: "float | np.ndarray" = orientation.azimuth_deg
        else:
            fixed_tilt = p.tilt_deg if p.tilt_deg is not None else abs(loc.latitude_deg)
            tilt = min(fixed_tilt, 60.0)  # PVWatts caps practical fixed tilt
            azimuth = p.azimuth_deg

        poa = poa_irradiance(
            solar,
            resource.ghi_w_m2,
            resource.dni_w_m2,
            resource.dhi_w_m2,
            tilt_deg=tilt,
            azimuth_deg=azimuth,
            albedo=p.albedo,
            model=p.transposition_model,
        )
        poa_total = poa.total

        if p.temperature_model == "noct":
            t_cell = cell_temperature_noct(poa_total, resource.ambient_temperature_c, p.noct_c)
        else:
            t_cell = cell_temperature_sapm(
                poa_total, resource.ambient_temperature_c, resource.wind_speed_ms
            )

        # PVWatts DC power: nameplate scaled by POA ratio and temperature.
        dc_nameplate_w = p.dc_capacity_kw * W_PER_KW
        dc = (
            dc_nameplate_w
            * (poa_total / REFERENCE_IRRADIANCE_W_M2)
            * (1.0 + p.gamma_pdc_per_c * (t_cell - REFERENCE_CELL_TEMPERATURE_C))
        )
        dc = np.maximum(dc, 0.0)
        dc *= p.losses.total_derate

        inverter = InverterModel(
            ac_rated_w=max(dc_nameplate_w / p.dc_ac_ratio, 1.0),
            nominal_efficiency=0.96,
        )
        ac = inverter.ac_power_w(dc) if p.dc_capacity_kw > 0 else np.zeros_like(dc)

        return PVWattsResult(
            ac_power_w=ac, dc_power_w=dc, poa_w_m2=poa_total, cell_temperature_c=t_cell
        )

    def hourly_profile_w(self, resource: "SolarResource") -> np.ndarray:
        """Convenience: just the AC power profile (W)."""
        return self.run(resource).ac_power_w


def per_kw_profile(resource: "SolarResource", **param_overrides) -> np.ndarray:
    """Normalized AC output of a 1 kW(dc) PVWatts system (W per kWdc).

    Because PVWatts output is linear in nameplate (same POA/temperature for
    every module), a composition sweep only needs this profile once per
    site; any capacity is ``capacity_kw * per_kw_profile`` — the key
    optimization exploited by :mod:`repro.core.fastsim`.
    """
    params = PVWattsParameters(dc_capacity_kw=1.0, **param_overrides)
    return PVWattsModel(params).run(resource).ac_power_w
