"""Single-axis tracker geometry (SAM PVWatts ``array_type`` 2/3).

PVWatts supports fixed racks and one-axis trackers; trackers are the
dominant utility-scale choice and lift capacity factors by ~15–25 %.
This module computes the instantaneous surface orientation of a
horizontal north–south-axis tracker following the sun east→west
(the standard configuration), with an optional rotation limit.

Formulas follow Lorenzo et al. / the pvlib ``singleaxis`` derivation for
``axis_tilt = 0``, ``axis_azimuth = 180`` (axis pointing south, panels
rotating about it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...exceptions import ConfigurationError
from .geometry import SolarPosition


@dataclass(frozen=True)
class TrackerOrientation:
    """Per-timestep surface orientation of the tracker (degrees)."""

    tilt_deg: np.ndarray
    azimuth_deg: np.ndarray
    rotation_deg: np.ndarray


def single_axis_orientation(
    solar: SolarPosition, max_rotation_deg: float = 60.0
) -> TrackerOrientation:
    """Ideal-tracking orientation of a horizontal N–S-axis tracker.

    The tracker rotation (about the N–S axis, 0 = flat, + toward west)
    that minimizes the beam angle of incidence is
    ``R = atan2(sin(θz)·sin(γs − γa), cos(θz))`` with axis azimuth
    γa = 180°; the instantaneous surface tilt is |R| and the surface
    azimuth flips between east (90°) and west (270°).
    """
    if not 0.0 < max_rotation_deg <= 90.0:
        raise ConfigurationError("max rotation must be in (0, 90] degrees")
    zen_r = np.radians(solar.zenith_deg)
    az_r = np.radians(solar.azimuth_deg)
    axis_az_r = np.radians(180.0)

    x = np.sin(zen_r) * np.sin(az_r - axis_az_r)  # east-west sun component
    z = np.cos(zen_r)
    rotation = np.degrees(np.arctan2(x, np.maximum(z, 1e-9)))
    rotation = np.clip(rotation, -max_rotation_deg, max_rotation_deg)
    # Below the horizon the tracker stows flat.
    rotation = np.where(solar.zenith_deg < 90.0, rotation, 0.0)

    tilt = np.abs(rotation)
    azimuth = np.where(rotation >= 0.0, 270.0, 90.0)  # + rotation → facing west
    return TrackerOrientation(tilt_deg=tilt, azimuth_deg=azimuth, rotation_deg=rotation)
