"""PVWatts-style photovoltaic performance model.

Model chain (PVWatts v5, Dobos 2014 — the module SAM's ``Pvwattsv8`` is
descended from):

1. solar position            → :mod:`repro.sam.solar.geometry`
2. clear-sky irradiance      → :mod:`repro.sam.solar.clearsky`
3. GHI → DNI/DHI split and
   plane-of-array transposition → :mod:`repro.sam.solar.irradiance`
4. cell temperature          → :mod:`repro.sam.solar.temperature`
5. DC power + system losses  → :mod:`repro.sam.solar.pvwatts`,
                               :mod:`repro.sam.solar.losses`
6. inverter clipping/efficiency → :mod:`repro.sam.solar.inverter`
"""

from .geometry import SolarPosition, solar_position
from .clearsky import haurwitz_ghi, ineichen_dni
from .irradiance import erbs_decomposition, poa_irradiance
from .temperature import cell_temperature_noct
from .inverter import InverterModel
from .pvwatts import PVWattsModel, PVWattsParameters

__all__ = [
    "SolarPosition",
    "solar_position",
    "haurwitz_ghi",
    "ineichen_dni",
    "erbs_decomposition",
    "poa_irradiance",
    "cell_temperature_noct",
    "InverterModel",
    "PVWattsModel",
    "PVWattsParameters",
]
