"""Photovoltaic cell-temperature models.

PVWatts derates DC output by the cell temperature excess over 25 °C
reference conditions.  Two standard models:

* :func:`cell_temperature_noct` — NOCT (nominal operating cell temperature)
  linear model, the textbook approach and a good match for rack-mounted
  modules;
* :func:`cell_temperature_sapm` — the Sandia Array Performance Model
  exponential wind-cooling form that SAM's PVWatts actually uses (King et
  al. 2004, open-rack glass/polymer coefficients by default).
"""

from __future__ import annotations

import numpy as np

#: Reference cell temperature for STC ratings, °C.
REFERENCE_CELL_TEMPERATURE_C = 25.0
#: Reference irradiance for STC ratings, W/m².
REFERENCE_IRRADIANCE_W_M2 = 1_000.0
#: NOCT test irradiance, W/m².
NOCT_IRRADIANCE_W_M2 = 800.0
#: NOCT test ambient temperature, °C.
NOCT_AMBIENT_C = 20.0


def cell_temperature_noct(
    poa_w_m2: np.ndarray,
    ambient_c: np.ndarray,
    noct_c: float = 45.0,
) -> np.ndarray:
    """NOCT linear cell-temperature model.

    ``T_cell = T_amb + (NOCT - 20) * POA / 800``.
    """
    poa = np.asarray(poa_w_m2, dtype=np.float64)
    amb = np.asarray(ambient_c, dtype=np.float64)
    return amb + (noct_c - NOCT_AMBIENT_C) * poa / NOCT_IRRADIANCE_W_M2


def cell_temperature_sapm(
    poa_w_m2: np.ndarray,
    ambient_c: np.ndarray,
    wind_speed_ms: np.ndarray | float = 1.0,
    a: float = -3.56,
    b: float = -0.075,
    delta_t_c: float = 3.0,
) -> np.ndarray:
    """SAPM cell-temperature model (open-rack glass/polymer defaults).

    Module back temperature ``T_m = POA * exp(a + b*WS) + T_amb`` and
    cell temperature ``T_c = T_m + POA/1000 * ΔT``.
    """
    poa = np.asarray(poa_w_m2, dtype=np.float64)
    amb = np.asarray(ambient_c, dtype=np.float64)
    ws = np.asarray(wind_speed_ms, dtype=np.float64)
    t_module = poa * np.exp(a + b * ws) + amb
    return t_module + poa / REFERENCE_IRRADIANCE_W_M2 * delta_t_c
