"""Solar position algorithm.

Implements the standard Spencer/Cooper equations used by PVWatts-class
models: solar declination and the equation of time from the fractional
year, then hour angle, zenith and azimuth for a site.  Accuracy is a
fraction of a degree — ample for energy simulation (SAM itself uses a
comparable closed-form algorithm for its hourly models).

All functions are vectorized over time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...units import SECONDS_PER_HOUR

#: Solar constant (extraterrestrial normal irradiance), W/m².
SOLAR_CONSTANT_W_M2 = 1_361.0


@dataclass(frozen=True)
class SolarPosition:
    """Solar angles for a batch of timestamps (all arrays, degrees)."""

    zenith_deg: np.ndarray
    azimuth_deg: np.ndarray  # clockwise from North
    declination_deg: np.ndarray
    hour_angle_deg: np.ndarray
    eot_minutes: np.ndarray
    extraterrestrial_w_m2: np.ndarray

    @property
    def elevation_deg(self) -> np.ndarray:
        """Solar elevation above the horizon (deg)."""
        return 90.0 - self.zenith_deg

    @property
    def cos_zenith(self) -> np.ndarray:
        """Cosine of the zenith angle, clipped at 0 below the horizon."""
        return np.maximum(np.cos(np.radians(self.zenith_deg)), 0.0)


def _fractional_year_rad(day_of_year: np.ndarray, hour_of_day: np.ndarray) -> np.ndarray:
    """Fractional year angle γ (radians) per Spencer (1971)."""
    return 2.0 * np.pi / 365.0 * (day_of_year - 1.0 + (hour_of_day - 12.0) / 24.0)


def declination_deg(day_of_year: np.ndarray, hour_of_day: np.ndarray | float = 12.0) -> np.ndarray:
    """Solar declination (degrees) via the Spencer Fourier series."""
    g = _fractional_year_rad(np.asarray(day_of_year, dtype=np.float64), np.asarray(hour_of_day))
    decl_rad = (
        0.006918
        - 0.399912 * np.cos(g)
        + 0.070257 * np.sin(g)
        - 0.006758 * np.cos(2 * g)
        + 0.000907 * np.sin(2 * g)
        - 0.002697 * np.cos(3 * g)
        + 0.00148 * np.sin(3 * g)
    )
    return np.degrees(decl_rad)


def equation_of_time_minutes(day_of_year: np.ndarray) -> np.ndarray:
    """Equation of time (minutes) via the Spencer Fourier series."""
    g = _fractional_year_rad(np.asarray(day_of_year, dtype=np.float64), 12.0)
    return 229.18 * (
        0.000075
        + 0.001868 * np.cos(g)
        - 0.032077 * np.sin(g)
        - 0.014615 * np.cos(2 * g)
        - 0.040849 * np.sin(2 * g)
    )


def extraterrestrial_normal_w_m2(day_of_year: np.ndarray) -> np.ndarray:
    """Extraterrestrial beam irradiance with Earth-orbit eccentricity."""
    b = 2.0 * np.pi * (np.asarray(day_of_year, dtype=np.float64) - 1.0) / 365.0
    correction = (
        1.00011
        + 0.034221 * np.cos(b)
        + 0.00128 * np.sin(b)
        + 0.000719 * np.cos(2 * b)
        + 0.000077 * np.sin(2 * b)
    )
    return SOLAR_CONSTANT_W_M2 * correction


def solar_position(
    times_s: np.ndarray,
    latitude_deg: float,
    longitude_deg: float,
    timezone_hours: float,
) -> SolarPosition:
    """Compute solar angles for epoch-second timestamps at a site.

    ``times_s`` are seconds since local-standard-time midnight, Jan 1.
    Multi-year times wrap around a 365-day year (matching the synthetic
    resource convention in :mod:`repro.timeseries`).
    """
    t = np.asarray(times_s, dtype=np.float64)
    hours = t / SECONDS_PER_HOUR
    hour_of_year = np.mod(hours, 8_760.0)
    day_of_year = np.floor(hour_of_year / 24.0) + 1.0
    local_hour = np.mod(hour_of_year, 24.0)

    decl = declination_deg(day_of_year, local_hour)
    eot = equation_of_time_minutes(day_of_year)

    # Local solar time: standard time + longitude correction + EoT.
    # Standard meridian of the timezone is 15° * tz.
    solar_hour = local_hour + (longitude_deg - 15.0 * timezone_hours) / 15.0 + eot / 60.0
    hour_angle = 15.0 * (solar_hour - 12.0)

    lat_r = np.radians(latitude_deg)
    decl_r = np.radians(decl)
    ha_r = np.radians(hour_angle)

    cos_zen = np.sin(lat_r) * np.sin(decl_r) + np.cos(lat_r) * np.cos(decl_r) * np.cos(ha_r)
    cos_zen = np.clip(cos_zen, -1.0, 1.0)
    zenith = np.degrees(np.arccos(cos_zen))

    # Azimuth clockwise from North (NOAA convention).
    sin_zen = np.sqrt(np.maximum(1.0 - cos_zen**2, 1e-12))
    cos_az = (np.sin(decl_r) - np.sin(lat_r) * cos_zen) / (np.cos(lat_r) * sin_zen)
    cos_az = np.clip(cos_az, -1.0, 1.0)
    azimuth = np.degrees(np.arccos(cos_az))
    azimuth = np.where(hour_angle > 0.0, 360.0 - azimuth, azimuth)

    return SolarPosition(
        zenith_deg=zenith,
        azimuth_deg=azimuth,
        declination_deg=np.broadcast_to(decl, zenith.shape).copy(),
        hour_angle_deg=hour_angle,
        eot_minutes=np.broadcast_to(eot, zenith.shape).copy(),
        extraterrestrial_w_m2=extraterrestrial_normal_w_m2(day_of_year),
    )


def sunrise_sunset_hours(day_of_year: float, latitude_deg: float) -> tuple[float, float]:
    """Approximate local-solar-time sunrise/sunset hours for a day.

    Returns ``(sunrise, sunset)`` in solar hours; for polar day/night the
    pair degenerates to ``(12, 12)`` or ``(0, 24)``.
    """
    decl = float(declination_deg(np.asarray([day_of_year]))[0])
    lat_r = np.radians(latitude_deg)
    decl_r = np.radians(decl)
    cos_ha = -np.tan(lat_r) * np.tan(decl_r)
    if cos_ha >= 1.0:
        return (12.0, 12.0)  # polar night
    if cos_ha <= -1.0:
        return (0.0, 24.0)  # polar day
    ha = np.degrees(np.arccos(cos_ha))
    return (12.0 - ha / 15.0, 12.0 + ha / 15.0)
