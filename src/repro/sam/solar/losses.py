"""PVWatts system-loss model.

PVWatts lumps all non-temperature, non-inverter losses into a single
percentage applied to DC output.  The defaults below are the PVWatts v5
documentation values; the total combines multiplicatively.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ...exceptions import ConfigurationError


@dataclass(frozen=True)
class SystemLosses:
    """Itemized PVWatts loss categories (each a fraction in [0, 1))."""

    soiling: float = 0.02
    shading: float = 0.03
    snow: float = 0.0
    mismatch: float = 0.02
    wiring: float = 0.02
    connections: float = 0.005
    light_induced_degradation: float = 0.015
    nameplate_rating: float = 0.01
    age: float = 0.0
    availability: float = 0.015

    def __post_init__(self) -> None:
        for f in fields(self):
            v = getattr(self, f.name)
            if not 0.0 <= v < 1.0:
                raise ConfigurationError(f"loss '{f.name}' must be in [0, 1), got {v}")

    @property
    def total_derate(self) -> float:
        """Combined multiplicative derate factor (≈0.86 for defaults)."""
        derate = 1.0
        for f in fields(self):
            derate *= 1.0 - getattr(self, f.name)
        return derate

    @property
    def total_loss_fraction(self) -> float:
        """Combined loss as a single fraction (PVWatts 'losses' input)."""
        return 1.0 - self.total_derate


#: PVWatts v5 default losses total ≈ 14 %.
DEFAULT_LOSSES = SystemLosses()
