"""Clear-sky irradiance models.

Two standard closed-form models:

* :func:`haurwitz_ghi` — the Haurwitz (1945) global-horizontal clear-sky
  model.  Depends only on the zenith angle; it is the reference model the
  synthetic NSRDB-style generator scales with the stochastic clearness
  index.
* :func:`ineichen_dni` — a simplified Ineichen–Perez direct-normal model
  with a Kasten airmass and Linke-turbidity attenuation, used to split the
  synthetic GHI into beam and diffuse consistently with clear skies.
"""

from __future__ import annotations

import numpy as np

from .geometry import SOLAR_CONSTANT_W_M2


def relative_airmass(zenith_deg: np.ndarray) -> np.ndarray:
    """Kasten & Young (1989) relative optical airmass.

    Values above ~38 (sun below horizon) are clipped; callers zero the
    irradiance there anyway.
    """
    z = np.minimum(np.asarray(zenith_deg, dtype=np.float64), 89.9)
    z_rad = np.radians(z)
    am = 1.0 / (np.cos(z_rad) + 0.50572 * (96.07995 - z) ** -1.6364)
    return np.clip(am, 1.0, 38.0)


def haurwitz_ghi(zenith_deg: np.ndarray) -> np.ndarray:
    """Haurwitz clear-sky global horizontal irradiance (W/m²)."""
    cos_zen = np.cos(np.radians(np.asarray(zenith_deg, dtype=np.float64)))
    cos_zen = np.maximum(cos_zen, 0.0)
    ghi = 1098.0 * cos_zen * np.exp(-0.059 / np.maximum(cos_zen, 1e-6))
    return np.where(cos_zen > 0.0, ghi, 0.0)


def ineichen_dni(
    zenith_deg: np.ndarray,
    extraterrestrial_w_m2: np.ndarray | float = SOLAR_CONSTANT_W_M2,
    linke_turbidity: float = 3.0,
    altitude_m: float = 0.0,
) -> np.ndarray:
    """Simplified Ineichen–Perez clear-sky direct normal irradiance (W/m²).

    Parameters
    ----------
    zenith_deg:
        Solar zenith angle(s), degrees.
    extraterrestrial_w_m2:
        Extraterrestrial normal irradiance (already eccentricity-corrected).
    linke_turbidity:
        Linke turbidity factor TL (≈2 very clean, ≈3 typical, ≈5 hazy).
    altitude_m:
        Site elevation; raises DNI slightly via the altitude correction.
    """
    zen = np.asarray(zenith_deg, dtype=np.float64)
    am = relative_airmass(zen)
    fh1 = np.exp(-altitude_m / 8_000.0)
    b = 0.664 + 0.163 / fh1
    dni = b * np.asarray(extraterrestrial_w_m2, dtype=np.float64) * np.exp(
        -0.09 * am * (linke_turbidity - 1.0)
    )
    cos_zen = np.cos(np.radians(zen))
    return np.where(cos_zen > 0.0, np.maximum(dni, 0.0), 0.0)


def clearsky_dhi(
    ghi_clearsky: np.ndarray, dni_clearsky: np.ndarray, zenith_deg: np.ndarray
) -> np.ndarray:
    """Clear-sky diffuse horizontal as the closure residual GHI − DNI·cosθz."""
    cos_zen = np.maximum(np.cos(np.radians(np.asarray(zenith_deg, dtype=np.float64))), 0.0)
    return np.maximum(ghi_clearsky - dni_clearsky * cos_zen, 0.0)
