"""Reimplementation of the NREL System Advisor Model (SAM) components the
paper uses: the PVWatts photovoltaic chain, the Windpower farm model, and
the battery performance/degradation models.

The real SAM is a C++ simulation core with a Python wrapper (PySAM); the
paper integrates it into Vessim through a dedicated signal class.  Here the
same model equations are implemented directly in vectorized NumPy: given a
resource year, each model produces an 8 760-sample hourly generation
profile that :class:`repro.cosim.signal.SAMSignal` serves to Vessim actors.
"""

from .solar.pvwatts import PVWattsModel, PVWattsParameters
from .wind.windpower import WindFarmModel, WindFarmParameters

__all__ = [
    "PVWattsModel",
    "PVWattsParameters",
    "WindFarmModel",
    "WindFarmParameters",
]
