"""Vertical wind-shear extrapolation.

Wind resources are measured/synthesized at a reference height; turbines
operate at hub height.  Two standard laws:

* :func:`extrapolate_power_law` — engineering power law
  ``v(h) = v_ref * (h / h_ref)^α`` with site-specific exponent α (SAM's
  default approach for its hourly wind model);
* :func:`extrapolate_log_law` — neutral-stability logarithmic profile with
  surface roughness length z0.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError


def extrapolate_power_law(
    speed_ms: np.ndarray,
    reference_height_m: float,
    hub_height_m: float,
    shear_exponent: float = 0.14,
) -> np.ndarray:
    """Power-law shear extrapolation of wind speed to hub height."""
    if reference_height_m <= 0 or hub_height_m <= 0:
        raise ConfigurationError("heights must be positive")
    if not 0.0 <= shear_exponent <= 0.6:
        raise ConfigurationError(f"shear exponent {shear_exponent} outside plausible [0, 0.6]")
    ratio = (hub_height_m / reference_height_m) ** shear_exponent
    return np.asarray(speed_ms, dtype=np.float64) * ratio


def extrapolate_log_law(
    speed_ms: np.ndarray,
    reference_height_m: float,
    hub_height_m: float,
    roughness_length_m: float = 0.03,
) -> np.ndarray:
    """Logarithmic-profile shear extrapolation (neutral stability)."""
    if min(reference_height_m, hub_height_m) <= roughness_length_m:
        raise ConfigurationError("heights must exceed the roughness length")
    if roughness_length_m <= 0:
        raise ConfigurationError("roughness length must be positive")
    ratio = np.log(hub_height_m / roughness_length_m) / np.log(
        reference_height_m / roughness_length_m
    )
    return np.asarray(speed_ms, dtype=np.float64) * ratio
