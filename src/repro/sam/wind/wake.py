"""Farm-level wake / array losses.

SAM's Windpower module offers several wake models; for the farm sizes the
paper sweeps (≤10 turbines) the dominant effect is a modest array
efficiency.  Two options:

* :func:`constant_wake_loss` — a flat array-efficiency derate (SAM's
  "simple" wake option, default 5–10 % for small farms);
* :func:`jensen_array_efficiency` — an aggregate Jensen (Park) top-hat
  estimate of mean array efficiency as a function of turbine count and
  spacing, capturing the diminishing marginal output of adding machines.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError


def constant_wake_loss(n_turbines: int, loss_fraction: float = 0.05) -> float:
    """Flat array efficiency: 1 for ≤1 turbine, else ``1 - loss``."""
    if not 0.0 <= loss_fraction < 1.0:
        raise ConfigurationError(f"loss fraction must be in [0, 1), got {loss_fraction}")
    return 1.0 if n_turbines <= 1 else 1.0 - loss_fraction


def jensen_array_efficiency(
    n_turbines: int,
    spacing_diameters: float = 7.0,
    thrust_coefficient: float = 0.8,
    wake_decay: float = 0.075,
) -> float:
    """Aggregate Jensen-model array efficiency for a line of turbines.

    Considers a single row with the given spacing (in rotor diameters).  A
    downstream turbine in a full wake at distance ``s·D`` sees velocity
    deficit ``δ = (1 − √(1−Ct)) / (1 + 2k·s)²``.  Full-wake alignment only
    occurs over a narrow sector of the wind rose; averaging over directions
    an effective fraction ``0.15·(n−1)/n`` of turbine-hours is fully waked,
    giving mean farm efficiency ``1 − 0.15·(n−1)/n·(1 − (1−δ)³)`` — ≈95 %
    for a 10-turbine row at 7 D, matching typical reported array losses.

    This is intentionally an *aggregate* estimate (SAM computes the same
    quantity per-direction); it reproduces the correct qualitative shape:
    monotonically decreasing efficiency with n, saturating for large n.
    """
    if n_turbines <= 1:
        return 1.0
    if spacing_diameters <= 0:
        raise ConfigurationError("spacing must be positive")
    if not 0.0 < thrust_coefficient < 1.0:
        raise ConfigurationError("thrust coefficient must be in (0, 1)")
    deficit = (1.0 - np.sqrt(1.0 - thrust_coefficient)) / (
        1.0 + 2.0 * wake_decay * spacing_diameters
    ) ** 2
    waked_fraction = 0.15 * (n_turbines - 1) / n_turbines
    power_deficit = 1.0 - (1.0 - deficit) ** 3
    eff = 1.0 - waked_fraction * power_deficit
    return float(np.clip(eff, 0.0, 1.0))
