"""Turbine power curves.

The paper's wind farm uses 3 MW turbines (Smoucha et al. embodied-carbon
reference class).  We model a generic modern 3 MW machine: cut-in 3 m/s,
rated ≈ 12 m/s, cut-out 25 m/s, with a smooth cubic-to-rated transition
characteristic of pitch-regulated turbines.  Power for arbitrary speeds is
piecewise-linear interpolation on the tabulated curve, exactly how SAM's
Windpower module evaluates user curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...exceptions import ConfigurationError
from ...units import W_PER_KW


@dataclass(frozen=True)
class PowerCurve:
    """Tabulated power curve with linear interpolation between knots."""

    speeds_ms: np.ndarray
    power_w: np.ndarray

    def __post_init__(self) -> None:
        speeds = np.ascontiguousarray(self.speeds_ms, dtype=np.float64)
        power = np.ascontiguousarray(self.power_w, dtype=np.float64)
        object.__setattr__(self, "speeds_ms", speeds)
        object.__setattr__(self, "power_w", power)
        if speeds.ndim != 1 or speeds.shape != power.shape:
            raise ConfigurationError("power curve speed/power arrays must be 1-D and aligned")
        if len(speeds) < 2:
            raise ConfigurationError("power curve needs at least 2 points")
        if not np.all(np.diff(speeds) > 0):
            raise ConfigurationError("power curve speeds must be strictly increasing")
        if np.any(power < 0):
            raise ConfigurationError("power curve powers must be non-negative")

    def power_at(self, speed_ms: np.ndarray) -> np.ndarray:
        """Interpolate turbine output (W) at the given wind speeds."""
        v = np.asarray(speed_ms, dtype=np.float64)
        return np.interp(v, self.speeds_ms, self.power_w, left=0.0, right=0.0)

    @property
    def rated_power_w(self) -> float:
        return float(self.power_w.max())

    @property
    def cut_in_ms(self) -> float:
        """First speed with non-zero power."""
        nonzero = np.nonzero(self.power_w > 0)[0]
        return float(self.speeds_ms[nonzero[0]]) if nonzero.size else float("inf")

    @property
    def cut_out_ms(self) -> float:
        """Last tabulated speed with non-zero power."""
        nonzero = np.nonzero(self.power_w > 0)[0]
        return float(self.speeds_ms[nonzero[-1]]) if nonzero.size else 0.0


@dataclass(frozen=True)
class TurbineSpec:
    """A turbine type: curve + geometry + embodied footprint."""

    name: str
    power_curve: PowerCurve
    hub_height_m: float
    rotor_diameter_m: float
    embodied_kg_co2: float = 0.0

    @property
    def rated_power_kw(self) -> float:
        return self.power_curve.rated_power_w / W_PER_KW


def _generic_curve(
    rated_kw: float,
    cut_in: float = 3.0,
    rated_speed: float = 10.5,
    cut_out: float = 25.0,
) -> PowerCurve:
    """Generic pitch-regulated curve: smoothed cubic ramp then flat."""
    if not cut_in < rated_speed < cut_out:
        raise ConfigurationError("need cut_in < rated_speed < cut_out")
    speeds = np.arange(0.0, cut_out + 1.0, 0.5)
    rated_w = rated_kw * W_PER_KW
    # Normalized cubic between cut-in and rated, smoothed near rated with
    # a smoothstep blend so dP/dv is continuous (realistic pitch control).
    x = np.clip((speeds - cut_in) / (rated_speed - cut_in), 0.0, 1.0)
    cubic = x**3
    smooth = x * x * (3.0 - 2.0 * x)  # smoothstep
    frac = 0.7 * cubic + 0.3 * smooth
    power = rated_w * frac
    power[speeds < cut_in] = 0.0
    power[speeds >= rated_speed] = rated_w
    power[speeds > cut_out] = 0.0
    # Exact zero at the cut-out knot boundary handled by interp right=0.
    return PowerCurve(speeds_ms=speeds, power_w=power)


#: The paper's reference machine: 3 MW rated, 1 046 tCO2 embodied
#: (Smoucha et al. 2016), 100 m hub height.  Rated speed 10.5 m/s reflects
#: modern low-specific-power onshore machines (e.g. V136-class rotors).
GENERIC_3MW_TURBINE = TurbineSpec(
    name="generic-3MW",
    power_curve=_generic_curve(rated_kw=3_000.0),
    hub_height_m=100.0,
    rotor_diameter_m=112.0,
    embodied_kg_co2=1_046_000.0,
)


def make_turbine(
    rated_kw: float,
    hub_height_m: float = 100.0,
    name: str | None = None,
    embodied_kg_co2: float = 0.0,
    **curve_kwargs,
) -> TurbineSpec:
    """Build a generic turbine of arbitrary rating (for extensions/tests)."""
    return TurbineSpec(
        name=name or f"generic-{rated_kw:g}kW",
        power_curve=_generic_curve(rated_kw, **curve_kwargs),
        hub_height_m=hub_height_m,
        rotor_diameter_m=112.0 * np.sqrt(rated_kw / 3_000.0),
        embodied_kg_co2=embodied_kg_co2,
    )
