"""Windpower-style wind farm performance model.

Mirrors the SAM ``Windpower`` compute module the paper uses: hub-height
wind speed (shear extrapolation), air-density correction, turbine power
curve lookup, and farm-level array (wake) losses.
"""

from .shear import extrapolate_log_law, extrapolate_power_law
from .density import air_density_kg_m3, density_corrected_speed
from .powercurve import GENERIC_3MW_TURBINE, PowerCurve, TurbineSpec
from .wake import constant_wake_loss, jensen_array_efficiency
from .windpower import WindFarmModel, WindFarmParameters

__all__ = [
    "extrapolate_power_law",
    "extrapolate_log_law",
    "air_density_kg_m3",
    "density_corrected_speed",
    "PowerCurve",
    "TurbineSpec",
    "GENERIC_3MW_TURBINE",
    "constant_wake_loss",
    "jensen_array_efficiency",
    "WindFarmModel",
    "WindFarmParameters",
]
