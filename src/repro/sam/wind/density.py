"""Air-density effects on wind power.

Turbine power scales linearly with air density below rated speed.  The
IEC 61400-12 convention corrects the *wind speed* fed to a sea-level power
curve: ``v_corr = v * (ρ / ρ0)^(1/3)``.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError

#: ISA sea-level standard air density, kg/m³.
STANDARD_AIR_DENSITY = 1.225
#: Specific gas constant of dry air, J/(kg·K).
GAS_CONSTANT_DRY_AIR = 287.058
#: ISA sea-level pressure, Pa, and temperature lapse rate, K/m.
SEA_LEVEL_PRESSURE_PA = 101_325.0
LAPSE_RATE_K_PER_M = 0.0065
SEA_LEVEL_TEMPERATURE_K = 288.15
GRAVITY = 9.80665


def air_density_kg_m3(
    elevation_m: float, temperature_c: np.ndarray | float = 15.0
) -> np.ndarray | float:
    """Air density from elevation (barometric formula) and temperature."""
    if elevation_m < -500 or elevation_m > 6_000:
        raise ConfigurationError(f"elevation {elevation_m} m outside supported range")
    t_k = np.asarray(temperature_c, dtype=np.float64) + 273.15
    exponent = GRAVITY / (GAS_CONSTANT_DRY_AIR * LAPSE_RATE_K_PER_M)
    pressure = SEA_LEVEL_PRESSURE_PA * (
        1.0 - LAPSE_RATE_K_PER_M * elevation_m / SEA_LEVEL_TEMPERATURE_K
    ) ** exponent
    rho = pressure / (GAS_CONSTANT_DRY_AIR * t_k)
    return rho if isinstance(temperature_c, np.ndarray) else float(rho)


def density_corrected_speed(
    speed_ms: np.ndarray, density_kg_m3: np.ndarray | float
) -> np.ndarray:
    """IEC 61400-12 density-corrected wind speed for sea-level power curves."""
    rho_ratio = np.asarray(density_kg_m3, dtype=np.float64) / STANDARD_AIR_DENSITY
    return np.asarray(speed_ms, dtype=np.float64) * np.cbrt(rho_ratio)
