"""Wind farm performance model (SAM ``Windpower`` equivalent).

Given an hourly wind resource year and a farm description, produce the
hourly AC generation profile:

``reference-height speed → hub-height shear → density-corrected speed
→ power curve → × n_turbines × array efficiency × availability``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ...exceptions import ConfigurationError
from ...units import W_PER_KW
from .density import air_density_kg_m3, density_corrected_speed
from .powercurve import GENERIC_3MW_TURBINE, TurbineSpec
from .shear import extrapolate_power_law
from .wake import jensen_array_efficiency

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...data.wind_resource import WindResource


@dataclass(frozen=True)
class WindFarmParameters:
    """Farm description mirroring the SAM Windpower inputs the paper uses."""

    n_turbines: int
    turbine: TurbineSpec = field(default_factory=lambda: GENERIC_3MW_TURBINE)
    #: fraction of time the farm is available (O&M outages)
    availability: float = 0.97
    #: turbine spacing used by the wake estimate, rotor diameters
    spacing_diameters: float = 7.0
    wake_model: str = "jensen"  # "jensen" | "none"

    def __post_init__(self) -> None:
        if self.n_turbines < 0:
            raise ConfigurationError(f"n_turbines must be >= 0, got {self.n_turbines}")
        if not 0.0 < self.availability <= 1.0:
            raise ConfigurationError(f"availability must be in (0, 1], got {self.availability}")
        if self.wake_model not in ("jensen", "none"):
            raise ConfigurationError(f"unknown wake model '{self.wake_model}'")

    @property
    def rated_capacity_kw(self) -> float:
        return self.n_turbines * self.turbine.rated_power_kw


@dataclass(frozen=True)
class WindFarmResult:
    """Hourly outputs of a Windpower run."""

    ac_power_w: np.ndarray
    hub_speed_ms: np.ndarray
    array_efficiency: float

    @property
    def annual_energy_kwh(self) -> float:
        return float(self.ac_power_w.sum() / W_PER_KW)

    def capacity_factor(self, rated_kw: float) -> float:
        if rated_kw <= 0:
            return 0.0
        return float(self.ac_power_w.mean() / (rated_kw * W_PER_KW))


class WindFarmModel:
    """Runs the Windpower chain for one farm at one site."""

    def __init__(self, params: WindFarmParameters) -> None:
        self.params = params

    def run(self, resource: "WindResource") -> WindFarmResult:
        """Simulate the farm against an hourly wind resource year."""
        p = self.params
        loc = resource.location

        hub_speed = extrapolate_power_law(
            resource.speed_ms,
            reference_height_m=resource.reference_height_m,
            hub_height_m=p.turbine.hub_height_m,
            shear_exponent=loc.wind_climate.shear_exponent,
        )
        rho = air_density_kg_m3(loc.elevation_m, resource.temperature_c)
        corrected = density_corrected_speed(hub_speed, rho)

        per_turbine = p.turbine.power_curve.power_at(corrected)

        if p.wake_model == "jensen":
            eff = jensen_array_efficiency(p.n_turbines, p.spacing_diameters)
        else:
            eff = 1.0

        farm = per_turbine * p.n_turbines * eff * p.availability
        return WindFarmResult(ac_power_w=farm, hub_speed_ms=hub_speed, array_efficiency=eff)

    def hourly_profile_w(self, resource: "WindResource") -> np.ndarray:
        """Convenience: just the farm AC power profile (W)."""
        return self.run(resource).ac_power_w


def per_turbine_profile(resource: "WindResource", **param_overrides) -> np.ndarray:
    """Output profile of a single turbine, W (wake-free, availability on).

    Farm output for ``n`` turbines is
    ``n * per_turbine_profile * array_efficiency(n)``;
    :mod:`repro.core.fastsim` composes this without rerunning the resource
    chain per candidate.
    """
    params = WindFarmParameters(n_turbines=1, **param_overrides)
    return WindFarmModel(params).run(resource).ac_power_w
