"""Battery performance and aging models.

The paper simulates storage with the C/L/C lithium-ion model of
Kazhamiaka, Rosenberg & Keshav (2019), "Tractable Lithium-Ion Storage
Models for Optimizing Energy Systems" — already integrated in Vessim.
:mod:`repro.sam.batterymodels.clc` reimplements it; rainflow cycle
counting and a cycle+calendar aging model extend it for the paper's
"battery degradation minimization" objective (§4.3).
"""

from .clc import CLCParameters, CLCState, clc_step, clc_step_arrays
from .rainflow import count_equivalent_full_cycles, rainflow_cycles
from .degradation import DegradationModel, DegradationParameters

__all__ = [
    "CLCParameters",
    "CLCState",
    "clc_step",
    "clc_step_arrays",
    "rainflow_cycles",
    "count_equivalent_full_cycles",
    "DegradationModel",
    "DegradationParameters",
]
