"""Battery aging model (paper extension, §4.2/§4.3).

The paper notes its 20-year projection "does not model reinvestment or
degradation" and lists degradation-aware objectives as future work.  This
module provides that extension: a standard semi-empirical cycle + calendar
aging model in the spirit of NREL's BLAST-Lite (Gasper et al. 2024), which
the paper cites:

* **calendar fade** — √t law: ``f_cal = k_cal · √(t_years)``
* **cycle fade** — Wöhler-type depth-of-discharge law applied to rainflow
  cycles: a cycle of depth d consumes ``1 / N_fail(d)`` of cycle life with
  ``N_fail(d) = N_100 · d^(−kd)``.

End of life is conventionally 80 % remaining capacity (fade = 0.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...exceptions import ConfigurationError
from .rainflow import RainflowCycle, rainflow_cycles


@dataclass(frozen=True)
class DegradationParameters:
    """Aging-law coefficients (defaults representative of grid LFP cells)."""

    #: calendar fade per √year.  4.5 %/√year puts calendar-only EOL at
    #: ≈20 years; combined with realistic cycling this lands batteries in
    #: the 10–15-year replacement window the paper cites (§4.2).
    k_calendar_per_sqrt_year: float = 0.045
    #: cycles to EOL at 100 % depth of discharge
    cycles_to_failure_full_dod: float = 3_500.0
    #: Wöhler exponent: shallower cycles are disproportionately cheaper
    woehler_exponent: float = 1.5
    #: capacity fade fraction defining end of life
    eol_fade: float = 0.2

    def __post_init__(self) -> None:
        if self.k_calendar_per_sqrt_year < 0:
            raise ConfigurationError("calendar coefficient must be non-negative")
        if self.cycles_to_failure_full_dod <= 0:
            raise ConfigurationError("cycles to failure must be positive")
        if not 0.0 < self.eol_fade < 1.0:
            raise ConfigurationError("EOL fade must be in (0, 1)")

    def cycles_to_failure(self, depth: float) -> float:
        """Wöhler curve: cycles to EOL at the given depth of discharge."""
        d = float(np.clip(depth, 1e-4, 1.0))
        return self.cycles_to_failure_full_dod * d**-self.woehler_exponent


class DegradationModel:
    """Accumulates capacity fade from SoC history + elapsed time."""

    def __init__(self, params: DegradationParameters | None = None) -> None:
        self.params = params or DegradationParameters()

    def cycle_fade(self, cycles: list[RainflowCycle]) -> float:
        """Capacity fade contributed by a set of rainflow cycles."""
        p = self.params
        damage = 0.0
        for c in cycles:
            damage += c.count / p.cycles_to_failure(c.depth)
        return damage * p.eol_fade

    def cycle_fade_from_soc(self, soc_series: np.ndarray) -> float:
        """Cycle fade straight from a SoC trace."""
        return self.cycle_fade(rainflow_cycles(soc_series))

    def calendar_fade(self, years: float) -> float:
        """Calendar fade after ``years`` (√t law)."""
        if years < 0:
            raise ConfigurationError("years must be non-negative")
        return self.params.k_calendar_per_sqrt_year * float(np.sqrt(years))

    def total_fade(self, soc_series: np.ndarray, years: float) -> float:
        """Combined fade, assuming the SoC trace covers ``years``."""
        return self.cycle_fade_from_soc(soc_series) + self.calendar_fade(years)

    def remaining_capacity_fraction(self, soc_series: np.ndarray, years: float) -> float:
        """Remaining usable capacity fraction (floored at 0)."""
        return max(1.0 - self.total_fade(soc_series, years), 0.0)

    def expected_lifetime_years(
        self, soc_series_one_year: np.ndarray, max_years: float = 40.0
    ) -> float:
        """Years until EOL assuming the one-year SoC trace repeats.

        Solves ``k_cal·√t + t·annual_cycle_fade = eol_fade`` for t.
        """
        p = self.params
        annual_cycle = self.cycle_fade_from_soc(soc_series_one_year)
        k = p.k_calendar_per_sqrt_year
        # Quadratic in √t: annual_cycle·s² + k·s − eol = 0.
        if annual_cycle <= 0:
            if k <= 0:
                return max_years
            return min((p.eol_fade / k) ** 2, max_years)
        disc = k**2 + 4.0 * annual_cycle * p.eol_fade
        s = (-k + np.sqrt(disc)) / (2.0 * annual_cycle)
        return float(min(s**2, max_years))
