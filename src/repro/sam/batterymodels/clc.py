"""The C/L/C tractable lithium-ion storage model.

Kazhamiaka et al. (2019) construct a hierarchy of linear storage models;
the **C/L/C** variant combines

* **C**oulomb-counting charge dynamics with separate charge/discharge
  efficiencies,
* **L**imits on charge/discharge rates, with the charging limit *tapering
  linearly near full charge* (emulating the constant-voltage phase of a
  CC-CV charger), and
* **C**apacity bounds (usable SoC window).

The model is deliberately linear per step, which is what makes year-long
co-simulations and black-box sweeps tractable.

The implementation below is written *array-first*: every function accepts
either scalars or NumPy arrays for the state, so the same equations back
both the scalar co-simulated battery (:mod:`repro.cosim.battery`) and the
vectorized batch evaluator (:mod:`repro.core.fastsim`) that simulates all
candidate compositions simultaneously.  This guarantees the two evaluation
paths share one source of truth for battery physics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...exceptions import ConfigurationError
from ...units import SECONDS_PER_HOUR

ArrayLike = "np.ndarray | float"


@dataclass(frozen=True)
class CLCParameters:
    """C/L/C model parameters.

    Parameters
    ----------
    capacity_wh:
        Nameplate energy capacity (Wh).
    eta_charge / eta_discharge:
        One-way efficiencies (round-trip = product ≈ 0.90 for Li-ion LFP).
    max_charge_c_rate / max_discharge_c_rate:
        Power limits as multiples of capacity per hour (0.5 C typical for
        grid-scale LFP units such as the Fluence Smartstack).
    taper_soc_threshold:
        State-of-charge above which the charge limit tapers linearly to 0
        at 100 % (the CV-phase emulation; the "L" in C/L/C).
    soc_min / soc_max:
        Usable SoC window.
    self_discharge_per_hour:
        Fractional charge leakage per hour (≈2 %/month for Li-ion).
    """

    capacity_wh: float
    eta_charge: float = 0.95
    eta_discharge: float = 0.95
    max_charge_c_rate: float = 0.5
    max_discharge_c_rate: float = 0.5
    taper_soc_threshold: float = 0.8
    soc_min: float = 0.05
    soc_max: float = 0.95
    self_discharge_per_hour: float = 3e-5

    def __post_init__(self) -> None:
        if self.capacity_wh < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {self.capacity_wh}")
        for name in ("eta_charge", "eta_discharge"):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {v}")
        if not 0.0 <= self.soc_min < self.soc_max <= 1.0:
            raise ConfigurationError(
                f"need 0 <= soc_min < soc_max <= 1, got [{self.soc_min}, {self.soc_max}]"
            )
        if not self.soc_min <= self.taper_soc_threshold <= self.soc_max:
            raise ConfigurationError("taper threshold must lie inside the SoC window")
        if self.max_charge_c_rate <= 0 or self.max_discharge_c_rate <= 0:
            raise ConfigurationError("C-rates must be positive")
        if not 0.0 <= self.self_discharge_per_hour < 0.01:
            raise ConfigurationError("self-discharge per hour must be small and non-negative")

    @property
    def usable_capacity_wh(self) -> float:
        """Energy between the SoC bounds."""
        return self.capacity_wh * (self.soc_max - self.soc_min)

    @property
    def max_charge_power_w(self) -> float:
        """Nominal charging power limit (W) before taper."""
        return self.capacity_wh * self.max_charge_c_rate

    @property
    def max_discharge_power_w(self) -> float:
        """Nominal discharging power limit (W)."""
        return self.capacity_wh * self.max_discharge_c_rate


@dataclass
class CLCState:
    """Mutable battery state: stored energy (Wh), scalar or vector."""

    energy_wh: "np.ndarray | float"

    def soc(self, params: CLCParameters) -> "np.ndarray | float":
        """State of charge as a fraction of nameplate capacity."""
        if params.capacity_wh <= 0:
            return np.zeros_like(np.asarray(self.energy_wh, dtype=np.float64))
        return self.energy_wh / params.capacity_wh


def initial_state(params: CLCParameters, soc: float = 0.5, n: int | None = None) -> CLCState:
    """Build an initial state at the given SoC (vector of length ``n`` if set)."""
    if not params.soc_min <= soc <= params.soc_max and params.capacity_wh > 0:
        soc = float(np.clip(soc, params.soc_min, params.soc_max))
    energy = params.capacity_wh * soc
    if n is not None:
        return CLCState(np.full(n, energy, dtype=np.float64))
    return CLCState(float(energy))


def clc_step_arrays(
    capacity_wh: "np.ndarray | float",
    energy_wh: "np.ndarray | float",
    power_request_w: "np.ndarray | float",
    dt_s: float,
    eta_charge: float = 0.95,
    eta_discharge: float = 0.95,
    max_charge_c_rate: float = 0.5,
    max_discharge_c_rate: float = 0.5,
    taper_soc_threshold: float = 0.8,
    soc_min: float = 0.05,
    soc_max: float = 0.95,
    self_discharge_per_hour: float = 3e-5,
) -> tuple[np.ndarray, np.ndarray]:
    """The C/L/C step equations with **array-valued capacity**.

    This is the single source of truth for the battery physics: the
    scalar co-simulated battery calls it through :func:`clc_step`, while
    :mod:`repro.core.fastsim` calls it directly with one capacity per
    candidate composition to advance *all* candidates in one vector
    operation per timestep.  Zero-capacity entries simply accept nothing.

    Returns ``(accepted_power_w, new_energy_wh)`` as arrays broadcast over
    the inputs.
    """
    cap = np.asarray(capacity_wh, dtype=np.float64)
    e = np.asarray(energy_wh, dtype=np.float64)
    req = np.asarray(power_request_w, dtype=np.float64)
    dt_h = dt_s / SECONDS_PER_HOUR

    safe_cap = np.maximum(cap, 1e-12)
    e_min = cap * soc_min
    e_max = cap * soc_max

    # Self-discharge applies to the pre-step state.
    e = np.maximum(e * (1.0 - self_discharge_per_hour * dt_h), 0.0)

    # --- charging branch ---------------------------------------------------
    # Terminal power limited by (a) the SoC-tapered C-rate limit (the "L"
    # of C/L/C: linear CV-phase taper above the threshold) and (b) the
    # headroom: stored gain is eta_c * P * dt.
    soc = e / safe_cap
    span = max(soc_max - taper_soc_threshold, 1e-9)
    taper = np.clip((soc_max - soc) / span, 0.0, 1.0)
    p_lim_chg = cap * max_charge_c_rate * taper
    headroom_w = np.maximum(e_max - e, 0.0) / dt_h / eta_charge
    p_charge = np.minimum(np.maximum(req, 0.0), np.minimum(p_lim_chg, headroom_w))

    # --- discharging branch -------------------------------------------------
    # Terminal power limited by (a) the discharge C-rate and (b) available
    # energy: stored loss is P * dt / eta_d.
    available_w = np.maximum(e - e_min, 0.0) / dt_h * eta_discharge
    p_discharge = np.minimum(
        np.maximum(-req, 0.0), np.minimum(cap * max_discharge_c_rate, available_w)
    )

    accepted = p_charge - p_discharge
    new_e = e + eta_charge * p_charge * dt_h - p_discharge * dt_h / eta_discharge
    new_e = np.clip(new_e, 0.0, e_max)
    return accepted, new_e


def charge_limit_w(params: CLCParameters, energy_wh: "np.ndarray | float") -> "np.ndarray | float":
    """SoC-dependent charging power limit (the "L" taper).

    Below the taper threshold the limit is the nominal C-rate power; above
    it the limit declines linearly, reaching zero at ``soc_max``.
    """
    if params.capacity_wh <= 0:
        return np.zeros_like(np.asarray(energy_wh, dtype=np.float64))
    soc = np.asarray(energy_wh, dtype=np.float64) / params.capacity_wh
    span = max(params.soc_max - params.taper_soc_threshold, 1e-9)
    taper = np.clip((params.soc_max - soc) / span, 0.0, 1.0)
    return params.max_charge_power_w * taper


def clc_step(
    params: CLCParameters,
    energy_wh: "np.ndarray | float",
    power_request_w: "np.ndarray | float",
    dt_s: float,
) -> tuple["np.ndarray | float", "np.ndarray | float"]:
    """Advance the C/L/C dynamics one step (scalar-params front-end).

    Parameters
    ----------
    energy_wh:
        Current stored energy (Wh), scalar or vector.
    power_request_w:
        Requested terminal power; **positive = charge** (power flowing into
        the battery terminals), **negative = discharge** (power delivered
        to the microgrid).
    dt_s:
        Step length in seconds.

    Returns
    -------
    (accepted_power_w, new_energy_wh):
        The power actually absorbed/delivered at the terminals after
        applying rate limits, the CV taper, efficiency and capacity bounds,
        and the post-step stored energy.  Scalars in → scalars out.
    """
    scalar_in = np.isscalar(energy_wh) and np.isscalar(power_request_w)
    if params.capacity_wh <= 0:
        if scalar_in:
            return 0.0, 0.0
        shape = np.broadcast(
            np.asarray(energy_wh, dtype=np.float64),
            np.asarray(power_request_w, dtype=np.float64),
        ).shape
        return np.zeros(shape), np.zeros(shape)

    accepted, new_e = clc_step_arrays(
        params.capacity_wh,
        energy_wh,
        power_request_w,
        dt_s,
        eta_charge=params.eta_charge,
        eta_discharge=params.eta_discharge,
        max_charge_c_rate=params.max_charge_c_rate,
        max_discharge_c_rate=params.max_discharge_c_rate,
        taper_soc_threshold=params.taper_soc_threshold,
        soc_min=params.soc_min,
        soc_max=params.soc_max,
        self_discharge_per_hour=params.self_discharge_per_hour,
    )
    if scalar_in:
        return float(accepted), float(new_e)
    return accepted, new_e


def roundtrip_efficiency(params: CLCParameters) -> float:
    """Nominal round-trip efficiency of the parameter set."""
    return params.eta_charge * params.eta_discharge
